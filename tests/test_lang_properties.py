"""Property-based tests for the customization language front-end.

The central law: *print → compile* is the identity on directives (up to
the generated name). Directives are generated against the phone_net
schema so semantic checking passes by construction.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AttributeCustomization,
    ClassCustomization,
    ContextPattern,
    CustomizationDirective,
)
from repro.lang import compile_program, parse_program, render_directive
from repro.lang.lexer import tokenize
from repro.uilib import (
    InterfaceObjectLibrary,
    PresentationRegistry,
    install_standard_composites,
)
from repro.workloads import build_phone_net_database

# -- strategies ---------------------------------------------------------------

names = st.sampled_from(["juliano", "maria", "carlos", "eng_a", "pm_2"])

patterns = st.builds(
    ContextPattern,
    user=st.one_of(st.none(), names),
    category=st.one_of(st.none(), names),
    application=st.one_of(st.none(), names),
    scale_range=st.one_of(
        st.none(),
        st.tuples(st.just(1000.0), st.just(50000.0)),
    ),
    time_tag=st.one_of(st.none(), st.just("planning")),
)

#: attribute clauses legal on class Pole (sources already normalized)
pole_attr_clauses = st.sampled_from([
    AttributeCustomization("pole_location", "null"),
    AttributeCustomization("pole_picture", "image"),
    AttributeCustomization("pole_historic", "text"),
    AttributeCustomization("pole_type", "slider"),
    AttributeCustomization(
        "pole_composition", "composed_text",
        sources=("pole_composition.pole_material",
                 "pole_composition.pole_height"),
        using="composed_text.notify()"),
    AttributeCustomization(
        "pole_supplier", "text",
        sources=("get_supplier_name(pole_supplier)",)),
])


@st.composite
def pole_class_clauses(draw):
    attrs = draw(st.lists(pole_attr_clauses, max_size=4,
                          unique_by=lambda a: a.attr_name))
    return ClassCustomization(
        class_name="Pole",
        control_widget=draw(st.one_of(st.none(), st.just("poleWidget"))),
        presentation_format=draw(st.one_of(st.none(),
                                           st.just("pointFormat"),
                                           st.just("defaultFormat"))),
        attributes=tuple(attrs),
        on_update_display=draw(st.one_of(st.none(), st.just("slider"))),
    )


@st.composite
def directives(draw):
    clauses = [draw(pole_class_clauses())]
    if draw(st.booleans()):
        clauses.append(ClassCustomization(
            class_name="Duct",
            presentation_format=draw(st.one_of(st.none(),
                                               st.just("lineFormat")))))
    return CustomizationDirective(
        name="generated",
        pattern=draw(patterns),
        schema_name="phone_net",
        schema_display=draw(st.sampled_from(
            ["default", "hierarchy", "user_defined", "null"])),
        classes=tuple(clauses),
    )


@pytest.fixture(scope="module")
def toolchain():
    db = build_phone_net_database()
    library = InterfaceObjectLibrary()
    install_standard_composites(library, persist=False)
    return db, library, PresentationRegistry()


# -- properties ---------------------------------------------------------------


class TestRoundTrip:
    @given(directives())
    @settings(max_examples=80, deadline=None)
    def test_print_compile_identity(self, toolchain, directive):
        db, library, presentations = toolchain
        source = render_directive(directive)
        compiled = compile_program(source, db, library, presentations)
        assert len(compiled) == 1
        got = compiled[0]
        assert got.pattern == directive.pattern
        assert got.schema_name == directive.schema_name
        assert got.schema_display == directive.schema_display
        assert got.classes == directive.classes

    @given(directives())
    @settings(max_examples=40, deadline=None)
    def test_printed_source_reparses(self, directive):
        source = render_directive(directive)
        program = parse_program(source)
        assert len(program.directives) == 1

    @given(st.lists(directives(), min_size=1, max_size=3))
    @settings(max_examples=20, deadline=None)
    def test_program_rendering(self, toolchain, directive_list):
        from repro.lang import render_program

        db, library, presentations = toolchain
        source = render_program(directive_list)
        compiled = compile_program(source, db, library, presentations)
        assert len(compiled) == len(directive_list)


class TestLexerProperties:
    word_chunks = st.lists(
        st.sampled_from(["for", "user", "pole_type", "a1", "user-defined",
                         "Null", "x"]),
        min_size=1, max_size=20)

    @given(word_chunks)
    def test_whitespace_insensitive(self, words):
        one_line = " ".join(words)
        multi_line = "\n".join(words)
        assert [t.text for t in tokenize(one_line)] == [
            t.text for t in tokenize(multi_line)]

    @given(word_chunks)
    def test_comments_never_change_tokens(self, words):
        source = " ".join(words)
        commented = source + "  -- trailing comment with for user tokens"
        assert [t.text for t in tokenize(source)] == [
            t.text for t in tokenize(commented)]

    @given(st.integers(min_value=0, max_value=10**9),
           st.integers(min_value=0, max_value=10**9))
    def test_scale_ranges_always_lex(self, a, b):
        tokens = tokenize(f"scale {a}..{b}")
        assert [t.text for t in tokens[:-1]] == ["scale", str(a), "..",
                                                 str(b)]
