"""Unit tests for the metadata catalog."""

import pytest

from repro.errors import ObjectNotFoundError, SchemaError
from repro.geodb import (
    Attribute,
    FilePager,
    GeoClass,
    GeographicDatabase,
    KIND_WIDGET,
    MetadataCatalog,
    Schema,
    TEXT,
)


@pytest.fixture()
def db():
    return GeographicDatabase("C")


@pytest.fixture()
def catalog(db):
    return MetadataCatalog(db)


class TestDocuments:
    def test_put_get(self, catalog):
        catalog.put("widget", "slider", {"min": 0, "max": 10})
        assert catalog.get("widget", "slider") == {"min": 0, "max": 10}
        assert catalog.has("widget", "slider")
        assert len(catalog) == 1

    def test_replace(self, catalog):
        catalog.put("widget", "slider", {"v": 1})
        catalog.put("widget", "slider", {"v": 2})
        assert catalog.get("widget", "slider") == {"v": 2}
        assert len(catalog) == 1

    def test_missing(self, catalog):
        with pytest.raises(ObjectNotFoundError):
            catalog.get("widget", "ghost")
        with pytest.raises(ObjectNotFoundError):
            catalog.delete("widget", "ghost")

    def test_delete(self, catalog):
        catalog.put("rule", "r1", {"x": 1})
        catalog.delete("rule", "r1")
        assert not catalog.has("rule", "r1")

    def test_names_by_kind(self, catalog):
        catalog.put("widget", "b", {})
        catalog.put("widget", "a", {})
        catalog.put("rule", "r", {})
        assert catalog.names("widget") == ["a", "b"]
        assert catalog.names("rule") == ["r"]

    def test_requires_kind_and_name(self, catalog):
        with pytest.raises(SchemaError):
            catalog.put("", "x", {})
        with pytest.raises(SchemaError):
            catalog.put("widget", "", {})

    def test_documents_iteration(self, catalog):
        catalog.put(KIND_WIDGET, "w1", {"a": 1})
        catalog.put(KIND_WIDGET, "w2", {"a": 2})
        docs = dict(catalog.documents(KIND_WIDGET))
        assert docs == {"w1": {"a": 1}, "w2": {"a": 2}}


class TestSchemaPersistence:
    def test_save_load(self, db, catalog):
        schema = db.create_schema("s")
        schema.add_class(GeoClass("A", [Attribute("x", TEXT)]))
        catalog.save_schema(schema)
        loaded = catalog.load_schema("s")
        assert loaded.get_class("A").attribute("x").type is TEXT

    def test_save_all(self, db, catalog):
        db.create_schema("a")
        db.create_schema("b")
        assert catalog.save_all_schemas() == 2


class TestDirectoryRecovery:
    def test_rebuild_after_reopen(self, tmp_path):
        path = str(tmp_path / "cat.db")
        db = GeographicDatabase("C", pager=FilePager(path))
        catalog = MetadataCatalog(db)
        catalog.put("widget", "w", {"keep": True})
        schema = Schema("s")
        schema.add_class(GeoClass("A"))
        catalog.save_schema(schema)
        db.buffer.flush()
        db.pager.close()

        db2 = GeographicDatabase("C", pager=FilePager(path))
        catalog2 = MetadataCatalog(db2)
        assert catalog2.get("widget", "w") == {"keep": True}
        assert catalog2.load_schema("s").class_names() == ["A"]
        db2.pager.close()

    def test_catalog_documents_skipped_by_load_from_storage(self, db):
        catalog = MetadataCatalog(db)
        catalog.put("widget", "w", {"x": 1})
        db.create_schema("s")
        assert db.load_from_storage() == 0
