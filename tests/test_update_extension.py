"""Tests for the update-request customization extension (§5 future work).

The paper's stated limitation: "it does not consider customization of
update requests, just of database queries." This reproduction adds the
``on update display as <format>`` clause; these tests pin its semantics:
when a committed update refreshes an open Instance window, the *changed*
attributes are re-presented with the declared format.
"""

import pytest

from repro.core import (
    AttributeCustomization,
    ClassCustomization,
    Context,
    ContextPattern,
    CustomizationDirective,
    GISSession,
)
from repro.errors import RuleError
from repro.ui import instance_attribute_panels


PROGRAM = """
for user inspector application maintenance
schema phone_net display as default
class Pole display
    on update display as slider
    instances
        display attribute pole_location as Null
"""


@pytest.fixture()
def session(phone_db):
    s = GISSession(phone_db, user="inspector", application="maintenance",
                   auto_refresh=True)
    s.install_program(PROGRAM, persist=False)
    return s


class TestCompilation:
    def test_clause_lowered(self, session):
        directive = session.engine.directives()[0]
        clause = directive.class_clause("Pole")
        assert clause.on_update_display == "slider"

    def test_description_roundtrip(self, session):
        directive = session.engine.directives()[0]
        rebuilt = CustomizationDirective.from_description(
            directive.describe())
        assert rebuilt.class_clause("Pole").on_update_display == "slider"


class TestActiveClassClause:
    def test_most_specific_clause_wins(self, phone_db):
        session = GISSession(phone_db, user="x", application="a")
        session.install_directive(CustomizationDirective(
            name="generic", pattern=ContextPattern(),
            schema_name="phone_net",
            classes=(ClassCustomization("Pole", on_update_display="text"),),
        ), persist=False)
        session.install_directive(CustomizationDirective(
            name="personal", pattern=ContextPattern(user="x"),
            schema_name="phone_net",
            classes=(ClassCustomization("Pole",
                                        on_update_display="slider"),),
        ), persist=False)
        clause = session.engine.active_class_clause(
            "Pole", Context(user="x"))
        assert clause.on_update_display == "slider"
        clause = session.engine.active_class_clause(
            "Pole", Context(user="other"))
        assert clause.on_update_display == "text"
        assert session.engine.active_class_clause("Duct",
                                                  Context(user="x")) is None

    def test_ambiguity_raises(self, phone_db):
        session = GISSession(phone_db, user="x", application="a")
        for name in ("a", "b"):
            session.install_directive(CustomizationDirective(
                name=name, pattern=ContextPattern(user="x"),
                schema_name="phone_net",
                classes=(ClassCustomization("Pole"),),
            ), persist=False)
        with pytest.raises(RuleError, match="ambiguous"):
            session.engine.active_class_clause("Pole", Context(user="x"))


class TestRefreshPresentation:
    def test_changed_attribute_re_presented(self, session, phone_db,
                                            pole_oid):
        session.connect("phone_net")
        session.select_class("Pole")
        session.select_instance(pole_oid)
        # an update touches pole_type (an integer): refresh shows a slider
        phone_db.update(pole_oid, {"pole_type": 2})
        window = session.screen.window(f"instance_{pole_oid}")
        panel = instance_attribute_panels(window)["pole_type"]
        assert panel.children[0].widget_type == "slider"
        # untouched attributes keep the default presentation
        status = instance_attribute_panels(window)["status"]
        assert status.children[0].widget_type == "text"
        # the directive's ordinary instance rules still apply
        assert "pole_location" not in instance_attribute_panels(window)

    def test_no_clause_no_override(self, phone_db, pole_oid):
        plain = GISSession(phone_db, user="nobody", application="none",
                           auto_refresh=True)
        plain.connect("phone_net")
        plain.select_class("Pole")
        plain.select_instance(pole_oid)
        phone_db.update(pole_oid, {"pole_type": 3})
        window = plain.screen.window(f"instance_{pole_oid}")
        panel = instance_attribute_panels(window)["pole_type"]
        assert panel.children[0].widget_type == "text"

    def test_manual_override_parameter(self, phone_db, pole_oid):
        session = GISSession(phone_db, user="u", application="a")
        window = session.dispatcher.open_instance(
            pole_oid, session.context,
            attr_overrides={"pole_type": AttributeCustomization(
                "pole_type", "slider")})
        panel = instance_attribute_panels(window)["pole_type"]
        assert panel.children[0].widget_type == "slider"
