"""Unit tests for the UI layer: MVC observer and the interaction driver."""

import pytest

from repro.core import GISSession
from repro.errors import SessionError
from repro.spatial import Point
from repro.ui import (
    InteractionScript,
    ModelObserver,
    paper_walkthrough_script,
    random_browse_script,
    summarize_window,
)


class TestModelObserver:
    def test_watch_class(self, phone_db):
        observer = ModelObserver(phone_db)
        notices = []
        observer.watch_class("Pole", notices.append)
        phone_db.insert("phone_net", "Pole",
                        {"pole_location": Point(1, 1)})
        phone_db.insert("phone_net", "Duct", {
            "duct_path": __import__("repro.spatial", fromlist=["LineString"])
            .LineString([(0, 0), (1, 1)])})
        assert len(notices) == 1
        assert notices[0].op == "insert"
        assert notices[0].class_name == "Pole"

    def test_watch_object(self, phone_db, pole_oid):
        observer = ModelObserver(phone_db)
        notices = []
        observer.watch_object(pole_oid, notices.append)
        phone_db.update(pole_oid, {"pole_historic": "x"})
        other = phone_db.extent("phone_net", "Pole").oids()[1]
        phone_db.update(other, {"pole_historic": "y"})
        assert len(notices) == 1
        assert notices[0].oid == pole_oid
        assert notices[0].op == "update"

    def test_unwatch(self, phone_db, pole_oid):
        observer = ModelObserver(phone_db)
        notices = []
        registration = observer.watch_object(pole_oid, notices.append)
        observer.unwatch(registration)
        phone_db.update(pole_oid, {"pole_historic": "x"})
        assert notices == []
        assert observer.registration_count == 0

    def test_validate_phase_not_notified(self, phone_db):
        """Only committed changes reach views — vetoed ones never do."""
        observer = ModelObserver(phone_db)
        notices = []
        observer.watch_class("Pole", notices.append)
        txn = phone_db.transaction()
        txn.insert("phone_net", "Pole", {"pole_location": Point(1, 1)})
        txn.abort()
        assert notices == []


class TestInteractionScript:
    def test_builder_chaining_and_describe(self):
        script = (InteractionScript()
                  .connect("s").select_class("C").select_instance("C#1")
                  .render())
        assert len(script.steps) == 4
        text = script.describe()
        assert text.startswith("1. connect('s')")
        assert "4. render(None)" in text

    def test_paper_walkthrough_runs(self, phone_db, pole_oid):
        session = GISSession(phone_db, user="ana", application="b")
        script = paper_walkthrough_script("phone_net", "Pole", pole_oid)
        results = script.run(session)
        assert all(r.ok for r in results)
        assert f"instance_{pole_oid}" in session.screen.names()

    def test_stop_on_error(self, phone_db):
        session = GISSession(phone_db, user="ana", application="b")
        script = (InteractionScript()
                  .select_class("Pole")      # error: not connected
                  .connect("phone_net"))
        results = script.run(session)
        assert len(results) == 1
        assert not results[0].ok
        assert "SessionError" in results[0].detail

    def test_continue_on_error(self, phone_db):
        session = GISSession(phone_db, user="ana", application="b")
        script = (InteractionScript()
                  .select_class("Pole")
                  .connect("phone_net"))
        results = script.run(session, stop_on_error=False)
        assert [r.ok for r in results] == [False, True]

    def test_close_and_render_steps(self, phone_db):
        session = GISSession(phone_db, user="ana", application="b")
        script = (InteractionScript()
                  .connect("phone_net")
                  .render("schema_phone_net")
                  .close("schema_phone_net"))
        results = script.run(session)
        assert all(r.ok for r in results)
        assert "Schema: phone_net" in results[1].output
        assert len(session.screen) == 0

    def test_unknown_step_rejected(self, phone_db):
        session = GISSession(phone_db, user="ana", application="b")
        from repro.ui.interaction import Step

        script = InteractionScript(steps=[Step("fly", ())])
        results = script.run(session)
        assert not results[0].ok


class TestRandomScripts:
    def test_random_script_runs_clean(self, phone_db):
        session = GISSession(phone_db, user="ana", application="b")
        script = random_browse_script(phone_db, "phone_net", 15, seed=2)
        results = script.run(session)
        assert all(r.ok for r in results)
        assert len(results) == 16  # connect + 15 interactions

    def test_deterministic_per_seed(self, phone_db):
        a = random_browse_script(phone_db, "phone_net", 10, seed=3)
        b = random_browse_script(phone_db, "phone_net", 10, seed=3)
        assert a.describe() == b.describe()

    def test_skip_classes(self, phone_db):
        script = random_browse_script(phone_db, "phone_net", 20, seed=4,
                                      skip_classes=("Pole",))
        assert "('Pole')" not in script.describe()

    def test_empty_schema_rejected(self, phone_db):
        phone_db.create_schema("empty")
        with pytest.raises(SessionError):
            random_browse_script(phone_db, "empty", 5)


class TestWindowSummary:
    def test_summary_fields(self, phone_db):
        session = GISSession(phone_db, user="ana", application="b")
        session.connect("phone_net")
        summary = summarize_window(session.screen.window("schema_phone_net"))
        assert summary.kind == "schema"
        assert summary.visible
        assert summary.widget_types["list"] == 1
        assert "Pole" in summary.listed_items
