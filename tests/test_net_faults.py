"""Protocol fault injection: hostile and unlucky byte streams.

The serving layer's contract is that *no* byte sequence a client sends —
torn frames, truncated frames, oversized length prefixes, garbage,
mid-request disconnects — may corrupt kernel state, leak sessions, or
hang the server. Each test here injects one fault class through a raw
socket and then proves the server is still healthy: a well-behaved
client connects, runs a full browsing loop, and the kernel's session
count returns to zero.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
import zlib

import pytest

from repro.core.kernel import GISKernel
from repro.net import GISClient, ServerThread, encode_frame
from repro.net.protocol import HEADER, MAX_FRAME
from repro.workloads import PhoneNetParams, build_phone_net_database


@pytest.fixture()
def kernel():
    db = build_phone_net_database(
        PhoneNetParams(blocks_x=2, blocks_y=2, poles_per_street=3,
                       duct_count=3, seed=11)
    )
    kernel = GISKernel(db)
    yield kernel
    kernel.shutdown()


@pytest.fixture()
def served(kernel):
    thread = ServerThread(kernel)
    host, port = thread.start()
    yield (host, port, kernel, thread.server)
    thread.stop()


def raw_socket(served):
    host, port, _, _ = served
    return socket.create_connection((host, port), timeout=10)


def recv_all(sock, timeout=3.0):
    """Every byte the server sends until it hangs up (or goes quiet)."""
    sock.settimeout(timeout)
    chunks = []
    try:
        while True:
            data = sock.recv(65536)
            if not data:
                break
            chunks.append(data)
    except (socket.timeout, OSError):
        pass
    return b"".join(chunks)


def assert_healthy(served):
    """The ultimate oracle: after any fault, a clean client still gets
    full service and leaves no kernel state behind."""
    host, port, kernel, _ = served
    with GISClient(host, port, timeout=15) as client:
        client.open_session(user="check")
        client.open_schema("phone_net")
        client.select_class("Pole")
        result = client.query("phone_net", "select * from Pole",
                              use_cache=False)
        assert result["count"] == 18   # the seed data, untouched
        client.close_session()
    deadline = time.monotonic() + 5
    while kernel.session_count and time.monotonic() < deadline:
        time.sleep(0.01)
    assert kernel.session_count == 0


def decode_error(blob):
    """Parse the error frame(s) out of a raw reply, tolerating EOF."""
    from repro.net import FrameDecoder

    return FrameDecoder().feed(blob)


class TestStreamFaults:
    def test_garbage_bytes_get_error_then_disconnect(self, served):
        sock = raw_socket(served)
        sock.sendall(b"\x00\x00\x00\x09GARBAGE-GARBAGE-GARBAGE")
        reply = recv_all(sock)
        frames = decode_error(reply)
        assert frames and frames[0]["ok"] is False
        assert frames[0]["code"] == "ProtocolError"
        sock.close()
        assert_healthy(served)

    def test_http_request_is_rejected(self, served):
        # browsers and scanners will try; the length prefix "GET " is
        # 1195725856 bytes, far past MAX_FRAME
        sock = raw_socket(served)
        sock.sendall(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
        frames = decode_error(recv_all(sock))
        assert frames and "exceeds" in frames[0]["error"]
        sock.close()
        assert_healthy(served)

    def test_zero_length_frame(self, served):
        sock = raw_socket(served)
        sock.sendall(HEADER.pack(0, 0))
        frames = decode_error(recv_all(sock))
        assert frames and "zero-length" in frames[0]["error"]
        sock.close()
        assert_healthy(served)

    def test_oversized_length_prefix(self, served):
        sock = raw_socket(served)
        sock.sendall(HEADER.pack(MAX_FRAME + 1, 0))
        frames = decode_error(recv_all(sock))
        assert frames and "exceeds" in frames[0]["error"]
        sock.close()
        assert_healthy(served)

    def test_torn_frame_crc_mismatch(self, served):
        good = bytearray(encode_frame({"id": 1, "kind": "ping"}))
        good[-1] ^= 0xFF   # flip a payload bit; header CRC now lies
        sock = raw_socket(served)
        sock.sendall(bytes(good))
        frames = decode_error(recv_all(sock))
        assert frames and "checksum" in frames[0]["error"]
        sock.close()
        assert_healthy(served)

    def test_truncated_frame_then_disconnect(self, served):
        frame = encode_frame({"id": 1, "kind": "hello"})
        sock = raw_socket(served)
        sock.sendall(frame[: len(frame) - 3])   # cut mid-payload
        sock.close()                             # vanish
        assert_healthy(served)

    def test_truncated_header_then_disconnect(self, served):
        sock = raw_socket(served)
        sock.sendall(b"\x00\x00")                # 2 of 8 header bytes
        sock.close()
        assert_healthy(served)

    def test_fault_after_valid_traffic_cleans_up_sessions(self, served):
        """A connection that opened real sessions and then breaks the
        protocol must still have those sessions torn down."""
        host, port, kernel, _ = served
        client = GISClient(host, port, timeout=15)
        client.open_session(user="doomed", auto_refresh=True)
        client.open_schema("phone_net")
        assert kernel.session_count == 1
        # speak garbage on the same socket
        client._sock.sendall(b"\xff" * 64)
        deadline = time.monotonic() + 5
        while kernel.session_count and time.monotonic() < deadline:
            time.sleep(0.01)
        assert kernel.session_count == 0
        client.close()
        assert_healthy(served)

    def test_disconnect_between_request_and_response(self, served):
        """Send a valid request and hang up without reading the answer."""
        sock = raw_socket(served)
        sock.sendall(encode_frame({"id": 1, "kind": "open_session",
                                   "user": "ghost"}))
        sock.close()
        assert_healthy(served)

    def test_flood_of_fault_connections(self, served):
        """Dozens of misbehaving connections in quick succession leave
        the server serving."""
        faults = [
            b"\x00\x00\x00\x00\x00\x00\x00\x00",
            b"\xde\xad\xbe\xef" * 4,
            HEADER.pack(MAX_FRAME + 7, 1),
            encode_frame({"id": 1, "kind": "ping"})[:-2],
            b"",
        ]
        for round_ in range(8):
            for fault in faults:
                sock = raw_socket(served)
                if fault:
                    sock.sendall(fault)
                sock.close()
        assert_healthy(served)


class TestContractFaults:
    """Well-framed but contract-violating requests: the connection must
    survive (the stream is still in sync) and the kernel stay clean."""

    def send_and_read_one(self, served, doc):
        sock = raw_socket(served)
        sock.sendall(encode_frame(doc))
        frames = decode_error(recv_all(sock, timeout=2.0))
        sock.close()
        return frames[0] if frames else None

    def test_missing_id(self, served):
        reply = self.send_and_read_one(served, {"kind": "ping"})
        assert reply["ok"] is False and reply["code"] == "ProtocolError"
        assert_healthy(served)

    def test_unknown_kind(self, served):
        reply = self.send_and_read_one(
            served, {"id": 1, "kind": "shutdown_everything"}
        )
        assert reply["ok"] is False
        assert "unknown request kind" in reply["error"]
        assert_healthy(served)

    def test_contract_violation_keeps_connection_usable(self, served):
        host, port, _, _ = served
        with GISClient(host, port, timeout=15) as client:
            from repro.errors import NetClientError

            with pytest.raises(NetClientError):
                client.request("event", session="s1", op="warp")
            # same socket still serves
            assert client.ping() is True
        assert_healthy(served)

    def test_txn_with_undecodable_value_rolls_back(self, served):
        host, port, _, _ = served
        with GISClient(host, port, timeout=15) as client:
            from repro.errors import NetClientError

            before = client.query("phone_net",
                                  "select * from Pole")["count"]
            with pytest.raises(NetClientError):
                client.txn([{
                    "op": "insert", "schema": "phone_net", "class": "Pole",
                    "values": {"install_year": 2000, "status": "bad",
                               "pole_location": {"t": "hypercube",
                                                 "c": [1, 2, 3, 4]}},
                }])
            assert client.query("phone_net",
                                "select * from Pole")["count"] == before
        assert_healthy(served)


class TestSlowReader:
    def _stall_until(self, thread, host, port, counter, rounds=4000):
        """Mutate through one client while a lazy subscriber never
        reads, until the server's ``counter`` moves (or we give up)."""
        lazy = GISClient(host, port, timeout=15)
        lazy._sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
        lazy.subscribe(["Pole"])
        with GISClient(host, port, timeout=30) as writer:
            oid = writer.query("phone_net",
                               "select * from Pole")["oids"][0]
            for i in range(rounds):
                writer.update(oid, {"status": f"v{i}"})
                if thread.server.counters[counter] > 0:
                    break
            # whatever happened to the lazy peer, the loop is alive
            assert writer.ping() is True
        return lazy

    def test_slow_reader_drops_pushes_not_the_server(self, kernel):
        """A subscriber that never reads must not wedge the loop: its
        pushes are dropped once its queue fills, while other clients
        keep full service."""
        thread = ServerThread(kernel, queue_size=4, overflow="drop",
                              sndbuf=4096)
        host, port = thread.start()
        try:
            lazy = self._stall_until(thread, host, port, "pushes_dropped")
            assert thread.server.counters["pushes_dropped"] > 0, (
                "queue of 4 with thousands of unread pushes must overflow"
            )
            assert thread.server.counters["overflow_disconnects"] == 0
            lazy.close()
        finally:
            thread.stop()
        assert kernel.session_count == 0

    def test_overflow_disconnect_policy(self, kernel):
        thread = ServerThread(kernel, queue_size=2, overflow="disconnect",
                              sndbuf=4096)
        host, port = thread.start()
        try:
            lazy = self._stall_until(thread, host, port,
                                     "overflow_disconnects")
            deadline = time.monotonic() + 5
            while (thread.server.counters["overflow_disconnects"] == 0
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert thread.server.counters["overflow_disconnects"] > 0
            lazy.close()
        finally:
            thread.stop()


class TestManyClients:
    def test_256_concurrent_clients_zero_failures(self, served):
        """The acceptance bar: 256 live connections, mixed valid traffic
        plus a sprinkle of protocol faults, zero failed valid requests."""
        host, port, kernel, _ = served
        errors: list = []
        done = threading.Event()

        def valid_worker(i):
            try:
                with GISClient(host, port, timeout=60) as client:
                    client.open_session(user=f"u{i}")
                    assert client.ping() is True
                    count = client.query(
                        "phone_net", "select * from Pole"
                    )["count"]
                    assert count == 18
                    client.close_session()
            except Exception as exc:
                errors.append((i, exc))

        def fault_worker(i):
            try:
                sock = socket.create_connection((host, port), timeout=60)
                sock.sendall(b"\xbd" * (i % 23 + 1))
                sock.close()
            except Exception:
                pass   # fault connections may be refused under load

        threads = []
        for i in range(256):
            target = fault_worker if i % 16 == 15 else valid_worker
            threads.append(threading.Thread(target=target, args=(i,)))
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not any(t.is_alive() for t in threads), "hung client threads"
        assert errors == [], f"{len(errors)} failed: {errors[:3]}"
        assert_healthy(served)
