"""The shared kernel: multi-session server core (§3 Figure 1 at scale).

One :class:`~repro.core.kernel.GISKernel` owns the read-mostly stack
(library, engine, builder); sessions hold only per-user state. Events
carry a ``session_id``, decisions are recorded per session, and mutation
refresh fans out only to the sessions displaying the touched class.
"""

import pytest

from repro.active.event_bus import Event, EventKind
from repro.core import Context, GISKernel, GISSession
from repro.errors import SessionError
from repro.lang import FIGURE_6_PROGRAM
from repro.spatial import Point
from repro.workloads import build_phone_net_database


@pytest.fixture()
def kernel(phone_db):
    with GISKernel(phone_db) as k:
        yield k


class TestKernelLifecycle:
    def test_sessions_share_the_stack(self, kernel):
        a = kernel.session(user="ana", application="browser")
        b = kernel.session(user="bob", application="viewer")
        assert a.engine is kernel.engine
        assert a.library is kernel.library
        assert a.builder is kernel.builder
        assert a.engine is b.engine
        assert a.screen is not b.screen
        assert a.session_id != b.session_id
        assert kernel.session_count == 2
        assert kernel.sessions() == [a, b]

    def test_session_shutdown_detaches_only_itself(self, kernel):
        a = kernel.session(user="ana")
        b = kernel.session(user="bob")
        a.shutdown()
        assert kernel.session_count == 1
        assert kernel.sessions() == [b]
        # the shared engine is still live for the sibling
        kernel.database.get_schema("phone_net",
                                   session_id=b.session_id)

    def test_kernel_shutdown_closes_sessions_and_bus(self, phone_db):
        before_all = len(phone_db.bus._all)
        before_kinds = sum(len(v) for v in phone_db.bus._by_kind.values())
        kernel = GISKernel(phone_db)
        a = kernel.session(user="ana", auto_refresh=True)
        a.connect("phone_net")
        kernel.shutdown()
        assert a._closed
        assert kernel.session_count == 0
        assert len(phone_db.bus._all) == before_all
        assert sum(len(v) for v in phone_db.bus._by_kind.values()) == \
            before_kinds
        kernel.shutdown()  # idempotent

    def test_attach_after_shutdown_rejected(self, phone_db):
        kernel = GISKernel(phone_db)
        kernel.shutdown()
        with pytest.raises(SessionError):
            kernel.session(user="late")

    def test_joining_session_cannot_carry_its_own_stack(self, kernel,
                                                        phone_db):
        from repro.core import CustomizationEngine

        with pytest.raises(SessionError):
            GISSession(phone_db, user="x", kernel=kernel,
                       engine=CustomizationEngine(phone_db.bus))

    def test_joining_session_database_must_match(self, kernel):
        other = build_phone_net_database()
        with pytest.raises(SessionError):
            GISSession(other, user="x", kernel=kernel)

    def test_legacy_constructor_owns_a_private_kernel(self, phone_db):
        session = GISSession(phone_db, user="solo", application="browser")
        assert session._owns_kernel
        assert session.kernel.session_count == 1
        session.shutdown()
        assert session.kernel._closed

    def test_kernel_stats(self, kernel):
        kernel.session(user="ana")
        stats = kernel.stats()
        assert stats["sessions"] == 1
        assert "engine" in stats and "rules" in stats["engine"]


class TestSessionScopedDecisions:
    def test_decisions_are_recorded_per_session(self, kernel):
        kernel.install_program(FIGURE_6_PROGRAM, persist=False)
        juliano = kernel.session(user="juliano",
                                 application="pole_manager")
        ana = kernel.session(user="ana", application="browser")
        juliano.connect("phone_net")
        event_id = juliano.screen.window("schema_phone_net") \
            .get_property("event_id")
        # juliano's decision is his alone
        assert kernel.engine.schema_decision(
            event_id, session_id=juliano.session_id) is not None
        assert kernel.engine.schema_decision(
            event_id, session_id=ana.session_id) is None
        assert kernel.engine.session_decisions(ana.session_id) == []

    def test_windows_stay_per_session(self, kernel):
        kernel.install_program(FIGURE_6_PROGRAM, persist=False)
        juliano = kernel.session(user="juliano",
                                 application="pole_manager")
        ana = kernel.session(user="ana", application="browser")
        juliano.connect("phone_net")
        ana.connect("phone_net")
        # R1: juliano's schema window is hidden, ana's is visible
        assert not juliano.screen.window("schema_phone_net").visible
        assert ana.screen.window("schema_phone_net").visible

    def test_events_carry_the_session_id(self, kernel):
        ana = kernel.session(user="ana")
        ana.connect("phone_net")
        assert kernel.database.bus.last_event.session_id == ana.session_id


class TestClosedSessionRegression:
    def test_closed_session_engine_records_nothing_for_siblings(
            self, phone_db):
        """A closed session must stop reacting to its siblings' events.

        Before sessions detached their engine's rule manager on
        ``close()``, a "closed" session's engine kept subscribing to the
        shared bus and silently recorded a decision for every sibling
        ``Get_Class`` — unbounded work and memory on behalf of a dead
        session.
        """
        closed = GISSession(phone_db, user="juliano",
                            application="pole_manager")
        closed.install_program(FIGURE_6_PROGRAM, persist=False)
        closed.close()  # no argument: ends the session

        sibling = GISSession(phone_db, user="juliano",
                             application="pole_manager")
        sibling.connect("phone_net")
        sibling.select_class("Pole")
        event_id = phone_db.bus.last_event.event_id
        assert closed.engine.decisions_for(event_id) == []
        assert closed.engine.session_decisions(sibling.session_id) == []
        assert len(closed.engine.manager.trace) == 0
        sibling.close()

    def test_close_with_a_name_still_closes_one_window(self, phone_db):
        session = GISSession(phone_db, user="ana")
        session.connect("phone_net")
        session.close("schema_phone_net")
        assert "schema_phone_net" not in session.screen
        assert not session._closed
        session.close()
        assert session._closed


class TestMutationFanOut:
    def test_refresh_reaches_only_interested_sessions(self, kernel):
        pole_watcher = kernel.session(user="ana", auto_refresh=True)
        duct_watcher = kernel.session(user="bob", auto_refresh=True)
        pole_watcher.connect("phone_net")
        pole_watcher.select_class("Pole")
        duct_watcher.connect("phone_net")
        duct_watcher.select_class("Duct")
        before_pole = pole_watcher.dispatcher.interactions
        before_duct = duct_watcher.dispatcher.interactions

        kernel.database.insert("phone_net", "Pole", {
            "pole_location": Point(1.0, 2.0),
        })
        assert pole_watcher.dispatcher.interactions == before_pole + 1
        assert duct_watcher.dispatcher.interactions == before_duct

    def test_interested_in(self, kernel):
        session = kernel.session(user="ana", auto_refresh=True)
        session.connect("phone_net")
        session.select_class("Pole")
        pole_event = Event(kind=EventKind.INSERT, subject="Pole",
                           payload={"class": "Pole", "phase": "commit"})
        duct_event = Event(kind=EventKind.INSERT, subject="Duct",
                           payload={"class": "Duct", "phase": "commit"})
        assert session.dispatcher.interested_in(pole_event)
        assert not session.dispatcher.interested_in(duct_event)


class TestKernelObservability:
    def test_sessions_gauge_tracks_attach_and_detach(self, phone_db,
                                                     obs_recorder):
        kernel = GISKernel(phone_db)
        a = kernel.session(user="ana")
        kernel.session(user="bob")

        def gauge():
            return obs_recorder.registry.gauge_value(
                "kernel.sessions", database=phone_db.name)

        assert gauge() == 2
        a.shutdown()
        assert gauge() == 1
        kernel.shutdown()
        assert gauge() == 0

    def test_dispatch_spans_carry_the_session_tag(self, phone_db,
                                                  obs_recorder):
        with GISKernel(phone_db) as kernel:
            session = kernel.session(user="ana")
            session.connect("phone_net")
            span = obs_recorder.tracer.last_trace("dispatch.open_schema")
            assert span is not None
            assert span.attrs["session"] == session.session_id


class TestScopedBusDelivery:
    def test_scoped_subscriber_sees_only_its_session(self, phone_db):
        seen: list[Event] = []
        phone_db.bus.subscribe(seen.append, session_id="s-target")
        phone_db.get_schema("phone_net", session_id="s-target")
        phone_db.get_schema("phone_net", session_id="s-other")
        phone_db.get_schema("phone_net")
        assert [e.session_id for e in seen] == ["s-target"]
        phone_db.bus.unsubscribe(seen.append)
        phone_db.get_schema("phone_net", session_id="s-target")
        assert len(seen) == 1

    def test_derived_events_inherit_the_session(self):
        event = Event(kind=EventKind.GET_SCHEMA, subject="s",
                      session_id="s9")
        child = event.derived(EventKind.GET_CLASS, "c")
        assert child.session_id == "s9"
