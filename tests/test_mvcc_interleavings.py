"""Isolation anomalies over enumerated and sampled interleavings.

Every test here asserts two things about an anomaly:

1. **soundness** — the geodb (:class:`MVCCBackend`) passes the oracle on
   *every* enumerated interleaving of the anomaly's probe scripts, and
2. **oracle power** — at least one of those same interleavings makes the
   oracle raise on :class:`BrokenBackend`, the deliberately unsound
   scheduler stub. An oracle that cannot fail proves nothing.

The property-style sweep at the bottom runs seeded random script sets ×
seeded random schedules: ≥200 schedules in full mode, a small subset
under ``REPRO_SCHED_QUICK=1`` (CI smoke).
"""

from __future__ import annotations

import pytest

from tests._scheduler import (
    QUICK,
    BrokenBackend,
    MVCCBackend,
    OracleViolation,
    check_all,
    check_final_state,
    check_first_committer_wins,
    check_no_lost_updates,
    check_snapshot_reads,
    interleavings,
    run_schedule,
    seeded_schedules,
)

X, Y = "Feature#X", "Feature#Y"


def _assert_sound_and_falsifiable(scripts, initial, oracle):
    """The MVCC backend passes ``oracle`` on every interleaving; the
    broken backend fails it on at least one of the same schedules."""
    lengths = [len(s) for s in scripts]
    schedules = list(interleavings(lengths))
    assert schedules, "empty schedule space"
    for schedule in schedules:
        result = run_schedule(MVCCBackend(initial), scripts, schedule,
                              initial=initial)
        oracle(result)  # must not raise
    broken_failures = 0
    for schedule in schedules:
        result = run_schedule(BrokenBackend(initial), scripts, schedule,
                              initial=initial)
        try:
            oracle(result)
        except OracleViolation:
            broken_failures += 1
    assert broken_failures > 0, (
        f"oracle {oracle.__name__} never fired on the broken backend — "
        "it cannot detect this anomaly"
    )


class TestDirtyReads:
    scripts = [
        [("write", X, 99), ("abort",)],
        [("read", X), ("read", X), ("commit",)],
    ]

    def test_no_dirty_reads(self):
        _assert_sound_and_falsifiable(self.scripts, {X: 1},
                                      check_snapshot_reads)

    def test_aborted_write_leaves_no_trace(self):
        _assert_sound_and_falsifiable(self.scripts, {X: 1},
                                      check_final_state)


class TestLostUpdates:
    scripts = [
        [("read", X), ("write_incr", X), ("commit",)],
        [("read", X), ("write_incr", X), ("commit",)],
    ]

    def test_no_lost_updates(self):
        _assert_sound_and_falsifiable(self.scripts, {X: 0},
                                      check_no_lost_updates)

    def test_concurrent_increments_conflict_not_clobber(self):
        # The fully interleaved schedule: both read 0, both try to write
        # 1 — exactly one may commit.
        result = run_schedule(MVCCBackend({X: 0}), self.scripts,
                              (0, 1, 0, 1, 0, 1), initial={X: 0})
        outcomes = sorted(run.outcome for run in result.runs)
        assert outcomes == ["committed", "conflict"]
        assert result.backend.committed_value(X) == 1


class TestRepeatableReads:
    scripts = [
        [("read", X), ("read", X), ("commit",)],
        [("write", X, 50), ("commit",)],
    ]

    def test_snapshot_reads_are_repeatable(self):
        _assert_sound_and_falsifiable(self.scripts, {X: 1},
                                      check_snapshot_reads)

    def test_both_reads_see_begin_value(self):
        # Writer commits between the two reads: the second read must
        # still see the snapshot value.
        result = run_schedule(MVCCBackend({X: 1}), self.scripts,
                              (0, 1, 1, 0, 0), initial={X: 1})
        reader = result.runs[0]
        assert [value for _, _, value in reader.reads] == [1, 1]
        assert result.backend.committed_value(X) == 50


class TestFirstCommitterWins:
    scripts = [
        [("read", X), ("write", X, 10), ("commit",)],
        [("read", X), ("write", X, 20), ("commit",)],
    ]

    def test_overlapping_writers_cannot_both_commit(self):
        _assert_sound_and_falsifiable(self.scripts, {X: 1},
                                      check_first_committer_wins)

    def test_serial_schedules_both_commit(self):
        result = run_schedule(MVCCBackend({X: 1}), self.scripts,
                              (0, 0, 0, 1, 1, 1), initial={X: 1})
        assert [run.outcome for run in result.runs] == \
            ["committed", "committed"]
        assert result.backend.committed_value(X) == 20


class TestWriteSkewDisjointOids:
    """Disjoint write sets never conflict under snapshot isolation —
    the schedule space where SI admits write skew. The oracles assert
    what SI *does* promise (snapshot reads, final state); both
    transactions committing is the expected outcome, not a bug."""

    scripts = [
        [("read", X), ("read", Y), ("write", X, 10), ("commit",)],
        [("read", X), ("read", Y), ("write", Y, 20), ("commit",)],
    ]

    def test_all_interleavings_commit_cleanly(self):
        for schedule in interleavings([4, 4]):
            result = run_schedule(MVCCBackend({X: 1, Y: 2}), self.scripts,
                                  schedule, initial={X: 1, Y: 2})
            assert [run.outcome for run in result.runs] == \
                ["committed", "committed"], result.describe()
            check_snapshot_reads(result)
            check_final_state(result)


class TestThreeWayInterleavings:
    """A writer, an incrementer and a reader — all oracles, all
    schedules (1680 of them; a sampled subset in quick mode)."""

    scripts = [
        [("read", X), ("write", X, 10), ("commit",)],
        [("read", X), ("write_incr", X), ("commit",)],
        [("read", X), ("read", X), ("abort",)],
    ]

    def test_all_oracles_over_all_schedules(self):
        schedules = list(interleavings([3, 3, 3]))
        if QUICK:
            schedules = schedules[::40]
        for schedule in schedules:
            result = run_schedule(MVCCBackend({X: 1}), self.scripts,
                                  schedule, initial={X: 1})
            check_all(result)


# ---------------------------------------------------------------------------
# Property-style sweep: seeded random scripts × seeded random schedules
# ---------------------------------------------------------------------------


def _random_scripts(rng, script_count=3, max_ops=3):
    """Small random read/write/incr scripts over two oids.

    Increments are emitted as read-then-``write_incr`` pairs — separate
    schedule steps, so interleavings can split them — which also keeps
    the oid eligible for the lost-update oracle.
    """
    scripts = []
    for _ in range(script_count):
        ops = []
        for _ in range(rng.randrange(1, max_ops + 1)):
            oid = rng.choice((X, Y))
            kind = rng.choice(("read", "write", "write_incr"))
            if kind == "write":
                ops.append(("write", oid, rng.randrange(100)))
            elif kind == "write_incr":
                ops.append(("read", oid))
                ops.append(("write_incr", oid))
            else:
                ops.append(("read", oid))
        ops.append(rng.choice((("commit",), ("commit",), ("abort",))))
        scripts.append(ops)
    return scripts


# 8 script sets × 30 schedules = 240 runs in full mode (≥200 required);
# 2 × 20 = 40 in quick mode.
_SCRIPT_SEEDS = (11, 23) if QUICK else (11, 23, 37, 41, 53, 67, 79, 97)
_SCHEDULES_PER_SET = 20 if QUICK else 30


@pytest.mark.parametrize("script_seed", _SCRIPT_SEEDS)
def test_property_random_schedules_uphold_all_oracles(script_seed):
    import random

    rng = random.Random(script_seed)
    scripts = _random_scripts(rng)
    initial = {X: rng.randrange(10), Y: rng.randrange(10)}
    lengths = [len(s) for s in scripts]
    for schedule in seeded_schedules(lengths, _SCHEDULES_PER_SET,
                                     seed=script_seed * 1000 + 1):
        result = run_schedule(MVCCBackend(initial), scripts, schedule,
                              initial=initial)
        check_all(result)


def test_property_oracles_catch_broken_backend():
    """Across the same seeded sweep, the broken backend must be caught
    repeatedly — the property test is not vacuous."""
    import random

    caught = 0
    total = 0
    for script_seed in _SCRIPT_SEEDS:
        rng = random.Random(script_seed)
        scripts = _random_scripts(rng)
        initial = {X: rng.randrange(10), Y: rng.randrange(10)}
        lengths = [len(s) for s in scripts]
        for schedule in seeded_schedules(lengths, _SCHEDULES_PER_SET,
                                         seed=script_seed * 1000 + 1):
            total += 1
            result = run_schedule(BrokenBackend(initial), scripts,
                                  schedule, initial=initial)
            try:
                check_all(result)
            except OracleViolation:
                caught += 1
    assert caught > total * 0.1, (
        f"oracles caught the broken backend on only {caught}/{total} runs"
    )
