"""Property-based tests (hypothesis) for the spatial substrate."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial import (
    BBox,
    LineString,
    Point,
    Polygon,
    RTree,
    Relation,
    convex_hull,
    relate,
    simplify_line,
)
from repro.spatial.algorithms import point_segment_distance
from repro.spatial.rtree import naive_search

coords = st.floats(min_value=-1_000.0, max_value=1_000.0,
                   allow_nan=False, allow_infinity=False)


@st.composite
def bboxes(draw):
    x0, x1 = sorted((draw(coords), draw(coords)))
    y0, y1 = sorted((draw(coords), draw(coords)))
    return BBox(x0, y0, x1, y1)


@st.composite
def points(draw):
    return Point(draw(coords), draw(coords))


@st.composite
def squares(draw):
    """Non-degenerate axis-aligned square polygons."""
    x = draw(st.floats(min_value=-500, max_value=500, allow_nan=False))
    y = draw(st.floats(min_value=-500, max_value=500, allow_nan=False))
    side = draw(st.floats(min_value=1.0, max_value=200.0, allow_nan=False))
    return Polygon.from_bbox(BBox(x, y, x + side, y + side))


class TestBBoxProperties:
    @given(bboxes(), bboxes())
    def test_union_is_commutative_and_covering(self, a, b):
        u = a.union(b)
        assert u == b.union(a)
        assert u.contains_bbox(a) and u.contains_bbox(b)

    @given(bboxes(), bboxes())
    def test_intersection_within_both(self, a, b):
        inter = a.intersection(b)
        if not inter.is_empty():
            assert a.contains_bbox(inter) and b.contains_bbox(inter)

    @given(bboxes(), bboxes())
    def test_intersects_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(bboxes())
    def test_union_with_empty_is_identity(self, a):
        assert a.union(BBox.empty()) == a

    @given(bboxes(), points())
    def test_distance_zero_iff_contains(self, box, p):
        inside = box.contains_point(p.x, p.y)
        dist = box.distance_to_point(p.x, p.y)
        if inside:
            assert dist == 0.0
        else:
            assert dist > 0.0


class TestTopologyProperties:
    @given(squares(), squares())
    @settings(max_examples=60)
    def test_relate_inverse_consistency(self, a, b):
        assert relate(a, b) is relate(b, a).inverse()

    @given(points(), squares())
    @settings(max_examples=60)
    def test_point_polygon_cases_partition(self, p, poly):
        rel = relate(p, poly)
        assert rel in (Relation.WITHIN, Relation.TOUCHES, Relation.DISJOINT)
        if rel is Relation.WITHIN:
            assert poly.contains_point(p.x, p.y)
        if rel is Relation.DISJOINT:
            assert not poly.contains_point(p.x, p.y)

    @given(squares())
    def test_self_relation_is_equals(self, poly):
        assert relate(poly, poly) is Relation.EQUALS


class TestHullProperties:
    @given(st.lists(st.tuples(coords, coords), min_size=3, max_size=40))
    @settings(max_examples=60)
    def test_hull_contains_all_points(self, pts):
        hull = convex_hull(pts)
        if len(hull) < 3:
            return  # degenerate input (collinear); nothing to check
        poly = Polygon(hull)
        for x, y in pts:
            assert poly.contains_point(x, y) or any(
                math.hypot(x - hx, y - hy) < 1e-6 for hx, hy in hull
            )

    @given(st.lists(st.tuples(coords, coords), min_size=1, max_size=30))
    def test_hull_vertices_are_input_points(self, pts):
        hull = convex_hull(pts)
        inputs = {(float(x), float(y)) for x, y in pts}
        assert set(hull) <= inputs


class TestSimplifyProperties:
    @given(
        st.lists(st.tuples(coords, coords), min_size=2, max_size=30),
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
    )
    @settings(max_examples=60)
    def test_simplified_points_stay_close(self, pts, tolerance):
        out = simplify_line(pts, tolerance)
        # endpoints preserved
        assert out[0] == (float(pts[0][0]), float(pts[0][1]))
        assert out[-1] == (float(pts[-1][0]), float(pts[-1][1]))
        # every dropped vertex is within tolerance of the simplified line
        for p in pts:
            d = min(
                point_segment_distance((float(p[0]), float(p[1])), a, b)
                for a, b in zip(out, out[1:])
            ) if len(out) > 1 else 0.0
            assert d <= tolerance + 1e-6


class TestRTreeProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=900, allow_nan=False),
                st.floats(min_value=0, max_value=900, allow_nan=False),
                st.floats(min_value=0, max_value=50, allow_nan=False),
                st.floats(min_value=0, max_value=50, allow_nan=False),
            ),
            min_size=0,
            max_size=120,
        ),
        bboxes(),
    )
    @settings(max_examples=40)
    def test_rtree_matches_naive_oracle(self, raw, window):
        entries = [
            (BBox(x, y, x + w, y + h), i)
            for i, (x, y, w, h) in enumerate(raw)
        ]
        tree = RTree(max_entries=4)
        for box, item in entries:
            tree.insert(box, item)
        tree.check_invariants()
        assert sorted(tree.search(window)) == sorted(
            naive_search(entries, window)
        )

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=900, allow_nan=False),
                st.floats(min_value=0, max_value=900, allow_nan=False),
            ),
            min_size=1,
            max_size=80,
        ),
        st.data(),
    )
    @settings(max_examples=40)
    def test_rtree_delete_keeps_invariants(self, raw, data):
        entries = [
            (BBox(x, y, x + 1, y + 1), i) for i, (x, y) in enumerate(raw)
        ]
        tree = RTree(max_entries=4)
        for box, item in entries:
            tree.insert(box, item)
        to_delete = data.draw(
            st.lists(st.sampled_from(entries), unique_by=lambda e: e[1])
        )
        for box, item in to_delete:
            tree.delete(box, item)
        tree.check_invariants()
        remaining = {i for __, i in entries} - {i for __, i in to_delete}
        assert set(tree.search(BBox(0, 0, 1000, 1000))) == remaining


class TestLineStringProperties:
    @given(st.lists(st.tuples(coords, coords), min_size=2, max_size=20),
           st.tuples(coords, coords))
    def test_translation_preserves_length(self, pts, delta):
        line = LineString(pts)
        moved = line.translated(delta[0], delta[1])
        assert moved.length() == abs(moved.length())
        assert math.isclose(line.length(), moved.length(),
                            rel_tol=1e-9, abs_tol=1e-6)
