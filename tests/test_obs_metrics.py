"""Unit tests for the metrics registry: instrument semantics, labels,
JSON export round-trip, and reset isolation."""

import json

import pytest

from repro import obs
from repro.obs import COUNT_BUCKETS, MetricsRegistry


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_increments(self, registry):
        counter = registry.counter("events")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_identity_by_name_and_labels(self, registry):
        a = registry.counter("hits", layer="buffer")
        b = registry.counter("hits", layer="buffer")
        c = registry.counter("hits", layer="cache")
        assert a is b
        assert a is not c

    def test_label_order_is_irrelevant(self, registry):
        a = registry.counter("x", b="2", a="1")
        b = registry.counter("x", a="1", b="2")
        assert a is b

    def test_label_values_coerced_to_str(self, registry):
        registry.inc("x", plan=1)
        assert registry.counter_value("x", plan="1") == 1

    def test_counters_cannot_decrease(self, registry):
        with pytest.raises(ValueError):
            registry.counter("x").inc(-1)

    def test_family_total_sums_label_sets(self, registry):
        registry.inc("fired", group="a")
        registry.inc("fired", group="b")
        registry.inc("fired", group="b")
        assert registry.counter_total("fired") == 3

    def test_missing_counter_reads_zero(self, registry):
        assert registry.counter_value("never_touched") == 0.0


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("resident")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7
        assert registry.gauge_value("resident") == 7


class TestHistogram:
    def test_observations_land_in_fixed_buckets(self, registry):
        hist = registry.histogram("sizes", buckets=(1, 10, 100))
        for value in (0.5, 5, 50, 5000):
            hist.observe(value)
        assert hist.bucket_counts == [1, 1, 1, 1]  # last slot is +Inf
        assert hist.count == 4
        assert hist.sum == pytest.approx(5055.5)
        assert hist.mean == pytest.approx(5055.5 / 4)

    def test_boundary_value_falls_in_lower_bucket(self, registry):
        hist = registry.histogram("sizes", buckets=(1, 10))
        hist.observe(1)            # <= 1: first bucket
        assert hist.bucket_counts == [1, 0, 0]

    def test_quantile_approximation(self, registry):
        hist = registry.histogram("lat", buckets=(0.001, 0.01, 0.1))
        for __ in range(99):
            hist.observe(0.005)
        hist.observe(50.0)
        assert hist.quantile(0.5) == 0.01
        assert hist.quantile(1.0) == float("inf")

    def test_empty_histogram_quantile_and_mean(self, registry):
        hist = registry.histogram("lat")
        assert hist.quantile(0.5) == 0.0
        assert hist.mean == 0.0

    def test_buckets_must_be_sorted(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("bad", buckets=(10, 1))

    def test_family_bucket_consistency_enforced(self, registry):
        registry.histogram("sizes", buckets=COUNT_BUCKETS, cls="Pole")
        with pytest.raises(ValueError):
            registry.histogram("sizes", buckets=(1, 2, 3), cls="Duct")

    def test_same_family_second_label_set_inherits_buckets(self, registry):
        first = registry.histogram("sizes", buckets=(1, 10), cls="Pole")
        second = registry.histogram("sizes", cls="Duct")
        assert second.uppers == first.uppers


class TestExportRoundTrip:
    def fill(self, registry):
        registry.inc("events", 7, kind="get_class")
        registry.inc("events", 2, kind="get_value")
        registry.set_gauge("open_windows", 3)
        hist = registry.histogram("lat", buckets=(0.01, 0.1))
        hist.observe(0.005)
        hist.observe(0.05)
        hist.observe(9.0)

    def test_round_trip_preserves_everything(self, registry):
        self.fill(registry)
        data = json.loads(json.dumps(registry.export()))  # through real JSON
        restored = MetricsRegistry.from_export(data)
        assert restored.export() == registry.export()

    def test_export_is_json_safe(self, registry):
        self.fill(registry)
        json.dumps(registry.export())  # must not raise

    def test_export_is_sorted_and_stable(self, registry):
        registry.inc("b")
        registry.inc("a")
        names = [c["name"] for c in registry.export()["counters"]]
        assert names == sorted(names)


class TestResetAndRender:
    def test_reset_drops_every_instrument(self, registry):
        registry.inc("x")
        registry.set_gauge("y", 1)
        registry.histogram("z").observe(0.5)
        assert len(registry) == 3
        registry.reset()
        assert len(registry) == 0
        assert registry.counter_value("x") == 0.0

    def test_render_table_lists_instruments(self, registry):
        registry.inc("events", 3, kind="get_schema")
        registry.set_gauge("resident", 5)
        registry.histogram("lat").observe(0.004)
        table = registry.render_table()
        assert "events{kind=get_schema} = 3" in table
        assert "resident = 5" in table
        assert "lat" in table and "count=1" in table

    def test_render_table_empty(self, registry):
        assert registry.render_table() == "(no metrics recorded)"


class TestModuleLevelRecorder:
    def test_disabled_by_default_and_noop(self):
        assert not obs.is_enabled()
        obs.RECORDER.inc("anything")          # must not raise or record
        with obs.RECORDER.span("anything"):
            pass

    def test_enable_records_and_disable_restores(self):
        recorder = obs.enable()
        try:
            assert obs.is_enabled()
            obs.RECORDER.inc("live", kind="x")
            assert recorder.registry.counter_value("live", kind="x") == 1
        finally:
            obs.disable()
        assert not obs.is_enabled()

    def test_enable_is_idempotent(self):
        first = obs.enable()
        second = obs.enable()
        try:
            assert first is second
        finally:
            obs.disable()

    def test_registry_reset_between_tests(self, obs_recorder):
        # The obs_recorder fixture hands out a fresh registry every time;
        # nothing from other tests can be visible here.
        assert len(obs_recorder.registry) == 0
