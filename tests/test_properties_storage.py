"""Property-based tests for storage, codec and the buffer manager."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geodb.buffer import BufferManager
from repro.geodb.geo_codec import decode_geometry, encode_geometry
from repro.geodb.storage import (
    HeapFile,
    MemoryPager,
    SlottedPage,
    decode_record,
    encode_record,
)
from repro.spatial import LineString, MultiPoint, Point, Polygon, Ring

# -- record values: JSON-safe, nested ------------------------------------------

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False,
              min_value=-1e6, max_value=1e6),
    st.text(max_size=40),
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(min_size=1, max_size=10), children,
                        max_size=5),
    ),
    max_leaves=20,
)
records = st.dictionaries(st.text(min_size=1, max_size=12), json_values,
                          min_size=0, max_size=8)

coords = st.floats(min_value=-1e5, max_value=1e5, allow_nan=False,
                   allow_infinity=False)


@st.composite
def geometries(draw):
    kind = draw(st.sampled_from(["point", "line", "polygon", "multipoint"]))
    if kind == "point":
        return Point(draw(coords), draw(coords))
    if kind == "line":
        pts = draw(st.lists(st.tuples(coords, coords), min_size=2,
                            max_size=8))
        return LineString(pts)
    if kind == "multipoint":
        pts = draw(st.lists(st.tuples(coords, coords), min_size=1,
                            max_size=5))
        return MultiPoint([Point(x, y) for x, y in pts])
    x = draw(st.floats(min_value=-100, max_value=100, allow_nan=False))
    y = draw(st.floats(min_value=-100, max_value=100, allow_nan=False))
    side = draw(st.floats(min_value=1, max_value=50, allow_nan=False))
    return Polygon(Ring([(x, y), (x + side, y), (x + side, y + side),
                         (x, y + side)]))


class TestRecordCodec:
    @given(records)
    def test_roundtrip(self, record):
        assert decode_record(encode_record(record)) == json.loads(
            json.dumps(record))

    @given(records)
    def test_encoding_is_deterministic(self, record):
        assert encode_record(record) == encode_record(record)


class TestGeoCodec:
    @given(geometries())
    @settings(max_examples=80)
    def test_geometry_roundtrip(self, geom):
        assert decode_geometry(encode_geometry(geom)) == geom

    @given(geometries())
    def test_encoding_is_json_safe(self, geom):
        json.dumps(encode_geometry(geom))


class TestSlottedPageProperties:
    @given(st.lists(st.binary(min_size=0, max_size=120), max_size=15))
    def test_serialization_roundtrip(self, blobs):
        page = SlottedPage(page_size=8192)
        slots = []
        for blob in blobs:
            slots.append(page.add(blob))
        rebuilt = SlottedPage.from_bytes(page.to_bytes(), page_size=8192)
        for slot, blob in zip(slots, blobs):
            assert rebuilt.get(slot) == blob
        assert rebuilt.next_slot == page.next_slot

    @given(st.lists(st.binary(min_size=1, max_size=100), min_size=1,
                    max_size=10), st.data())
    def test_deleted_slots_disappear(self, blobs, data):
        page = SlottedPage(page_size=8192)
        slots = [page.add(b) for b in blobs]
        victim = data.draw(st.sampled_from(slots))
        page.delete(victim)
        rebuilt = SlottedPage.from_bytes(page.to_bytes(), page_size=8192)
        assert victim not in rebuilt.slots
        assert len(rebuilt.slots) == len(blobs) - 1


class TestHeapProperties:
    @given(st.lists(records, min_size=1, max_size=25), st.data())
    @settings(max_examples=40, deadline=None)
    def test_insert_delete_overwrite_scan_consistency(self, batch, data):
        """A random op sequence ends with scan == the model dict."""
        heap = HeapFile(MemoryPager(page_size=1024))
        model: dict = {}
        for i, record in enumerate(batch):
            rid = heap.insert({"k": i, **record})
            model[rid] = {"k": i, **json.loads(json.dumps(record))}
        # random deletions
        to_delete = data.draw(
            st.lists(st.sampled_from(sorted(model)), unique=True,
                     max_size=len(model)))
        for rid in to_delete:
            heap.delete(rid)
            del model[rid]
        # random overwrites (may relocate)
        for rid in list(model)[:3]:
            new_record = {"overwritten": True}
            new_rid = heap.overwrite(rid, new_record)
            del model[rid]
            model[new_rid] = new_record
        scanned = dict(heap.scan())
        assert scanned == model

    @given(st.integers(min_value=1, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_oversized_records_roundtrip(self, pages):
        heap = HeapFile(MemoryPager(page_size=1024))
        big = {"payload": "z" * (1024 * pages)}
        rid = heap.insert(big)
        assert heap.read(rid) == big
        assert dict(heap.scan()) == {rid: big}


class TestBufferProperties:
    @given(st.lists(st.integers(min_value=0, max_value=19), min_size=1,
                    max_size=200),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=40)
    def test_buffer_is_transparent_cache(self, accesses, capacity):
        """Reads through the buffer always equal direct pager reads."""
        pager = MemoryPager(page_size=64)
        for i in range(20):
            no = pager.allocate_page()
            pager.write_page(no, bytes([i]) * 8)
        manager = BufferManager(pager, capacity=capacity)
        for page_no in accesses:
            assert manager.read_page(page_no) == pager._pages[page_no]
        assert len(manager) <= capacity

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=9),
                              st.booleans()),
                    min_size=1, max_size=100))
    @settings(max_examples=40)
    def test_write_back_preserves_data(self, ops):
        """Interleaved reads/writes: final flush leaves pager == model."""
        pager = MemoryPager(page_size=64)
        for __ in range(10):
            pager.allocate_page()
        manager = BufferManager(pager, capacity=3)
        model = {i: b"\x00" * 64 for i in range(10)}
        for page_no, is_write in ops:
            if is_write:
                data = bytes([page_no + 1]) * 8
                manager.write_page(page_no, data)
                model[page_no] = data.ljust(64, b"\x00")
            else:
                assert manager.read_page(page_no) == model[page_no]
        manager.flush()
        for page_no, expected in model.items():
            assert pager._pages[page_no] == expected
