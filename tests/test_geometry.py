"""Unit tests for the geometry model."""

import math

import pytest

from repro.errors import GeometryError
from repro.spatial import (
    BBox,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
    Ring,
)


class TestBBox:
    def test_basic_properties(self):
        box = BBox(0, 0, 4, 3)
        assert box.width == 4
        assert box.height == 3
        assert box.area() == 12
        assert box.perimeter() == 14
        assert box.center() == (2.0, 1.5)

    def test_min_greater_than_max_rejected(self):
        with pytest.raises(GeometryError):
            BBox(5, 0, 1, 1)

    def test_empty_box_is_union_identity(self):
        empty = BBox.empty()
        box = BBox(1, 2, 3, 4)
        assert empty.union(box) == box
        assert box.union(empty) == box
        assert empty.is_empty()
        assert empty.area() == 0.0

    def test_empty_box_intersects_nothing(self):
        empty = BBox.empty()
        assert not empty.intersects(BBox(0, 0, 10, 10))
        assert not BBox(0, 0, 10, 10).intersects(empty)
        assert not empty.contains_point(0, 0)

    def test_intersection(self):
        a = BBox(0, 0, 10, 10)
        b = BBox(5, 5, 15, 15)
        assert a.intersection(b) == BBox(5, 5, 10, 10)
        assert a.intersection(BBox(20, 20, 30, 30)).is_empty()

    def test_touching_boxes_intersect(self):
        a = BBox(0, 0, 10, 10)
        b = BBox(10, 0, 20, 10)
        assert a.intersects(b)
        assert a.intersection(b).area() == 0.0

    def test_contains(self):
        outer = BBox(0, 0, 10, 10)
        assert outer.contains_bbox(BBox(2, 2, 8, 8))
        assert outer.contains_bbox(outer)
        assert not outer.contains_bbox(BBox(5, 5, 15, 15))
        assert outer.contains_point(0, 0)  # boundary included
        assert not outer.contains_point(-0.01, 5)

    def test_expanded(self):
        assert BBox(0, 0, 10, 10).expanded(2) == BBox(-2, -2, 12, 12)
        with pytest.raises(GeometryError):
            BBox(0, 0, 2, 2).expanded(-2)

    def test_enlargement(self):
        a = BBox(0, 0, 10, 10)
        assert a.enlargement(BBox(2, 2, 4, 4)) == 0.0
        assert a.enlargement(BBox(0, 0, 20, 10)) == pytest.approx(100.0)

    def test_distance_to_point(self):
        box = BBox(0, 0, 10, 10)
        assert box.distance_to_point(5, 5) == 0.0
        assert box.distance_to_point(13, 14) == pytest.approx(5.0)

    def test_from_points(self):
        box = BBox.from_points([(1, 5), (-2, 3), (4, 0)])
        assert box == BBox(-2, 0, 4, 5)
        with pytest.raises(GeometryError):
            BBox.from_points([])

    def test_hash_and_equality(self):
        assert BBox(0, 0, 1, 1) == BBox(0, 0, 1, 1)
        assert hash(BBox.empty()) == hash(BBox.empty())
        assert BBox.empty() == BBox.empty()


class TestPoint:
    def test_basics(self):
        p = Point(3, 4)
        assert p.distance_to(Point(0, 0)) == 5.0
        assert p.bbox() == BBox(3, 4, 3, 4)
        assert p.translated(1, -1) == Point(4, 3)
        assert p.wkt() == "POINT (3 4)"
        assert p.is_valid()

    def test_nonfinite_rejected(self):
        with pytest.raises(GeometryError):
            Point(float("nan"), 0)
        with pytest.raises(GeometryError):
            Point(0, float("inf"))

    def test_equality_and_hash(self):
        assert Point(1, 2) == Point(1.0, 2.0)
        assert hash(Point(1, 2)) == hash(Point(1, 2))
        assert Point(1, 2) != Point(2, 1)


class TestLineString:
    def test_length_and_interpolate(self):
        line = LineString([(0, 0), (3, 0), (3, 4)])
        assert line.length() == 7.0
        assert line.interpolate(0.0) == Point(0, 0)
        assert line.interpolate(1.0) == Point(3, 4)
        mid = line.interpolate(3.0 / 7.0)
        assert mid == Point(3, 0)

    def test_needs_two_vertices(self):
        with pytest.raises(GeometryError):
            LineString([(0, 0)])

    def test_validity_rejects_repeated_vertices(self):
        assert not LineString([(0, 0), (0, 0), (1, 1)]).is_valid()
        assert LineString([(0, 0), (1, 1)]).is_valid()

    def test_closed(self):
        assert LineString([(0, 0), (1, 0), (0, 1), (0, 0)]).is_closed()
        assert not LineString([(0, 0), (1, 0)]).is_closed()

    def test_interpolate_bounds(self):
        line = LineString([(0, 0), (1, 0)])
        with pytest.raises(GeometryError):
            line.interpolate(1.5)

    def test_segments(self):
        line = LineString([(0, 0), (1, 0), (1, 1)])
        assert len(list(line.segments())) == 2


class TestRing:
    def test_signed_area_orientation(self):
        ccw = Ring([(0, 0), (4, 0), (4, 4), (0, 4)])
        cw = Ring([(0, 0), (0, 4), (4, 4), (4, 0)])
        assert ccw.signed_area() == 16.0
        assert cw.signed_area() == -16.0
        assert ccw.area() == cw.area() == 16.0

    def test_closing_vertex_stripped(self):
        ring = Ring([(0, 0), (1, 0), (1, 1), (0, 0)])
        assert len(ring.coords) == 3

    def test_needs_three_distinct(self):
        with pytest.raises(GeometryError):
            Ring([(0, 0), (1, 1)])

    def test_contains_point(self):
        ring = Ring([(0, 0), (10, 0), (10, 10), (0, 10)])
        assert ring.contains_point(5, 5)
        assert ring.contains_point(0, 5)     # boundary counts
        assert ring.contains_point(10, 10)   # vertex counts
        assert not ring.contains_point(11, 5)


class TestPolygon:
    def test_area_with_hole(self):
        poly = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(4, 4), (6, 4), (6, 6), (4, 6)]],
        )
        assert poly.area() == pytest.approx(96.0)
        assert poly.perimeter() == pytest.approx(48.0)

    def test_contains_point_respects_holes(self):
        poly = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(4, 4), (6, 4), (6, 6), (4, 6)]],
        )
        assert poly.contains_point(1, 1)
        assert not poly.contains_point(5, 5)     # inside the hole
        assert poly.contains_point(4, 5)         # on the hole boundary

    def test_centroid_square(self):
        poly = Polygon.from_bbox(BBox(0, 0, 10, 10))
        assert poly.centroid() == Point(5, 5)

    def test_centroid_with_hole_shifts(self):
        poly = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(6, 6), (9, 6), (9, 9), (6, 9)]],
        )
        c = poly.centroid()
        assert c.x < 5 and c.y < 5

    def test_validity(self):
        assert Polygon.from_bbox(BBox(0, 0, 1, 1)).is_valid()
        bad = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)],
                      holes=[[(20, 20), (21, 20), (21, 21)]])
        assert not bad.is_valid()

    def test_regular(self):
        disc = Polygon.regular(0, 0, 10, sides=64)
        assert disc.area() == pytest.approx(math.pi * 100, rel=0.01)
        with pytest.raises(GeometryError):
            Polygon.regular(0, 0, -1)
        with pytest.raises(GeometryError):
            Polygon.regular(0, 0, 1, sides=2)

    def test_translated(self):
        poly = Polygon.from_bbox(BBox(0, 0, 2, 2)).translated(5, 5)
        assert poly.bbox() == BBox(5, 5, 7, 7)

    def test_wkt_round_shape(self):
        poly = Polygon.from_bbox(BBox(0, 0, 1, 1))
        assert poly.wkt().startswith("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))")


class TestMultiGeometries:
    def test_multipoint(self):
        mp = MultiPoint([Point(0, 0), Point(5, 5)])
        assert len(mp) == 2
        assert mp.bbox() == BBox(0, 0, 5, 5)
        assert "MULTIPOINT" in mp.wkt()

    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            MultiPoint([])

    def test_member_type_enforced(self):
        with pytest.raises(GeometryError):
            MultiPoint([LineString([(0, 0), (1, 1)])])

    def test_multilinestring_length(self):
        mls = MultiLineString([
            LineString([(0, 0), (3, 0)]),
            LineString([(0, 1), (0, 5)]),
        ])
        assert mls.length() == 7.0

    def test_multipolygon_area_and_contains(self):
        mpoly = MultiPolygon([
            Polygon.from_bbox(BBox(0, 0, 2, 2)),
            Polygon.from_bbox(BBox(10, 10, 12, 12)),
        ])
        assert mpoly.area() == 8.0
        assert mpoly.contains_point(1, 1)
        assert mpoly.contains_point(11, 11)
        assert not mpoly.contains_point(5, 5)

    def test_translated_preserves_type(self):
        mp = MultiPoint([Point(0, 0)]).translated(1, 1)
        assert isinstance(mp, MultiPoint)
        assert mp.members[0] == Point(1, 1)
