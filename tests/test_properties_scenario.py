"""Property-based tests for simulation scenarios.

The central law: a committed scenario leaves the database in exactly the
state direct execution of the same operations would; a discarded scenario
leaves no trace at all.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geodb import (
    Attribute,
    FLOAT,
    GeoClass,
    GeographicDatabase,
    GeometryType,
    TEXT,
)
from repro.spatial import Point


def fresh_db() -> GeographicDatabase:
    db = GeographicDatabase("PROP")
    schema = db.create_schema("s")
    schema.add_class(GeoClass("Node", [
        Attribute("tag", TEXT),
        Attribute("weight", FLOAT),
        Attribute("loc", GeometryType("point")),
    ]))
    for i in range(5):
        db.insert("s", "Node", {"tag": f"base{i}", "loc": Point(i, i)},
                  oid=f"Node#base{i}")
    return db


#: op descriptors: ("insert", tag) | ("update", idx, weight) | ("delete", idx)
ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("insert"),
                  st.text(alphabet="abcdef", min_size=1, max_size=6)),
        st.tuples(st.just("update"), st.integers(0, 4),
                  st.floats(min_value=0, max_value=100, allow_nan=False)),
        st.tuples(st.just("delete"), st.integers(0, 4)),
    ),
    max_size=8,
)


def snapshot(db) -> dict:
    return {
        obj.oid: obj.values() for obj in db.extent("s", "Node")
    }


def apply_ops(target, ops, oid_prefix: str) -> None:
    """Apply the op list to a Scenario or directly to a database."""
    deleted: set[str] = set()
    counter = 0
    for op in ops:
        if op[0] == "insert":
            counter += 1
            oid = f"Node#{oid_prefix}{counter}"
            values = {"tag": op[1], "loc": Point(counter, 0)}
            if hasattr(target, "scenario"):   # it's the database
                target.insert("s", "Node", values, oid=oid)
            else:
                target.insert("Node", values, oid=oid)
        elif op[0] == "update":
            oid = f"Node#base{op[1]}"
            if oid in deleted:
                continue
            changes = {"weight": op[2]}
            target.update(oid, changes)
        else:
            oid = f"Node#base{op[1]}"
            if oid in deleted:
                continue
            deleted.add(oid)
            target.delete(oid)


class TestScenarioEquivalence:
    @given(ops=ops_strategy)
    @settings(max_examples=40, deadline=None)
    def test_commit_equals_direct_execution(self, ops):
        direct_db = fresh_db()
        apply_ops(direct_db, ops, oid_prefix="x")

        scenario_db = fresh_db()
        scenario = scenario_db.scenario("s")
        apply_ops(scenario, ops, oid_prefix="x")
        scenario.commit()

        assert snapshot(scenario_db) == snapshot(direct_db)

    @given(ops=ops_strategy)
    @settings(max_examples=40, deadline=None)
    def test_discard_leaves_no_trace(self, ops):
        db = fresh_db()
        before = snapshot(db)
        events: list = []
        db.bus.subscribe(events.append)
        scenario = db.scenario("s")
        apply_ops(scenario, ops, oid_prefix="y")
        scenario.discard()
        assert snapshot(db) == before
        assert events == []          # hypotheses publish nothing

    @given(ops=ops_strategy)
    @settings(max_examples=40, deadline=None)
    def test_scenario_view_matches_preview(self, ops):
        """What the scenario shows before commit equals the post-commit
        state of the database."""
        db = fresh_db()
        scenario = db.scenario("s")
        apply_ops(scenario, ops, oid_prefix="z")
        preview = {
            obj.oid: obj.values() for obj in scenario.extent("Node")
        }
        scenario.commit()
        assert snapshot(db) == preview
