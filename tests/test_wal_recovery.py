"""Write-ahead log, atomic commit, and crash recovery.

The heart of this suite is the crash matrix: a seeded transaction mix is
run repeatedly, each time with the fault-injecting pager armed to crash
at a different write index, and after every crash the database is
rebuilt from the surviving "disks" and must land on exactly the
pre-transaction or the fully-committed state — never in between.

Set ``REPRO_CRASH_MATRIX_QUICK=1`` to thin the matrix (used by CI's
smoke step); the full matrix runs every write index for every seed.
"""

from __future__ import annotations

import os
import threading

import pytest

from repro.errors import CrashError, ObjectNotFoundError, WALError
from repro.geodb import (
    RASTER,
    TEXT,
    Attribute,
    FaultInjectingPager,
    GeoClass,
    GeographicDatabase,
    MemoryPager,
    Schema,
    TxnState,
    WriteAheadLog,
)
from repro.geodb.raster import downsample
from repro.spatial.geometry import BBox
from repro.workloads import (
    build_mix_schema,
    run_transaction_mix,
    snapshot_state,
    synthetic_raster,
)
from repro.workloads.txn_mix import MIX_CLASS, MIX_SCHEMA

QUICK = bool(os.environ.get("REPRO_CRASH_MATRIX_QUICK"))
SEEDS = (7,) if QUICK else (7, 23, 91)
STRIDE = 3 if QUICK else 1


# ---------------------------------------------------------------------------
# WAL unit behaviour
# ---------------------------------------------------------------------------


class TestWriteAheadLog:
    def test_commit_forces_a_checksummed_batch(self):
        wal = WriteAheadLog(MemoryPager(), sync_mode="none")
        wal.log_begin(1)
        wal.log_intent(1, {"op": "insert", "oid": "X#1"})
        assert wal.pager.page_count == 0  # nothing reaches the log yet
        wal.log_commit(1)
        assert wal.pager.page_count >= 1
        kinds = [doc["t"] for doc in wal.records()]
        assert kinds == ["B", "I", "C"]
        [txn] = wal.replay()
        assert [doc["t"] for doc in txn] == ["B", "I", "C"]
        assert txn[1]["oid"] == "X#1"

    def test_abort_drops_the_buffered_batch(self):
        wal = WriteAheadLog(MemoryPager(), sync_mode="none")
        wal.log_begin(1)
        wal.log_intent(1, {"op": "insert", "oid": "X#1"})
        wal.log_abort(1)
        assert wal.pager.page_count == 0
        assert wal.replay() == []

    def test_batches_never_share_a_page(self):
        wal = WriteAheadLog(MemoryPager(), sync_mode="none")
        for txn_id in (1, 2):
            wal.log_begin(txn_id)
            wal.log_intent(txn_id, {"op": "insert", "oid": f"X#{txn_id}"})
            wal.log_commit(txn_id)
        assert wal.pager.page_count == 2  # one (padded) page per batch
        assert [t[1]["oid"] for t in wal.replay()] == ["X#1", "X#2"]

    def test_batch_spanning_multiple_pages(self):
        wal = WriteAheadLog(MemoryPager(), sync_mode="none")
        wal.log_begin(1)
        wal.log_intent(1, {"op": "insert", "oid": "X#1",
                           "blob": "v" * (3 * wal.pager.page_size)})
        wal.log_commit(1)
        assert wal.pager.page_count > 3
        [txn] = wal.replay()
        assert len(txn[1]["blob"]) == 3 * wal.pager.page_size

    def test_uncommitted_txn_is_not_replayed(self):
        wal = WriteAheadLog(MemoryPager(), sync_mode="none")
        wal.log_begin(1)
        wal.log_intent(1, {"op": "insert", "oid": "X#1"})
        wal.log_commit(1)
        wal.log_begin(2)
        wal.log_intent(2, {"op": "delete", "oid": "X#1"})
        # txn 2 never commits: its records stay pending, off the log
        assert [t[0]["txn"] for t in wal.replay()] == [1]

    def test_torn_flush_keeps_the_stable_prefix(self):
        inner = MemoryPager()
        fault = FaultInjectingPager(inner)
        wal = WriteAheadLog(fault, sync_mode="none")
        wal.log_begin(1)
        wal.log_intent(1, {"op": "insert", "oid": "X#1"})
        wal.log_commit(1)
        fault.arm(0, torn=True)  # tear the very next page write
        wal.log_begin(2)
        wal.log_intent(2, {"op": "insert", "oid": "X#2"})
        with pytest.raises(CrashError):
            wal.log_commit(2)
        assert wal.damaged
        survivor = WriteAheadLog(inner, sync_mode="none")
        assert [t[1]["oid"] for t in survivor.replay()] == ["X#1"]

    def test_damaged_log_refuses_further_commits(self):
        fault = FaultInjectingPager(MemoryPager())
        wal = WriteAheadLog(fault, sync_mode="none")
        fault.arm(0)
        wal.log_begin(1)
        with pytest.raises(CrashError):
            wal.log_commit(1)
        with pytest.raises(WALError):
            wal.log_begin(2)

    def test_checkpoint_truncates_and_clears_damage(self):
        inner = MemoryPager()
        fault = FaultInjectingPager(inner)
        wal = WriteAheadLog(fault, sync_mode="none")
        wal.log_begin(1)
        wal.log_commit(1)
        assert inner.page_count == 1
        wal.checkpoint()
        assert inner.page_count == 0
        assert wal.replay() == []

    def test_checkpoint_with_pending_txn_raises(self):
        wal = WriteAheadLog(MemoryPager(), sync_mode="none")
        wal.log_begin(1)
        with pytest.raises(WALError):
            wal.checkpoint()

    def test_unknown_sync_mode_rejected(self):
        with pytest.raises(WALError):
            WriteAheadLog(MemoryPager(), sync_mode="eventually")

    def test_stats_shape(self):
        wal = WriteAheadLog(MemoryPager(), sync_mode="fsync")
        wal.log_begin(1)
        wal.log_commit(1)
        stats = wal.stats()
        assert stats["appends"] == 2
        assert stats["flushes"] == 1
        assert stats["fsyncs"] == 1
        assert stats["pending_txns"] == 0
        assert stats["damaged"] is False
        # group-commit surface (the direct log_commit above groups
        # nothing, but the keys must always be present for dashboards)
        assert stats["group_commit"] is True
        assert stats["group_commits"] == 0
        assert stats["group_commit_batches"] == 0


class TestGroupCommitDamagedTail:
    """A torn/failed staged write must poison the whole log, not just
    the transaction that tripped it: staged-but-unbarriered batches may
    sit in front of the tear, so nothing may be trusted until recovery
    truncates the tail."""

    def test_damage_refuses_staged_commits_and_waits(self):
        fault = FaultInjectingPager(MemoryPager())
        wal = WriteAheadLog(fault, sync_mode="none", group_commit=True)
        wal.log_begin(1)
        ticket = wal.log_commit_staged(1)
        fault.arm(0)
        wal.log_begin(2)
        with pytest.raises(CrashError):
            wal.log_commit_staged(2)
        assert wal.damaged
        # the earlier staged batch may not claim durability either
        with pytest.raises(WALError):
            wal.wait_durable(ticket)
        with pytest.raises(WALError):
            wal.log_begin(3)
        # the WAL-rule helper must be a quiet no-op on a damaged log
        # (the buffer manager calls it mid-steal; raising there would
        # turn a log fault into a buffer-pool crash)
        wal.force()

    def test_recovery_truncates_damaged_tail_and_resumes(self):
        wal_inner = MemoryPager()
        wal_fault = FaultInjectingPager(wal_inner)
        db = _mix_db(wal_fault, capacity=64)
        db.insert(MIX_SCHEMA, MIX_CLASS, {"name": "a", "size": 1},
                  oid="Feature#gd_a")
        wal_fault.arm(0, torn=True)
        with pytest.raises(CrashError):
            db.insert(MIX_SCHEMA, MIX_CLASS, {"name": "b", "size": 2},
                      oid="Feature#gd_b")
        assert db.wal.damaged
        recovered = _recover(MemoryPager(), wal_inner)
        assert recovered.find_object("Feature#gd_a") is not None
        assert recovered.find_object("Feature#gd_b") is None
        # recovery checkpointed the damaged tail away: commits flow again
        assert recovered.wal.pager.page_count == 0
        recovered.insert(MIX_SCHEMA, MIX_CLASS, {"name": "c", "size": 3},
                         oid="Feature#gd_c")
        assert recovered.find_object("Feature#gd_c") is not None


# ---------------------------------------------------------------------------
# Commit atomicity (rollback on apply/log failure)
# ---------------------------------------------------------------------------


def _mix_db(wal_fault_pager=None, heap_pager=None, capacity=8):
    db = GeographicDatabase("mix", pager=heap_pager or MemoryPager(),
                            buffer_capacity=capacity)
    db.register_schema(build_mix_schema())
    if wal_fault_pager is not None:
        db.attach_wal(WriteAheadLog(wal_fault_pager, sync_mode="none"))
    return db


class TestCommitAtomicity:
    def test_log_failure_rolls_back_every_structure(self):
        wal_fault = FaultInjectingPager(MemoryPager())
        db = _mix_db(wal_fault)
        base = db.insert(MIX_SCHEMA, MIX_CLASS, {"name": "keep", "size": 1})
        db.checkpoint()
        before = snapshot_state(db)
        before_heap = db.verify_storage()
        wal_fault.arm(0)  # the next commit's log flush crashes
        txn = db.transaction()
        txn.insert(MIX_SCHEMA, MIX_CLASS, {"name": "new", "size": 2},
                   oid="Feature#doomed")
        txn.update(base, {"size": 99})
        with pytest.raises(CrashError):
            txn.commit()
        # ABORTED means no observable change, anywhere.
        assert txn.state is TxnState.ABORTED
        assert snapshot_state(db) == before
        assert db.find_object("Feature#doomed") is None
        assert db.verify_storage() == before_heap
        assert db.get_object(base).get("size") == 1

    def test_aborted_commit_leaves_no_phantom_intents(self):
        wal_fault = FaultInjectingPager(MemoryPager())
        db = _mix_db(wal_fault)
        oid = db.insert(MIX_SCHEMA, MIX_CLASS, {"name": "a", "size": 1})
        wal_fault.arm(0)
        txn = db.transaction()
        txn.update(oid, {"size": 42})
        with pytest.raises(CrashError):
            txn.commit()
        # Satellite: commit() must clear the intents like abort() does,
        # so the dead transaction never reports phantom staged state.
        assert txn.intents == []
        assert txn.staged_value(oid) == db.get_object(oid).values()

    def test_rollback_restores_spatial_and_attr_indexes(self):
        from repro.spatial.geometry import BBox, Point

        wal_fault = FaultInjectingPager(MemoryPager())
        db = _mix_db(wal_fault)
        index = db.create_attribute_index(MIX_SCHEMA, MIX_CLASS, "size")
        oid = db.insert(MIX_SCHEMA, MIX_CLASS,
                        {"name": "a", "size": 5, "location": Point(10, 10)})
        wal_fault.arm(0)
        with pytest.raises(CrashError):
            with db.transaction() as txn:
                txn.update(oid, {"size": 6, "location": Point(90, 90)})
        assert index.lookup(5) == {oid}
        assert index.lookup(6) == set()
        rtree = db.spatial_index(MIX_SCHEMA, MIX_CLASS, "location")
        assert list(rtree.search(BBox(9, 9, 11, 11))) == [oid]
        assert list(rtree.search(BBox(89, 89, 91, 91))) == []


class TestDeleteThenUpdateRegression:
    def test_update_after_staged_delete_fails_at_stage_time(self):
        db = _mix_db()
        oid = db.insert(MIX_SCHEMA, MIX_CLASS, {"name": "a", "size": 1})
        txn = db.transaction()
        txn.delete(oid)
        with pytest.raises(ObjectNotFoundError):
            txn.update(oid, {"size": 2})
        with pytest.raises(ObjectNotFoundError):
            txn.delete(oid)
        # The failed stage must not poison the transaction: the delete
        # alone still commits, atomically.
        txn.commit()
        assert db.find_object(oid) is None

    def test_insert_after_staged_delete_is_allowed(self):
        db = _mix_db()
        oid = db.insert(MIX_SCHEMA, MIX_CLASS, {"name": "a", "size": 1},
                        oid="Feature#reborn")
        with db.transaction() as txn:
            txn.delete(oid)
            txn.insert(MIX_SCHEMA, MIX_CLASS, {"name": "b", "size": 2},
                       oid=oid)
        assert db.get_object(oid).get("name") == "b"


# ---------------------------------------------------------------------------
# File-backed open / recover
# ---------------------------------------------------------------------------


class TestFileBackedRecovery:
    def test_clean_close_and_reopen(self, tmp_path):
        path = str(tmp_path / "geo.db")
        db = GeographicDatabase.open(path, sync_mode="flush")
        db.register_schema(build_mix_schema())
        db.catalog.save_schema(db.get_schema_object(MIX_SCHEMA))
        db.insert(MIX_SCHEMA, MIX_CLASS, {"name": "a", "size": 1},
                  oid="Feature#f1")
        state = snapshot_state(db)
        db.close()
        db2 = GeographicDatabase.open(path, sync_mode="flush")
        assert snapshot_state(db2) == state
        assert db2.wal.pager.page_count == 0  # close checkpointed the log
        db2.close()

    def test_unclean_shutdown_replays_the_log(self, tmp_path):
        path = str(tmp_path / "geo.db")
        db = GeographicDatabase.open(path, sync_mode="flush")
        db.register_schema(build_mix_schema())
        db.catalog.save_schema(db.get_schema_object(MIX_SCHEMA))
        db.checkpoint()  # make the schema durable
        db.insert(MIX_SCHEMA, MIX_CLASS, {"name": "a", "size": 1},
                  oid="Feature#f1")
        db.insert(MIX_SCHEMA, MIX_CLASS, {"name": "b", "size": 2},
                  oid="Feature#f2")
        db.update("Feature#f2", {"size": 3})
        db.delete("Feature#f1")
        state = snapshot_state(db)
        assert db.wal.pager.page_count > 0
        # Simulate a crash: drop the handle without close(); the dirty
        # buffer frames never reach the heap file, only the WAL did.
        del db
        db2 = GeographicDatabase.open(path, sync_mode="flush")
        assert snapshot_state(db2) == state
        assert db2.get_object("Feature#f2").get("size") == 3
        assert db2.wal.recovered_txns > 0
        db2.close()

    def test_recovered_oid_counter_does_not_collide(self, tmp_path):
        path = str(tmp_path / "geo.db")
        db = GeographicDatabase.open(path, sync_mode="flush")
        db.register_schema(build_mix_schema())
        db.catalog.save_schema(db.get_schema_object(MIX_SCHEMA))
        db.checkpoint()
        auto_oid = db.insert(MIX_SCHEMA, MIX_CLASS, {"name": "a", "size": 1})
        del db
        db2 = GeographicDatabase.open(path, sync_mode="flush")
        fresh = db2.insert(MIX_SCHEMA, MIX_CLASS, {"name": "b", "size": 2})
        assert fresh != auto_oid
        db2.close()


# ---------------------------------------------------------------------------
# The crash matrix
# ---------------------------------------------------------------------------


def _build_crashable(seed):
    """A mix database over fault-wrapped memory 'disks', base state durable."""
    heap_inner, wal_inner = MemoryPager(), MemoryPager()
    heap_fault = FaultInjectingPager(heap_inner)
    wal_fault = FaultInjectingPager(wal_inner)
    db = _mix_db(wal_fault, heap_pager=heap_fault)
    with db.transaction() as txn:
        for i in range(3):
            txn.insert(MIX_SCHEMA, MIX_CLASS,
                       {"name": f"base-{i}", "size": i},
                       oid=f"Feature#base{seed}_{i}")
    db.checkpoint()
    # Zero the write counters so a later arm(n) and the unarmed budget
    # measurement count from the same point (after base setup).
    heap_fault.arm(None)
    wal_fault.arm(None)
    return db, heap_inner, wal_inner, heap_fault, wal_fault


def _recover(heap_inner, wal_inner):
    """Simulate a restart: fresh database over the surviving 'disks'."""
    db = GeographicDatabase("mix", pager=heap_inner, buffer_capacity=8)
    db.register_schema(build_mix_schema())
    db.load_from_storage()
    db.attach_wal(WriteAheadLog(wal_inner, sync_mode="none"))
    db.recover()
    return db


def _run_mix(db, seed):
    return run_transaction_mix(db, txns=6, ops_per_txn=3, seed=seed,
                               oid_prefix=f"s{seed}_", checkpoint_every=2)


def _assert_recovers(outcome, heap_inner, wal_inner):
    recovered = _recover(heap_inner, wal_inner)
    state = snapshot_state(recovered)
    acceptable = outcome.acceptable_states()
    assert state in acceptable, (
        f"recovered state matches neither pre- nor post-transaction state "
        f"(crash at {outcome.crash_point}, {outcome.committed} committed)"
    )
    # Recovery must be stable: a second crash-free reopen changes nothing.
    again = _recover(heap_inner, wal_inner)
    assert snapshot_state(again) == state


def _write_budget(seed, pager_pick):
    """Total writes the un-faulted run issues on the picked pager."""
    db, __, __, heap_fault, wal_fault = _build_crashable(seed)
    outcome = _run_mix(db, seed)
    assert not outcome.crashed
    return pager_pick(heap_fault, wal_fault).writes, outcome


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("torn", [False, True], ids=["clean", "torn"])
def test_crash_matrix_wal_writes(seed, torn):
    """Crash on every WAL write index: atomic per-transaction recovery."""
    budget, clean = _write_budget(seed, lambda h, w: w)
    assert budget > 0
    crashes = 0
    for n in range(0, budget, STRIDE):
        db, heap_inner, wal_inner, __, wal_fault = _build_crashable(seed)
        wal_fault.arm(n, torn=torn)
        outcome = _run_mix(db, seed)
        assert outcome.crashed and outcome.crash_point == "commit"
        crashes += 1
        _assert_recovers(outcome, heap_inner, wal_inner)
    assert crashes > 0
    # Sanity: armed beyond the budget, the mix completes and the final
    # state survives recovery verbatim.
    db, heap_inner, wal_inner, __, wal_fault = _build_crashable(seed)
    wal_fault.arm(budget + 1, torn=torn)
    outcome = _run_mix(db, seed)
    assert not outcome.crashed
    assert outcome.post_state == clean.post_state
    _assert_recovers(outcome, heap_inner, wal_inner)


@pytest.mark.parametrize("seed", SEEDS)
def test_crash_matrix_with_concurrent_snapshot_reader(seed):
    """Crash on every WAL write index while a snapshot reader is mid-scan.

    The reader opens its transaction before the mix starts; whatever
    write index the crash lands on, the reader's snapshot must keep
    answering with the exact pre-mix state — never a blend of pre- and
    post-crash values, and never a mix-created object. Recovery of the
    crashed 'disks' must still land on an acceptable state.
    """
    budget, __ = _write_budget(seed, lambda h, w: w)
    assert budget > 0
    base_oids = [f"Feature#base{seed}_{i}" for i in range(3)]
    crashes = 0
    for n in range(0, budget, STRIDE):
        db, heap_inner, wal_inner, __, wal_fault = _build_crashable(seed)
        reader = db.transaction()
        baseline = {oid: reader.read(oid) for oid in base_oids}
        assert all(values is not None for values in baseline.values())
        wal_fault.arm(n)
        outcome = _run_mix(db, seed)
        assert outcome.crashed and outcome.crash_point == "commit"
        crashes += 1
        # The reader's snapshot is pinned to the pre-mix state: the same
        # values as before the crash, and none of the mix's objects.
        for oid in base_oids:
            assert reader.read(oid) == baseline[oid]
        view = reader.query(MIX_SCHEMA, MIX_CLASS)
        assert set(view) == set(base_oids)
        assert {oid: values for oid, values in view.items()} == baseline
        reader.abort()
        _assert_recovers(outcome, heap_inner, wal_inner)
    assert crashes > 0


@pytest.mark.parametrize("seed", SEEDS)
def test_crash_matrix_heap_writes(seed):
    """Crash on every heap write index (checkpoint flushes): no data loss."""
    budget, __ = _write_budget(seed, lambda h, w: h)
    assert budget > 0  # checkpoint_every guarantees heap flushes
    crashes = 0
    for n in range(0, budget, STRIDE):
        db, heap_inner, wal_inner, heap_fault, __ = _build_crashable(seed)
        heap_fault.arm(n)
        outcome = _run_mix(db, seed)
        if not outcome.crashed:
            continue  # arming landed past the last flush of this run
        assert outcome.crash_point == "checkpoint"
        # A checkpoint crash loses nothing: every committed transaction
        # must be recovered exactly.
        assert outcome.pre_state == outcome.post_state
        crashes += 1
        _assert_recovers(outcome, heap_inner, wal_inner)
    assert crashes > 0


def _run_group_committers(committers, arm_at=None, torn=False):
    """``committers`` threads each commit one two-object transaction
    through a group-commit WAL; returns the surviving log 'disk', the
    fault pager and each thread's outcome."""
    wal_inner = MemoryPager()
    wal_fault = FaultInjectingPager(wal_inner)
    db = _mix_db(wal_fault, capacity=64)
    if arm_at is not None:
        wal_fault.arm(arm_at, torn=torn)
    start = threading.Barrier(committers)
    outcomes: list[str | None] = [None] * committers

    def work(i):
        try:
            start.wait(timeout=30)
            txn = db.transaction()
            txn.insert(MIX_SCHEMA, MIX_CLASS, {"name": f"g{i}a", "size": i},
                       oid=f"Feature#g{i}a")
            txn.insert(MIX_SCHEMA, MIX_CLASS, {"name": f"g{i}b", "size": i},
                       oid=f"Feature#g{i}b")
            txn.commit()
            outcomes[i] = "committed"
        except (CrashError, WALError):
            outcomes[i] = "crashed"

    threads = [threading.Thread(target=work, args=(i,))
               for i in range(committers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not any(t.is_alive() for t in threads), "hung committer"
    return wal_inner, wal_fault, outcomes


@pytest.mark.parametrize("torn", [False, True], ids=["clean", "torn"])
def test_crash_matrix_concurrent_group_committers(torn):
    """Crash on every WAL write index under *threaded* group committers.

    Whatever batch the crash lands in, recovery must show every
    transaction either fully present (both its objects) or fully absent
    — a half-replayed batch would mean a commit record survived ahead
    of its intents or a torn page slipped past the checksums. Threads
    that reported success before the crash must always be present:
    with the staged-batch protocol their pages reached the 'disk'
    before commit() returned.
    """
    committers = 6
    wal_inner, wal_fault, outcomes = _run_group_committers(committers)
    assert outcomes == ["committed"] * committers
    budget = wal_fault.writes
    assert budget >= committers  # each batch stages at least one page

    crashes = 0
    for n in range(0, budget, STRIDE):
        wal_inner, __, outcomes = _run_group_committers(
            committers, arm_at=n, torn=torn
        )
        assert "crashed" in outcomes, f"arming write {n} must crash someone"
        crashes += 1
        heap_disk = MemoryPager()
        recovered = _recover(heap_disk, wal_inner)
        for i in range(committers):
            has_a = recovered.find_object(f"Feature#g{i}a") is not None
            has_b = recovered.find_object(f"Feature#g{i}b") is not None
            assert has_a == has_b, (
                f"crash at write {n}: committer {i} recovered "
                f"half-applied (a={has_a}, b={has_b})"
            )
            if outcomes[i] == "committed":
                assert has_a, (
                    f"crash at write {n}: committer {i} reported success "
                    f"but its transaction is gone after recovery"
                )
        # stability: a second reopen of the same disks changes nothing
        # (the first recovery checkpointed the replayed state into
        # heap_disk and truncated the log; the reopen reads it back)
        again = _recover(heap_disk, wal_inner)
        assert snapshot_state(again) == snapshot_state(recovered)
    assert crashes > 0


# ---------------------------------------------------------------------------
# The tile crash matrix (multi-page raster commits)
# ---------------------------------------------------------------------------

RASTER_SIDE = 96  # with the 64-px default tile: 2x2 tiles @ L0 + 1 @ L1


def _raster_schema() -> Schema:
    schema = Schema("img")
    schema.add_class(GeoClass("Scan", attributes=[
        Attribute("name", TEXT, required=True),
        Attribute("scan", RASTER),
    ]))
    return schema


def _scan_raster(seed):
    return synthetic_raster(RASTER_SIDE, RASTER_SIDE, seed=seed,
                            extent=BBox(0.0, 0.0, float(RASTER_SIDE),
                                        float(RASTER_SIDE)))


def _build_raster_crashable():
    """A raster database over fault-wrapped 'disks', base scan durable."""
    heap_inner, wal_inner = MemoryPager(), MemoryPager()
    heap_fault = FaultInjectingPager(heap_inner)
    wal_fault = FaultInjectingPager(wal_inner)
    db = GeographicDatabase("img", pager=heap_fault, buffer_capacity=64)
    db.register_schema(_raster_schema())
    db.attach_wal(WriteAheadLog(wal_fault, sync_mode="none"))
    with db.transaction() as txn:
        txn.insert("img", "Scan", {"name": "before", "scan": _scan_raster(5)},
                   oid="Scan#log")
    db.checkpoint()
    heap_fault.arm(None)
    wal_fault.arm(None)
    return db, heap_inner, wal_inner, heap_fault, wal_fault


def _overwrite_scan(db):
    """The crashable transaction: replace the scan (a multi-page, multi-
    tile batch — every tile rides the WAL commit) plus a scalar update
    whose visibility must stay atomic with the pixels."""
    with db.transaction() as txn:
        txn.update("Scan#log", {"name": "after", "scan": _scan_raster(9)})


def _recover_raster(heap_inner, wal_inner):
    db = GeographicDatabase("img", pager=heap_inner, buffer_capacity=64)
    db.register_schema(_raster_schema())
    db.load_from_storage()
    db.attach_wal(WriteAheadLog(wal_inner, sync_mode="none"))
    db.recover()
    return db


def _assert_raster_state(db, raster):
    """Every pyramid level reads back byte-identical to ``raster``."""
    ref = db.get_object("Scan#log").get("scan")
    assert (ref.width, ref.height) == (raster.width, raster.height)
    for level in range(ref.levels):
        expected, lw, lh = downsample(raster.pixels, raster.width,
                                      raster.height, level)
        assert ref.level_dims(level) == (lw, lh)
        assert db.raster_store.read_level(ref, level) == expected, (
            f"level {level} pixels diverge after recovery"
        )


@pytest.mark.parametrize("torn", [False, True], ids=["clean", "torn"])
def test_tile_commit_crash_matrix_wal_writes(torn):
    """Crash on every WAL write index of a multi-page tile commit.

    The overwrite transaction carries five tiles (2x2 level-0 grid plus
    the level-1 overview), each tile blob spanning heap pages and the
    whole batch spanning several WAL pages. Wherever the crash lands —
    clean stop or torn page — recovery must land on exactly the
    pre-commit raster or the fully-committed one, byte-identical at
    every pyramid level, and never on a half-written blend. The scalar
    ``name`` update committed alongside the pixels pins which of the
    two states recovery chose.
    """
    db, __, __, __, wal_fault = _build_raster_crashable()
    _overwrite_scan(db)
    budget = wal_fault.writes
    # the batch really is multi-page: base64 tile payloads alone exceed
    # several WAL pages, so the matrix has genuine torn-prefix points
    assert budget >= 4
    before, after = _scan_raster(5), _scan_raster(9)

    crashes = 0
    for n in range(0, budget, STRIDE):
        db, heap_inner, wal_inner, __, wal_fault = _build_raster_crashable()
        wal_fault.arm(n, torn=torn)
        with pytest.raises(CrashError):
            _overwrite_scan(db)
        crashes += 1
        recovered = _recover_raster(heap_inner, wal_inner)
        name = recovered.get_object("Scan#log").get("name")
        assert name in ("before", "after")
        _assert_raster_state(recovered, after if name == "after" else before)
        # stability: a second reopen of the same disks changes nothing
        again = _recover_raster(heap_inner, wal_inner)
        assert again.get_object("Scan#log").get("name") == name
        _assert_raster_state(again, after if name == "after" else before)
    assert crashes > 0

    # Sanity: armed past the budget the overwrite completes, and the
    # committed pixels survive recovery verbatim.
    db, heap_inner, wal_inner, __, wal_fault = _build_raster_crashable()
    wal_fault.arm(budget + 1, torn=torn)
    _overwrite_scan(db)
    recovered = _recover_raster(heap_inner, wal_inner)
    assert recovered.get_object("Scan#log").get("name") == "after"
    _assert_raster_state(recovered, after)


def test_tile_commit_crash_matrix_heap_writes():
    """Crash on every heap write index of the post-commit checkpoint:
    the WAL replays the tile batch, losing nothing."""
    db, __, __, heap_fault, __ = _build_raster_crashable()
    _overwrite_scan(db)
    db.checkpoint()
    budget = heap_fault.writes
    assert budget > 0
    after = _scan_raster(9)

    crashes = 0
    for n in range(0, budget, STRIDE):
        db, heap_inner, wal_inner, heap_fault, __ = _build_raster_crashable()
        _overwrite_scan(db)
        heap_fault.arm(n)
        try:
            db.checkpoint()
        except CrashError:
            crashes += 1
        recovered = _recover_raster(heap_inner, wal_inner)
        assert recovered.get_object("Scan#log").get("name") == "after"
        _assert_raster_state(recovered, after)
    assert crashes > 0


# ---------------------------------------------------------------------------
# Observability surface
# ---------------------------------------------------------------------------


class TestWalObservability:
    def test_commit_emits_wal_counters_and_span(self, obs_recorder):
        wal_fault = FaultInjectingPager(MemoryPager())
        db = _mix_db(wal_fault)
        db.insert(MIX_SCHEMA, MIX_CLASS, {"name": "a", "size": 1})
        registry = obs_recorder.registry
        assert registry.counter("wal.appends", type="B").value == 1
        assert registry.counter("wal.appends", type="I").value == 1
        assert registry.counter("wal.appends", type="C").value == 1
        span = obs_recorder.tracer.last_trace("txn.commit")
        assert span is not None
        assert span.attrs["intents"] == 1

    def test_recovery_counter(self, obs_recorder):
        heap_inner, wal_inner = MemoryPager(), MemoryPager()
        db = GeographicDatabase("mix", pager=heap_inner)
        db.register_schema(build_mix_schema())
        db.attach_wal(WriteAheadLog(wal_inner, sync_mode="none"))
        db.insert(MIX_SCHEMA, MIX_CLASS, {"name": "a", "size": 1},
                  oid="Feature#r1")
        # Drop without checkpoint; the heap pages are still in the buffer.
        recovered = _recover(MemoryPager(), wal_inner)
        assert recovered.find_object("Feature#r1") is not None
        registry = obs_recorder.registry
        assert registry.counter("wal.recoveries").value == 1
