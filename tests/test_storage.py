"""Unit tests for the page store and heap file."""

import os

import pytest

from repro.errors import StorageError
from repro.geodb.storage import (
    FilePager,
    HeapFile,
    MemoryPager,
    PAGE_SIZE,
    RecordId,
    SlottedPage,
    decode_record,
    encode_record,
)


class TestPagers:
    def test_memory_pager_roundtrip(self):
        pager = MemoryPager()
        no = pager.allocate_page()
        pager.write_page(no, b"hello")
        assert pager.read_page(no).startswith(b"hello")
        assert len(pager.read_page(no)) == PAGE_SIZE

    def test_memory_pager_bounds(self):
        pager = MemoryPager()
        with pytest.raises(StorageError):
            pager.read_page(0)
        pager.allocate_page()
        with pytest.raises(StorageError):
            pager.write_page(5, b"x")

    def test_oversized_write_rejected(self):
        pager = MemoryPager(page_size=64)
        no = pager.allocate_page()
        with pytest.raises(StorageError):
            pager.write_page(no, b"x" * 65)

    def test_file_pager_persists(self, tmp_path):
        path = str(tmp_path / "pages.db")
        pager = FilePager(path)
        no = pager.allocate_page()
        pager.write_page(no, b"persist me")
        pager.close()
        reopened = FilePager(path)
        assert reopened.read_page(no).startswith(b"persist me")
        assert reopened.page_count == 1
        reopened.close()

    def test_file_pager_rejects_torn_file(self, tmp_path):
        path = str(tmp_path / "bad.db")
        with open(path, "wb") as f:
            f.write(b"x" * 100)   # not a page multiple
        with pytest.raises(StorageError):
            FilePager(path)


class TestSlottedPage:
    def test_add_get_roundtrip(self):
        page = SlottedPage()
        slot = page.add(b"record-one")
        assert page.get(slot) == b"record-one"
        rebuilt = SlottedPage.from_bytes(page.to_bytes())
        assert rebuilt.get(slot) == b"record-one"
        assert rebuilt.next_slot == page.next_slot

    def test_slot_ids_not_reused(self):
        page = SlottedPage()
        s1 = page.add(b"a")
        page.delete(s1)
        s2 = page.add(b"b")
        assert s2 != s1

    def test_replace_grows_within_capacity(self):
        page = SlottedPage()
        slot = page.add(b"short")
        page.replace(slot, b"a much longer record body")
        assert page.get(slot) == b"a much longer record body"

    def test_overflow_capacity_respected(self):
        page = SlottedPage(page_size=1024)
        with pytest.raises(StorageError):
            page.add(b"x" * 1024)

    def test_empty_slot_errors(self):
        page = SlottedPage()
        with pytest.raises(StorageError):
            page.get(0)
        with pytest.raises(StorageError):
            page.delete(0)


class TestRecordCodec:
    def test_roundtrip_preserves_key_order(self):
        record = {"b": 1, "a": 2, "nested": {"z": 1, "y": 2}}
        assert list(decode_record(encode_record(record))["nested"]) == ["z", "y"]

    def test_unserializable_rejected(self):
        with pytest.raises(StorageError):
            encode_record({"oops": object()})

    def test_corrupt_record_rejected(self):
        with pytest.raises(StorageError):
            decode_record(b"\xff\xfe not json")


class TestHeapFile:
    def test_insert_read(self):
        heap = HeapFile(MemoryPager())
        rid = heap.insert({"name": "a", "n": 1})
        assert heap.read(rid) == {"name": "a", "n": 1}

    def test_many_records_multiple_pages(self):
        heap = HeapFile(MemoryPager(page_size=512))
        rids = [heap.insert({"i": i, "pad": "x" * 50}) for i in range(50)]
        assert heap.pager.page_count > 1
        for i, rid in enumerate(rids):
            assert heap.read(rid)["i"] == i

    def test_overwrite_in_place(self):
        heap = HeapFile(MemoryPager())
        rid = heap.insert({"v": 1})
        new_rid = heap.overwrite(rid, {"v": 2})
        assert new_rid == rid
        assert heap.read(rid) == {"v": 2}

    def test_overwrite_relocates_when_grown(self):
        heap = HeapFile(MemoryPager(page_size=512))
        rid = heap.insert({"v": "tiny"})
        # fill the page so growth cannot happen in place
        while True:
            other = heap.insert({"fill": "y" * 40})
            if other.page_no != rid.page_no:
                break
        new_rid = heap.overwrite(rid, {"v": "z" * 200})
        assert heap.read(new_rid) == {"v": "z" * 200}

    def test_delete(self):
        heap = HeapFile(MemoryPager())
        rid = heap.insert({"v": 1})
        heap.delete(rid)
        with pytest.raises(StorageError):
            heap.read(rid)

    def test_scan_returns_live_records(self):
        heap = HeapFile(MemoryPager())
        rids = [heap.insert({"i": i}) for i in range(10)]
        heap.delete(rids[3])
        scanned = {record["i"] for __, record in heap.scan()}
        assert scanned == set(range(10)) - {3}

    def test_overflow_record_roundtrip(self):
        heap = HeapFile(MemoryPager())
        big = {"blob": "x" * (PAGE_SIZE * 3)}
        rid = heap.insert(big)
        assert heap.read(rid) == big
        scanned = [record for __, record in heap.scan()]
        assert scanned == [big]

    def test_overflow_delete_releases_pages(self):
        heap = HeapFile(MemoryPager())
        rid = heap.insert({"blob": "x" * (PAGE_SIZE * 2)})
        pages_before = heap.pager.page_count
        heap.delete(rid)
        # pages remain allocated but become reusable
        small_rids = [heap.insert({"i": i}) for i in range(5)]
        assert heap.pager.page_count == pages_before
        for rid2 in small_rids:
            assert "i" in heap.read(rid2)

    def test_overflow_overwrite(self):
        heap = HeapFile(MemoryPager())
        rid = heap.insert({"blob": "x" * (PAGE_SIZE * 2)})
        new_rid = heap.overwrite(rid, {"blob": "small now"})
        assert heap.read(new_rid) == {"blob": "small now"}

    def test_persistence_through_file_pager(self, tmp_path):
        path = str(tmp_path / "heap.db")
        pager = FilePager(path)
        heap = HeapFile(pager)
        rid = heap.insert({"kept": True, "n": 42})
        pager.close()
        heap2 = HeapFile(FilePager(path))
        assert heap2.read(rid) == {"kept": True, "n": 42}
        # free-space map rebuilt: inserts still work
        rid2 = heap2.insert({"more": 1})
        assert heap2.read(rid2) == {"more": 1}

    def test_record_id_ordering(self):
        assert RecordId(0, 1) < RecordId(1, 0)
        assert str(RecordId(2, 3)) == "rid(2:3)"
