"""Unit tests for the HTML renderer."""

import re

from repro.core import GISSession
from repro.lang import FIGURE_6_PROGRAM
from repro.uilib import (
    Button,
    Panel,
    Slider,
    Text,
    Window,
    render_html,
    render_screen_html,
)


class TestBasics:
    def test_window_fragment(self):
        window = Window("w", title="Hello & <World>")
        window.add_child(Panel("p"))
        out = render_html(window)
        assert out.startswith("<div class='repro-window' id='w'>")
        assert "Hello &amp; &lt;World&gt;" in out   # escaping

    def test_full_page_has_style(self):
        out = render_html(Window("w"), full_page=True)
        assert out.startswith("<!DOCTYPE html>")
        assert "<style>" in out

    def test_hidden_window_marked(self):
        out = render_html(Window("w", visible=False))
        assert "repro-window hidden" in out

    def test_hidden_child_skipped(self):
        panel = Panel("p")
        panel.add_child(Button("b", label="Visible"))
        panel.add_child(Button("c", label="Ghost", visible=False))
        out = render_html(panel)
        assert "Visible" in out and "Ghost" not in out

    def test_editable_text_becomes_input(self):
        editable = Text("t", label="Name", value="v", editable=True)
        readonly = Text("r", label="Code", value="x")
        assert "<input value='v'/>" in render_html(editable)
        assert "<input" not in render_html(readonly)

    def test_slider_range_input(self):
        out = render_html(Slider("s", minimum=0, maximum=30, value=9,
                                 label="height"))
        assert "type='range'" in out and "max='30.0'" in out


class TestSessionRendering:
    def test_customized_session_page(self, phone_db, pole_oid):
        session = GISSession(phone_db, user="juliano",
                             application="pole_manager")
        session.install_program(FIGURE_6_PROGRAM, persist=False)
        session.connect("phone_net")
        session.select_instance(pole_oid)
        page = render_screen_html(session.screen.windows())
        assert page.count("repro-window") >= 3
        assert "repro-window hidden" in page        # the NULL schema window
        assert "type='range'" in page               # the poleWidget slider
        # map cells carry pickable oids
        assert re.search(r"data-oid='Pole#\d+'", page)
        # selected instance marked in the list
        assert "class='selected'" in page

    def test_list_selection_and_keys(self, generic_session):
        generic_session.connect("phone_net")
        window = generic_session.screen.window("schema_phone_net")
        window.find("classes").select("Pole")
        out = render_html(window)
        assert "data-key='Pole'" in out
        assert re.search(r"<li class='selected'[^>]*>Pole", out)

    def test_menu_items(self, generic_session):
        generic_session.connect("phone_net")
        out = render_html(generic_session.screen.window("schema_phone_net"))
        assert "data-item='refresh'" in out
