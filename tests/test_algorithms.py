"""Unit tests for the computational-geometry algorithms."""

import math

import pytest

from repro.errors import GeometryError
from repro.spatial import (
    BBox,
    LineString,
    Point,
    Polygon,
    buffer_line,
    buffer_point,
    convex_hull,
    densify_line,
    geometry_distance,
    line_clip_bbox,
    polygon_clip_bbox,
    segments_intersect,
    simplify_line,
)
from repro.spatial.algorithms import (
    orientation,
    point_segment_distance,
    segment_intersection_point,
    segment_segment_distance,
)


class TestOrientation:
    def test_turns(self):
        assert orientation((0, 0), (1, 0), (1, 1)) == 1    # ccw
        assert orientation((0, 0), (1, 0), (1, -1)) == -1  # cw
        assert orientation((0, 0), (1, 0), (2, 0)) == 0    # collinear


class TestSegmentIntersection:
    def test_crossing(self):
        assert segments_intersect((0, 0), (2, 2), (0, 2), (2, 0))

    def test_disjoint(self):
        assert not segments_intersect((0, 0), (1, 0), (0, 1), (1, 1))

    def test_touching_endpoint(self):
        assert segments_intersect((0, 0), (1, 1), (1, 1), (2, 0))

    def test_collinear_overlap(self):
        assert segments_intersect((0, 0), (5, 0), (3, 0), (8, 0))

    def test_collinear_separated(self):
        assert not segments_intersect((0, 0), (1, 0), (2, 0), (3, 0))

    def test_intersection_point(self):
        pt = segment_intersection_point((0, 0), (2, 2), (0, 2), (2, 0))
        assert pt == pytest.approx((1.0, 1.0))
        assert segment_intersection_point((0, 0), (1, 0), (0, 1), (1, 1)) is None
        # parallel/collinear returns None
        assert segment_intersection_point((0, 0), (1, 0), (2, 0), (3, 0)) is None


class TestDistances:
    def test_point_segment(self):
        assert point_segment_distance((0, 5), (0, 0), (10, 0)) == 5.0
        assert point_segment_distance((-3, 4), (0, 0), (10, 0)) == 5.0
        assert point_segment_distance((5, 0), (0, 0), (10, 0)) == 0.0

    def test_degenerate_segment(self):
        assert point_segment_distance((3, 4), (0, 0), (0, 0)) == 5.0

    def test_segment_segment(self):
        assert segment_segment_distance((0, 0), (1, 0), (0, 1), (1, 1)) == 1.0
        assert segment_segment_distance((0, 0), (2, 2), (0, 2), (2, 0)) == 0.0

    def test_geometry_distance_point_polygon(self):
        poly = Polygon.from_bbox(BBox(0, 0, 10, 10))
        assert geometry_distance(Point(5, 5), poly) == 0.0
        assert geometry_distance(Point(13, 0), poly) == pytest.approx(3.0)

    def test_geometry_distance_line_line(self):
        a = LineString([(0, 0), (10, 0)])
        b = LineString([(0, 3), (10, 3)])
        assert geometry_distance(a, b) == pytest.approx(3.0)

    def test_geometry_distance_symmetric(self):
        a = Point(0, 0)
        b = LineString([(5, 0), (5, 10)])
        assert geometry_distance(a, b) == geometry_distance(b, a) == 5.0

    def test_point_inside_polygon_distance_zero_both_ways(self):
        poly = Polygon.from_bbox(BBox(0, 0, 10, 10))
        assert geometry_distance(poly, Point(5, 5)) == 0.0


class TestConvexHull:
    def test_square_with_interior_points(self):
        pts = [(0, 0), (10, 0), (10, 10), (0, 10), (5, 5), (3, 7)]
        hull = convex_hull(pts)
        assert set(hull) == {(0, 0), (10, 0), (10, 10), (0, 10)}

    def test_hull_is_ccw(self):
        hull = convex_hull([(0, 0), (4, 0), (4, 4), (0, 4), (2, 2)])
        ring_area = sum(
            hull[i][0] * hull[(i + 1) % len(hull)][1]
            - hull[(i + 1) % len(hull)][0] * hull[i][1]
            for i in range(len(hull))
        ) / 2.0
        assert ring_area > 0

    def test_degenerate_inputs(self):
        assert convex_hull([(1, 1)]) == [(1.0, 1.0)]
        assert convex_hull([(0, 0), (1, 1), (2, 2)]) == [
            (0.0, 0.0), (1.0, 1.0), (2.0, 2.0)
        ]
        assert convex_hull([(1, 1), (1, 1)]) == [(1.0, 1.0)]


class TestSimplify:
    def test_collinear_collapse(self):
        coords = [(0, 0), (1, 0.001), (2, -0.001), (10, 0)]
        assert simplify_line(coords, tolerance=0.1) == [(0, 0), (10, 0)]

    def test_keeps_significant_vertices(self):
        coords = [(0, 0), (5, 5), (10, 0)]
        assert simplify_line(coords, tolerance=0.1) == coords

    def test_endpoints_always_kept(self):
        coords = [(0, 0), (1, 100), (2, 0)]
        out = simplify_line(coords, tolerance=1000)
        assert out[0] == (0, 0) and out[-1] == (2, 0)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(GeometryError):
            simplify_line([(0, 0), (1, 1)], -1)


class TestDensify:
    def test_max_segment_respected(self):
        out = densify_line([(0, 0), (10, 0)], max_segment=3)
        assert len(out) >= 4
        for (ax, ay), (bx, by) in zip(out, out[1:]):
            assert math.hypot(bx - ax, by - ay) <= 3.0 + 1e-9

    def test_endpoints_preserved(self):
        out = densify_line([(0, 0), (7, 0), (7, 7)], max_segment=2)
        assert out[0] == (0, 0) and out[-1] == (7, 7)

    def test_zero_rejected(self):
        with pytest.raises(GeometryError):
            densify_line([(0, 0), (1, 0)], 0)


class TestBuffers:
    def test_buffer_point_contains_center(self):
        disc = buffer_point(Point(5, 5), 2.0, sides=16)
        assert disc.contains_point(5, 5)
        assert disc.area() == pytest.approx(math.pi * 4, rel=0.1)

    def test_buffer_line_covers_corridor(self):
        corridor = buffer_line(LineString([(0, 0), (10, 0)]), 2.0)
        assert corridor.contains_point(5, 1.5)
        assert corridor.contains_point(0, 0)
        assert not corridor.contains_point(5, 5)

    def test_buffer_radius_positive(self):
        with pytest.raises(GeometryError):
            buffer_line(LineString([(0, 0), (1, 0)]), 0)


class TestClipping:
    def test_polygon_fully_inside(self):
        poly = Polygon.from_bbox(BBox(2, 2, 4, 4))
        clipped = polygon_clip_bbox(poly, BBox(0, 0, 10, 10))
        assert clipped is not None
        assert clipped.area() == pytest.approx(4.0)

    def test_polygon_partially_clipped(self):
        poly = Polygon.from_bbox(BBox(-5, -5, 5, 5))
        clipped = polygon_clip_bbox(poly, BBox(0, 0, 10, 10))
        assert clipped is not None
        assert clipped.area() == pytest.approx(25.0)

    def test_polygon_outside(self):
        poly = Polygon.from_bbox(BBox(20, 20, 30, 30))
        assert polygon_clip_bbox(poly, BBox(0, 0, 10, 10)) is None

    def test_line_clip_passthrough(self):
        line = LineString([(-5, 5), (15, 5)])
        pieces = line_clip_bbox(line, BBox(0, 0, 10, 10))
        assert len(pieces) == 1
        assert pieces[0].coords[0] == (0.0, 5.0)
        assert pieces[0].coords[-1] == (10.0, 5.0)

    def test_line_clip_multiple_pieces(self):
        # zig-zag leaving and re-entering the window
        line = LineString([(1, 1), (1, 15), (5, 15), (5, 1), (9, 1), (9, 15)])
        pieces = line_clip_bbox(line, BBox(0, 0, 10, 10))
        assert len(pieces) >= 2

    def test_line_clip_outside(self):
        assert line_clip_bbox(LineString([(20, 20), (30, 30)]),
                              BBox(0, 0, 10, 10)) == []
