"""Replication and read scale-out over the wire.

Real sockets end to end: a follower bootstraps from a serving leader
through :class:`RemoteReplicationSource` (chunked snapshots, incremental
polls), the kernel routes ``read_preference="replica"`` queries to
attached followers with a read-your-writes LSN wait, and
:class:`GISClient` survives a server restart by redialing — but only
ever resends idempotent request kinds (a ``txn`` is never retried).
"""

from __future__ import annotations

import socket

import pytest

from repro.core.kernel import GISKernel
from repro.errors import NetClientError, NetError, ProtocolError
from repro.geodb import (
    GeographicDatabase,
    LocalReplicationSource,
    MemoryPager,
    RemoteReplicationSource,
    WriteAheadLog,
)
from repro.net import GISClient, ServerThread
from repro.net.router import Router
from repro.workloads import build_mix_schema
from repro.workloads.txn_mix import MIX_CLASS, MIX_SCHEMA, snapshot_state


def make_leader_kernel(n=20) -> GISKernel:
    db = GeographicDatabase("leader", pager=MemoryPager())
    db.register_schema(build_mix_schema())
    db.attach_wal(WriteAheadLog(MemoryPager(), sync_mode="none"))
    for i in range(n):
        db.insert(MIX_SCHEMA, MIX_CLASS, {"name": f"w{i:02d}", "size": i})
    return GISKernel(db)


@pytest.fixture()
def kernel():
    kernel = make_leader_kernel()
    yield kernel
    kernel.shutdown()


@pytest.fixture()
def server(kernel):
    with ServerThread(kernel) as (host, port):
        yield (host, port, kernel)


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class TestWireReplication:
    def test_chunked_bootstrap_and_poll(self, server, monkeypatch):
        monkeypatch.setattr(Router, "SNAPSHOT_CHUNK", 8)
        host, port, kernel = server
        with GISClient(host, port) as client:
            assert client.repl_snapshot(0)["chunks"] == 3  # 20 objects / 8
            follower = GeographicDatabase.follow(
                RemoteReplicationSource(client), name="wire-f")
            assert snapshot_state(follower) \
                == snapshot_state(kernel.database)
            # incremental: new leader commits arrive via repl_poll
            kernel.database.insert(MIX_SCHEMA, MIX_CLASS,
                                   {"name": "late", "size": 99})
            assert follower.poll_replication() == 1
            assert snapshot_state(follower) \
                == snapshot_state(kernel.database)

    def test_repl_status_over_wire(self, server):
        host, port, kernel = server
        with GISClient(host, port) as client:
            client.repl_snapshot(0)  # enables shipping on the leader
            status = client.repl_status()
            assert status["lsn"] == kernel.database.replication_lsn
            assert status["status"]["leader"]["role"] == "leader"

    def test_replica_routed_wire_query(self, server):
        host, port, kernel = server
        with GISClient(host, port) as client:
            # the serving kernel feeds its replica in-process (a remote
            # source pulling through this same connection would re-enter
            # the handler thread); the *routing* is what crosses the wire
            follower = GeographicDatabase.follow(
                LocalReplicationSource(kernel.database), name="wire-f")
            kernel.attach_replica(follower)
            try:
                response = client.query(
                    MIX_SCHEMA, "select count(*) from Feature",
                    read_preference="replica")
                assert response["rows"][0]["count(*)"] == 20
                # read-your-writes: the wait is satisfiable because the
                # local poller can be driven from this thread, so assert
                # the already-applied LSN path
                response = client.query(
                    MIX_SCHEMA, "select name from Feature order by name "
                    "limit 1",
                    read_preference="replica",
                    min_lsn=follower.replication_lsn)
                [row] = response["rows"]
                assert row["name"] == "w00"
            finally:
                kernel.detach_replica("wire-f")

    def test_bad_read_preference_is_a_request_error(self, server):
        host, port, _ = server
        with GISClient(host, port) as client:
            with pytest.raises(NetClientError):
                client.query(MIX_SCHEMA, "select * from Feature",
                             read_preference="nearest")

    def test_repl_poll_requires_cursor(self, server):
        host, port, _ = server
        with GISClient(host, port) as client:
            with pytest.raises((NetClientError, ProtocolError)):
                client.request("repl_poll")

    def test_snapshot_chunk_out_of_range(self, server):
        host, port, _ = server
        with GISClient(host, port) as client:
            with pytest.raises((NetClientError, ProtocolError)):
                client.repl_snapshot(chunk=7)


class TestClientReconnect:
    def test_idempotent_requests_survive_server_restart(self, kernel):
        port = free_port()
        first = ServerThread(kernel, port=port)
        first.start()
        client = GISClient("127.0.0.1", port, timeout=15,
                           reconnect=3, reconnect_backoff=0.01)
        try:
            assert client.ping()
            first.stop()
            second = ServerThread(kernel, port=port)
            second.start()
            try:
                # the dead socket surfaces on the next request; ping is
                # idempotent, so the client redials and resends
                assert client.ping()
                assert client.reconnects == 1
                assert client.query(
                    MIX_SCHEMA,
                    "select count(*) from Feature")["rows"] \
                    [0]["count(*)"] == 20
                assert client.reconnects == 1  # healthy link, no redial
            finally:
                second.stop()
        finally:
            client.close()

    def test_reconnect_clears_connection_scoped_session(self, kernel):
        port = free_port()
        first = ServerThread(kernel, port=port)
        first.start()
        client = GISClient("127.0.0.1", port, timeout=15,
                           reconnect=2, reconnect_backoff=0.01)
        try:
            client.open_session(user="demo")
            assert client.session is not None
            first.stop()
            second = ServerThread(kernel, port=port)
            second.start()
            try:
                assert client.ping()
                # the server-side session died with the old connection
                assert client.session is None
            finally:
                second.stop()
        finally:
            client.close()

    def test_txn_is_never_resent(self, kernel):
        port = free_port()
        first = ServerThread(kernel, port=port)
        first.start()
        client = GISClient("127.0.0.1", port, timeout=15,
                           reconnect=3, reconnect_backoff=0.01)
        count_before = kernel.database.count(MIX_SCHEMA, MIX_CLASS)
        try:
            assert client.ping()
            first.stop()
            second = ServerThread(kernel, port=port)
            second.start()
            try:
                # a mutation on a dead socket fails fast — a blind
                # resend could double-apply a commit
                with pytest.raises((NetError, OSError)):
                    client.insert(MIX_SCHEMA, MIX_CLASS,
                                  {"name": "dup", "size": 1})
                assert client.reconnects == 0
                assert kernel.database.count(MIX_SCHEMA, MIX_CLASS) \
                    == count_before
            finally:
                second.stop()
        finally:
            client.close()

    def test_fail_fast_without_reconnect_budget(self, kernel):
        port = free_port()
        thread = ServerThread(kernel, port=port)
        thread.start()
        client = GISClient("127.0.0.1", port, timeout=15)  # reconnect=0
        try:
            assert client.ping()
            thread.stop()
            with pytest.raises((NetError, OSError)):
                client.ping()
            assert client.reconnects == 0
        finally:
            client.close()
