"""Unit tests for the interface objects library and the composites."""

import pytest

from repro.errors import UnknownWidgetError, WidgetError
from repro.geodb import GeographicDatabase, MetadataCatalog
from repro.uilib import (
    ComposedText,
    InterfaceObject,
    InterfaceObjectLibrary,
    Slider,
    WidgetTemplate,
    install_standard_composites,
)


@pytest.fixture()
def library():
    return InterfaceObjectLibrary()


@pytest.fixture()
def persistent_library():
    db = GeographicDatabase("L")
    catalog = MetadataCatalog(db)
    return InterfaceObjectLibrary(catalog), catalog


class TestKernelRegistry:
    def test_kernel_available(self, library):
        for name in ("window", "panel", "text", "drawing_area", "list",
                     "button", "menu", "menu_item", "slider"):
            assert library.has(name)
            assert library.kind_of(name) == "class"

    def test_create_kernel_widget(self, library):
        button = library.create("button", "go", label="Go")
        assert button.widget_type == "button"
        assert button.label == "Go"

    def test_unknown_widget(self, library):
        assert not library.has("ghost")
        with pytest.raises(UnknownWidgetError):
            library.create("ghost")
        with pytest.raises(UnknownWidgetError):
            library.kind_of("ghost")

    def test_register_class(self, library):
        class Badge(InterfaceObject):
            widget_type = "badge"

        library.register_class("badge", Badge)
        assert library.kind_of("badge") == "class"
        assert isinstance(library.create("badge"), Badge)
        with pytest.raises(WidgetError):
            library.register_class("badge", Badge)
        with pytest.raises(WidgetError):
            library.register_class("bad", dict)  # type: ignore[arg-type]


class TestSpecializations:
    def test_specialize_presets_properties(self, library):
        library.specialize("bigButton", "button",
                           props={"label": "BIG"}, persist=False)
        widget = library.create("bigButton", "b1")
        assert widget.label == "BIG"
        assert widget.get_property("library_type") == "bigButton"

    def test_instantiation_params_override_presets(self, library):
        library.specialize("bigButton", "button",
                           props={"label": "BIG"}, persist=False)
        widget = library.create("bigButton", label="custom")
        assert widget.label == "custom"

    def test_specialize_of_specialization(self, library):
        library.specialize("a", "slider", props={"maximum": 50.0},
                           persist=False)
        library.specialize("b", "a", props={"minimum": 10.0}, persist=False)
        widget = library.create("b")
        assert isinstance(widget, Slider)
        assert (widget.minimum, widget.maximum) == (10.0, 50.0)

    def test_unknown_base_rejected(self, library):
        with pytest.raises(UnknownWidgetError):
            library.specialize("x", "ghost", persist=False)

    def test_name_collision_rejected(self, library):
        with pytest.raises(WidgetError):
            library.specialize("button", "slider", persist=False)


class TestTemplates:
    def template(self):
        return WidgetTemplate(
            name="pair",
            defaults={"title": "Pair"},
            spec={
                "type": "panel",
                "name": "pair_root",
                "props": {"label": "$title"},
                "children": [
                    {"type": "text", "name": "left", "props": {"label": "L"}},
                    {"type": "button", "name": "right",
                     "props": {"label": "$action"}},
                ],
            },
        )

    def test_instantiate_with_params(self, library):
        library.register_template(self.template(), persist=False)
        widget = library.create("pair", "mine", action="Run")
        assert widget.name == "mine"
        assert widget.get_property("label") == "Pair"
        assert widget.child("right").label == "Run"

    def test_missing_parameter_rejected(self, library):
        library.register_template(self.template(), persist=False)
        with pytest.raises(WidgetError, match="action"):
            library.create("pair")

    def test_template_validates_widget_types(self, library):
        bad = WidgetTemplate(name="bad", spec={"type": "ghost"})
        with pytest.raises(UnknownWidgetError):
            library.register_template(bad, persist=False)
        missing_type = WidgetTemplate(name="bad2", spec={"name": "x"})
        with pytest.raises(WidgetError):
            library.register_template(missing_type, persist=False)

    def test_templates_can_nest_library_entries(self, library):
        library.specialize("fancyButton", "button",
                           props={"label": "Fancy"}, persist=False)
        nested = WidgetTemplate(
            name="nest",
            spec={"type": "panel", "name": "n", "children": [
                {"type": "fancyButton", "name": "fb"},
            ]},
        )
        library.register_template(nested, persist=False)
        widget = library.create("nest")
        assert widget.child("fb").label == "Fancy"

    def test_remove(self, library):
        library.register_template(self.template(), persist=False)
        library.remove("pair")
        assert not library.has("pair")
        with pytest.raises(UnknownWidgetError):
            library.remove("button")   # kernel classes are not removable


class TestPersistence:
    def test_catalog_roundtrip(self, persistent_library):
        library, catalog = persistent_library
        library.specialize("bigButton", "button", props={"label": "BIG"})
        library.register_template(WidgetTemplate(
            name="solo", spec={"type": "button", "name": "b",
                               "props": {"label": "x"}}))
        fresh = InterfaceObjectLibrary(catalog)
        assert fresh.load_from_catalog() == 2
        assert fresh.create("bigButton").label == "BIG"
        assert fresh.kind_of("solo") == "template"

    def test_remove_deletes_catalog_document(self, persistent_library):
        library, catalog = persistent_library
        library.specialize("temp", "button")
        assert catalog.has("widget", "temp")
        library.remove("temp")
        assert not catalog.has("widget", "temp")

    def test_load_without_catalog_rejected(self, library):
        with pytest.raises(WidgetError):
            library.load_from_catalog()

    def test_describe_entries(self, library):
        library.specialize("sp", "button", props={"label": "x"},
                           persist=False)
        assert library.describe("button")["kind"] == "class"
        assert library.describe("sp")["base"] == "button"


class TestStandardComposites:
    def test_install_and_reinstall(self, library):
        installed = install_standard_composites(library, persist=False)
        assert set(installed) == {"composed_text", "poleWidget",
                                  "map_selection_panel"}
        assert install_standard_composites(library, persist=False) == []

    def test_pole_widget_is_slider(self, library):
        install_standard_composites(library, persist=False)
        widget = library.create("poleWidget")
        assert isinstance(widget, Slider)
        assert widget.maximum == 30.0

    def test_composed_text_notify(self, library):
        install_standard_composites(library, persist=False)
        widget = library.create("composed_text", "c",
                                fields=["a", "b"], label="pair")
        assert isinstance(widget, ComposedText)
        widget.set_parts({"a": "wood", "b": 12})
        assert widget.summary == "wood / 12"
        widget.child("part_b").set_value("13")
        assert widget.fire("notify") == ["wood / 13"]

    def test_composed_text_requires_fields(self):
        with pytest.raises(WidgetError):
            ComposedText("c", fields=[])

    def test_composed_text_skips_empty_parts(self, library):
        install_standard_composites(library, persist=False)
        widget = library.create("composed_text", "c", fields=["a", "b"])
        widget.set_parts({"a": "only"})
        assert widget.summary == "only"

    def test_map_selection_panel_structure(self, library):
        install_standard_composites(library, persist=False)
        panel = library.create("map_selection_panel")
        assert panel.find("available_maps") is not None
        assert panel.find("chosen_maps") is not None
        assert panel.find("region_name").get_property("editable")
        ops = panel.child("operations")
        assert [b.label for b in ops.children] == ["Add", "Remove", "Open"]
