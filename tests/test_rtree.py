"""Unit tests for the R-tree."""

import random

import pytest

from repro.errors import IndexError_
from repro.spatial import BBox, RTree, bulk_load, naive_search


def make_entries(count, seed=0, extent=1000.0, size=5.0):
    rng = random.Random(seed)
    out = []
    for i in range(count):
        x = rng.uniform(0, extent - size)
        y = rng.uniform(0, extent - size)
        out.append((BBox(x, y, x + rng.uniform(0, size),
                         y + rng.uniform(0, size)), i))
    return out


class TestInsertSearch:
    def test_empty_tree(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.search(BBox(0, 0, 100, 100)) == []
        assert tree.bbox().is_empty()

    def test_search_matches_naive(self):
        entries = make_entries(400, seed=1)
        tree = RTree(max_entries=8)
        for box, item in entries:
            tree.insert(box, item)
        tree.check_invariants()
        for qseed in range(10):
            rng = random.Random(qseed)
            x, y = rng.uniform(0, 900), rng.uniform(0, 900)
            window = BBox(x, y, x + 100, y + 100)
            assert sorted(tree.search(window)) == sorted(
                naive_search(entries, window)
            )

    def test_search_point(self):
        tree = RTree()
        tree.insert(BBox(0, 0, 10, 10), "a")
        tree.insert(BBox(20, 20, 30, 30), "b")
        assert tree.search_point(5, 5) == ["a"]
        assert tree.search_point(25, 25) == ["b"]
        assert tree.search_point(15, 15) == []

    def test_empty_query_box(self):
        tree = RTree()
        tree.insert(BBox(0, 0, 1, 1), "a")
        assert tree.search(BBox.empty()) == []

    def test_cannot_insert_empty_box(self):
        with pytest.raises(IndexError_):
            RTree().insert(BBox.empty(), "x")

    def test_duplicate_boxes_allowed(self):
        tree = RTree()
        box = BBox(0, 0, 1, 1)
        for i in range(20):
            tree.insert(box, i)
        assert sorted(tree.search(box)) == list(range(20))
        tree.check_invariants()

    def test_count(self):
        tree = RTree()
        for box, item in make_entries(50, seed=2):
            tree.insert(box, item)
        window = BBox(0, 0, 500, 500)
        assert tree.count(window) == len(tree.search(window))

    def test_height_grows_logarithmically(self):
        tree = RTree(max_entries=4)
        for box, item in make_entries(500, seed=3):
            tree.insert(box, item)
        assert tree.height <= 8
        tree.check_invariants()


class TestDelete:
    def test_delete_then_search(self):
        entries = make_entries(200, seed=4)
        tree = RTree(max_entries=6)
        for box, item in entries:
            tree.insert(box, item)
        removed = entries[:100]
        for box, item in removed:
            tree.delete(box, item)
        tree.check_invariants()
        assert len(tree) == 100
        window = BBox(0, 0, 1000, 1000)
        assert sorted(tree.search(window)) == sorted(
            i for __, i in entries[100:]
        )

    def test_delete_missing_raises(self):
        tree = RTree()
        tree.insert(BBox(0, 0, 1, 1), "a")
        with pytest.raises(IndexError_):
            tree.delete(BBox(0, 0, 1, 1), "b")
        with pytest.raises(IndexError_):
            tree.delete(BBox(5, 5, 6, 6), "a")

    def test_delete_all_then_reuse(self):
        entries = make_entries(60, seed=5)
        tree = RTree(max_entries=4)
        for box, item in entries:
            tree.insert(box, item)
        for box, item in entries:
            tree.delete(box, item)
        assert len(tree) == 0
        tree.check_invariants()
        tree.insert(BBox(0, 0, 1, 1), "again")
        assert tree.search_point(0.5, 0.5) == ["again"]


class TestNearest:
    def test_nearest_single(self):
        tree = RTree()
        tree.insert(BBox(0, 0, 1, 1), "near")
        tree.insert(BBox(100, 100, 101, 101), "far")
        assert tree.nearest(2, 2) == ["near"]

    def test_nearest_k_ordered(self):
        tree = RTree()
        for i in range(10):
            tree.insert(BBox(i * 10, 0, i * 10 + 1, 1), i)
        assert tree.nearest(0, 0, k=3) == [0, 1, 2]

    def test_nearest_k_larger_than_size(self):
        tree = RTree()
        tree.insert(BBox(0, 0, 1, 1), "only")
        assert tree.nearest(50, 50, k=5) == ["only"]

    def test_nearest_invalid_k(self):
        with pytest.raises(IndexError_):
            RTree().nearest(0, 0, k=0)

    def test_nearest_matches_brute_force(self):
        entries = make_entries(150, seed=6)
        tree = RTree()
        for box, item in entries:
            tree.insert(box, item)
        qx, qy = 500.0, 500.0
        brute = sorted(entries, key=lambda e: e[0].distance_to_point(qx, qy))
        got = set(tree.nearest(qx, qy, k=5))
        expected_dists = sorted(
            e[0].distance_to_point(qx, qy) for e in brute[:5]
        )
        got_dists = sorted(
            box.distance_to_point(qx, qy)
            for box, item in entries if item in got
        )
        assert got_dists == pytest.approx(expected_dists)


class TestConstruction:
    def test_parameters_validated(self):
        with pytest.raises(IndexError_):
            RTree(max_entries=1)
        with pytest.raises(IndexError_):
            RTree(max_entries=4, min_entries=3)

    def test_bulk_load_equivalent(self):
        entries = make_entries(300, seed=7)
        tree = bulk_load(entries, max_entries=8)
        tree.check_invariants()
        window = BBox(100, 100, 400, 400)
        assert sorted(tree.search(window)) == sorted(
            naive_search(entries, window)
        )

    def test_bulk_load_empty(self):
        assert len(bulk_load([])) == 0

    def test_items_iterates_everything(self):
        entries = make_entries(40, seed=8)
        tree = RTree()
        for box, item in entries:
            tree.insert(box, item)
        assert sorted(i for __, i in tree.items()) == sorted(
            i for __, i in entries
        )


class TestSTRBulkLoad:
    def test_packed_tree_invariants_across_sizes(self):
        for count in (1, 3, 7, 16, 17, 100, 1000):
            entries = make_entries(count, seed=count)
            tree = bulk_load(entries, max_entries=8)
            tree.check_invariants()
            assert len(tree) == count

    def test_str_packs_shallower_than_incremental(self):
        entries = make_entries(2000, seed=20)
        packed = bulk_load(entries, max_entries=8)
        incremental = RTree(max_entries=8)
        for box, item in entries:
            incremental.insert(box, item)
        assert packed.height <= incremental.height

    def test_dynamic_ops_after_bulk_load(self):
        entries = make_entries(300, seed=21)
        tree = bulk_load(entries, max_entries=8)
        for box, item in entries[:150]:
            tree.delete(box, item)
        tree.insert(BBox(0, 0, 1, 1), "fresh")
        tree.check_invariants()
        assert len(tree) == 151
        window = BBox(0, 0, 1000, 1000)
        expected = {i for __, i in entries[150:]} | {"fresh"}
        assert set(tree.search(window)) == expected

    def test_str_answers_match_naive(self):
        entries = make_entries(800, seed=22)
        tree = bulk_load(entries, max_entries=16)
        for qseed in range(6):
            rng = random.Random(qseed)
            x, y = rng.uniform(0, 800), rng.uniform(0, 800)
            window = BBox(x, y, x + 150, y + 150)
            assert sorted(tree.search(window)) == sorted(
                naive_search(entries, window))


class TestBulkLoadClassmethod:
    """``RTree.bulk_load`` is the canonical STR entry point; the module
    function is a thin wrapper kept for callers that import it."""

    def test_classmethod_matches_insert_built_tree(self):
        entries = make_entries(500, seed=30)
        packed = RTree.bulk_load(entries, max_entries=8)
        packed.check_invariants()
        incremental = RTree(max_entries=8)
        for box, item in entries:
            incremental.insert(box, item)
        window = BBox(50, 50, 600, 600)
        assert sorted(packed.search(window)) == sorted(
            incremental.search(window))

    def test_min_entries_parameter_respected(self):
        entries = make_entries(200, seed=31)
        tree = RTree.bulk_load(entries, max_entries=10, min_entries=3)
        assert tree.max_entries == 10
        assert tree.min_entries == 3
        tree.check_invariants()

    def test_module_function_delegates(self):
        entries = make_entries(64, seed=32)
        via_module = bulk_load(entries, max_entries=8)
        via_class = RTree.bulk_load(entries, max_entries=8)
        window = BBox(0, 0, 1000, 1000)
        assert sorted(via_module.search(window)) == sorted(
            via_class.search(window))

    def test_bulk_load_counter(self):
        from repro import obs

        recorder = obs.enable(registry=obs.MetricsRegistry())
        try:
            RTree.bulk_load(make_entries(10, seed=33))
            RTree.bulk_load([])        # empty builds count too
            assert recorder.registry.counter_value("rtree.bulk_loads") == 2
        finally:
            obs.disable()
