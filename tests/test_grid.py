"""Unit tests for the uniform grid index."""

import pytest

from repro.errors import IndexError_
from repro.spatial import BBox, GridIndex
from repro.spatial.rtree import naive_search


class TestGridIndex:
    def test_construction_validated(self):
        with pytest.raises(IndexError_):
            GridIndex(BBox.empty(), 10)
        with pytest.raises(IndexError_):
            GridIndex(BBox(0, 0, 100, 100), 0)

    def test_shape(self):
        grid = GridIndex(BBox(0, 0, 100, 50), cell_size=10)
        assert grid.shape == (10, 5)

    def test_search_matches_naive(self):
        import random

        rng = random.Random(9)
        universe = BBox(0, 0, 1000, 1000)
        grid = GridIndex(universe, cell_size=50)
        entries = []
        for i in range(300):
            x, y = rng.uniform(0, 990), rng.uniform(0, 990)
            box = BBox(x, y, x + rng.uniform(0, 30), y + rng.uniform(0, 30))
            grid.insert(box, i)
            entries.append((box, i))
        for qseed in range(8):
            q = random.Random(qseed)
            x, y = q.uniform(0, 800), q.uniform(0, 800)
            window = BBox(x, y, x + 150, y + 150)
            assert sorted(grid.search(window)) == sorted(
                naive_search(entries, window)
            )

    def test_spanning_item_not_duplicated(self):
        grid = GridIndex(BBox(0, 0, 100, 100), cell_size=10)
        grid.insert(BBox(5, 5, 95, 95), "big")
        hits = grid.search(BBox(0, 0, 100, 100))
        assert hits == ["big"]

    def test_outside_universe_rejected(self):
        grid = GridIndex(BBox(0, 0, 100, 100), cell_size=10)
        with pytest.raises(IndexError_):
            grid.insert(BBox(200, 200, 210, 210), "x")

    def test_delete(self):
        grid = GridIndex(BBox(0, 0, 100, 100), cell_size=10)
        box = BBox(5, 5, 45, 45)
        grid.insert(box, "a")
        grid.insert(BBox(50, 50, 60, 60), "b")
        grid.delete(box, "a")
        assert len(grid) == 1
        assert grid.search(BBox(0, 0, 100, 100)) == ["b"]
        with pytest.raises(IndexError_):
            grid.delete(box, "a")

    def test_search_point(self):
        grid = GridIndex(BBox(0, 0, 100, 100), cell_size=10)
        grid.insert(BBox(0, 0, 20, 20), "corner")
        assert grid.search_point(10, 10) == ["corner"]
        assert grid.search_point(90, 90) == []

    def test_items_distinct(self):
        grid = GridIndex(BBox(0, 0, 100, 100), cell_size=10)
        grid.insert(BBox(0, 0, 50, 50), "span")
        grid.insert(BBox(80, 80, 85, 85), "small")
        assert sorted(item for __, item in grid.items()) == ["small", "span"]

    def test_cell_stats(self):
        grid = GridIndex(BBox(0, 0, 100, 100), cell_size=50)
        assert grid.cell_stats()["cells_used"] == 0
        grid.insert(BBox(0, 0, 10, 10), "a")
        stats = grid.cell_stats()
        assert stats["cells_used"] == 1
        assert stats["max_bucket"] == 1
