"""WAL group commit: deterministic interleavings, accounting, crashes.

Three layers of assurance:

1. **Deterministic schedules** (via ``tests/_scheduler.py``): the commit
   is split into ``commit_stage`` / ``commit_wait`` scheduler ops, so a
   single-threaded schedule can stage any number of transactions before
   the first waiter runs — the group formation is exact, not a race.
   Every isolation oracle holds across the full interleaving matrix,
   plus a durability oracle: replaying the WAL into a fresh database
   reproduces exactly the committed transactions.
2. **Real concurrency**: N threads committing together must produce
   fewer barriers than commits (the whole point), every commit durable.
3. **Crashes**: a crash while a group is staged recovers to a prefix of
   *whole* transactions; a failed barrier damages the log for every
   waiter, not just the leader.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import CrashError, WALError
from repro.geodb import (
    FaultInjectingPager,
    GeographicDatabase,
    MemoryPager,
    WriteAheadLog,
)
from repro.workloads import build_mix_schema
from repro.workloads.txn_mix import MIX_CLASS, MIX_SCHEMA

from ._scheduler import (
    QUICK,
    MVCCBackend,
    check_all,
    interleavings,
    run_schedule,
    seeded_schedules,
)


class GroupCommitBackend(MVCCBackend):
    """The scheduler's MVCC backend with a group-commit WAL attached."""

    def __init__(self, initial=None):
        super().__init__(initial)
        self.wal_pager = MemoryPager()
        self.wal = self.db.attach_wal(
            WriteAheadLog(self.wal_pager, sync_mode="none",
                          group_commit=True)
        )


def check_wal_replay(result, backend, oids):
    """Durability oracle: a fresh database recovering from the log must
    land on exactly the backend's committed state."""
    fresh = MVCCBackend(result.initial)
    fresh.db.attach_wal(WriteAheadLog(backend.wal_pager,
                                      sync_mode="none"))
    fresh.db.recover()
    for oid in oids:
        assert fresh.committed_value(oid) == backend.committed_value(oid), (
            f"replayed state diverges on {oid} — {result.describe()}"
        )


# ---------------------------------------------------------------------------
# Deterministic group formation
# ---------------------------------------------------------------------------


STAGE_THEN_WAIT = [("write", "a", 1), ("commit_stage",), ("commit_wait",)]


class TestDeterministicGrouping:
    def test_two_staged_commits_share_one_barrier(self):
        backend = GroupCommitBackend()
        scripts = [
            [("write", "a", 1), ("commit_stage",), ("commit_wait",)],
            [("write", "b", 2), ("commit_stage",), ("commit_wait",)],
        ]
        # stage both, then let T0's wait lead a barrier covering both
        result = run_schedule(backend, scripts,
                              (0, 1, 0, 1, 0, 1))
        assert [r.outcome for r in result.runs] == ["committed"] * 2
        stats = backend.wal.stats()
        assert stats["group_commits"] == 1
        assert stats["group_commit_batches"] == 2
        check_wal_replay(result, backend, ["a", "b"])

    def test_serial_commits_get_one_barrier_each(self):
        backend = GroupCommitBackend()
        scripts = [
            [("write", "a", 1), ("commit_stage",), ("commit_wait",)],
            [("write", "b", 2), ("commit_stage",), ("commit_wait",)],
        ]
        result = run_schedule(backend, scripts,
                              (0, 0, 0, 1, 1, 1))
        assert [r.outcome for r in result.runs] == ["committed"] * 2
        stats = backend.wal.stats()
        assert stats["group_commits"] == 2
        assert stats["group_commit_batches"] == 2
        check_wal_replay(result, backend, ["a", "b"])

    def test_five_way_group_is_one_barrier(self):
        backend = GroupCommitBackend()
        scripts = [
            [("write", f"k{i}", i), ("commit_stage",), ("commit_wait",)]
            for i in range(5)
        ]
        # all five stage before anyone waits
        schedule = tuple(i for i in range(5) for _ in range(2)) + tuple(
            range(5)
        )
        result = run_schedule(backend, scripts, schedule)
        assert all(r.outcome == "committed" for r in result.runs)
        stats = backend.wal.stats()
        assert stats["group_commits"] == 1
        assert stats["group_commit_batches"] == 5
        check_wal_replay(result, backend, [f"k{i}" for i in range(5)])

    def test_conflicting_commit_stages_no_batch(self):
        backend = GroupCommitBackend(initial={"a": 0})
        scripts = [
            [("read", "a"), ("write_incr", "a"), ("commit_stage",),
             ("commit_wait",)],
            [("read", "a"), ("write_incr", "a"), ("commit_stage",),
             ("commit_wait",)],
        ]
        # both read, both increment, both try to stage: second loses
        result = run_schedule(backend, scripts,
                              (0, 1, 0, 1, 0, 1, 0, 1),
                              initial={"a": 0})
        outcomes = sorted(r.outcome for r in result.runs)
        assert outcomes == ["committed", "conflict"]
        stats = backend.wal.stats()
        assert stats["group_commit_batches"] == 1  # loser staged nothing
        assert backend.committed_value("a") == 1
        check_wal_replay(result, backend, ["a"])


class TestInterleavingMatrix:
    """Every interleaving of two two-phase committers upholds the
    isolation oracles, the WAL accounting invariants, and replayability.
    """

    SCRIPTS = [
        [("read", "a"), ("write_incr", "a"), ("commit_stage",),
         ("commit_wait",)],
        [("read", "b"), ("write_incr", "b"), ("commit_stage",),
         ("commit_wait",)],
    ]
    CONTENDED = [
        [("read", "a"), ("write_incr", "a"), ("commit_stage",),
         ("commit_wait",)],
        [("read", "a"), ("write_incr", "a"), ("commit_stage",),
         ("commit_wait",)],
    ]

    def _schedules(self):
        lengths = [len(s) for s in self.SCRIPTS]
        if QUICK:
            return seeded_schedules(lengths, 25, seed=421)
        return list(interleavings(lengths))

    @staticmethod
    def _check_accounting(result, backend):
        committed = len(result.committed())
        stats = backend.wal.stats()
        assert stats["group_commit_batches"] == committed
        if committed:
            assert 1 <= stats["group_commits"] <= committed
        # nothing staged may be left uncovered once every script ended
        backend.wal.force()
        assert backend.wal.stats()["group_commits"] == \
            stats["group_commits"], "force() found uncovered batches"

    def test_disjoint_writers_all_interleavings(self):
        for schedule in self._schedules():
            backend = GroupCommitBackend(initial={"a": 0, "b": 0})
            result = run_schedule(backend, self.SCRIPTS, schedule,
                                  initial={"a": 0, "b": 0})
            assert all(r.outcome == "committed" for r in result.runs), (
                result.describe()
            )
            check_all(result)
            self._check_accounting(result, backend)
            check_wal_replay(result, backend, ["a", "b"])

    def test_contended_writers_all_interleavings(self):
        for schedule in self._schedules():
            backend = GroupCommitBackend(initial={"a": 0})
            result = run_schedule(backend, self.CONTENDED, schedule,
                                  initial={"a": 0})
            check_all(result)
            self._check_accounting(result, backend)
            check_wal_replay(result, backend, ["a"])

    def test_three_writers_sampled_schedules(self):
        scripts = [
            [("read", "a"), ("write_incr", "a"), ("commit_stage",),
             ("commit_wait",)],
            [("read", "b"), ("write_incr", "b"), ("commit_stage",),
             ("commit_wait",)],
            [("read", "a"), ("write_incr", "a"), ("commit_stage",),
             ("commit_wait",)],
        ]
        lengths = [len(s) for s in scripts]
        count = 40 if QUICK else 200
        for schedule in seeded_schedules(lengths, count, seed=97):
            backend = GroupCommitBackend(initial={"a": 0, "b": 0})
            result = run_schedule(backend, scripts, schedule,
                                  initial={"a": 0, "b": 0})
            check_all(result)
            self._check_accounting(result, backend)
            check_wal_replay(result, backend, ["a", "b"])


# ---------------------------------------------------------------------------
# Real concurrency: barriers must be shared
# ---------------------------------------------------------------------------


def _threaded_db():
    db = GeographicDatabase("grp", pager=MemoryPager(), buffer_capacity=64)
    db.register_schema(build_mix_schema())
    wal = db.attach_wal(WriteAheadLog(MemoryPager(), sync_mode="fsync",
                                      group_commit=True))
    return db, wal


class TestConcurrentCommitters:
    def test_concurrent_commits_share_barriers(self):
        db, wal = _threaded_db()
        committers = 16
        start = threading.Barrier(committers)
        errors = []

        def commit_one(i):
            try:
                start.wait(timeout=30)
                with db.transaction() as txn:
                    txn.insert(MIX_SCHEMA, MIX_CLASS,
                               {"name": f"c{i}", "size": i},
                               oid=f"Feature#c{i}")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=commit_one, args=(i,))
                   for i in range(committers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert errors == []
        stats = wal.stats()
        assert stats["group_commit_batches"] == committers
        assert stats["group_commits"] <= committers
        # every commit is durable: a fresh db replays all sixteen
        fresh = GeographicDatabase("grp2", pager=MemoryPager(),
                                   buffer_capacity=64)
        fresh.register_schema(build_mix_schema())
        fresh.attach_wal(WriteAheadLog(wal.pager, sync_mode="none"))
        fresh.recover()
        for i in range(committers):
            assert fresh.get_object(f"Feature#c{i}").get("size") == i

    def test_wait_durable_is_idempotent(self):
        db, wal = _threaded_db()
        txn = db.transaction()
        txn.insert(MIX_SCHEMA, MIX_CLASS, {"name": "x", "size": 1})
        txn.commit(wait_durable=False)
        txn.wait_durable()
        barriers = wal.stats()["group_commits"]
        txn.wait_durable()      # second wait is a no-op
        txn.wait_durable()
        assert wal.stats()["group_commits"] == barriers

    def test_blocking_commit_still_works_with_grouping_disabled(self):
        db = GeographicDatabase("nogrp", pager=MemoryPager())
        db.register_schema(build_mix_schema())
        wal = db.attach_wal(WriteAheadLog(MemoryPager(), sync_mode="fsync",
                                          group_commit=False))
        db.insert(MIX_SCHEMA, MIX_CLASS, {"name": "x", "size": 1})
        db.insert(MIX_SCHEMA, MIX_CLASS, {"name": "y", "size": 2})
        stats = wal.stats()
        assert stats["group_commits"] == 0      # classic path, no tickets
        assert stats["fsyncs"] == 2             # one barrier per commit


# ---------------------------------------------------------------------------
# Failure: a broken barrier poisons the whole group
# ---------------------------------------------------------------------------


class _FailingSyncPager:
    """MemoryPager whose sync() can be armed to raise — the barrier
    itself fails while every page write succeeded."""

    def __init__(self):
        self.inner = MemoryPager()
        self.fail_sync = False
        self.page_size = self.inner.page_size

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def sync(self):
        if self.fail_sync:
            raise OSError("simulated fsync failure")
        sync = getattr(self.inner, "sync", None)
        if callable(sync):
            sync()


class TestBarrierFailure:
    def test_failed_barrier_damages_log_for_every_waiter(self):
        pager = _FailingSyncPager()
        db = GeographicDatabase("bar", pager=MemoryPager())
        db.register_schema(build_mix_schema())
        db.attach_wal(WriteAheadLog(pager, sync_mode="fsync",
                                    group_commit=True))
        txn1 = db.transaction()
        txn1.insert(MIX_SCHEMA, MIX_CLASS, {"name": "a", "size": 1})
        txn2 = db.transaction()
        txn2.insert(MIX_SCHEMA, MIX_CLASS, {"name": "b", "size": 2})
        txn1.commit(wait_durable=False)
        txn2.commit(wait_durable=False)
        pager.fail_sync = True
        with pytest.raises(OSError):
            txn1.wait_durable()     # leader: the barrier blows up
        with pytest.raises(WALError):
            txn2.wait_durable()     # follower: damaged log, not a hang
        # and the log refuses new commits until recovery
        with pytest.raises(WALError):
            db.insert(MIX_SCHEMA, MIX_CLASS, {"name": "c", "size": 3})


# ---------------------------------------------------------------------------
# Crashes while a group is staged
# ---------------------------------------------------------------------------


class TestGroupCrashRecovery:
    def _staged_group_db(self):
        wal_inner = MemoryPager()
        wal_fault = FaultInjectingPager(wal_inner)
        db = GeographicDatabase("gc", pager=MemoryPager(),
                                buffer_capacity=32)
        db.register_schema(build_mix_schema())
        db.attach_wal(WriteAheadLog(wal_fault, sync_mode="none",
                                    group_commit=True))
        return db, wal_inner, wal_fault

    def _recovered(self, wal_inner):
        fresh = GeographicDatabase("gc2", pager=MemoryPager(),
                                   buffer_capacity=32)
        fresh.register_schema(build_mix_schema())
        fresh.attach_wal(WriteAheadLog(wal_inner, sync_mode="none"))
        fresh.recover()
        return fresh

    @pytest.mark.parametrize("torn", [False, True], ids=["clean", "torn"])
    def test_crash_on_every_stage_write_recovers_whole_prefix(self, torn):
        """Crash at every WAL page-write index while a sequence of
        multi-intent transactions stages: recovery must always see a
        prefix of *whole* transactions — each txn's two objects appear
        together or not at all, and the durable prefix is in ticket
        order (txn k+1 never survives a crash that lost txn k)."""
        txn_count = 4
        # measure the write budget with an unarmed run
        db, _, fault = self._staged_group_db()
        tickets = []
        for k in range(txn_count):
            txn = db.transaction()
            txn.insert(MIX_SCHEMA, MIX_CLASS, {"name": f"x{k}", "size": k},
                       oid=f"Feature#x{k}")
            txn.insert(MIX_SCHEMA, MIX_CLASS, {"name": f"y{k}", "size": k},
                       oid=f"Feature#y{k}")
            txn.commit(wait_durable=False)
            tickets.append(txn)
        for txn in tickets:
            txn.wait_durable()
        budget = fault.writes
        assert budget >= txn_count  # at least one page per staged batch

        for n in range(budget):
            db, wal_inner, fault = self._staged_group_db()
            fault.arm(n, torn=torn)
            staged = []
            crashed = False
            for k in range(txn_count):
                txn = db.transaction()
                txn.insert(MIX_SCHEMA, MIX_CLASS,
                           {"name": f"x{k}", "size": k},
                           oid=f"Feature#x{k}")
                txn.insert(MIX_SCHEMA, MIX_CLASS,
                           {"name": f"y{k}", "size": k},
                           oid=f"Feature#y{k}")
                try:
                    txn.commit(wait_durable=False)
                except (CrashError, WALError):
                    crashed = True
                    break
                staged.append(txn)
            if not crashed:
                for txn in staged:
                    txn.wait_durable()
            assert crashed, f"arming write {n} of {budget} must crash"

            fresh = self._recovered(wal_inner)
            present = []
            for k in range(txn_count):
                has_x = fresh.find_object(f"Feature#x{k}") is not None
                has_y = fresh.find_object(f"Feature#y{k}") is not None
                assert has_x == has_y, (
                    f"crash at write {n}: transaction {k} recovered "
                    f"half-applied (x={has_x}, y={has_y})"
                )
                present.append(has_x)
            # prefix property: no gaps in ticket order
            assert present == sorted(present, reverse=True), (
                f"crash at write {n}: durable set {present} is not a "
                f"prefix of whole batches"
            )
