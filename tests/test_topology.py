"""Unit tests for the topological relation kernels."""

import pytest

from repro.errors import GeometryError
from repro.spatial import (
    BBox,
    LineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
    Relation,
    contains,
    covered_by,
    covers,
    crosses,
    disjoint,
    equals,
    intersects,
    overlaps,
    relate,
    touches,
    within,
)


def square(x0, y0, x1, y1):
    return Polygon.from_bbox(BBox(x0, y0, x1, y1))


class TestPointPoint:
    def test_equal(self):
        assert relate(Point(1, 1), Point(1, 1)) is Relation.EQUALS

    def test_disjoint(self):
        assert relate(Point(1, 1), Point(2, 2)) is Relation.DISJOINT


class TestPointLine:
    def test_within_interior(self):
        assert relate(Point(5, 0), LineString([(0, 0), (10, 0)])) is Relation.WITHIN

    def test_touches_endpoint(self):
        assert relate(Point(0, 0), LineString([(0, 0), (10, 0)])) is Relation.TOUCHES

    def test_disjoint(self):
        assert relate(Point(5, 5), LineString([(0, 0), (10, 0)])) is Relation.DISJOINT

    def test_inverse_is_contains(self):
        assert relate(LineString([(0, 0), (10, 0)]), Point(5, 0)) is Relation.CONTAINS


class TestPointPolygon:
    def test_within(self):
        assert relate(Point(5, 5), square(0, 0, 10, 10)) is Relation.WITHIN

    def test_touches_boundary(self):
        assert relate(Point(0, 5), square(0, 0, 10, 10)) is Relation.TOUCHES
        assert relate(Point(0, 0), square(0, 0, 10, 10)) is Relation.TOUCHES

    def test_disjoint(self):
        assert relate(Point(20, 20), square(0, 0, 10, 10)) is Relation.DISJOINT

    def test_point_in_hole_is_disjoint(self):
        donut = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)],
                        holes=[[(4, 4), (6, 4), (6, 6), (4, 6)]])
        assert relate(Point(5, 5), donut) is Relation.DISJOINT


class TestLineLine:
    def test_equal(self):
        a = LineString([(0, 0), (10, 0)])
        assert relate(a, LineString([(0, 0), (10, 0)])) is Relation.EQUALS

    def test_equal_reversed(self):
        a = LineString([(0, 0), (10, 0)])
        assert relate(a, LineString([(10, 0), (0, 0)])) is Relation.EQUALS

    def test_crosses(self):
        a = LineString([(0, 0), (10, 10)])
        b = LineString([(0, 10), (10, 0)])
        assert relate(a, b) is Relation.CROSSES

    def test_touches_at_endpoint(self):
        a = LineString([(0, 0), (5, 0)])
        b = LineString([(5, 0), (10, 5)])
        assert relate(a, b) is Relation.TOUCHES

    def test_collinear_overlap(self):
        a = LineString([(0, 0), (10, 0)])
        b = LineString([(5, 0), (15, 0)])
        assert relate(a, b) is Relation.OVERLAPS

    def test_within(self):
        inner = LineString([(2, 0), (5, 0)])
        outer = LineString([(0, 0), (10, 0)])
        assert relate(inner, outer) is Relation.WITHIN
        assert relate(outer, inner) is Relation.CONTAINS

    def test_disjoint(self):
        a = LineString([(0, 0), (1, 0)])
        b = LineString([(0, 5), (1, 5)])
        assert relate(a, b) is Relation.DISJOINT

    def test_t_junction_touches(self):
        # endpoint of b meets the interior of a: boundary contact only
        a = LineString([(0, 0), (10, 0)])
        b = LineString([(5, 0), (5, 5)])
        assert relate(a, b) is Relation.TOUCHES


class TestLinePolygon:
    def test_crosses_through(self):
        line = LineString([(-5, 5), (15, 5)])
        assert relate(line, square(0, 0, 10, 10)) is Relation.CROSSES

    def test_within(self):
        line = LineString([(2, 2), (8, 8)])
        assert relate(line, square(0, 0, 10, 10)) is Relation.WITHIN

    def test_touches_edge(self):
        line = LineString([(0, 0), (0, 10)])   # runs along the boundary
        assert relate(line, square(0, 0, 10, 10)) is Relation.TOUCHES

    def test_touches_at_point(self):
        line = LineString([(-5, 0), (0, 0)])
        assert relate(line, square(0, 0, 10, 10)) is Relation.TOUCHES

    def test_disjoint(self):
        line = LineString([(20, 20), (30, 30)])
        assert relate(line, square(0, 0, 10, 10)) is Relation.DISJOINT

    def test_inverse_contains(self):
        line = LineString([(2, 2), (8, 8)])
        assert relate(square(0, 0, 10, 10), line) is Relation.CONTAINS


class TestPolygonPolygon:
    def test_equal(self):
        assert relate(square(0, 0, 10, 10), square(0, 0, 10, 10)) is Relation.EQUALS

    def test_disjoint(self):
        assert relate(square(0, 0, 1, 1), square(5, 5, 6, 6)) is Relation.DISJOINT

    def test_touches_edge(self):
        assert relate(square(0, 0, 10, 10), square(10, 0, 20, 10)) is Relation.TOUCHES

    def test_touches_corner(self):
        assert relate(square(0, 0, 10, 10), square(10, 10, 20, 20)) is Relation.TOUCHES

    def test_overlaps(self):
        assert relate(square(0, 0, 10, 10), square(5, 5, 15, 15)) is Relation.OVERLAPS

    def test_plus_sign_overlap_no_vertices_inside(self):
        tall = square(4, -5, 6, 15)
        wide = square(-5, 4, 15, 6)
        assert relate(tall, wide) is Relation.OVERLAPS

    def test_contains_within(self):
        assert relate(square(0, 0, 10, 10), square(2, 2, 8, 8)) is Relation.CONTAINS
        assert relate(square(2, 2, 8, 8), square(0, 0, 10, 10)) is Relation.WITHIN


class TestMultiGeometries:
    def test_multipoint_within_polygon(self):
        mp = MultiPoint([Point(1, 1), Point(2, 2)])
        assert relate(mp, square(0, 0, 10, 10)) is Relation.WITHIN

    def test_multipolygon_disjoint(self):
        mpoly = MultiPolygon([square(0, 0, 1, 1), square(2, 2, 3, 3)])
        assert relate(mpoly, square(10, 10, 20, 20)) is Relation.DISJOINT

    def test_multipolygon_contains_point(self):
        mpoly = MultiPolygon([square(0, 0, 2, 2), square(5, 5, 7, 7)])
        assert relate(Point(6, 6), mpoly) is Relation.WITHIN


class TestBooleanWrappers:
    def test_wrappers_agree_with_relate(self):
        a, b = square(0, 0, 10, 10), square(5, 5, 15, 15)
        assert overlaps(a, b) and intersects(a, b)
        assert not disjoint(a, b) and not touches(a, b)
        assert not equals(a, b) and not crosses(a, b)

    def test_within_contains_accept_equals(self):
        a = square(0, 0, 1, 1)
        assert within(a, a) and contains(a, a)

    def test_covers_includes_boundary_contact(self):
        outer = square(0, 0, 10, 10)
        edge_line = LineString([(0, 0), (0, 10)])
        assert covers(outer, edge_line)
        assert covered_by(edge_line, outer)
        assert covers(outer, square(2, 2, 8, 8))
        assert not covers(square(2, 2, 8, 8), outer)

    def test_inverse_consistency(self):
        pairs = [
            (Point(5, 5), square(0, 0, 10, 10)),
            (LineString([(0, 0), (10, 0)]), square(0, 0, 10, 10)),
            (square(0, 0, 4, 4), square(2, 2, 8, 8)),
        ]
        for a, b in pairs:
            assert relate(a, b) is relate(b, a).inverse()


class TestErrors:
    def test_relation_inverse_mapping(self):
        assert Relation.WITHIN.inverse() is Relation.CONTAINS
        assert Relation.CONTAINS.inverse() is Relation.WITHIN
        assert Relation.TOUCHES.inverse() is Relation.TOUCHES

    def test_unknown_geometry_rejected(self):
        class Fake:
            geom_type = "fake"

        with pytest.raises((GeometryError, AttributeError)):
            relate(Fake(), Point(0, 0))  # type: ignore[arg-type]
