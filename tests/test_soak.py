"""Soak test: a long mixed session must stay bounded and consistent.

Hundreds of interleaved interactions, updates, scenarios and queries
against one database, then a full consistency audit:

* the customization engine's decision store and the rule trace stay
  bounded (they are ring buffers, not leaks);
* storage still verifies against live state;
* spatial indexes still agree with brute force;
* every open window still renders.
"""

import random

from repro.core import GISKernel
from repro.errors import ReproError
from repro.geodb import run_query
from repro.lang import FIGURE_6_PROGRAM
from repro.spatial import BBox, Point
from repro.workloads import PhoneNetParams, build_phone_net_database


def test_long_mixed_session_soak():
    db = build_phone_net_database(PhoneNetParams(blocks_x=3, blocks_y=3,
                                                 poles_per_street=3,
                                                 seed=77))
    kernel = GISKernel(db)
    session = kernel.session(user="juliano", application="pole_manager",
                             auto_refresh=True)
    kernel.install_program(FIGURE_6_PROGRAM, persist=False)
    session.connect("phone_net")

    rng = random.Random(777)
    added: list[str] = []
    operations = 0
    for step in range(400):
        roll = rng.random()
        try:
            if roll < 0.30:
                class_name = rng.choice(["Pole", "Duct", "Street",
                                         "Supplier"])
                session.dispatcher.open_class("phone_net", class_name,
                                              session.context)
            elif roll < 0.55:
                oids = db.extent("phone_net", "Pole").oids()
                session.dispatcher.open_instance(rng.choice(oids),
                                                 session.context)
            elif roll < 0.70:
                oid = db.insert("phone_net", "Pole", {
                    "pole_location": Point(rng.uniform(0, 300),
                                           rng.uniform(0, 300)),
                    "pole_type": rng.randint(0, 3),
                })
                added.append(oid)
            elif roll < 0.80 and added:
                victim = added.pop()
                db.delete(victim)
            elif roll < 0.90:
                oids = db.extent("phone_net", "Pole").oids()
                db.update(rng.choice(oids),
                          {"pole_historic": f"touched at step {step}"})
            elif roll < 0.95:
                run_query(db, "phone_net",
                          "select count(*) from Pole where pole_type = 1")
            else:
                with db.scenario("phone_net") as what_if:
                    what_if.insert("Pole", {
                        "pole_location": Point(rng.uniform(0, 300),
                                               rng.uniform(0, 300))})
                    if rng.random() < 0.5:
                        what_if.commit()
                        added.append(
                            db.extent("phone_net", "Pole").oids()[-1])
                    else:
                        what_if.discard()
            operations += 1
        except ReproError:
            # legitimate rejections (e.g. deleting a referenced object)
            # must not corrupt anything; the audit below proves they don't
            continue

    assert operations == 400

    # bounded internal state
    assert len(session.engine._decisions) <= session.engine._decision_window
    assert len(session.engine.manager.trace) <= \
        session.engine.manager.trace_limit

    # storage still agrees with memory
    assert db.verify_storage() == db.stats()["objects"]

    # spatial index still agrees with brute force
    window = BBox(50, 50, 250, 250)
    indexed = {o.oid for o in db.window_query("phone_net", "Pole",
                                              "pole_location", window)}
    brute = {
        o.oid for o in db.extent("phone_net", "Pole")
        if window.intersects(o.geometry("pole_location").bbox())
    }
    assert indexed == brute

    # every open window still renders
    for open_window in session.screen.windows():
        assert session.renderer.render(open_window)

    kernel.shutdown()
