"""Failure-injection tests: the system must fail loudly and recover cleanly."""

import pytest

from repro.active import EventKind
from repro.core import (
    AttributeCustomization,
    ClassCustomization,
    Context,
    ContextPattern,
    CustomizationDirective,
    GISSession,
)
from repro.errors import (
    CustomizationError,
    LanguageError,
    ReproError,
    RuleError,
)
from repro.lang import FIGURE_6_PROGRAM, compile_program
from repro.uilib import InterfaceObjectLibrary, PresentationRegistry, install_standard_composites


class TestLanguageFailures:
    """Every malformed program yields a positioned LanguageError subclass."""

    BROKEN_PROGRAMS = [
        "for user",                                   # truncated context
        "for user j schema",                          # truncated schema clause
        "for user j schema s display as",             # missing mode
        "for user j schema s display as default",     # missing class clause
        "for user j schema s display as default class C",  # missing display
        "for user j schema s display as default class C display "
        "instances display attribute",                # truncated attr clause
        "schema s display as default class C display",  # no `for`
        "for user j\nschema s display as default\nclass C display "
        "instances display attribute a as text using bad(arg)",
        "for user j @ schema",                        # lexical garbage
    ]

    @pytest.mark.parametrize("source", BROKEN_PROGRAMS)
    def test_broken_program_raises_language_error(self, source):
        with pytest.raises(LanguageError):
            from repro.lang import parse_program

            parse_program(source)

    def test_semantic_failure_does_not_install_anything(self, phone_db):
        session = GISSession(phone_db, user="j", application="a")
        bad = FIGURE_6_PROGRAM.replace("poleWidget", "ghostWidget")
        with pytest.raises(LanguageError):
            session.install_program(bad, persist=False)
        assert session.engine.directives() == []
        assert session.engine.manager.rules() == []


class TestRuleFailures:
    def test_broken_action_surfaces_to_interaction(self, phone_db):
        session = GISSession(phone_db, user="j", application="a")
        session.engine.manager.define(
            "saboteur", [EventKind.GET_SCHEMA], lambda e: True,
            lambda e, m: 1 / 0, group="chaos")
        with pytest.raises(ZeroDivisionError):
            session.connect("phone_net")
        # the failure is in the trace for post-mortem explanation
        assert "error" in session.engine.manager.trace[-1].describe()

    def test_conflicting_customizations_reported(self, phone_db):
        session = GISSession(phone_db, user="j", application="a")
        for name in ("one", "two"):
            session.install_directive(CustomizationDirective(
                name=name,
                pattern=ContextPattern(user="j"),
                schema_name="phone_net",
                schema_display="hierarchy",
                classes=(ClassCustomization("Pole"),),
            ), persist=False)
        with pytest.raises(RuleError, match="ambiguous"):
            session.connect("phone_net")

    def test_runaway_cascade_capped(self, phone_db):
        from repro.errors import CascadeLimitError

        manager = GISSession(phone_db, user="j",
                             application="a").engine.manager
        manager.define(
            "looper", [EventKind.GET_CLASS], lambda e: True,
            lambda e, m: m.raise_event(
                e.derived(EventKind.GET_CLASS, e.subject)),
            group="chaos")
        with pytest.raises(CascadeLimitError):
            phone_db.get_class("phone_net", "Pole")


class TestBuilderFailures:
    def test_missing_widget_fails_at_build_not_silently(self, phone_db):
        session = GISSession(phone_db, user="j", application="a")
        # install a directive referencing a widget, then remove the widget
        session.library.specialize("doomed", "button", persist=False)
        session.install_directive(CustomizationDirective(
            name="d",
            pattern=ContextPattern(user="j"),
            schema_name="phone_net",
            classes=(ClassCustomization("Pole", control_widget="doomed"),),
        ), persist=False)
        session.library.remove("doomed")
        session.connect("phone_net")
        with pytest.raises(CustomizationError, match="doomed"):
            session.select_class("Pole")

    def test_bad_source_path_fails_with_context(self, phone_db, pole_oid):
        session = GISSession(phone_db, user="j", application="a")
        session.install_directive(CustomizationDirective(
            name="d",
            pattern=ContextPattern(user="j"),
            schema_name="phone_net",
            classes=(ClassCustomization("Pole", attributes=(
                AttributeCustomization("pole_supplier", "text",
                                       sources=("pole_supplier.broken",)),
            )),),
        ), persist=False)
        session.connect("phone_net")
        session.select_class("Pole")
        with pytest.raises(CustomizationError):
            session.select_instance(pole_oid)


class TestEngineIsolation:
    def test_failed_interaction_leaves_screen_consistent(self, phone_db):
        session = GISSession(phone_db, user="j", application="a")
        session.engine.manager.define(
            "saboteur", [EventKind.GET_CLASS], lambda e: True,
            lambda e, m: (_ for _ in ()).throw(RuntimeError("boom")),
            group="chaos")
        session.connect("phone_net")
        with pytest.raises(RuntimeError):
            session.select_class("Pole")
        # schema window still usable; the broken window never registered
        assert "schema_phone_net" in session.screen.names()
        assert "classset_Pole" not in session.screen.names()
        # removing the saboteur restores service
        session.engine.manager.remove_rule("saboteur")
        session.select_class("Pole")
        assert "classset_Pole" in session.screen.names()

    def test_all_library_errors_share_base(self):
        for exc in (CustomizationError("x"), RuleError("x"),
                    LanguageError("x", 1, 2)):
            assert isinstance(exc, ReproError)


class TestCompilerRobustness:
    def test_compile_program_never_partially_registers(self, phone_db):
        library = InterfaceObjectLibrary()
        install_standard_composites(library, persist=False)
        presentations = PresentationRegistry()
        good_then_bad = FIGURE_6_PROGRAM + """
for user maria application pole_manager
schema phone_net display as default
class Ghost display
"""
        with pytest.raises(LanguageError):
            compile_program(good_then_bad, phone_db, library, presentations)

    def test_directive_context_check_type_guard(self, phone_db):
        """Events with non-Context contexts never match customization rules."""
        session = GISSession(phone_db, user="j", application="a")
        session.install_directive(CustomizationDirective(
            name="d", pattern=ContextPattern(),
            schema_name="phone_net",
            classes=(ClassCustomization("Pole"),),
        ), persist=False)
        phone_db.get_schema("phone_net", context="a raw string")
        assert session.engine.schema_decision(
            phone_db.bus.last_event.event_id) is None

    def test_generic_pattern_applies_to_contextless_events(self, phone_db):
        session = GISSession(phone_db, user="j", application="a")
        session.install_directive(CustomizationDirective(
            name="d", pattern=ContextPattern(),
            schema_name="phone_net", schema_display="hierarchy",
            classes=(ClassCustomization("Pole"),),
        ), persist=False)
        phone_db.get_schema("phone_net", context=None)
        decision = session.engine.schema_decision(
            phone_db.bus.last_event.event_id)
        assert decision is not None
        assert decision.schema_display == "hierarchy"
