"""Unit tests + properties for contexts and specificity ordering."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import Context, ContextPattern
from repro.errors import CustomizationError


class TestContext:
    def test_describe(self):
        ctx = Context(user="juliano", application="pole_manager")
        assert ctx.describe() == "<user=juliano, application=pole_manager>"
        assert Context().describe() == "<anonymous>"

    def test_frozen(self):
        ctx = Context(user="a")
        with pytest.raises(AttributeError):
            ctx.user = "b"  # type: ignore[misc]


class TestPatternMatching:
    def test_generic_matches_everything(self):
        generic = ContextPattern.generic()
        assert generic.matches(Context(user="x", application="y"))
        assert generic.matches(None)
        assert generic.is_generic()

    def test_user_pattern(self):
        pattern = ContextPattern(user="juliano")
        assert pattern.matches(Context(user="juliano", category="eng"))
        assert not pattern.matches(Context(user="maria"))
        assert not pattern.matches(Context())
        assert not pattern.matches(None)

    def test_combined_dimensions_all_must_match(self):
        pattern = ContextPattern(user="j", application="app")
        assert pattern.matches(Context(user="j", application="app"))
        assert not pattern.matches(Context(user="j", application="other"))

    def test_scale_range(self):
        pattern = ContextPattern(scale_range=(1_000, 25_000))
        assert pattern.matches(Context(scale_denominator=10_000))
        assert pattern.matches(Context(scale_denominator=25_000))  # inclusive
        assert not pattern.matches(Context(scale_denominator=30_000))
        assert not pattern.matches(Context())     # no scale in context

    def test_time_tag(self):
        pattern = ContextPattern(time_tag="planning")
        assert pattern.matches(Context(time_tag="planning"))
        assert not pattern.matches(Context(time_tag="as_built"))

    def test_invalid_scale_range(self):
        with pytest.raises(CustomizationError):
            ContextPattern(scale_range=(100, 10))
        with pytest.raises(CustomizationError):
            ContextPattern(scale_range=(0, 10))


class TestSpecificity:
    def test_paper_ordering_user_over_category_over_generic(self):
        """§3.3: generic users < user category < particular user."""
        generic = ContextPattern(application="app")
        category = ContextPattern(category="eng", application="app")
        user = ContextPattern(user="j", application="app")
        assert generic.specificity() < category.specificity()
        assert category.specificity() < user.specificity()

    def test_user_beats_category_plus_everything_else(self):
        loaded_category = ContextPattern(category="c", application="a",
                                         scale_range=(1, 10), time_tag="t")
        bare_user = ContextPattern(user="u")
        assert bare_user.specificity() > loaded_category.specificity()

    def test_describe(self):
        pattern = ContextPattern(user="j", application="a")
        assert pattern.describe() == "for user j application a"
        assert ContextPattern().describe() == "for any context"


# -- property-based: the weight encoding is a faithful lexicographic order --

pattern_strategy = st.builds(
    ContextPattern,
    user=st.one_of(st.none(), st.just("u")),
    category=st.one_of(st.none(), st.just("c")),
    application=st.one_of(st.none(), st.just("a")),
    scale_range=st.one_of(st.none(), st.just((1.0, 10.0))),
    time_tag=st.one_of(st.none(), st.just("t")),
)


class TestSpecificityProperties:
    @given(pattern_strategy, pattern_strategy)
    def test_scores_equal_iff_same_dimensions(self, a, b):
        dims_a = (a.user is None, a.category is None, a.application is None,
                  a.scale_range is None, a.time_tag is None)
        dims_b = (b.user is None, b.category is None, b.application is None,
                  b.scale_range is None, b.time_tag is None)
        assert (a.specificity() == b.specificity()) == (dims_a == dims_b)

    @given(pattern_strategy)
    def test_score_zero_iff_generic(self, pattern):
        assert (pattern.specificity() == 0) == pattern.is_generic()

    @given(pattern_strategy, pattern_strategy)
    def test_strictly_more_dimensions_means_higher_score(self, a, b):
        def dims(p):
            return {
                name for name, val in (
                    ("user", p.user), ("category", p.category),
                    ("application", p.application),
                    ("scale", p.scale_range), ("time", p.time_tag))
                if val is not None
            }

        if dims(a) < dims(b):
            assert a.specificity() < b.specificity()
