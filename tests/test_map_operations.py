"""Tests for the Class-set window's map operations (zoom / pan)."""

import pytest

from repro.core import GISSession


@pytest.fixture()
def class_window(generic_session):
    generic_session.connect("phone_net")
    generic_session.select_class("Pole")
    return generic_session.screen.window("classset_Pole")


class TestZoom:
    def test_zoom_halves_extent(self, class_window):
        area = class_window.find("map")
        before = area.viewport.extent
        class_window.find("operations").activate("zoom")
        after = area.viewport.extent
        assert after.width == pytest.approx(before.width / 2)
        assert after.center() == pytest.approx(before.center())

    def test_zoom_fires_event(self, class_window):
        area = class_window.find("map")
        events = []
        area.on("zoom", lambda e: events.append(e.data["extent"]))
        class_window.find("operations").activate("zoom")
        assert len(events) == 1

    def test_zoom_reduces_visible_features(self, class_window):
        area = class_window.find("map")
        visible_before = len({oid for __, (s, oid)
                              in area.rasterize().items()})
        for __ in range(4):
            class_window.find("operations").activate("zoom")
        visible_after = len({oid for __, (s, oid)
                             in area.rasterize().items()})
        assert visible_after < visible_before


class TestPan:
    def test_pan_shifts_east(self, class_window):
        area = class_window.find("map")
        before = area.viewport.extent
        class_window.find("operations").activate("pan")
        after = area.viewport.extent
        assert after.min_x == pytest.approx(before.min_x + before.width / 4)
        assert after.width == pytest.approx(before.width)

    def test_repeated_pans_accumulate(self, class_window):
        area = class_window.find("map")
        start = area.viewport.extent.min_x
        for __ in range(3):
            class_window.find("operations").activate("pan")
        assert area.viewport.extent.min_x > start


class TestInteraction:
    def test_pick_still_works_after_zoom(self, phone_db, generic_session):
        generic_session.connect("phone_net")
        generic_session.select_class("Pole")
        window = generic_session.screen.window("classset_Pole")
        window.find("operations").activate("zoom")
        area = window.find("map")
        raster = area.rasterize()
        if raster:  # a feature is still visible
            (col, row), (__, oid) = next(iter(raster.items()))
            assert generic_session.pick_on_map("Pole", col, row) == oid
            assert f"instance_{oid}" in generic_session.screen.names()

    def test_refresh_resets_viewport(self, phone_db):
        """A refreshed window is rebuilt; viewport resets to data extent."""
        session = GISSession(phone_db, user="u", application="a",
                             auto_refresh=True)
        session.connect("phone_net")
        session.select_class("Pole")
        window = session.screen.window("classset_Pole")
        window.find("operations").activate("zoom")
        from repro.spatial import Point

        phone_db.insert("phone_net", "Pole",
                        {"pole_location": Point(1.0, 1.0)})
        new_window = session.screen.window("classset_Pole")
        assert new_window is not window
        area = new_window.find("map")
        assert area.viewport.extent.contains_bbox(area.data_extent())
