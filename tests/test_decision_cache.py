"""The context-keyed decision cache must be semantically invisible.

The cache memoizes *rule selection* on (event kind, subject, schema,
class, context) and is invalidated by the rule manager's generation
counter on every rule-set change. Two properties gate it:

* **staleness**: under any interleaving of directive install / enable /
  disable / uninstall with browsing, a cache-on engine records exactly
  the decisions a cache-off engine records;
* **isolation**: with two sessions of one shared kernel in different
  contexts, cached selections never bleed one session's customization
  into the other.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ClassCustomization,
    Context,
    ContextPattern,
    CustomizationDirective,
    CustomizationEngine,
    GISKernel,
)
from repro.lang import FIGURE_6_PROGRAM
from repro.ui.interaction import random_browse_script, run_step
from repro.workloads import PhoneNetParams, build_phone_net_database

PARAMS = PhoneNetParams(blocks_x=2, blocks_y=2, poles_per_street=2,
                        duct_count=2, seed=5)


def directive_pool() -> list[CustomizationDirective]:
    """Eight directives over distinct context patterns.

    At most one directive of each specificity tier matches any given
    context, so HIGHEST_PRIORITY selection is never ambiguous no matter
    which subset is installed.
    """
    pool = []
    for user in ("u0", "u1", "u2"):
        pool.append(CustomizationDirective(
            name=f"user_{user}",
            pattern=ContextPattern(user=user, application="a"),
            schema_name="phone_net",
            schema_display="null" if user == "u0" else "hierarchy",
            classes=(ClassCustomization("Pole"),),
        ))
    for category in ("c0", "c1"):
        pool.append(CustomizationDirective(
            name=f"cat_{category}",
            pattern=ContextPattern(category=category, application="a"),
            schema_name="phone_net",
            classes=(ClassCustomization("Pole"),),
        ))
    for app in ("a", "b"):
        pool.append(CustomizationDirective(
            name=f"app_{app}",
            pattern=ContextPattern(application=app),
            schema_name="phone_net",
            classes=(ClassCustomization("Duct"),),
        ))
    pool.append(CustomizationDirective(
        name="cat_c0_b",
        pattern=ContextPattern(category="c0", application="b"),
        schema_name="phone_net",
        classes=(ClassCustomization("Pole"),),
    ))
    return pool


CONTEXTS = (
    Context(user="u0", category="c0", application="a"),
    Context(user="u1", category="c1", application="a"),
    Context(user="u2", category="c0", application="a"),
    Context(user="nobody", category="c1", application="a"),
    Context(user="u0", category="c0", application="b"),
)

#: one mutation-or-browse op: (op kind, selector, extra)
OP = st.tuples(st.integers(0, 3), st.integers(0, 7), st.integers(0, 4))


def replay(ops, *, cache: bool) -> list[tuple]:
    """Apply one op sequence to a fresh database + engine; returns the
    decision log of every browse."""
    db = build_phone_net_database(PARAMS)
    engine = CustomizationEngine(db.bus, selection_cache=cache)
    pool = directive_pool()
    pole_oid = db.extent("phone_net", "Pole").oids()[0]
    installed: dict[str, CustomizationDirective] = {}
    log: list[tuple] = []
    try:
        for kind, selector, extra in ops:
            if kind == 0:
                directive = pool[selector % len(pool)]
                if directive.name not in installed:
                    engine.register_directive(directive, persist=False)
                    installed[directive.name] = directive
            elif kind == 1 and installed:
                name = sorted(installed)[selector % len(installed)]
                engine.unregister_directive(name)
                del installed[name]
            elif kind == 2 and installed:
                name = sorted(installed)[selector % len(installed)]
                engine.set_directive_enabled(name, bool(extra % 2))
            elif kind == 3:
                context = CONTEXTS[extra % len(CONTEXTS)]
                action = selector % 3
                if action == 0:
                    db.get_schema("phone_net", context=context)
                elif action == 1:
                    db.get_class("phone_net", "Pole", context=context)
                else:
                    db.get_value(pole_oid, context=context)
                event = db.bus.last_event
                log.append(tuple(
                    (decision.kind, decision.directive_name)
                    for decision in engine.decisions_for(event.event_id)
                ))
    finally:
        engine.manager.detach()
    return log


class TestCacheStaleness:
    @given(ops=st.lists(OP, min_size=1, max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_cache_on_decisions_equal_cache_off(self, ops):
        assert replay(ops, cache=True) == replay(ops, cache=False)

    def test_invalidation_is_counted(self):
        db = build_phone_net_database(PARAMS)
        engine = CustomizationEngine(db.bus, selection_cache=True)
        directive = directive_pool()[0]
        engine.register_directive(directive, persist=False)
        context = CONTEXTS[0]
        db.get_schema("phone_net", context=context)
        assert engine.stats()["cached_selections"] > 0
        generation = engine.manager.generation
        engine.set_directive_enabled(directive.name, False)
        assert engine.manager.generation > generation
        assert engine.stats()["cached_selections"] == 0
        assert engine.manager.cache_invalidations >= 1
        # and the disabled directive no longer decides anything
        db.get_schema("phone_net", context=context)
        assert engine.decisions_for(db.bus.last_event.event_id) == []
        engine.manager.detach()


class TestCrossSessionIsolation:
    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=10, deadline=None)
    def test_no_decision_bleed_between_contexts(self, seed):
        db = build_phone_net_database(PARAMS)
        with GISKernel(db) as kernel:  # selection cache on by default
            kernel.install_program(FIGURE_6_PROGRAM, persist=False)
            juliano = kernel.session(user="juliano",
                                     application="pole_manager")
            ana = kernel.session(user="ana", application="browser")
            script_j = random_browse_script(db, "phone_net", 5, seed=seed)
            script_a = random_browse_script(db, "phone_net", 5,
                                            seed=seed + 1)
            for step_j, step_a in zip(script_j.steps, script_a.steps):
                run_step(juliano, step_j)
                run_step(ana, step_a)
            # juliano's context matches Figure 6; ana's matches nothing —
            # a cached selection for juliano must never fire for ana
            assert kernel.engine.session_decisions(juliano.session_id)
            assert kernel.engine.session_decisions(ana.session_id) == []
            assert ana.screen.window("schema_phone_net").visible
            if "classset_Pole" in ana.screen:
                window = ana.screen.window("classset_Pole")
                assert window.get_property("presentation_format") == \
                    "defaultFormat"
