"""Unit tests for the LRU buffer manager."""

import pytest

from repro.errors import BufferError_
from repro.geodb.buffer import BufferManager
from repro.geodb.storage import MemoryPager


def make(capacity=3, pages=10):
    pager = MemoryPager(page_size=128)
    for i in range(pages):
        no = pager.allocate_page()
        pager.write_page(no, bytes([i]) * 16)
    manager = BufferManager(pager, capacity=capacity)
    return pager, manager


class TestReadPath:
    def test_miss_then_hit(self):
        __, manager = make()
        manager.read_page(0)
        assert manager.stats.misses == 1
        manager.read_page(0)
        assert manager.stats.hits == 1
        assert manager.stats.hit_ratio == 0.5

    def test_capacity_enforced_lru(self):
        __, manager = make(capacity=3)
        for no in (0, 1, 2):
            manager.read_page(no)
        manager.read_page(0)         # 0 becomes most recent
        manager.read_page(3)         # evicts 1 (LRU)
        assert manager.stats.evictions == 1
        assert set(manager.resident_pages()) == {0, 2, 3}

    def test_reads_go_to_pager_only_on_miss(self):
        pager, manager = make()
        baseline = pager.reads
        manager.read_page(5)
        manager.read_page(5)
        manager.read_page(5)
        assert pager.reads == baseline + 1

    def test_capacity_validated(self):
        pager, __ = make()
        with pytest.raises(BufferError_):
            BufferManager(pager, capacity=0)


class TestWritePath:
    def test_write_back_on_eviction(self):
        pager, manager = make(capacity=2)
        manager.write_page(0, b"dirty!")
        writes_before = pager.writes
        manager.read_page(1)
        manager.read_page(2)          # evicts page 0, which is dirty
        assert pager.writes == writes_before + 1
        assert manager.stats.write_backs == 1
        assert pager.read_page(0).startswith(b"dirty!")

    def test_clean_eviction_skips_write(self):
        pager, manager = make(capacity=2)
        manager.read_page(0)
        writes_before = pager.writes
        manager.read_page(1)
        manager.read_page(2)
        assert pager.writes == writes_before

    def test_flush(self):
        pager, manager = make()
        manager.write_page(0, b"a")
        manager.write_page(1, b"b")
        assert manager.flush() == 2
        assert manager.flush() == 0   # now clean
        assert pager.read_page(0).startswith(b"a")

    def test_clear_flushes_and_drops(self):
        __, manager = make()
        manager.write_page(0, b"x")
        manager.read_page(1)
        manager.clear()
        assert len(manager) == 0


class TestPinning:
    def test_pinned_pages_survive_eviction(self):
        __, manager = make(capacity=2)
        manager.pin(0)
        manager.read_page(1)
        manager.read_page(2)          # must evict 1, not pinned 0
        assert 0 in manager.resident_pages()
        manager.unpin(0)

    def test_all_pinned_raises(self):
        __, manager = make(capacity=2)
        manager.pin(0)
        manager.pin(1)
        with pytest.raises(BufferError_):
            manager.read_page(2)
        assert manager.stats.pin_denials == 1

    def test_unpin_dirty_marks_frame(self):
        pager, manager = make(capacity=2)
        manager.pin(0)
        manager.unpin(0, dirty=True)
        manager.read_page(1)
        writes_before = pager.writes
        manager.read_page(2)          # evicts 0 -> write back
        assert pager.writes == writes_before + 1

    def test_unpin_without_pin_raises(self):
        __, manager = make()
        with pytest.raises(BufferError_):
            manager.unpin(0)

    def test_nested_pins(self):
        __, manager = make(capacity=2)
        manager.pin(0)
        manager.pin(0)
        manager.unpin(0)
        manager.read_page(1)
        manager.read_page(2)   # 0 still pinned once -> evict 1
        assert 0 in manager.resident_pages()
        manager.unpin(0)
        assert manager.stats.peak_pinned == 1


class TestStats:
    def test_snapshot_fields(self):
        __, manager = make()
        manager.read_page(0)
        snap = manager.stats.snapshot()
        assert set(snap) == {"hits", "misses", "evictions", "write_backs",
                             "hit_ratio", "write_allocs"}

    def test_zero_access_ratio(self):
        __, manager = make()
        assert manager.stats.hit_ratio == 0.0

    def test_uncached_write_is_not_a_miss(self):
        """A full-page write to an uncached page needs no pager read, so it
        must not dent the hit ratio — it is a ``write_alloc``, not a miss."""
        pager, manager = make()
        reads_before = pager.reads
        manager.write_page(0, b"fresh")
        assert pager.reads == reads_before          # no read-before-write
        assert manager.stats.misses == 0
        assert manager.stats.hits == 0
        assert manager.stats.extra["write_allocs"] == 1
        assert manager.stats.hit_ratio == 0.0       # ratio stays read-only
        manager.write_page(0, b"again")             # cached: no second alloc
        assert manager.stats.extra["write_allocs"] == 1
        assert manager.stats.hits == 0

    def test_write_allocs_reported_to_registry(self, obs_recorder):
        __, manager = make()
        manager.write_page(0, b"x")
        manager.write_page(1, b"y")
        registry = obs_recorder.registry
        assert registry.counter_value("buffer.write_allocs") == 2
        assert registry.counter_value("buffer.misses") == 0


class TestNoSteal:
    def test_dirty_frames_survive_no_steal_scope(self):
        pager, manager = make(capacity=2)
        with manager.no_steal():
            manager.write_page(0, b"a")
            manager.write_page(1, b"b")
            writes_before = pager.writes
            manager.write_page(2, b"c")     # no clean victim: overflow
            assert pager.writes == writes_before
            assert len(manager) == 3        # over capacity, nothing leaked
            assert manager.stats.extra["no_steal_overflows"] == 1
        # Outside the scope dirty frames evict (and write back) again.
        manager.read_page(3)
        manager.read_page(4)
        assert pager.writes > writes_before

    def test_clean_frames_still_evict_under_no_steal(self):
        pager, manager = make(capacity=2)
        with manager.no_steal():
            manager.read_page(0)
            manager.write_page(1, b"dirty")
            writes_before = pager.writes
            manager.read_page(2)            # evicts clean 0, not dirty 1
            assert pager.writes == writes_before
            assert 1 in manager.resident_pages()
            assert 0 not in manager.resident_pages()


class TestBulkScan:
    """Scan-resistant insertion: a one-shot sweep (a raster level read,
    a table scan) must not flush the hot working set out of the pool."""

    def _warm(self, manager, pages=(0, 1, 2), rounds=2):
        for __ in range(rounds):
            for no in pages:
                manager.read_page(no)

    def test_sweep_inside_bulk_scan_preserves_hot_set(self):
        __, manager = make(capacity=4, pages=16)
        self._warm(manager)
        hits_before = manager.stats.hits
        with manager.bulk_scan():
            for no in range(3, 16):          # 13 cold pages through 1 frame
                manager.read_page(no)
        assert manager.stats.extra["bulk_reads"] == 13
        assert {0, 1, 2} <= set(manager.resident_pages())
        # the hot set survives the sweep: re-reads are pure hits and the
        # vector hit ratio keeps climbing instead of collapsing
        misses_before = manager.stats.misses
        ratio_before = manager.stats.hit_ratio
        self._warm(manager, rounds=1)
        assert manager.stats.misses == misses_before
        assert manager.stats.hits == hits_before + 3
        assert manager.stats.hit_ratio > ratio_before

    def test_plain_lru_sweep_destroys_hot_set(self):
        """Contrast case: the same sweep without the hint evicts the hot
        set — this is the failure mode ``bulk_scan`` exists to prevent."""
        __, manager = make(capacity=4, pages=16)
        self._warm(manager)
        for no in range(3, 16):
            manager.read_page(no)
        assert not ({0, 1, 2} & set(manager.resident_pages()))
        misses_before = manager.stats.misses
        self._warm(manager, rounds=1)        # all cold again
        assert manager.stats.misses == misses_before + 3

    def test_bulk_hits_do_not_promote(self):
        """Touching a swept page twice must not launder it into the hot
        end: inside the scope hits skip LRU promotion."""
        __, manager = make(capacity=4, pages=16)
        self._warm(manager, rounds=1)
        with manager.bulk_scan():
            manager.read_page(3)             # miss: parked at the LRU end
            manager.read_page(3)             # hit: stays parked
            manager.read_page(4)             # miss: evicts 3, not the hot set
        assert 3 not in manager.resident_pages()
        assert {0, 1, 2} <= set(manager.resident_pages())

    def test_nested_scopes_resume_promotion_at_outermost_exit(self):
        __, manager = make(capacity=4, pages=16)
        with manager.bulk_scan():
            with manager.bulk_scan():
                manager.read_page(0)
            manager.read_page(1)             # still scan-resistant
        assert manager.stats.extra["bulk_reads"] == 2
        self._warm(manager, pages=(0, 1, 2, 3), rounds=1)
        manager.read_page(0)                 # normal promotion again
        manager.read_page(4)                 # LRU eviction takes 1, not 0
        assert 0 in manager.resident_pages()

    def test_bulk_reads_reported_to_registry(self, obs_recorder):
        __, manager = make(capacity=2, pages=6)
        with manager.bulk_scan():
            for no in range(6):
                manager.read_page(no)
        assert obs_recorder.registry.counter_value("buffer.bulk_reads") == 6

    def test_raster_level_sweep_keeps_vector_pages_hot(self):
        """End-to-end regression: ``RasterStore.read_level`` sweeps its
        tile pages under ``bulk_scan``, so a whole-level read through a
        small pool leaves the (vector) record pages resident."""
        from repro.geodb import (
            RASTER,
            TEXT,
            Attribute,
            GeoClass,
            GeographicDatabase,
            MemoryPager,
            WriteAheadLog,
        )
        from repro.spatial.geometry import BBox
        from repro.workloads import synthetic_raster

        db = GeographicDatabase("GEO", pager=MemoryPager(),
                                buffer_capacity=6)
        db.attach_wal(WriteAheadLog(MemoryPager(), sync_mode="none"))
        schema = db.create_schema("img")
        schema.add_class(GeoClass("Scan", attributes=[
            Attribute("name", TEXT, required=True),
            Attribute("scan", RASTER),
        ]))
        raster = synthetic_raster(128, 128, seed=3,
                                  extent=BBox(0.0, 0.0, 128.0, 128.0))
        with db.transaction() as txn:
            oid = txn.insert("img", "Scan", {"name": "s", "scan": raster})
        ref = db.get_object(oid).get("scan")
        db.checkpoint()
        db.buffer.clear()                    # start cold: commit's no-steal
        tile_pages = {page_no                # scope left the pool overfull
                      for pages in db.raster_store._tiles.values()
                      for page_no in pages}
        hot = [page_no for page_no in range(db.pager.page_count)
               if page_no not in tile_pages][:3]
        assert hot and len(tile_pages) > db.buffer.capacity
        for page_no in hot:                  # warm the record pages
            db.buffer.read_page(page_no)
        assert db.raster_store.read_level(ref, 0) is not None
        assert db.buffer.stats.extra.get("bulk_reads", 0) >= len(tile_pages) // 2
        misses_before = db.buffer.stats.misses
        for page_no in hot:
            db.buffer.read_page(page_no)
        assert db.buffer.stats.misses == misses_before, (
            "raster level sweep evicted the hot record pages"
        )


class TestObservabilityCounters:
    """The buffer reports its cache behavior through the obs registry."""

    def test_scripted_pattern_matches_counters(self, obs_recorder):
        __, manager = make(capacity=3)
        # Scripted access pattern (capacity 3, LRU):
        #   0 1 2        -> three cold misses
        #   0 1          -> two hits (2 is now least recent)
        #   3            -> miss, evicts 2
        #   3            -> hit
        #   2            -> miss, evicts 0
        for page_no in (0, 1, 2, 0, 1, 3, 3, 2):
            manager.read_page(page_no)
        registry = obs_recorder.registry
        assert registry.counter_value("buffer.hits") == 3
        assert registry.counter_value("buffer.misses") == 5
        assert registry.counter_value("buffer.evictions") == 2
        # The registry agrees exactly with the in-object BufferStats.
        assert registry.counter_value("buffer.hits") == manager.stats.hits
        assert registry.counter_value("buffer.misses") == manager.stats.misses
        assert (registry.counter_value("buffer.evictions")
                == manager.stats.evictions)
        assert registry.gauge_value("buffer.resident_frames") == 3

    def test_write_back_counted(self, obs_recorder):
        __, manager = make(capacity=2)
        manager.write_page(0, b"dirty!")
        manager.read_page(1)
        manager.read_page(2)          # evicts dirty page 0 -> write-back
        registry = obs_recorder.registry
        assert registry.counter_value("buffer.write_backs") == 1
        assert registry.counter_value("buffer.evictions") == 1

    def test_flush_counts_write_backs(self, obs_recorder):
        __, manager = make(capacity=4)
        manager.write_page(0, b"a")
        manager.write_page(1, b"b")
        assert manager.flush() == 2
        assert obs_recorder.registry.counter_value("buffer.write_backs") == 2

    def test_disabled_mode_keeps_plain_stats_only(self):
        __, manager = make(capacity=2)
        manager.read_page(0)
        manager.read_page(0)
        assert manager.stats.hits == 1      # BufferStats always accounts
