"""Overhead regression: instrumented-but-disabled hot paths must stay
within a generous factor of hand-written un-instrumented equivalents.

The observability layer promises that when disabled (the default) its
call sites cost ~nothing. These tests pin that promise down so later PRs
cannot silently make the instrumentation eat the hot path: each test
times the real (instrumented) code with observability off against a
local, hand-written copy of the same logic with the instrumentation
stripped out, and asserts the ratio stays under ``FACTOR``.

The baselines are deliberate near-verbatim copies of the pre-PR hot-path
bodies — if a hot path is later optimized, update the baseline copy too,
or the comparison stops measuring instrumentation overhead.

Timing tests are inherently noisy; each comparison takes the best of
several repetitions and is allowed a few attempts before failing.
"""

import time
from collections import OrderedDict

import pytest

from repro import obs
from repro.active.event_bus import Event, EventBus, EventKind
from repro.geodb.buffer import BufferManager, BufferStats, _Frame
from repro.geodb.storage import MemoryPager

#: The regression bound: instrumented-but-disabled ≤ FACTOR × baseline.
FACTOR = 1.5
ITERATIONS = 20_000
REPEATS = 5
ATTEMPTS = 4


def best_time(fn, repeats=REPEATS):
    """Best-of-N wall time of ``fn()`` — robust against scheduler noise."""
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def assert_within_factor(baseline_fn, instrumented_fn, label):
    assert not obs.is_enabled(), "overhead tests measure disabled mode"
    baseline = instrumented = None
    for attempt in range(ATTEMPTS):
        baseline = best_time(baseline_fn)
        instrumented = best_time(instrumented_fn)
        if instrumented <= baseline * FACTOR:
            return
    pytest.fail(
        f"{label}: instrumented-but-disabled path took {instrumented:.6f}s, "
        f"more than {FACTOR}x the un-instrumented baseline {baseline:.6f}s"
    )


# ---------------------------------------------------------------------------
# Baseline 1: the event bus publish loop (the paper's event pipeline inlet)
# ---------------------------------------------------------------------------


class PlainBus:
    """Hand-written copy of EventBus.publish without instrumentation."""

    def __init__(self):
        self._by_kind = {}
        self._all = []
        self._published = 0
        self._log = []
        self.keep_log = False
        self.last_event = None

    def subscribe(self, subscriber, kinds=None):
        if kinds is None:
            self._all.append(subscriber)
            return
        for kind in kinds:
            self._by_kind.setdefault(kind, []).append(subscriber)

    def publish(self, event):
        self._published += 1
        self.last_event = event
        if self.keep_log:
            self._log.append(event)
        for subscriber in list(self._by_kind.get(event.kind, ())):
            subscriber(event)
        for subscriber in list(self._all):
            subscriber(event)


def _sink(event):
    pass


class TestEventBusOverhead:
    def test_disabled_publish_within_budget(self):
        real = EventBus()
        real.subscribe(_sink, kinds=[EventKind.GET_VALUE])
        plain = PlainBus()
        plain.subscribe(_sink, kinds=[EventKind.GET_VALUE])
        event = Event(EventKind.GET_VALUE, "Pole#1")

        def run_real():
            publish = real.publish
            for __ in range(ITERATIONS):
                publish(event)

        def run_plain():
            publish = plain.publish
            for __ in range(ITERATIONS):
                publish(event)

        assert_within_factor(run_plain, run_real, "event_bus.publish")


# ---------------------------------------------------------------------------
# Baseline 2: the buffer-manager hit path (hottest geodb loop, benchmark C4)
# ---------------------------------------------------------------------------


class PlainLRU:
    """Hand-written copy of BufferManager's read path, no instrumentation."""

    def __init__(self, pager, capacity):
        self.pager = pager
        self.capacity = capacity
        self._frames = OrderedDict()
        self.stats = BufferStats()

    def read_page(self, page_no):
        if page_no in self._frames:
            self.stats.hits += 1
            self._frames.move_to_end(page_no)
            return self._frames[page_no].data
        self.stats.misses += 1
        while len(self._frames) >= self.capacity:
            victim_no = next(iter(self._frames))
            self._frames.pop(victim_no)
            self.stats.evictions += 1
        frame = _Frame(self.pager.read_page(page_no))
        self._frames[page_no] = frame
        return frame.data


def make_pager(pages=8):
    pager = MemoryPager(page_size=128)
    for i in range(pages):
        no = pager.allocate_page()
        pager.write_page(no, bytes([i]) * 16)
    return pager


class TestBufferOverhead:
    def test_disabled_hit_path_within_budget(self):
        real = BufferManager(make_pager(), capacity=8)
        plain = PlainLRU(make_pager(), capacity=8)
        pages = [0, 1, 2, 3] * (ITERATIONS // 4)
        for no in (0, 1, 2, 3):     # warm both so the loop is all hits
            real.read_page(no)
            plain.read_page(no)

        def run_real():
            read = real.read_page
            for no in pages:
                read(no)

        def run_plain():
            read = plain.read_page
            for no in pages:
                read(no)

        assert_within_factor(run_plain, run_real, "buffer.read_page(hit)")


# ---------------------------------------------------------------------------
# Sanity: the comparison measures something — enabled mode does record
# ---------------------------------------------------------------------------


class TestComparisonIsMeaningful:
    def test_same_code_records_when_enabled(self, obs_recorder):
        bus = EventBus()
        bus.publish(Event(EventKind.GET_VALUE, "Pole#1"))
        registry = obs_recorder.registry
        assert registry.counter_value(
            "event_bus.events_published", kind="get_value") == 1

        manager = BufferManager(make_pager(), capacity=2)
        manager.read_page(0)
        manager.read_page(0)
        assert registry.counter_value("buffer.hits") == 1
        assert registry.counter_value("buffer.misses") == 1
