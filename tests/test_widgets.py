"""Unit tests for the widget base machinery and kernel classes."""

import pytest

from repro.errors import WidgetError
from repro.spatial import BBox, LineString, Point, Viewport
from repro.uilib import (
    Button,
    DrawingArea,
    KERNEL_CLASSES,
    ListWidget,
    Menu,
    MenuItem,
    Panel,
    Slider,
    Text,
    Window,
)


class TestKernelShape:
    def test_figure2_kernel_classes_present(self):
        """Paper Figure 2: exactly these eight kernel classes."""
        assert set(KERNEL_CLASSES) == {
            "window", "panel", "text", "drawing_area", "list",
            "button", "menu", "menu_item",
        }

    def test_window_aggregates_only_panels(self):
        window = Window("w")
        window.add_child(Panel("p"))
        with pytest.raises(WidgetError):
            window.add_child(Button("b"))

    def test_panel_recursion_allowed(self):
        outer = Panel("outer")
        inner = Panel("inner")
        outer.add_child(inner)
        inner.add_child(Button("b"))
        assert outer.find("b") is not None

    def test_panel_aggregations_match_figure2(self):
        panel = Panel("p")
        for child in (Panel("p2"), Text("t"), DrawingArea("d"),
                      ListWidget("l"), Button("b"), Menu("m")):
            panel.add_child(child)
        with pytest.raises(WidgetError):
            panel.add_child(MenuItem("mi"))   # items go inside menus only

    def test_menu_aggregates_menu_items(self):
        menu = Menu("m")
        menu.add_item("a", "A")
        with pytest.raises(WidgetError):
            menu.add_child(Button("b"))


class TestComposition:
    def test_duplicate_child_names_rejected(self):
        panel = Panel("p")
        panel.add_child(Button("b"))
        with pytest.raises(WidgetError):
            panel.add_child(Button("b"))

    def test_reparenting_rejected(self):
        button = Button("b")
        Panel("p1").add_child(button)
        with pytest.raises(WidgetError):
            Panel("p2").add_child(button)

    def test_cycle_rejected(self):
        a, b = Panel("a"), Panel("b")
        a.add_child(b)
        with pytest.raises(WidgetError):
            b.add_child(a)
        with pytest.raises(WidgetError):
            a.add_child(a)

    def test_leaf_widgets_take_no_children(self):
        with pytest.raises(WidgetError):
            Button("b").add_child(Text("t"))

    def test_remove_child(self):
        panel = Panel("p")
        button = panel.add_child(Button("b"))
        assert panel.remove_child("b") is button
        assert button.parent is None
        with pytest.raises(WidgetError):
            panel.remove_child("b")

    def test_path_and_find_and_walk(self):
        window = Window("w")
        panel = Panel("p")
        window.add_child(panel)
        button = Button("b")
        panel.add_child(button)
        assert button.path() == "w/p/b"
        assert window.find("b") is button
        assert window.find("nope") is None
        assert [x.name for x in window.walk()] == ["w", "p", "b"]


class TestEventsAndCallbacks:
    def test_fire_collects_results(self):
        button = Button("b")
        button.on("click", lambda e: "one")
        button.on("click", lambda e: "two")
        assert button.click() == ["one", "two"]

    def test_disabled_widget_swallows_events(self):
        button = Button("b", enabled=False)
        button.on("click", lambda e: "x")
        assert button.click() == []

    def test_off_and_override(self):
        button = Button("b")
        first = lambda e: "first"   # noqa: E731
        button.on("click", first)
        button.on("click", lambda e: "second")
        button.off("click", first)
        assert button.click() == ["second"]
        button.override("click", lambda e: "only")
        assert button.click() == ["only"]
        button.off("click")
        assert button.click() == []

    def test_noncallable_rejected(self):
        with pytest.raises(WidgetError):
            Button("b").on("click", "not callable")

    def test_event_object_carries_source_and_data(self):
        events = []
        lst = ListWidget("l", items=[("k", "Key")])
        lst.on("select", events.append)
        lst.select("k")
        assert events[0].source is lst
        assert events[0].data == {"key": "k", "index": 0}
        assert "select on" in events[0].describe()

    def test_bound_events_union(self):
        button = Button("b")
        button.on("hover", lambda e: None)
        assert set(button.bound_events()) == {"click", "hover"}


class TestText:
    def test_set_value_programmatic_vs_interactive(self):
        text = Text("t", label="Name", value="a")
        text.set_value("b")                       # programmatic: always ok
        with pytest.raises(WidgetError):
            text.set_value("c", interactive=True)  # not editable
        editable = Text("t2", editable=True)
        changes = []
        editable.on("change", lambda e: changes.append(e.data))
        editable.set_value("typed", interactive=True)
        assert changes == [{"old": "", "new": "typed"}]


class TestListWidget:
    def test_duplicate_keys_rejected(self):
        lst = ListWidget("l", items=[("a", "A")])
        with pytest.raises(WidgetError):
            lst.add_item("a")

    def test_selection_tracking(self):
        lst = ListWidget("l", items=[("a", "A"), ("b", "B")])
        assert lst.selected_key is None
        lst.select("b")
        assert lst.selected_key == "b"
        with pytest.raises(WidgetError):
            lst.select("ghost")

    def test_remove_item_adjusts_selection(self):
        lst = ListWidget("l", items=[("a", "A"), ("b", "B"), ("c", "C")])
        lst.select("b")
        lst.remove_item("a")
        assert lst.selected_key == "b"
        lst.remove_item("b")
        assert lst.selected_key is None
        with pytest.raises(WidgetError):
            lst.remove_item("ghost")


class TestMenu:
    def test_activate(self):
        menu = Menu("m", label="Ops")
        item = menu.add_item("close", "Close")
        hits = []
        item.on("activate", lambda e: hits.append(1))
        menu.activate("close")
        assert hits == [1]


class TestSlider:
    def test_bounds(self):
        slider = Slider("s", minimum=0, maximum=10, value=5)
        slider.set_value(7)
        with pytest.raises(WidgetError):
            slider.set_value(11)
        with pytest.raises(WidgetError):
            Slider("bad", minimum=5, maximum=5)

    def test_change_event_when_interactive(self):
        slider = Slider("s", minimum=0, maximum=10)
        changes = []
        slider.on("change", lambda e: changes.append((e.data["old"],
                                                      e.data["new"])))
        slider.set_value(3, interactive=True)
        slider.set_value(8)   # programmatic: no event
        assert changes == [(0.0, 3.0)]


class TestDrawingArea:
    def make_area(self):
        area = DrawingArea("map", width=20, height=10)
        area.add_feature("p1", Point(10, 10), "o")
        area.add_feature("l1", LineString([(0, 0), (20, 20)]), "#")
        return area

    def test_feature_validation(self):
        area = DrawingArea("map")
        with pytest.raises(WidgetError):
            area.add_feature("x", "not geometry")
        with pytest.raises(WidgetError):
            area.add_feature("x", Point(0, 0), "**")
        with pytest.raises(WidgetError):
            DrawingArea("tiny", width=2, height=1)

    def test_data_extent_and_default_viewport(self):
        area = self.make_area()
        assert area.data_extent() == BBox(0, 0, 20, 20)
        vp = area.viewport
        assert vp.extent.contains_bbox(area.data_extent())

    def test_rasterize_hits_cells(self):
        area = self.make_area()
        raster = area.rasterize()
        assert raster  # something drawn
        symbols = {s for s, __ in raster.values()}
        assert symbols <= {"o", "#"}

    def test_pick_fires_event(self):
        area = self.make_area()
        picks = []
        area.on("pick", lambda e: picks.append(e.data["oid"]))
        raster = area.rasterize()
        (col, row), (symbol, oid) = next(iter(raster.items()))
        assert area.pick_at(col, row) == oid
        assert picks == [oid]

    def test_pick_empty_cell(self):
        area = DrawingArea("map", width=20, height=10)
        area.add_feature("p", Point(0, 0), "o")
        assert area.pick_at(19, 0) is None

    def test_explicit_viewport(self):
        area = self.make_area()
        area.set_viewport(Viewport(BBox(100, 100, 200, 200), 20, 10))
        assert area.rasterize() == {}   # everything outside the window

    def test_clear_features(self):
        area = self.make_area()
        area.clear_features()
        assert area.features == []
        assert area.data_extent().is_empty()


class TestDescribe:
    def test_scene_node_structure(self):
        window = Window("w", title="T")
        panel = Panel("p")
        window.add_child(panel)
        panel.add_child(Button("b", label="Go"))
        node = window.describe()
        assert node["type"] == "window"
        assert node["title"] == "T"
        assert node["children"][0]["children"][0]["label"] == "Go"

    def test_hidden_flag_shown(self):
        window = Window("w", visible=False)
        assert window.describe()["properties"]["visible"] is False
