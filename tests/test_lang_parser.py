"""Unit tests for the customization-language parser."""

import pytest

from repro.errors import ParseError
from repro.lang import parse_program

MINIMAL = """
for user juliano
schema phone_net display as default
class Pole display
"""


class TestContextClause:
    def test_all_dimensions(self):
        program = parse_program("""
            for user j category eng application pm scale 1000..25000 time plan
            schema s display as default
            class C display
        """)
        ctx = program.directives[0].context
        assert (ctx.user, ctx.category, ctx.application) == ("j", "eng", "pm")
        assert (ctx.scale_low, ctx.scale_high) == (1000.0, 25000.0)
        assert ctx.time_tag == "plan"

    def test_empty_context_is_generic(self):
        program = parse_program("""
            for
            schema s display as default
            class C display
        """)
        ctx = program.directives[0].context
        assert ctx.user is None and ctx.application is None

    def test_duplicate_dimension_rejected(self):
        with pytest.raises(ParseError, match="duplicate 'user'"):
            parse_program("""
                for user a user b
                schema s display as default
                class C display
            """)

    def test_scale_needs_range(self):
        with pytest.raises(ParseError):
            parse_program("""
                for scale 1000
                schema s display as default
                class C display
            """)


class TestSchemaClause:
    @pytest.mark.parametrize("mode,expected", [
        ("default", "default"),
        ("hierarchy", "hierarchy"),
        ("user-defined", "user_defined"),
        ("Null", "null"),
        ("NULL", "null"),
    ])
    def test_display_modes(self, mode, expected):
        program = parse_program(f"""
            for user j
            schema s display as {mode}
            class C display
        """)
        assert program.directives[0].schema_clause.display_mode == expected

    def test_missing_schema_clause(self):
        with pytest.raises(ParseError, match="expected schema"):
            parse_program("for user j class C display")


class TestClassClause:
    def test_control_and_presentation(self):
        program = parse_program("""
            for user j
            schema s display as default
            class Pole display
                control as poleWidget
                presentation as pointFormat
        """)
        clause = program.directives[0].classes[0]
        assert clause.control == "poleWidget"
        assert clause.presentation == "pointFormat"

    def test_multiple_class_clauses(self):
        program = parse_program("""
            for user j
            schema s display as default
            class A display
            class B display control as w
        """)
        assert [c.class_name for c in program.directives[0].classes] == [
            "A", "B"]

    def test_at_least_one_class_required(self):
        with pytest.raises(ParseError, match="at least one class"):
            parse_program("for user j schema s display as default")

    def test_duplicate_control_rejected(self):
        with pytest.raises(ParseError, match="duplicate 'control'"):
            parse_program("""
                for user j
                schema s display as default
                class C display control as a control as b
            """)

    def test_on_update_extension(self):
        program = parse_program("""
            for user j
            schema s display as default
            class C display on update display as text
        """)
        assert program.directives[0].classes[0].on_update_display == "text"


class TestAttrClauses:
    def test_figure6_shape(self):
        program = parse_program("""
            for user juliano application pole_manager
            schema phone_net display as Null
            class Pole display
                control as poleWidget
                presentation as pointFormat
                instances
                    display attribute pole_composition as composed_text
                        from pole.material pole.diameter pole.height
                        using composed_text.notify()
                    display attribute pole_supplier as text
                        from get_supplier_name(pole_supplier)
                    display attribute pole_location as Null
        """)
        attrs = program.directives[0].classes[0].attributes
        assert [a.attr_name for a in attrs] == [
            "pole_composition", "pole_supplier", "pole_location"]
        comp = attrs[0]
        assert comp.format_name == "composed_text"
        assert [s.text for s in comp.sources] == [
            "pole.material", "pole.diameter", "pole.height"]
        assert comp.using == "composed_text.notify()"
        supplier = attrs[1]
        assert supplier.sources[0].is_call
        assert supplier.sources[0].call_name == "get_supplier_name"
        assert supplier.sources[0].call_args == ("pole_supplier",)
        assert attrs[2].format_name == "null"

    def test_comma_separated_sources(self):
        program = parse_program("""
            for user j
            schema s display as default
            class C display instances
                display attribute a as composed_text from x.y, x.z
        """)
        sources = program.directives[0].classes[0].attributes[0].sources
        assert [s.text for s in sources] == ["x.y", "x.z"]

    def test_call_with_multiple_args(self):
        program = parse_program("""
            for user j
            schema s display as default
            class C display instances
                display attribute a as text from f(x, y.z)
        """)
        source = program.directives[0].classes[0].attributes[0].sources[0]
        assert source.call_args == ("x", "y.z")

    def test_instances_needs_attr_clause(self):
        with pytest.raises(ParseError, match="display attribute"):
            parse_program("""
                for user j
                schema s display as default
                class C display instances
            """)

    def test_empty_from_rejected(self):
        with pytest.raises(ParseError):
            parse_program("""
                for user j
                schema s display as default
                class C display instances
                    display attribute a as text from using x.y()
            """)

    def test_using_takes_no_arguments(self):
        with pytest.raises(ParseError, match="no arguments"):
            parse_program("""
                for user j
                schema s display as default
                class C display instances
                    display attribute a as text using f(x)
            """)


class TestPrograms:
    def test_multiple_directives(self):
        program = parse_program(MINIMAL + MINIMAL.replace("juliano", "maria"))
        assert len(program.directives) == 2
        assert program.directives[1].context.user == "maria"

    def test_empty_program_rejected(self):
        with pytest.raises(ParseError, match="empty"):
            parse_program("   -- only a comment\n")

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("for user j\nschema s display WRONG")
        assert excinfo.value.line == 2

    def test_directive_must_start_with_for(self):
        with pytest.raises(ParseError, match="expected for"):
            parse_program("schema s display as default class C display")
