"""End-to-end serving tests: real sockets, one kernel, many clients.

Each test spins a :class:`ServerThread` over a phone-net kernel and
drives it with :class:`GISClient` connections. The suite covers the
request surface, the mutation push fan-out, and the session lifecycle
guarantees (idempotent close; a dropped connection releases its kernel
sessions exactly once and stops receiving fan-out).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import obs
from repro.core.kernel import GISKernel
from repro.errors import NetClientError, NetError
from repro.net import GISClient, ServerThread
from repro.workloads import PhoneNetParams, build_phone_net_database


def small_db():
    return build_phone_net_database(
        PhoneNetParams(blocks_x=2, blocks_y=2, poles_per_street=3,
                       duct_count=3, seed=11)
    )


@pytest.fixture()
def kernel():
    kernel = GISKernel(small_db())
    yield kernel
    kernel.shutdown()


@pytest.fixture()
def server(kernel):
    with ServerThread(kernel) as (host, port):
        yield (host, port, kernel)


def connect(server, **kwargs):
    host, port, _ = server
    return GISClient(host, port, timeout=15, **kwargs)


def wait_until(predicate, timeout=5.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {message}")


class TestRequestSurface:
    def test_hello_identifies_server_and_schemas(self, server):
        with connect(server) as client:
            hello = client.hello()
            assert hello["protocol"] == 1
            assert hello["schemas"] == ["phone_net"]

    def test_ping(self, server):
        with connect(server) as client:
            assert client.ping() is True

    def test_browsing_loop_over_the_wire(self, server):
        with connect(server) as client:
            client.open_session(user="ana", application="browser")
            assert client.open_schema("phone_net")["window"] == \
                "schema_phone_net"
            assert client.select_class("Pole")["window"] == "classset_Pole"
            oid = client.query("phone_net", "select * from Pole")["oids"][0]
            instance = client.select_instance(oid)
            assert instance["window"] == f"instance_{oid}"
            text = client.render(f"instance_{oid}")
            assert oid in text
            windows = client.scene()
            assert len(windows) == 3
            client.close_window(f"instance_{oid}")
            assert len(client.scene()) == 2

    def test_two_sessions_on_one_connection(self, server):
        with connect(server) as client:
            first = client.open_session(user="ana")
            second = client.request("open_session", user="bea")["session"]
            assert first != second
            assert server[2].session_count == 2
            client.open_schema("phone_net", session=second)
            assert client.scene(session=second)
            assert client.scene(session=first) == []

    def test_query_hits_the_shared_cache(self, server):
        with connect(server) as client:
            first = client.query("phone_net", "select * from Pole")
            assert first["cache"] == "miss"
        with connect(server) as other:
            second = other.query("phone_net", "select * from Pole")
            assert second["cache"] == "hit"
            assert second["oids"] == first["oids"]

    def test_query_rows_projection(self, server):
        with connect(server) as client:
            result = client.query(
                "phone_net", "select status from Pole"
            )
            assert result["count"] == len(result["rows"])
            assert all("status" in row for row in result["rows"])

    def test_txn_insert_update_delete(self, server):
        with connect(server) as client:
            q = "select * from Pole"
            before = client.query("phone_net", q)["count"]
            oid = client.insert(
                "phone_net", "Pole",
                {"install_year": 2026, "status": "new",
                 "pole_location": {"t": "point", "c": [1.0, 2.0]}},
            )
            assert client.query("phone_net", q)["count"] == before + 1
            client.update(oid, {"status": "audited"})
            client.delete(oid)
            assert client.query("phone_net", q)["count"] == before

    def test_txn_batch_is_atomic(self, server):
        with connect(server) as client:
            q = "select * from Pole"
            before = client.query("phone_net", q)["count"]
            with pytest.raises(NetClientError) as info:
                client.txn([
                    {"op": "insert", "schema": "phone_net", "class": "Pole",
                     "values": {"install_year": 2000, "status": "a",
                                "pole_location": {"t": "point",
                                                  "c": [1.0, 1.0]}}},
                    {"op": "delete", "oid": "Pole#no-such-object"},
                ])
            assert info.value.code == "ObjectNotFoundError"
            assert client.query("phone_net", q)["count"] == before

    def test_error_response_keeps_the_connection(self, server):
        with connect(server) as client:
            with pytest.raises(NetClientError) as info:
                client.query("no_such_schema", "select * from Pole")
            assert info.value.code == "SchemaError"
            with pytest.raises(NetClientError) as info:
                client.query("phone_net", "selekt weird !!")
            assert info.value.code == "QueryError"
            assert client.ping() is True

    def test_unknown_session_is_a_session_error(self, server):
        with connect(server) as client:
            with pytest.raises(NetClientError) as info:
                client.request("render", session="s999")
            assert info.value.code == "SessionError"

    def test_stats_exposes_kernel_state(self, server):
        with connect(server) as client:
            client.open_session(user="ana")
            stats = client.stats()
            assert stats["sessions"] == 1
            assert stats["database"] == "GEO"


class TestPushFanOut:
    def test_subscription_receives_commit_pushes(self, server):
        with connect(server) as watcher, connect(server) as writer:
            watcher.subscribe(["Pole"])
            oid = writer.query("phone_net", "select * from Pole")["oids"][0]
            writer.update(oid, {"status": "repainted"})
            pushes = watcher.poll_pushes(1.0)
            assert any(
                p["kind"] == "update" and p["oid"] == oid
                and p["class"] == "Pole" for p in pushes
            )

    def test_unsubscribed_class_is_silent(self, server):
        with connect(server) as watcher, connect(server) as writer:
            watcher.subscribe(["Duct"])
            oid = writer.query("phone_net", "select * from Pole")["oids"][0]
            writer.update(oid, {"status": "x"})
            assert watcher.poll_pushes(0.3) == []

    def test_wildcard_subscription(self, server):
        with connect(server) as watcher, connect(server) as writer:
            watcher.subscribe(["*"])
            oid = writer.query("phone_net", "select * from Pole")["oids"][0]
            writer.update(oid, {"status": "y"})
            assert watcher.poll_pushes(1.0)

    def test_unsubscribe_stops_pushes(self, server):
        with connect(server) as watcher, connect(server) as writer:
            watcher.subscribe(["Pole"])
            watcher.unsubscribe()
            oid = writer.query("phone_net", "select * from Pole")["oids"][0]
            writer.update(oid, {"status": "z"})
            assert watcher.poll_pushes(0.3) == []

    def test_interest_based_push_mirrors_kernel_fanout(self, server):
        """A session displaying a class hears about its mutations — the
        same auto_refresh + open-window test the in-process kernel
        fan-out uses (PR 2), now delivered over the wire."""
        with connect(server) as viewer, connect(server) as writer:
            sid = viewer.open_session(user="ana", auto_refresh=True)
            viewer.open_schema("phone_net")
            viewer.select_class("Pole")
            oid = writer.query("phone_net", "select * from Pole")["oids"][0]
            writer.update(oid, {"status": "watched"})
            pushes = viewer.poll_pushes(1.0)
            assert any(
                p["reason"] == "interest" and sid in p["sessions"]
                for p in pushes
            )

    def test_no_interest_push_without_matching_window(self, server):
        with connect(server) as viewer, connect(server) as writer:
            viewer.open_session(user="ana", auto_refresh=True)
            viewer.open_schema("phone_net")
            viewer.select_class("Duct")   # watching Duct, mutating Pole
            oid = writer.query("phone_net", "select * from Pole")["oids"][0]
            writer.update(oid, {"status": "q"})
            assert viewer.poll_pushes(0.3) == []


class TestSessionLifecycle:
    def test_close_session_is_idempotent(self, server):
        with connect(server) as client:
            sid = client.open_session(user="ana")
            assert client.close_session(sid) is True
            # second close reports closed=False instead of erroring
            assert client.request("close_session",
                                  session=sid)["closed"] is False
            assert server[2].session_count == 0

    def test_gauge_decrements_exactly_once_across_both_close_paths(
            self, server, obs_recorder):
        """close_session followed by a disconnect (or vice versa) must
        leave ``kernel.sessions`` at its true value — the teardown runs
        once, not twice."""
        kernel = server[2]
        client = connect(server)
        client.open_session(user="ana")
        wait_until(lambda: kernel.session_count == 1, message="attach")
        client.close_session()          # explicit close...
        client.close()                  # ...then connection drop
        wait_until(lambda: kernel.session_count == 0, message="detach")
        gauge = obs_recorder.registry.gauge(
            "kernel.sessions", database=kernel.database.name
        )
        assert gauge.value == 0

    def test_dropped_connection_releases_its_sessions(self, server):
        kernel = server[2]
        client = connect(server)
        client.open_session(user="ana")
        client.open_schema("phone_net")
        assert kernel.session_count == 1
        client.close()  # vanish without close_session
        wait_until(lambda: kernel.session_count == 0,
                   message="server-side session teardown")

    def test_dropped_client_stops_receiving_fanout(self, server):
        """Regression: after a client with an interested session drops,
        commits touching its class must neither push to it nor refresh
        its (closed) windows — and other clients are unaffected."""
        kernel = server[2]
        dropped = connect(server)
        dropped.open_session(user="gone", auto_refresh=True)
        dropped.open_schema("phone_net")
        dropped.select_class("Pole")
        with connect(server) as survivor, connect(server) as writer:
            survivor.subscribe(["Pole"])
            dropped.close()
            wait_until(lambda: kernel.session_count == 0,
                       message="dropped session teardown")
            pushed_before = server_counter(server, "pushes_sent")
            oid = writer.query("phone_net", "select * from Pole")["oids"][0]
            writer.update(oid, {"status": "after-drop"})
            pushes = survivor.poll_pushes(1.0)
            assert pushes, "survivor must still receive fan-out"
            # exactly one connection (the survivor) was pushed to
            assert server_counter(server, "pushes_sent") == \
                pushed_before + len(pushes)

    def test_server_stop_closes_remaining_sessions(self, kernel):
        thread = ServerThread(kernel)
        host, port = thread.start()
        client = GISClient(host, port, timeout=15)
        client.open_session(user="ana")
        assert kernel.session_count == 1
        thread.stop()
        assert kernel.session_count == 0
        client.close()


def server_counter(server, name):
    # reach through the fixture tuple into the live server's counters
    host, port, kernel = server
    return _thread_servers[(host, port)].counters[name]


# ServerThread instances register here so tests can inspect counters.
_thread_servers = {}


@pytest.fixture(autouse=True)
def _track_servers(request, monkeypatch):
    original = ServerThread.start

    def tracking_start(self):
        address = original(self)
        _thread_servers[address] = self.server
        return address

    monkeypatch.setattr(ServerThread, "start", tracking_start)
    yield
    _thread_servers.clear()


class TestConcurrentClients:
    def test_sixteen_clients_mixed_workload(self, server):
        errors = []
        barrier = threading.Barrier(16)

        def worker(i):
            try:
                with connect(server) as client:
                    client.open_session(user=f"u{i}")
                    barrier.wait(timeout=15)
                    client.open_schema("phone_net")
                    client.select_class("Pole")
                    q = client.query("phone_net", "select * from Pole")
                    oid = q["oids"][i % q["count"]]
                    client.select_instance(oid)
                    new = client.insert(
                        "phone_net", "Pole",
                        {"install_year": 2000 + i, "status": f"w{i}",
                         "pole_location": {"t": "point",
                                           "c": [float(i), 0.5]}},
                    )
                    client.update(new, {"status": f"w{i}b"})
                    client.delete(new)
                    assert client.ping() is True
                    client.close_session()
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append((i, exc))

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert errors == []
        kernel = server[2]
        wait_until(lambda: kernel.session_count == 0,
                   message="all sessions released")
        # the mixed workload left the database exactly as it found it
        with connect(server) as client:
            assert client.query("phone_net",
                                "select * from Pole")["count"] == 18
