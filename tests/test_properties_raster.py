"""Property-based tests for the tiled raster subsystem.

Random rasters prove the invariants the ISSUE pins:

* tile codec round-trip is byte-identical (and CRC catches corruption),
* committing through a transaction and reading back level 0 is the
  identity,
* a windowed read equals slicing the full bitmap at every pyramid level,
* point-sampled downsampling is compositional (idempotence),
* the directory's tile count matches the ceil-grid arithmetic.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.errors import RasterError
from repro.geodb import (
    RASTER,
    TEXT,
    Attribute,
    GeoClass,
    GeographicDatabase,
    MemoryPager,
    Raster,
    WriteAheadLog,
)
from repro.geodb.raster import (
    decode_tile,
    downsample,
    encode_tile,
    level_count,
    slice_tile,
    tile_grid,
)
from repro.spatial.geometry import BBox

dims = st.integers(min_value=1, max_value=150)


@st.composite
def rasters(draw, max_side=150):
    w = draw(st.integers(min_value=1, max_value=max_side))
    h = draw(st.integers(min_value=1, max_value=max_side))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    pixels = bytes((x * 13 + y * 31 + seed) & 0xFF
                   for y in range(h) for x in range(w))
    return Raster(w, h, pixels, extent=BBox(0.0, 0.0, float(w), float(h)))


def raster_db(tile: int = 16) -> GeographicDatabase:
    """A WAL-attached in-memory database with one raster class.

    A small tile size keeps hypothesis examples multi-tile without
    megabyte bitmaps.
    """
    db = GeographicDatabase("GEO", pager=MemoryPager())
    db.wal = WriteAheadLog(MemoryPager())
    schema = db.create_schema("img")
    schema.add_class(GeoClass("Scan", attributes=[
        Attribute("name", TEXT, required=True),
        Attribute("scan", RASTER),
    ]))
    db.raster_store.tile = tile
    return db


def store_raster(db, raster):
    with db.transaction() as txn:
        oid = txn.insert("img", "Scan", {"name": "s", "scan": raster})
    return oid, db.get_object(oid).get("scan")


class TestTileCodec:
    @given(st.binary(min_size=0, max_size=5000),
           st.integers(min_value=0, max_value=9),
           st.integers(min_value=0, max_value=99))
    def test_roundtrip_byte_identity(self, data, level, index):
        doc = decode_tile(encode_tile("r7", level, index, data))
        assert doc["data"] == data
        assert (doc["rid"], doc["lv"], doc["ix"]) == ("r7", level, index)

    @given(st.binary(min_size=1, max_size=500), st.data())
    def test_corruption_is_detected(self, data, draw):
        blob = bytearray(encode_tile("r1", 0, 0, data))
        # flip one bit inside the payload (the CRC covers exactly it)
        victim = len(blob) - 1 - draw.draw(
            st.integers(min_value=0, max_value=len(data) - 1))
        blob[victim] ^= 0x40
        with pytest.raises(RasterError):
            decode_tile(bytes(blob))

    @given(st.binary(min_size=0, max_size=200),
           st.integers(min_value=1, max_value=20))
    def test_truncation_is_detected(self, data, cut):
        blob = encode_tile("r1", 0, 0, data)
        with pytest.raises(RasterError):
            decode_tile(blob[:max(0, len(blob) - cut)])


class TestPyramidMath:
    @given(rasters(max_side=80), st.integers(min_value=0, max_value=3),
           st.integers(min_value=0, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_downsample_idempotence(self, raster, j, k):
        """downsample(downsample(p, j), k) == downsample(p, j + k)."""
        once, w1, h1 = downsample(raster.pixels, raster.width,
                                  raster.height, j)
        twice, w2, h2 = downsample(once, w1, h1, k)
        direct, wd, hd = downsample(raster.pixels, raster.width,
                                    raster.height, j + k)
        assert (twice, w2, h2) == (direct, wd, hd)

    @given(dims, dims, st.integers(min_value=1, max_value=64))
    def test_coarsest_level_fits_one_tile(self, w, h, tile):
        levels = level_count(w, h, tile)
        step = 1 << (levels - 1)
        assert max(1, math.ceil(w / step)) <= tile
        assert max(1, math.ceil(h / step)) <= tile
        if levels > 1:  # the previous level genuinely did not fit
            prev = 1 << (levels - 2)
            assert max(math.ceil(w / prev), math.ceil(h / prev)) > tile

    @given(rasters(max_side=60), st.integers(min_value=1, max_value=16),
           st.data())
    @settings(max_examples=40, deadline=None)
    def test_slice_tile_reassembles(self, raster, tile, data):
        cols, rows = tile_grid(raster.width, raster.height, tile)
        tx = data.draw(st.integers(min_value=0, max_value=cols - 1))
        ty = data.draw(st.integers(min_value=0, max_value=rows - 1))
        part = slice_tile(raster.pixels, raster.width, raster.height,
                          tile, tx, ty)
        tw = min(tile, raster.width - tx * tile)
        th = min(tile, raster.height - ty * tile)
        assert len(part) == tw * th
        for row in range(th):
            start = (ty * tile + row) * raster.width + tx * tile
            assert part[row * tw:(row + 1) * tw] == \
                raster.pixels[start:start + tw]


class TestStoreRoundTrip:
    @given(rasters())
    @settings(max_examples=25, deadline=None)
    def test_level0_read_is_identity(self, raster):
        db = raster_db()
        __, ref = store_raster(db, raster)
        assert db.raster_store.read_level(ref, 0) == raster.pixels

    @given(rasters(max_side=100))
    @settings(max_examples=20, deadline=None)
    def test_every_level_equals_downsample(self, raster):
        db = raster_db()
        __, ref = store_raster(db, raster)
        for level in range(ref.levels):
            expected, lw, lh = downsample(raster.pixels, raster.width,
                                          raster.height, level)
            assert ref.level_dims(level) == (lw, lh)
            assert db.raster_store.read_level(ref, level) == expected

    @given(rasters(max_side=100))
    @settings(max_examples=25, deadline=None)
    def test_tile_count_accounting(self, raster):
        db = raster_db()
        __, ref = store_raster(db, raster)
        tile = ref.tile
        expected = sum(
            math.ceil(max(1, math.ceil(raster.width / (1 << lv))) / tile)
            * math.ceil(max(1, math.ceil(raster.height / (1 << lv))) / tile)
            for lv in range(ref.levels)
        )
        assert ref.total_tiles() == expected
        status = db.raster_store.status()
        assert status["tiles"] == expected
        assert status["tile_writes"] == expected


class TestWindowedReads:
    @given(rasters(max_side=100), st.data())
    @settings(max_examples=25, deadline=None)
    def test_window_equals_full_bitmap_slice_at_every_level(self, raster,
                                                            data):
        """read_window == slicing the whole level bitmap, for all levels."""
        db = raster_db()
        __, ref = store_raster(db, raster)
        # a random positive-area ground window inside the extent
        x0 = data.draw(st.floats(min_value=0.0, max_value=raster.width - 0.5))
        y0 = data.draw(st.floats(min_value=0.0,
                                 max_value=raster.height - 0.5))
        x1 = data.draw(st.floats(min_value=x0 + 0.5,
                                 max_value=float(raster.width)))
        y1 = data.draw(st.floats(min_value=y0 + 0.5,
                                 max_value=float(raster.height)))
        window = BBox(x0, y0, x1, y1)
        for level in range(ref.levels):
            got = db.raster_store.read_window(ref, window, level)
            assert got.level == level
            assert got.width > 0 and got.height > 0
            full, lw, lh = downsample(raster.pixels, raster.width,
                                      raster.height, level)
            sliced = b"".join(
                full[(got.y + row) * lw + got.x:
                     (got.y + row) * lw + got.x + got.width]
                for row in range(got.height)
            )
            assert got.pixels == sliced

    @given(rasters(max_side=60))
    @settings(max_examples=15, deadline=None)
    def test_full_extent_window_is_whole_level(self, raster):
        db = raster_db()
        __, ref = store_raster(db, raster)
        got = db.raster_store.read_window(ref, ref.bbox(), 0)
        assert (got.x, got.y) == (0, 0)
        assert (got.width, got.height) == (raster.width, raster.height)
        assert got.pixels == raster.pixels

    @given(rasters(max_side=40))
    @settings(max_examples=10, deadline=None)
    def test_disjoint_window_is_empty(self, raster):
        db = raster_db()
        __, ref = store_raster(db, raster)
        far = BBox(raster.width + 10.0, raster.height + 10.0,
                   raster.width + 20.0, raster.height + 20.0)
        got = db.raster_store.read_window(ref, far, 0)
        assert got.pixels == b"" and got.width == 0 and got.height == 0
