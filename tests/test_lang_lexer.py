"""Unit tests for the customization-language lexer."""

import pytest

from repro.errors import LexError
from repro.lang import Token, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestTokens:
    def test_words_and_punctuation(self):
        tokens = tokenize("for user juliano schema s.c (a, b)")
        assert [t.kind for t in tokens] == [
            TokenKind.WORD, TokenKind.WORD, TokenKind.WORD, TokenKind.WORD,
            TokenKind.WORD, TokenKind.DOT, TokenKind.WORD, TokenKind.LPAREN,
            TokenKind.WORD, TokenKind.COMMA, TokenKind.WORD,
            TokenKind.RPAREN, TokenKind.EOF,
        ]

    def test_numbers(self):
        tokens = tokenize("1000 2.5")
        assert tokens[0].text == "1000"
        assert tokens[1].text == "2.5"
        assert tokens[1].kind is TokenKind.NUMBER

    def test_dotdot_vs_dot(self):
        tokens = tokenize("1000..25000 a.b")
        assert tokens[1].kind is TokenKind.DOTDOT
        assert tokens[4].kind is TokenKind.DOT

    def test_number_then_dotdot(self):
        # '1000..2000' must not lex the dots into the number
        tokens = tokenize("1000..2000")
        assert [t.text for t in tokens[:-1]] == ["1000", "..", "2000"]

    def test_hyphenated_word(self):
        assert texts("user-defined") == ["user-defined"]

    def test_trailing_hyphen_is_error(self):
        # hyphens are only legal *inside* words ("user-defined"); a stray
        # trailing hyphen is not a token
        with pytest.raises(LexError):
            tokenize("word- next")

    def test_strings(self):
        tokens = tokenize("'hello world' \"two\"")
        assert tokens[0].kind is TokenKind.STRING
        assert tokens[0].text == "hello world"
        assert tokens[1].text == "two"

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize("'open")
        with pytest.raises(LexError):
            tokenize("'line\nbreak'")

    def test_comments_skipped(self):
        source = """
        -- a comment line
        for user x  # trailing comment
        """
        assert texts(source) == ["for", "user", "x"]

    def test_positions_tracked(self):
        tokens = tokenize("for\n  user")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_garbage_rejected_with_position(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("for user @home")
        assert excinfo.value.line == 1

    def test_empty_source(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_is_word_case_insensitive(self):
        token = Token(TokenKind.WORD, "Null", 1, 1)
        assert token.is_word("null")
        assert token.is_word("NULL", "default")
        assert not token.is_word("default")
