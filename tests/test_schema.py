"""Unit tests for schemas, classes, attributes, methods and inheritance."""

import pytest

from repro.errors import SchemaError
from repro.geodb import (
    Attribute,
    FLOAT,
    GeoClass,
    GeometryType,
    INTEGER,
    Method,
    ReferenceType,
    Schema,
    TEXT,
)


def base_schema():
    schema = Schema("net")
    schema.add_class(GeoClass("Supplier", [Attribute("name", TEXT, required=True)]))
    schema.add_class(GeoClass(
        "Element",
        [Attribute("status", TEXT), Attribute("year", INTEGER)],
        methods=[Method("describe", [])],
    ))
    schema.add_class(GeoClass(
        "Pole",
        [
            Attribute("height", FLOAT),
            Attribute("supplier", ReferenceType("Supplier")),
            Attribute("location", GeometryType("point"), required=True),
        ],
        superclass="Element",
    ))
    return schema


class TestAttribute:
    def test_name_validated(self):
        with pytest.raises(SchemaError):
            Attribute("2bad", TEXT)
        with pytest.raises(SchemaError):
            Attribute("has space", TEXT)

    def test_type_required(self):
        with pytest.raises(SchemaError):
            Attribute("x", "text")  # type: ignore[arg-type]

    def test_spatial_and_reference_flags(self):
        assert Attribute("g", GeometryType()).is_spatial()
        assert Attribute("r", ReferenceType("A")).is_reference()
        assert not Attribute("t", TEXT).is_spatial()

    def test_description_roundtrip(self):
        attr = Attribute("height", FLOAT, required=True, doc="meters")
        rebuilt = Attribute.from_description(attr.describe())
        assert rebuilt.name == "height"
        assert rebuilt.required
        assert rebuilt.doc == "meters"


class TestGeoClass:
    def test_duplicate_attribute_rejected(self):
        cls = GeoClass("A", [Attribute("x", TEXT)])
        with pytest.raises(SchemaError):
            cls.add_attribute(Attribute("x", INTEGER))

    def test_duplicate_method_rejected(self):
        cls = GeoClass("A", methods=[Method("m")])
        with pytest.raises(SchemaError):
            cls.add_method(Method("m"))

    def test_attribute_lookup(self):
        cls = GeoClass("A", [Attribute("x", TEXT)])
        assert cls.attribute("x").type is TEXT
        assert cls.has_attribute("x")
        with pytest.raises(SchemaError):
            cls.attribute("y")

    def test_attribute_order_preserved(self):
        cls = GeoClass("A", [Attribute("b", TEXT), Attribute("a", TEXT)])
        assert cls.attribute_names() == ["b", "a"]

    def test_method_signature(self):
        assert Method("get_name", ["Supplier"]).signature() == "get_name(Supplier)"


class TestSchema:
    def test_duplicate_class_rejected(self):
        schema = base_schema()
        with pytest.raises(SchemaError):
            schema.add_class(GeoClass("Pole"))

    def test_unknown_superclass_rejected(self):
        schema = Schema("s")
        with pytest.raises(SchemaError):
            schema.add_class(GeoClass("Sub", superclass="Missing"))

    def test_unknown_reference_target_rejected(self):
        schema = Schema("s")
        with pytest.raises(SchemaError):
            schema.add_class(GeoClass(
                "A", [Attribute("r", ReferenceType("Nowhere"))]
            ))

    def test_self_reference_allowed(self):
        schema = Schema("s")
        schema.add_class(GeoClass(
            "Node", [Attribute("next_node", ReferenceType("Node"))]
        ))

    def test_remove_class_blocked_by_dependants(self):
        schema = base_schema()
        with pytest.raises(SchemaError):
            schema.remove_class("Supplier")   # Pole references it
        with pytest.raises(SchemaError):
            schema.remove_class("Element")    # Pole extends it
        schema.remove_class("Pole")
        schema.remove_class("Supplier")       # now legal

    def test_remove_missing_class(self):
        with pytest.raises(SchemaError):
            base_schema().remove_class("Ghost")


class TestInheritance:
    def test_ancestry_order(self):
        schema = base_schema()
        names = [c.name for c in schema.ancestry("Pole")]
        assert names == ["Pole", "Element"]

    def test_effective_attributes_base_first(self):
        schema = base_schema()
        names = [a.name for a in schema.effective_attributes("Pole")]
        assert names == ["status", "year", "height", "supplier", "location"]

    def test_redeclared_attribute_rejected(self):
        schema = Schema("s")
        schema.add_class(GeoClass("Base", [Attribute("x", TEXT)]))
        schema.add_class(GeoClass("Sub", [Attribute("x", INTEGER)],
                                  superclass="Base"))
        with pytest.raises(SchemaError):
            schema.effective_attributes("Sub")

    def test_effective_methods_inherit_and_override(self):
        schema = Schema("s")
        schema.add_class(GeoClass("Base", methods=[Method("m", ["a"])]))
        schema.add_class(GeoClass("Sub", methods=[Method("m", ["a", "b"])],
                                  superclass="Base"))
        methods = schema.effective_methods("Sub")
        assert methods["m"].params == ["a", "b"]

    def test_subclasses(self):
        schema = base_schema()
        assert schema.subclasses("Element") == ["Pole"]
        assert schema.subclasses("Pole") == []

    def test_hierarchy_tree(self):
        schema = base_schema()
        tree = schema.hierarchy()
        assert set(tree[""]) == {"Supplier", "Element"}
        assert tree["Element"] == ["Pole"]

    def test_cycle_detected(self):
        schema = Schema("s")
        schema.add_class(GeoClass("A"))
        schema.add_class(GeoClass("B", superclass="A"))
        # Introduce a cycle behind the API's back, then detect it.
        schema.get_class("A").superclass = "B"
        with pytest.raises(SchemaError):
            schema.ancestry("A")


class TestDescriptionRoundtrip:
    def test_schema_roundtrip(self):
        schema = base_schema()
        rebuilt = Schema.from_description(schema.describe())
        assert rebuilt.class_names() == schema.class_names()
        pole = rebuilt.get_class("Pole")
        assert pole.superclass == "Element"
        assert pole.attribute("location").required
        assert [a.name for a in rebuilt.effective_attributes("Pole")] == [
            a.name for a in schema.effective_attributes("Pole")
        ]
