"""The wire codec and the request contracts, without any sockets."""

from __future__ import annotations

import json
import struct
import zlib

import pytest

from repro.errors import ProtocolError
from repro.net import FrameDecoder, encode_frame
from repro.net.contracts import (
    CONTRACTS,
    make_error,
    make_push,
    make_response,
    validate_request,
)
from repro.net.protocol import HEADER, MAX_FRAME


def frame_of(doc):
    return encode_frame(doc)


def raw_frame(payload: bytes, crc: int | None = None,
              length: int | None = None) -> bytes:
    """Hand-build a frame, optionally with a lying header."""
    if crc is None:
        crc = zlib.crc32(payload) & 0xFFFFFFFF
    if length is None:
        length = len(payload)
    return HEADER.pack(length, crc) + payload


class TestFrameCodec:
    def test_roundtrip(self):
        doc = {"id": 1, "kind": "ping", "nested": {"a": [1, 2, None]}}
        [out] = FrameDecoder().feed(frame_of(doc))
        assert out == doc

    def test_byte_at_a_time_reassembly(self):
        doc = {"id": 7, "kind": "hello", "pad": "x" * 300}
        decoder = FrameDecoder()
        frames = []
        for byte in frame_of(doc):
            frames.extend(decoder.feed(bytes([byte])))
        assert frames == [doc]
        assert decoder.pending_bytes == 0

    def test_many_frames_in_one_chunk(self):
        docs = [{"id": i, "kind": "ping"} for i in range(20)]
        blob = b"".join(frame_of(d) for d in docs)
        assert FrameDecoder().feed(blob) == docs

    def test_split_across_chunks_keeps_pending(self):
        data = frame_of({"id": 1, "kind": "ping"})
        decoder = FrameDecoder()
        assert decoder.feed(data[:5]) == []
        assert decoder.pending_bytes == 5
        [doc] = decoder.feed(data[5:])
        assert doc["id"] == 1

    def test_checksum_mismatch_raises(self):
        payload = json.dumps({"id": 1}).encode()
        bad = raw_frame(payload, crc=zlib.crc32(payload) ^ 0xDEAD)
        with pytest.raises(ProtocolError, match="checksum"):
            FrameDecoder().feed(bad)

    def test_flipped_payload_bit_is_detected(self):
        data = bytearray(frame_of({"id": 1, "kind": "ping"}))
        data[HEADER.size + 3] ^= 0x40
        with pytest.raises(ProtocolError, match="checksum"):
            FrameDecoder().feed(bytes(data))

    def test_zero_length_frame_rejected(self):
        with pytest.raises(ProtocolError, match="zero-length"):
            FrameDecoder().feed(HEADER.pack(0, 0))

    def test_oversized_length_rejected_before_body_arrives(self):
        # Only the 8 header bytes exist; the decoder must refuse rather
        # than wait for (or allocate) 2 GiB.
        header = HEADER.pack(2**31 - 1, 0)
        with pytest.raises(ProtocolError, match="exceeds"):
            FrameDecoder().feed(header)

    def test_non_json_payload_rejected(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            FrameDecoder().feed(raw_frame(b"\xff\xfe{{{{"))

    def test_non_object_payload_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            FrameDecoder().feed(raw_frame(b"[1,2,3]"))

    def test_encode_rejects_non_dict(self):
        with pytest.raises(ProtocolError):
            encode_frame(["not", "an", "object"])

    def test_encode_rejects_oversized_payload(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"blob": "x" * MAX_FRAME})

    def test_garbage_prefix_poisons_the_stream(self):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError):
            decoder.feed(b"GET / HTTP/1.1\r\n\r\n")


class TestEnvelopes:
    def test_response_shape(self):
        assert make_response(3, value=1) == {"id": 3, "ok": True, "value": 1}

    def test_error_shape(self):
        doc = make_error(3, "boom", "SchemaError")
        assert doc == {"id": 3, "ok": False, "error": "boom",
                       "code": "SchemaError"}

    def test_push_has_no_id(self):
        doc = make_push("mutation", oid="Pole#1")
        assert doc == {"push": "mutation", "oid": "Pole#1"}
        assert "id" not in doc


class TestContracts:
    def test_every_kind_validates_a_minimal_request(self):
        minimal = {
            "hello": {},
            "open_session": {},
            "close_session": {"session": "s1"},
            "event": {"session": "s1", "op": "open_schema",
                      "schema": "phone_net"},
            "query": {"schema": "phone_net", "text": "select * from Pole"},
            "render": {"session": "s1"},
            "scene": {"session": "s1"},
            "txn": {"ops": [{"op": "delete", "oid": "Pole#1"}]},
            "subscribe": {"classes": ["Pole"]},
            "unsubscribe": {},
            "watch": {"session": "s1", "schema": "phone_net",
                      "text": "select * from Pole"},
            "unwatch": {"watch": "w1"},
            "stats": {},
            "ping": {},
            "repl_snapshot": {},
            "repl_poll": {"cursor": 0},
            "repl_status": {},
        }
        assert set(minimal) == set(CONTRACTS)
        for kind, fields in minimal.items():
            validate_request({"id": 1, "kind": kind, **fields})

    def test_missing_id_rejected(self):
        with pytest.raises(ProtocolError, match="'id'"):
            validate_request({"kind": "ping"})

    def test_bool_id_rejected(self):
        with pytest.raises(ProtocolError, match="'id'"):
            validate_request({"id": True, "kind": "ping"})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError, match="unknown request kind"):
            validate_request({"id": 1, "kind": "drop_table"})

    def test_missing_required_field(self):
        with pytest.raises(ProtocolError, match="missing required"):
            validate_request({"id": 1, "kind": "close_session"})

    def test_wrong_field_type(self):
        with pytest.raises(ProtocolError, match="must be string"):
            validate_request({"id": 1, "kind": "close_session",
                              "session": 42})

    def test_bool_does_not_pass_as_integer(self):
        with pytest.raises(ProtocolError, match="boolean"):
            validate_request({"id": 1, "kind": "event", "session": "s1",
                              "op": "pick", "class": "Pole",
                              "col": True, "row": 0})

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError, match="unknown field"):
            validate_request({"id": 1, "kind": "ping", "inject": "x"})

    def test_event_unknown_op(self):
        with pytest.raises(ProtocolError, match="unknown event op"):
            validate_request({"id": 1, "kind": "event", "session": "s1",
                              "op": "drop_everything"})

    def test_event_missing_op_field(self):
        with pytest.raises(ProtocolError, match="requires field"):
            validate_request({"id": 1, "kind": "event", "session": "s1",
                              "op": "select_instance"})

    def test_txn_empty_batch(self):
        with pytest.raises(ProtocolError, match="empty 'ops'"):
            validate_request({"id": 1, "kind": "txn", "ops": []})

    def test_txn_bad_entry_shape(self):
        with pytest.raises(ProtocolError, match="must be an object"):
            validate_request({"id": 1, "kind": "txn", "ops": ["insert"]})

    def test_txn_unknown_op(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            validate_request({"id": 1, "kind": "txn",
                              "ops": [{"op": "truncate"}]})

    def test_txn_insert_missing_values(self):
        with pytest.raises(ProtocolError, match="missing 'values'"):
            validate_request({
                "id": 1, "kind": "txn",
                "ops": [{"op": "insert", "schema": "s", "class": "C"}],
            })

    def test_txn_update_needs_changes_object(self):
        with pytest.raises(ProtocolError, match="'changes' must be"):
            validate_request({
                "id": 1, "kind": "txn",
                "ops": [{"op": "update", "oid": "C#1", "changes": 5}],
            })
