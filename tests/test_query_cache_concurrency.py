"""QueryResultCache under concurrent committers (satellite of the
serving-layer PR: many remote connections now share one kernel cache).

The cache's contract is *snapshot consistency*: a lookup may never
return a result that a fresh execution against the latest committed
state would not also produce. These tests hammer that contract from
multiple threads — readers spinning on cached queries while writers
commit — and then assert the strong oracles that survive nondeterminism:

* **freshness**: once a thread's own commit has returned, its next
  cached query reflects that commit (read-your-own-commit through the
  cache, not just through MVCC);
* **monotonicity**: under insert-only writers, observed counts never
  go backwards;
* **convergence**: after the dust settles, the cached result equals an
  uncached execution, entry versions are current, and further lookups
  are hits.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.query_cache import QueryResultCache
from repro.geodb import GeographicDatabase
from repro.geodb.query_language import parse_query
from repro.workloads.txn_mix import MIX_CLASS, MIX_SCHEMA, build_mix_schema

QUERY_ALL = "select * from Feature"


@pytest.fixture()
def db():
    database = GeographicDatabase("cachetest")
    database.register_schema(build_mix_schema())
    for i in range(8):
        database.insert(MIX_SCHEMA, MIX_CLASS,
                        {"name": f"seed{i}", "size": i},
                        oid=f"Feature#seed{i}")
    return database


@pytest.fixture()
def cache(db):
    return QueryResultCache(db, capacity=32)


def cached_count(cache, text=QUERY_ALL):
    return len(cache.execute(MIX_SCHEMA, parse_query(text)))


def fresh_count(cache, text=QUERY_ALL):
    return len(cache.engine.execute(MIX_SCHEMA, parse_query(text)))


class TestReadYourOwnCommit:
    def test_every_commit_is_visible_to_its_thread(self, db, cache):
        """Each writer thread alternates commit → cached query and must
        see its own insert immediately, no matter how the other writers
        interleave with it."""
        writers, per_writer = 6, 12
        failures: list[str] = []

        def writer(w):
            for i in range(per_writer):
                oid = f"Feature#w{w}:{i}"
                with db.transaction() as txn:
                    txn.insert(MIX_SCHEMA, MIX_CLASS,
                               {"name": oid, "size": i}, oid=oid)
                result = cache.execute(MIX_SCHEMA, parse_query(QUERY_ALL))
                oids = set(result.oids())
                if oid not in oids:
                    failures.append(
                        f"{oid} committed but absent from cached result "
                        f"(cache={result.report.get('cache')})"
                    )
                    return

        threads = [threading.Thread(target=writer, args=(w,))
                   for w in range(writers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert failures == []
        assert cached_count(cache) == 8 + writers * per_writer
        assert cached_count(cache) == fresh_count(cache)


class TestMonotonicity:
    def test_counts_never_go_backwards_under_inserts(self, db, cache):
        """Insert-only committers: a reader spinning on the cached query
        must observe a non-decreasing count (a regression here means the
        cache served an entry from before a commit it had already
        revealed)."""
        stop = threading.Event()
        violations: list[tuple[int, int]] = []
        observed: list[int] = []

        def reader():
            last = -1
            while not stop.is_set():
                count = cached_count(cache)
                if count < last:
                    violations.append((last, count))
                    return
                last = count
                observed.append(count)

        def writer(w):
            for i in range(25):
                with db.transaction() as txn:
                    txn.insert(MIX_SCHEMA, MIX_CLASS,
                               {"name": f"m{w}:{i}", "size": i},
                               oid=f"Feature#m{w}:{i}")

        readers = [threading.Thread(target=reader) for _ in range(3)]
        writers = [threading.Thread(target=writer, args=(w,))
                   for w in range(4)]
        for t in readers + writers:
            t.start()
        for t in writers:
            t.join(timeout=60)
        stop.set()
        for t in readers:
            t.join(timeout=60)
        assert violations == [], f"count went backwards: {violations[:3]}"
        assert observed, "readers never completed a query"
        assert cached_count(cache) == 8 + 4 * 25


class TestConvergence:
    def test_cache_converges_and_serves_hits(self, db, cache):
        """After mixed insert/update/delete churn from many threads, the
        cached result matches an uncached execution, and with writers
        quiesced the next lookups are pure hits."""
        def churner(w):
            oid = f"Feature#churn{w}"
            with db.transaction() as txn:
                txn.insert(MIX_SCHEMA, MIX_CLASS,
                           {"name": oid, "size": 0}, oid=oid)
            for i in range(10):
                cached_count(cache)
                with db.transaction() as txn:
                    txn.update(oid, {"size": i})
                cached_count(cache, "select name from Feature")
            if w % 2:
                with db.transaction() as txn:
                    txn.delete(oid)

        threads = [threading.Thread(target=churner, args=(w,))
                   for w in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)

        assert cached_count(cache) == fresh_count(cache) == 8 + 4
        # writers quiesced: the entry is current, so lookups hit
        hits_before = cache.hits
        for _ in range(5):
            result = cache.execute(MIX_SCHEMA, parse_query(QUERY_ALL))
            assert result.report["cache"] == "hit"
        assert cache.hits == hits_before + 5

    def test_stats_are_consistent_after_hammering(self, db, cache):
        """hits + misses equals lookups, invalidations never exceeds
        misses' entry builds, and the entry table respects capacity —
        even when 8 threads hammer 40 distinct fingerprints through a
        capacity-32 cache while commits invalidate under them."""
        queries = [QUERY_ALL, "select name from Feature"] + [
            f"select * from Feature where size = {i}" for i in range(38)
        ]
        lookups = threading.local()
        totals: list[int] = []
        lock = threading.Lock()

        def worker(w):
            mine = 0
            for i in range(30):
                cache.execute(MIX_SCHEMA,
                              parse_query(queries[(w * 7 + i) % len(queries)]))
                mine += 1
                if i % 10 == 5:
                    with db.transaction() as txn:
                        txn.insert(MIX_SCHEMA, MIX_CLASS,
                                   {"name": f"s{w}:{i}", "size": i},
                                   oid=f"Feature#s{w}:{i}")
            with lock:
                totals.append(mine)

        threads = [threading.Thread(target=worker, args=(w,))
                   for w in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)

        stats = cache.stats()
        assert sum(totals) == 8 * 30
        assert stats["lookups"] == sum(totals)
        assert stats["hits"] + stats["misses"] == stats["lookups"]
        assert stats["invalidations"] <= stats["misses"]
        assert stats["coalesced"] <= stats["misses"]
        assert stats["entries"] <= cache.capacity
        # and the cache still answers correctly
        assert cached_count(cache) == fresh_count(cache)


class TestPerCallReports:
    def test_shared_result_is_never_mutated(self, db, cache):
        """Concurrent lookups of the same entry each get their own
        report: a thread reading ``report["cache"]`` can never observe
        another thread's status written into a shared object."""
        warm = cache.execute(MIX_SCHEMA, parse_query(QUERY_ALL))
        assert warm.report["cache"] == "miss"
        barrier = threading.Barrier(8)
        results: list = []
        lock = threading.Lock()

        def reader():
            barrier.wait()
            for _ in range(50):
                result = cache.execute(MIX_SCHEMA, parse_query(QUERY_ALL))
                with lock:
                    results.append(result)

        threads = [threading.Thread(target=reader) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)

        assert len(results) == 8 * 50
        assert all(r.report["cache"] == "hit" for r in results)
        # the first miss's view still says miss — nobody rewrote it
        assert warm.report["cache"] == "miss"
        # all hits share the stored objects; none is the stored result
        assert all(r.objects is warm.objects for r in results)
        # the engine-built report itself carries no cache field
        bypass = cache.engine.execute(MIX_SCHEMA, parse_query(QUERY_ALL))
        assert "cache" not in bypass.report


class TestSingleFlight:
    def test_identical_misses_coalesce_to_one_execution(self, db, cache):
        """N threads missing the same cold key at the same versions run
        the query once; followers share the leader's result and are
        counted both as misses and as coalesced."""
        executions: list[int] = []
        lock = threading.Lock()
        inner = cache.engine.execute
        release = threading.Event()

        def slow_execute(schema_name, query):
            with lock:
                executions.append(1)
            release.wait(timeout=30)    # hold followers in the flight
            return inner(schema_name, query)

        cache.engine.execute = slow_execute
        barrier = threading.Barrier(6)
        results: list = []
        rlock = threading.Lock()

        def racer(n):
            barrier.wait()
            if n == 0:
                # give the followers time to pile onto the flight
                threading.Timer(0.3, release.set).start()
            result = cache.execute(MIX_SCHEMA, parse_query(QUERY_ALL))
            with rlock:
                results.append(result)

        threads = [threading.Thread(target=racer, args=(n,))
                   for n in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        cache.engine.execute = inner

        assert len(executions) == 1, "coalescing must execute exactly once"
        assert len(results) == 6
        statuses = sorted(r.report["cache"] for r in results)
        assert statuses == ["coalesced"] * 5 + ["miss"]
        assert all(set(r.oids()) == set(results[0].oids()) for r in results)
        stats = cache.stats()
        assert stats["lookups"] == 6
        assert stats["hits"] == 0 and stats["misses"] == 6
        assert stats["coalesced"] == 5

    def test_followers_survive_a_failing_leader(self, db, cache):
        """A leader whose execution raises must not strand its
        followers: they wake up and execute independently."""
        inner = cache.engine.execute
        entered = threading.Event()
        proceed = threading.Event()
        calls: list[int] = []
        lock = threading.Lock()

        def flaky_execute(schema_name, query):
            with lock:
                calls.append(1)
                first = len(calls) == 1
            if first:
                entered.set()
                proceed.wait(timeout=30)
                raise RuntimeError("leader died")
            return inner(schema_name, query)

        cache.engine.execute = flaky_execute
        errors: list[BaseException] = []
        results: list = []
        rlock = threading.Lock()

        def leader():
            try:
                cache.execute(MIX_SCHEMA, parse_query(QUERY_ALL))
            except RuntimeError as exc:
                with rlock:
                    errors.append(exc)

        def follower():
            entered.wait(timeout=30)
            result = cache.execute(MIX_SCHEMA, parse_query(QUERY_ALL))
            with rlock:
                results.append(result)

        lt = threading.Thread(target=leader)
        fts = [threading.Thread(target=follower) for _ in range(3)]
        lt.start()
        for t in fts:
            t.start()
        # let the followers join the flight, then kill the leader
        import time
        time.sleep(0.2)
        proceed.set()
        lt.join(timeout=60)
        for t in fts:
            t.join(timeout=60)
        cache.engine.execute = inner

        assert len(errors) == 1     # the leader saw its own exception
        assert len(results) == 3    # every follower still got an answer
        assert all(r.report["cache"] == "miss" for r in results)
        assert all(len(r) == 8 for r in results)
