"""Unit tests for simulation-mode scenarios (§2.2)."""

import pytest

from repro.active import ConstraintGuard, RelationConstraint
from repro.errors import (
    ConstraintViolationError,
    ObjectNotFoundError,
    SessionError,
    TypeMismatchError,
)
from repro.spatial import BBox, Point, Polygon


@pytest.fixture()
def scenario(phone_db):
    return phone_db.scenario("phone_net")


class TestHypotheticalMutations:
    def test_insert_visible_in_scenario_only(self, phone_db, scenario):
        before = phone_db.count("phone_net", "Pole")
        oid = scenario.insert("Pole", {"pole_location": Point(1, 1)})
        assert scenario.exists(oid)
        assert scenario.get_object(oid).geometry() == Point(1, 1)
        assert phone_db.find_object(oid) is None
        assert phone_db.count("phone_net", "Pole") == before

    def test_update_overlays_base(self, phone_db, scenario, pole_oid):
        scenario.update(pole_oid, {"pole_historic": "hypothetical"})
        assert scenario.values_of(pole_oid)["pole_historic"] == "hypothetical"
        assert phone_db.get_object(pole_oid).get("pole_historic") != \
            "hypothetical"

    def test_delete_hides_from_scenario(self, phone_db, scenario, pole_oid):
        scenario.delete(pole_oid)
        assert not scenario.exists(pole_oid)
        assert scenario.values_of(pole_oid) is None
        assert phone_db.find_object(pole_oid) is not None
        with pytest.raises(ObjectNotFoundError):
            scenario.update(pole_oid, {"pole_historic": "x"})

    def test_validation_still_applies(self, scenario):
        with pytest.raises(TypeMismatchError):
            scenario.insert("Pole", {"pole_type": 1})  # missing required
        with pytest.raises(TypeMismatchError):
            scenario.insert("Pole", {"pole_location": "not a point"})

    def test_sequences_of_ops(self, scenario):
        oid = scenario.insert("Pole", {"pole_location": Point(1, 1)})
        scenario.update(oid, {"pole_type": 5})
        assert scenario.values_of(oid)["pole_type"] == 5
        scenario.delete(oid)
        assert not scenario.exists(oid)


class TestHypotheticalReads:
    def test_extent_merges_overlay(self, phone_db, scenario, pole_oid):
        base_count = phone_db.count("phone_net", "Pole")
        scenario.insert("Pole", {"pole_location": Point(1, 1)})
        scenario.delete(pole_oid)
        oids = [o.oid for o in scenario.extent("Pole")]
        assert len(oids) == base_count  # +1 insert, -1 delete
        assert pole_oid not in oids

    def test_query_sees_hypothesis(self, scenario):
        scenario.insert("Pole", {"pole_location": Point(1, 1),
                                 "pole_type": 42})
        result = scenario.run_query(
            "select * from Pole where pole_type = 42")
        assert len(result) == 1
        assert result.report["plan"] == "scenario-scan"

    def test_query_respects_updates(self, scenario, pole_oid):
        scenario.update(pole_oid, {"pole_type": 77})
        result = scenario.run_query(
            "select * from Pole where pole_type = 77")
        assert result.oids() == [pole_oid]


class TestResolution:
    def test_discard_never_touches_base(self, phone_db, scenario):
        before = phone_db.count("phone_net", "Pole")
        scenario.insert("Pole", {"pole_location": Point(1, 1)})
        scenario.discard()
        assert phone_db.count("phone_net", "Pole") == before
        with pytest.raises(SessionError):
            scenario.insert("Pole", {"pole_location": Point(2, 2)})

    def test_commit_replays_as_transaction(self, phone_db, pole_oid):
        scenario = phone_db.scenario("phone_net")
        new_oid = scenario.insert("Pole", {"pole_location": Point(1, 1)})
        scenario.update(pole_oid, {"pole_historic": "committed"})
        applied = scenario.commit()
        assert applied == 2
        assert phone_db.get_object(new_oid).geometry() == Point(1, 1)
        assert phone_db.get_object(pole_oid).get("pole_historic") == \
            "committed"

    def test_commit_respects_integrity_rules(self, phone_db):
        guard = ConstraintGuard(phone_db, "phone_net")
        guard.add(RelationConstraint("Pole", "pole_location", "within",
                                     "District", "boundary"))
        scenario = phone_db.scenario("phone_net")
        scenario.insert("Pole", {"pole_location": Point(99_999, 99_999)})
        before = phone_db.count("phone_net", "Pole")
        with pytest.raises(ConstraintViolationError):
            scenario.commit()
        assert phone_db.count("phone_net", "Pole") == before
        guard.manager.detach()

    def test_context_manager_auto_discards(self, phone_db):
        before = phone_db.count("phone_net", "Pole")
        with phone_db.scenario("phone_net") as what_if:
            what_if.insert("Pole", {"pole_location": Point(1, 1)})
            assert what_if.pending_operations == 1
        assert phone_db.count("phone_net", "Pole") == before

    def test_double_close_rejected(self, scenario):
        scenario.discard()
        with pytest.raises(SessionError):
            scenario.discard()

    def test_commit_events_fire_normally(self, phone_db):
        events = []
        phone_db.bus.subscribe(
            lambda e: events.append(e.payload.get("phase")))
        scenario = phone_db.scenario("phone_net")
        scenario.insert("Pole", {"pole_location": Point(1, 1)})
        assert events == []     # hypothesis: silent
        scenario.commit()
        assert events == ["validate", "commit"]
