"""Unit tests for topological constraint maintenance (paper [11])."""

import pytest

from repro.active import (
    ConstraintGuard,
    ProximityConstraint,
    RelationConstraint,
)
from repro.errors import ConstraintViolationError, RuleError
from repro.geodb import (
    Attribute,
    GeoClass,
    GeographicDatabase,
    GeometryType,
    TEXT,
)
from repro.spatial import LineString, Point, Polygon, BBox


@pytest.fixture()
def db():
    database = GeographicDatabase("K")
    schema = database.create_schema("net")
    schema.add_class(GeoClass("District", [
        Attribute("boundary", GeometryType("polygon"), required=True),
    ]))
    schema.add_class(GeoClass("Street", [
        Attribute("axis", GeometryType("linestring"), required=True),
    ]))
    schema.add_class(GeoClass("Pole", [
        Attribute("loc", GeometryType("point"), required=True),
        Attribute("note", TEXT),
    ]))
    schema.add_class(GeoClass("Duct", [
        Attribute("path", GeometryType("linestring"), required=True),
    ]))
    return database


@pytest.fixture()
def guard(db):
    return ConstraintGuard(db, "net")


def add_district(db):
    return db.insert("net", "District",
                     {"boundary": Polygon.from_bbox(BBox(0, 0, 100, 100))})


class TestRelationConstraint:
    def test_within_some_enforced(self, db, guard):
        guard.add(RelationConstraint("Pole", "loc", "within",
                                     "District", "boundary"))
        add_district(db)
        db.insert("net", "Pole", {"loc": Point(50, 50)})   # ok
        with pytest.raises(ConstraintViolationError):
            db.insert("net", "Pole", {"loc": Point(500, 500)})
        assert db.count("net", "Pole") == 1

    def test_vacuous_when_no_targets(self, db, guard):
        guard.add(RelationConstraint("Pole", "loc", "within",
                                     "District", "boundary"))
        db.insert("net", "Pole", {"loc": Point(500, 500)})  # no districts yet
        assert db.count("net", "Pole") == 1

    def test_none_quantifier_prohibits(self, db, guard):
        guard.add(RelationConstraint("Duct", "path", "crosses",
                                     "Duct", "path", quantifier="none"))
        db.insert("net", "Duct", {"path": LineString([(0, 0), (10, 0)])})
        db.insert("net", "Duct", {"path": LineString([(0, 5), (10, 5)])})
        with pytest.raises(ConstraintViolationError):
            db.insert("net", "Duct",
                      {"path": LineString([(5, -5), (5, 10)])})

    def test_subject_excluded_from_targets(self, db, guard):
        guard.add(RelationConstraint("Duct", "path", "equals",
                                     "Duct", "path", quantifier="none"))
        db.insert("net", "Duct", {"path": LineString([(0, 0), (10, 0)])})
        # updating the same duct must not self-collide
        oid = db.extent("net", "Duct").oids()[0]
        db.update(oid, {"path": LineString([(0, 0), (12, 0)])})

    def test_all_quantifier(self, db, guard):
        guard.add(RelationConstraint("Pole", "loc", "within",
                                     "District", "boundary",
                                     quantifier="all"))
        add_district(db)
        db.insert("net", "District",
                  {"boundary": Polygon.from_bbox(BBox(40, 40, 60, 60))})
        db.insert("net", "Pole", {"loc": Point(50, 50)})   # inside both
        with pytest.raises(ConstraintViolationError):
            db.insert("net", "Pole", {"loc": Point(10, 10)})  # only one

    def test_update_checked_too(self, db, guard):
        guard.add(RelationConstraint("Pole", "loc", "within",
                                     "District", "boundary"))
        add_district(db)
        oid = db.insert("net", "Pole", {"loc": Point(50, 50)})
        with pytest.raises(ConstraintViolationError):
            db.update(oid, {"loc": Point(900, 900)})
        assert db.get_object(oid).geometry("loc") == Point(50, 50)

    def test_non_spatial_update_not_checked(self, db, guard):
        guard.add(RelationConstraint("Pole", "loc", "within",
                                     "District", "boundary"))
        add_district(db)
        oid = db.insert("net", "Pole", {"loc": Point(50, 50)})
        db.update(oid, {"note": "repainted"})  # must not re-raise

    def test_validation_of_parameters(self):
        with pytest.raises(RuleError):
            RelationConstraint("A", "g", "orbits", "B", "g")
        with pytest.raises(RuleError):
            RelationConstraint("A", "g", "within", "B", "g",
                               quantifier="most")


class TestProximityConstraint:
    def test_enforced(self, db, guard):
        guard.add(ProximityConstraint("Pole", "loc", "Street", "axis", 10.0))
        db.insert("net", "Street", {"axis": LineString([(0, 0), (100, 0)])})
        db.insert("net", "Pole", {"loc": Point(50, 5)})
        with pytest.raises(ConstraintViolationError) as excinfo:
            db.insert("net", "Pole", {"loc": Point(50, 80)})
        assert "nearest Street" in str(excinfo.value)

    def test_vacuous_without_targets(self, db, guard):
        guard.add(ProximityConstraint("Pole", "loc", "Street", "axis", 10.0))
        db.insert("net", "Pole", {"loc": Point(50, 80)})

    def test_negative_distance_rejected(self):
        with pytest.raises(RuleError):
            ProximityConstraint("A", "g", "B", "g", -1.0)


class TestGuard:
    def test_rules_live_in_integrity_group(self, db, guard):
        guard.add(ProximityConstraint("Pole", "loc", "Street", "axis", 10.0))
        rules = guard.manager.rules(ConstraintGuard.GROUP)
        assert len(rules) == 1
        assert rules[0].name.startswith("integrity::")

    def test_sweep_reports_without_raising(self, db, guard):
        db.insert("net", "Pole", {"loc": Point(500, 500)})
        guard.add(RelationConstraint("Pole", "loc", "within",
                                     "District", "boundary"))
        add_district(db)
        violations = guard.sweep()
        assert len(violations) == 1
        assert violations[0].subject_oid.startswith("Pole#")
        assert guard.audit_log == violations

    def test_multiple_constraints_one_event(self, db, guard):
        guard.add(ProximityConstraint("Pole", "loc", "Street", "axis", 10.0))
        guard.add(RelationConstraint("Pole", "loc", "within",
                                     "District", "boundary"))
        add_district(db)
        db.insert("net", "Street", {"axis": LineString([(0, 50), (100, 50)])})
        db.insert("net", "Pole", {"loc": Point(50, 52)})  # satisfies both
        with pytest.raises(ConstraintViolationError):
            db.insert("net", "Pole", {"loc": Point(50, 95)})  # too far

    def test_violation_object_carries_details(self, db, guard):
        guard.add(RelationConstraint("Pole", "loc", "within",
                                     "District", "boundary"))
        add_district(db)
        try:
            db.insert("net", "Pole", {"loc": Point(900, 900)})
        except ConstraintViolationError as exc:
            assert len(exc.violations) == 1
            assert "within" in exc.violations[0].constraint
        else:
            pytest.fail("expected a violation")
