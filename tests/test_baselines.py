"""Unit tests for the hardwired-dispatcher baseline.

The baseline must be *behaviorally equivalent* to the generic dispatcher
for the §4 scenario (so benchmark C3 compares fairly) while being
structurally what the paper criticizes: separate code per window kind and
compiled-in customization.
"""

import pytest

from repro.baselines import HardwiredDispatcher, install_pole_manager_variants
from repro.core import Context, GISSession
from repro.errors import DispatchError
from repro.lang import FIGURE_6_PROGRAM
from repro.ui import displayed_attribute_names, summarize_window

JULIANO = Context(user="juliano", application="pole_manager")
OTHER = Context(user="maria", application="browse")


@pytest.fixture()
def hardwired(phone_db):
    dispatcher = HardwiredDispatcher(phone_db)
    install_pole_manager_variants(dispatcher)
    return dispatcher


class TestGenericPath:
    def test_default_windows_match_generic_dispatcher(self, phone_db,
                                                      hardwired, pole_oid):
        session = GISSession(phone_db, user="maria", application="browse")
        session.connect("phone_net")
        session.select_class("Pole")
        session.select_instance(pole_oid)

        hardwired.open_schema("phone_net", OTHER)
        hardwired.open_class("phone_net", "Pole", OTHER)
        hardwired.open_instance(pole_oid, OTHER)

        for name in ("schema_phone_net", "classset_Pole",
                     f"instance_{pole_oid}"):
            generic = summarize_window(session.screen.window(name))
            conventional = summarize_window(hardwired.screen.window(name))
            assert generic.widget_types == conventional.widget_types, name
            assert generic.listed_items == conventional.listed_items, name
            assert generic.feature_count == conventional.feature_count, name


class TestHardwiredCustomization:
    def test_pole_manager_schema_hidden_and_cascaded(self, hardwired):
        hardwired.open_schema("phone_net", JULIANO)
        assert not hardwired.screen.window("schema_phone_net").visible
        assert "classset_Pole" in hardwired.screen.names()

    def test_pole_class_window_customized(self, hardwired):
        hardwired.open_class("phone_net", "Pole", JULIANO)
        window = hardwired.screen.window("classset_Pole")
        assert window.find("class_widget_Pole").widget_type == "slider"
        assert window.get_property("presentation_format") == "pointFormat"

    def test_other_class_not_customized(self, hardwired):
        hardwired.open_class("phone_net", "Duct", JULIANO)
        window = hardwired.screen.window("classset_Duct")
        assert window.find("class_widget_Duct").widget_type == "button"

    def test_instance_variant_matches_rule_driven_output(self, phone_db,
                                                         hardwired,
                                                         pole_oid):
        session = GISSession(phone_db, user="juliano",
                             application="pole_manager")
        session.install_program(FIGURE_6_PROGRAM, persist=False)
        session.connect("phone_net")
        session.select_instance(pole_oid)
        rule_driven = session.screen.window(f"instance_{pole_oid}")

        hardwired.open_instance(pole_oid, JULIANO)
        conventional = hardwired.screen.window(f"instance_{pole_oid}")

        assert displayed_attribute_names(conventional) == \
            displayed_attribute_names(rule_driven)
        # Supplier is dereferenced to a name in both
        supplier = phone_db.get_object(
            phone_db.get_object(pole_oid).get("pole_supplier"))
        assert supplier.get("name") in str(
            conventional.find("attr_pole_supplier").value)

    def test_variant_validation(self, phone_db):
        dispatcher = HardwiredDispatcher(phone_db)
        with pytest.raises(DispatchError):
            dispatcher.add_hardwired_variant(lambda c: True, "popup",
                                             lambda *a: None)

    def test_stats(self, hardwired):
        hardwired.open_schema("phone_net", OTHER)
        stats = hardwired.stats()
        assert stats["interactions"] == 1
        assert stats["variants"] == 3
