"""Deterministic interleaving harness for transaction isolation tests.

Wall-clock thread races make terrible isolation tests: the schedule that
exposes a dirty read may fire once in ten thousand runs. This harness
removes the clock entirely — N *scripted* transactions are advanced one
operation at a time under an explicit **schedule** (a sequence of script
indices), so a test can enumerate or sample interleavings and assert the
isolation oracles over every one of them.

Vocabulary
----------
script
    A list of operations for one transaction::

        ("read", oid)          # observe the oid's counter value
        ("write", oid, value)  # set the counter to an absolute value
        ("write_incr", oid)    # set it to last-read-value + 1 (the
                               # classic lost-update probe; reads as 0
                               # when the object was never read/absent)
        ("commit",)            # terminal
        ("commit_stage",)      # two-phase: apply + stage the WAL batch
        ("commit_wait",)       # two-phase: wait on the group barrier
        ("abort",)             # terminal

schedule
    A tuple of script indices; each entry advances that script by one
    operation. :func:`interleavings` enumerates every legal schedule,
    :func:`seeded_schedules` samples them reproducibly.

backend
    The system under test. :class:`MVCCBackend` drives the real geodb
    through its snapshot-isolated transactions; :class:`BrokenBackend`
    is a deliberately unsound stand-in (writes apply immediately to
    shared state, commit is a no-op) used to prove each oracle *can*
    fail — an oracle that passes on the broken backend tests nothing.

oracles
    Pure functions over the :class:`ScheduleResult`:
    :func:`check_snapshot_reads` (no dirty reads, repeatable reads,
    read-your-writes), :func:`check_no_lost_updates`,
    :func:`check_first_committer_wins`, :func:`check_final_state`.
    Each raises :class:`OracleViolation` with the offending schedule.
"""

from __future__ import annotations

import itertools
import os
import random
from typing import Any, Sequence

from repro.errors import TransactionConflictError
from repro.geodb.database import GeographicDatabase
from repro.workloads.txn_mix import MIX_CLASS, MIX_SCHEMA, build_mix_schema

#: set REPRO_SCHED_QUICK=1 to run the sampled subset (CI smoke mode)
QUICK = os.environ.get("REPRO_SCHED_QUICK", "") not in ("", "0")


class OracleViolation(AssertionError):
    """An isolation oracle failed; the message names the schedule."""


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------


class MVCCBackend:
    """The real geodb: snapshot-isolated transactions over one database.

    Counters are mix-schema ``Feature`` objects; ``read`` returns the
    ``size`` attribute (``None`` when the object does not exist in the
    transaction's view).
    """

    conflict_errors = (TransactionConflictError,)

    def __init__(self, initial: dict[str, int] | None = None):
        self.db = GeographicDatabase("sched")
        self.db.register_schema(build_mix_schema())
        for oid, value in (initial or {}).items():
            self.db.insert(MIX_SCHEMA, MIX_CLASS,
                           {"name": oid, "size": value}, oid=oid)

    def begin(self):
        return self.db.transaction()

    def read(self, txn, oid: str):
        values = txn.read(oid)
        return None if values is None else values.get("size")

    def write(self, txn, oid: str, value: int) -> None:
        if txn.read(oid) is None:
            txn.insert(MIX_SCHEMA, MIX_CLASS,
                       {"name": oid, "size": value}, oid=oid)
        else:
            txn.update(oid, {"size": value})

    def commit(self, txn) -> None:
        txn.commit()

    def commit_stage(self, txn) -> None:
        """Phase one of a group commit: apply and stage, don't wait."""
        txn.commit(wait_durable=False)

    def commit_wait(self, txn) -> None:
        """Phase two: block until the staged batch's barrier has run."""
        txn.wait_durable()

    def abort(self, txn) -> None:
        txn.abort()

    def committed_value(self, oid: str):
        obj = self.db.find_object(oid)
        return None if obj is None else obj.get("size")


class BrokenBackend:
    """A deliberately unsound backend: no isolation whatsoever.

    Writes hit the shared state immediately (dirty writes), reads always
    see the shared state (dirty reads, no repeatable reads), commit and
    abort are no-ops (no atomicity, no first-committer-wins). Exists so
    tests can prove every oracle actually fires on a bad implementation.
    """

    conflict_errors = ()

    def __init__(self, initial: dict[str, int] | None = None):
        self.state: dict[str, int] = dict(initial or {})

    def begin(self):
        return object()  # no per-transaction state at all

    def read(self, txn, oid: str):
        return self.state.get(oid)

    def write(self, txn, oid: str, value: int) -> None:
        self.state[oid] = value

    def commit(self, txn) -> None:
        pass

    def commit_stage(self, txn) -> None:
        pass

    def commit_wait(self, txn) -> None:
        pass

    def abort(self, txn) -> None:
        pass

    def committed_value(self, oid: str):
        return self.state.get(oid)


# ---------------------------------------------------------------------------
# Schedule execution
# ---------------------------------------------------------------------------


class ScriptRun:
    """Execution record of one script under one schedule."""

    __slots__ = ("index", "script", "begin_seq", "end_seq", "outcome",
                 "reads", "writes", "last_read")

    def __init__(self, index: int, script: Sequence[tuple]):
        self.index = index
        self.script = list(script)
        self.begin_seq: int | None = None
        self.end_seq: int | None = None
        #: "committed" | "aborted" | "conflict" | None (never finished)
        self.outcome: str | None = None
        #: (seq, oid, observed_value)
        self.reads: list[tuple[int, str, Any]] = []
        #: (seq, oid, value)
        self.writes: list[tuple[int, str, int]] = []
        self.last_read: dict[str, Any] = {}


class ScheduleResult:
    """Everything the oracles need about one executed schedule."""

    def __init__(self, backend, initial: dict[str, int],
                 schedule: tuple[int, ...], runs: list[ScriptRun]):
        self.backend = backend
        self.initial = dict(initial)
        self.schedule = schedule
        self.runs = runs

    def committed(self) -> list[ScriptRun]:
        return [run for run in self.runs if run.outcome == "committed"]

    def describe(self) -> str:
        parts = [f"schedule={self.schedule}"]
        for run in self.runs:
            parts.append(f"T{run.index}:{run.outcome} {run.script}")
        return " | ".join(parts)


def run_schedule(backend, scripts: Sequence[Sequence[tuple]],
                 schedule: Sequence[int],
                 initial: dict[str, int] | None = None) -> ScheduleResult:
    """Advance ``scripts`` step-by-step in ``schedule`` order.

    Each schedule entry runs the next operation of that script; a
    transaction begins lazily at its first scheduled step (so
    ``begin_seq`` reflects the schedule, not script order). A backend
    conflict error during commit marks the run ``"conflict"`` —
    first-committer-wins losses are an expected outcome, not a test
    failure. Entries for finished scripts are skipped, so padded or
    sampled schedules need no legality repairs.
    """
    runs = [ScriptRun(i, script) for i, script in enumerate(scripts)]
    cursors = [0] * len(scripts)
    txns: list[Any] = [None] * len(scripts)
    seq = 0
    for index in schedule:
        run = runs[index]
        if run.outcome is not None or cursors[index] >= len(run.script):
            continue
        seq += 1
        if txns[index] is None:
            run.begin_seq = seq
            txns[index] = backend.begin()
        op = run.script[cursors[index]]
        cursors[index] += 1
        kind = op[0]
        if kind == "read":
            value = backend.read(txns[index], op[1])
            run.reads.append((seq, op[1], value))
            run.last_read[op[1]] = value
        elif kind == "write":
            backend.write(txns[index], op[1], op[2])
            run.writes.append((seq, op[1], op[2]))
        elif kind == "write_incr":
            base = run.last_read.get(op[1])
            value = (0 if base is None else base) + 1
            backend.write(txns[index], op[1], value)
            run.writes.append((seq, op[1], value))
        elif kind == "commit":
            run.end_seq = seq
            try:
                backend.commit(txns[index])
            except backend.conflict_errors:
                run.outcome = "conflict"
            else:
                run.outcome = "committed"
        elif kind == "commit_stage":
            # Two-phase commit, phase one: conflicts surface here (the
            # commit validates and applies); success leaves the script
            # alive so a later commit_wait can join a group barrier.
            run.end_seq = seq
            try:
                backend.commit_stage(txns[index])
            except backend.conflict_errors:
                run.outcome = "conflict"
        elif kind == "commit_wait":
            # The *commit point* (visibility to later snapshots) is the
            # stage; the wait only adds durability. Keep end_seq at the
            # stage seq so the isolation oracles window on visibility.
            if run.end_seq is None:
                run.end_seq = seq
            backend.commit_wait(txns[index])
            run.outcome = "committed"
        elif kind == "abort":
            run.end_seq = seq
            backend.abort(txns[index])
            run.outcome = "aborted"
        else:
            raise ValueError(f"unknown scheduler op {op!r}")
    # Terminate anything the schedule left hanging so the database holds
    # no open snapshots (and GC/watermark tests see a clean backend).
    for index, run in enumerate(runs):
        if txns[index] is not None and run.outcome is None:
            backend.abort(txns[index])
    return ScheduleResult(backend, initial or {}, tuple(schedule), runs)


# ---------------------------------------------------------------------------
# Schedule generation
# ---------------------------------------------------------------------------


def interleavings(lengths: Sequence[int]):
    """Every interleaving of scripts with the given step counts.

    Yields tuples of script indices. The count is the multinomial
    coefficient — keep scripts short (the 3+3 case already yields 20,
    4+4 yields 70, 3+3+3 yields 1680).
    """
    pool = [i for i, length in enumerate(lengths) for _ in range(length)]
    seen = set()
    for perm in itertools.permutations(pool):
        if perm not in seen:
            seen.add(perm)
            yield perm


def seeded_schedules(lengths: Sequence[int], count: int,
                     seed: int) -> list[tuple[int, ...]]:
    """``count`` reproducible random interleavings of the given lengths."""
    rng = random.Random(seed)
    schedules = []
    for _ in range(count):
        pool = [i for i, length in enumerate(lengths)
                for _ in range(length)]
        rng.shuffle(pool)
        schedules.append(tuple(pool))
    return schedules


# ---------------------------------------------------------------------------
# Oracles
# ---------------------------------------------------------------------------


def _committed_prefix_value(result: ScheduleResult, oid: str,
                            before_seq: int):
    """The committed value of ``oid`` just before ``before_seq``.

    Replays the initial state plus every write of a transaction that
    committed strictly before ``before_seq``, in commit order — the
    state a snapshot taken at ``before_seq`` must observe.
    """
    value = result.initial.get(oid)
    for run in sorted(result.committed(), key=lambda r: r.end_seq):
        if run.end_seq >= before_seq:
            break
        for _, write_oid, write_value in run.writes:
            if write_oid == oid:
                value = write_value
    return value


def check_snapshot_reads(result: ScheduleResult) -> None:
    """Every read must equal the begin-time committed state, overlaid
    with the transaction's own earlier writes.

    This single invariant subsumes three anomalies: a *dirty read*
    observes an uncommitted (or later-aborted) write, a *non-repeatable
    read* observes a commit that landed after begin, and broken
    *read-your-writes* misses the transaction's own staged write. In all
    three cases the observed value differs from the snapshot replay.
    """
    for run in result.runs:
        own: dict[str, int] = {}
        write_cursor = 0
        for seq, oid, observed in run.reads:
            while (write_cursor < len(run.writes)
                   and run.writes[write_cursor][0] < seq):
                _, w_oid, w_value = run.writes[write_cursor]
                own[w_oid] = w_value
                write_cursor += 1
            if oid in own:
                expected = own[oid]
            else:
                expected = _committed_prefix_value(result, oid,
                                                   run.begin_seq)
            if observed != expected:
                raise OracleViolation(
                    f"T{run.index} read {oid}={observed!r} at seq {seq}, "
                    f"but its snapshot (begin seq {run.begin_seq}) holds "
                    f"{expected!r} — {result.describe()}"
                )


def check_first_committer_wins(result: ScheduleResult) -> None:
    """No two overlapping committed transactions may write the same oid.

    Two committed runs whose active windows ``[begin_seq, end_seq]``
    overlap could not see each other's writes, so if their write sets
    intersect, the later committer had to lose — its outcome should
    have been ``"conflict"``.
    """
    committed = result.committed()
    for a, b in itertools.combinations(committed, 2):
        if a.begin_seq <= b.end_seq and b.begin_seq <= a.end_seq:
            a_oids = {oid for _, oid, _ in a.writes}
            b_oids = {oid for _, oid, _ in b.writes}
            clash = a_oids & b_oids
            if clash:
                raise OracleViolation(
                    f"T{a.index} and T{b.index} ran concurrently, both "
                    f"wrote {sorted(clash)} and both committed — "
                    f"first-committer-wins was not enforced — "
                    f"{result.describe()}"
                )


def check_no_lost_updates(result: ScheduleResult) -> None:
    """Committed read-modify-write increments must all be reflected.

    Applies to every oid that is a pure *counter* across all scripts:
    never the target of an absolute ``write``, and every ``write_incr``
    immediately preceded by a ``read`` of the same oid (a blind
    increment is a write of last-read + 1 with no read — not a counter
    bump, so such oids are excluded). For counters, the final committed
    value must equal the initial value plus the number of committed
    increment operations — an update disappears exactly when two
    increments read the same base value and both commit.
    """
    counters: set[str] = set()
    excluded: set[str] = set()
    for run in result.runs:
        prev: tuple | None = None
        for step in run.script:
            if step[0] == "write":
                excluded.add(step[1])
            elif step[0] == "write_incr":
                counters.add(step[1])
                if prev is None or prev[:2] != ("read", step[1]):
                    excluded.add(step[1])
            prev = step
    for oid in sorted(counters - excluded):
        expected = result.initial.get(oid, 0)
        for run in result.committed():
            expected += sum(
                1 for _, w_oid, _ in run.writes if w_oid == oid
            )
        actual = result.backend.committed_value(oid)
        if actual != expected:
            raise OracleViolation(
                f"lost update on {oid}: expected {expected} after "
                f"{len(result.committed())} commits, found {actual!r} — "
                f"{result.describe()}"
            )


def check_final_state(result: ScheduleResult) -> None:
    """The database must equal the committed writes replayed in commit
    order over the initial state — aborted and conflicted transactions
    leave no trace."""
    expected = dict(result.initial)
    for run in sorted(result.committed(), key=lambda r: r.end_seq):
        for _, oid, value in run.writes:
            expected[oid] = value
    for oid in sorted(set(expected) | set(result.initial)):
        actual = result.backend.committed_value(oid)
        if actual != expected.get(oid):
            raise OracleViolation(
                f"final state of {oid}: expected {expected.get(oid)!r}, "
                f"found {actual!r} — {result.describe()}"
            )


ALL_ORACLES = (check_snapshot_reads, check_first_committer_wins,
               check_no_lost_updates, check_final_state)


def check_all(result: ScheduleResult) -> None:
    for oracle in ALL_ORACLES:
        oracle(result)
