"""WAL shipping and follower replication.

Covers the replication stack below the wire: the
:class:`~repro.geodb.wal.LogShipper` (durable-only release, bounded
retention, snapshot handoff), envelope integrity
(:func:`~repro.geodb.wal.verify_envelope`), and follower databases
(:meth:`GeographicDatabase.follow`) — bootstrap equality, idempotent
replay, gap detection, read-only enforcement, MVCC snapshot isolation
across replayed batches, and fault tolerance: a follower crashing
mid-replay and re-following, a leader checkpoint racing a slow follower
into a snapshot handoff, and refusal of damaged shipped frames.
"""

from __future__ import annotations

import copy

import pytest

from repro.errors import ReplicationError, TransactionError
from repro.geodb import (
    GeographicDatabase,
    LocalReplicationSource,
    LogShipper,
    MemoryPager,
    WriteAheadLog,
)
from repro.geodb.wal import batch_checksum, make_envelope, verify_envelope
from repro.workloads import build_mix_schema
from repro.workloads.txn_mix import MIX_CLASS, MIX_SCHEMA, snapshot_state


def make_leader(name="leader", group_commit=False) -> GeographicDatabase:
    db = GeographicDatabase(name, pager=MemoryPager())
    db.register_schema(build_mix_schema())
    db.attach_wal(WriteAheadLog(MemoryPager(), sync_mode="none",
                                group_commit=group_commit))
    return db


def insert_n(db, n, prefix="obj") -> list[str]:
    return [
        db.insert(MIX_SCHEMA, MIX_CLASS, {"name": f"{prefix}{i}", "size": i})
        for i in range(n)
    ]


# ---------------------------------------------------------------------------
# LogShipper unit behaviour
# ---------------------------------------------------------------------------


class TestLogShipper:
    def test_inline_commits_ship_immediately(self):
        leader = make_leader()
        shipper = leader.enable_shipping()
        insert_n(leader, 3)
        result = shipper.poll(0)
        assert len(result["batches"]) == 3
        assert [b["lsn"] for b in result["batches"]] == [1, 2, 3]
        assert result["lsn"] == 3
        assert not result["snapshot_required"]

    def test_poll_is_cursor_incremental(self):
        leader = make_leader()
        shipper = leader.enable_shipping()
        insert_n(leader, 5)
        first = shipper.poll(0, max_batches=2)
        assert [b["lsn"] for b in first["batches"]] == [1, 2]
        rest = shipper.poll(2)
        assert [b["lsn"] for b in rest["batches"]] == [3, 4, 5]
        assert shipper.poll(5)["batches"] == []

    def test_staged_batch_held_until_durable(self):
        leader = make_leader(group_commit=True)
        shipper = leader.enable_shipping()
        txn = leader.transaction()
        txn.insert(MIX_SCHEMA, MIX_CLASS, {"name": "staged", "size": 1})
        txn.commit(wait_durable=False)
        # committed in memory, but the barrier has not run: nothing ships
        assert shipper.poll(0)["batches"] == []
        assert shipper.stats()["staged"] == 1
        txn.wait_durable()
        [batch] = shipper.poll(0)["batches"]
        assert batch["lsn"] == 1

    def test_retention_eviction_raises_base_lsn(self):
        leader = make_leader()
        shipper = leader.enable_shipping(retain=4)
        insert_n(leader, 10)
        assert shipper.base_lsn == 6
        assert shipper.head_lsn == 10
        behind = shipper.poll(3)
        assert behind["snapshot_required"]
        assert behind["batches"] == []
        fresh = shipper.poll(6)
        assert [b["lsn"] for b in fresh["batches"]] == [7, 8, 9, 10]

    def test_enable_shipping_is_idempotent(self):
        leader = make_leader()
        assert leader.enable_shipping() is leader.enable_shipping()

    def test_shipper_requires_wal(self):
        db = GeographicDatabase("bare", pager=MemoryPager())
        db.register_schema(build_mix_schema())
        with pytest.raises(ReplicationError):
            db.enable_shipping()

    def test_retain_must_be_positive(self):
        with pytest.raises(ReplicationError):
            LogShipper(retain=0)


# ---------------------------------------------------------------------------
# Envelope integrity
# ---------------------------------------------------------------------------


class TestEnvelopes:
    def _valid(self):
        records = [
            {"t": "B", "txn": 1},
            {"t": "I", "txn": 1, "op": "insert", "oid": "Feature#1",
             "schema": MIX_SCHEMA, "class": MIX_CLASS,
             "values": {"name": "a"}},
            {"t": "C", "txn": 1, "ts": 7},
        ]
        return make_envelope(7, records)

    def test_roundtrip(self):
        envelope = self._valid()
        records = verify_envelope(envelope)
        assert records[2]["ts"] == 7

    def test_tampered_record_is_refused(self):
        envelope = self._valid()
        envelope["records"][1]["values"]["name"] = "evil"
        with pytest.raises(ReplicationError, match="checksum"):
            verify_envelope(envelope)

    def test_wrong_crc_is_refused(self):
        envelope = self._valid()
        envelope["crc"] ^= 1
        with pytest.raises(ReplicationError):
            verify_envelope(envelope)

    def test_lsn_commit_ts_mismatch_is_refused(self):
        envelope = self._valid()
        envelope["lsn"] = 8
        envelope["crc"] = batch_checksum(envelope["records"])
        with pytest.raises(ReplicationError):
            verify_envelope(envelope)

    def test_non_envelope_shapes_are_refused(self):
        for bad in (None, [], {}, {"lsn": 1}, {"lsn": 1, "records": 3}):
            with pytest.raises(ReplicationError):
                verify_envelope(bad)


# ---------------------------------------------------------------------------
# Follower lifecycle
# ---------------------------------------------------------------------------


class TestFollower:
    def test_bootstrap_matches_leader(self):
        leader = make_leader()
        insert_n(leader, 8)
        follower = GeographicDatabase.follow(
            LocalReplicationSource(leader), name="f")
        assert snapshot_state(follower) == snapshot_state(leader)
        assert follower.replication_lsn == leader.replication_lsn

    def test_incremental_replay_matches_leader(self):
        leader = make_leader()
        oids = insert_n(leader, 4)
        follower = GeographicDatabase.follow(
            LocalReplicationSource(leader), name="f")
        leader.update(oids[0], {"size": 99})
        leader.delete(oids[1])
        insert_n(leader, 2, prefix="late")
        assert follower.poll_replication() == 4
        assert snapshot_state(follower) == snapshot_state(leader)
        assert follower.replication_lag() == 0

    def test_duplicate_envelope_is_skipped_idempotently(self):
        leader = make_leader()
        shipper = leader.enable_shipping()
        follower = GeographicDatabase.follow(
            LocalReplicationSource(leader), name="f")
        [oid] = insert_n(leader, 1)
        [envelope] = shipper.poll(0)["batches"]
        assert follower.apply_replicated(envelope) is True
        chain_len = len(follower._mvcc._chains[oid])
        # re-delivery (crash between apply and cursor save) must no-op
        assert follower.apply_replicated(envelope) is False
        assert len(follower._mvcc._chains[oid]) == chain_len
        assert follower.replication_lsn == leader.replication_lsn

    def test_lsn_gap_is_refused(self):
        leader = make_leader()
        shipper = leader.enable_shipping()
        follower = GeographicDatabase.follow(
            LocalReplicationSource(leader), name="f")
        insert_n(leader, 3)
        batches = shipper.poll(0)["batches"]
        assert follower.apply_replicated(batches[0])
        with pytest.raises(ReplicationError, match="gap"):
            follower.apply_replicated(batches[2])

    def test_follower_refuses_writes(self):
        leader = make_leader()
        insert_n(leader, 1)
        follower = GeographicDatabase.follow(
            LocalReplicationSource(leader), name="f")
        with pytest.raises(TransactionError, match="read-only"):
            follower.insert(MIX_SCHEMA, MIX_CLASS, {"name": "no"})
        txn = follower.transaction()
        with pytest.raises(TransactionError, match="read-only"):
            txn.insert(MIX_SCHEMA, MIX_CLASS, {"name": "no"})
        txn.abort()
        with pytest.raises(ReplicationError):
            follower.recover()
        with pytest.raises(ReplicationError):
            follower.enable_shipping()

    def test_read_only_transactions_are_snapshot_consistent(self):
        leader = make_leader()
        [oid] = insert_n(leader, 1)
        follower = GeographicDatabase.follow(
            LocalReplicationSource(leader), name="f")
        txn = follower.transaction()
        assert txn.read(oid)["size"] == 0
        leader.update(oid, {"size": 42})
        follower.poll_replication()
        # the open snapshot predates the replayed batch
        assert txn.read(oid)["size"] == 0
        txn.commit()  # read-only commit is legal on a follower
        txn2 = follower.transaction()
        assert txn2.read(oid)["size"] == 42
        txn2.commit()

    def test_replication_status_shapes(self):
        leader = make_leader()
        insert_n(leader, 2)
        follower = GeographicDatabase.follow(
            LocalReplicationSource(leader), name="f")
        leader_status = leader.replication_status()
        assert leader_status["role"] == "leader"
        assert leader_status["shipper"]["head_lsn"] == 2
        follower_status = follower.replication_status()
        assert follower_status["role"] == "follower"
        assert follower_status["lag"] == 0
        assert leader.replication_lag() is None


# ---------------------------------------------------------------------------
# Fault tolerance
# ---------------------------------------------------------------------------


class TestFollowerFaults:
    def test_refollow_after_crash_mid_replay(self):
        """A follower that dies mid-replay and re-follows from its last
        applied LSN sees overlapping envelopes exactly once."""
        leader = make_leader()
        shipper = leader.enable_shipping()
        follower = GeographicDatabase.follow(
            LocalReplicationSource(leader), name="f")
        oids = insert_n(leader, 6)
        batches = shipper.poll(0)["batches"]
        # crash after applying half the stream
        for envelope in batches[:3]:
            assert follower.apply_replicated(envelope)
        applied_lsn = follower.replication_lsn
        chains = {oid: len(follower._mvcc._chains[oid])
                  for oid in oids[:3]}
        # the restarted poller re-reads from its cursor; the source may
        # re-deliver everything from 0 (cursor persistence lost)
        for envelope in shipper.poll(0)["batches"]:
            follower.apply_replicated(envelope)
        assert follower.replication_lsn == leader.replication_lsn
        assert snapshot_state(follower) == snapshot_state(leader)
        # no duplicate MVCC versions for the half applied before the crash
        for oid, length in chains.items():
            assert len(follower._mvcc._chains[oid]) == length
        assert follower.replication_lsn > applied_lsn

    def test_checkpoint_races_slow_follower_into_handoff(self):
        """A leader checkpoint truncates the WAL; with bounded shipper
        retention a slow follower must take the snapshot handoff."""
        leader = make_leader()
        source = LocalReplicationSource(leader, retain=4)
        follower = GeographicDatabase.follow(source, name="f")
        oids = insert_n(leader, 12)
        leader.update(oids[0], {"size": 1000})
        leader.checkpoint()  # WAL truncated; shipper retention bounded
        # the poll notices the cursor fell below base_lsn and resyncs;
        # the fresh snapshot already covers every retained batch
        follower.poll_replication()
        assert follower._resyncs == 1
        assert snapshot_state(follower) == snapshot_state(leader)
        assert follower.replication_lsn == leader.replication_lsn
        assert source.shipper.snapshot_handoffs == 1
        # the handoff leaves the follower fully usable for further replay
        leader.insert(MIX_SCHEMA, MIX_CLASS, {"name": "after", "size": 1})
        assert follower.poll_replication() == 1
        assert snapshot_state(follower) == snapshot_state(leader)

    def test_damaged_shipped_frame_is_refused(self):
        leader = make_leader()
        shipper = leader.enable_shipping()
        follower = GeographicDatabase.follow(
            LocalReplicationSource(leader), name="f")
        [oid] = insert_n(leader, 1)
        follower.poll_replication()
        before = snapshot_state(follower)
        leader.update(oid, {"size": 13})
        [intact] = shipper.poll(follower.replication_lsn)["batches"]
        # corrupt a *copy*, as a bit-flip on the wire would — the
        # leader's retained frame stays intact
        envelope = copy.deepcopy(intact)
        envelope["records"][1]["values"]["size"] = 666
        with pytest.raises(ReplicationError, match="checksum"):
            follower.apply_replicated(envelope)
        # nothing applied, cursor unchanged: the intact original still lands
        assert snapshot_state(follower) == before
        assert follower.poll_replication() == 1
        assert follower.find_object(oid).get("size") == 13

    def test_lag_reporting_and_metrics(self, obs_recorder):
        leader = make_leader()
        follower = GeographicDatabase.follow(
            LocalReplicationSource(leader), name="f")
        insert_n(leader, 3)
        assert follower.replication_lag() == 3
        follower.poll_replication()
        assert follower.replication_lag() == 0
        registry = obs_recorder.registry
        assert registry.counter_total("repl.ship_batches") == 3
        assert registry.gauge_value("repl.lag_records", follower="f") == 0


# ---------------------------------------------------------------------------
# Group commit integration
# ---------------------------------------------------------------------------


class TestGroupCommitShipping:
    def test_grouped_commits_ship_in_lsn_order(self):
        leader = make_leader(group_commit=True)
        shipper = leader.enable_shipping()
        txns = []
        for i in range(4):
            txn = leader.transaction()
            txn.insert(MIX_SCHEMA, MIX_CLASS, {"name": f"g{i}", "size": i})
            txn.commit(wait_durable=False)
            txns.append(txn)
        assert shipper.poll(0)["batches"] == []
        for txn in txns:
            txn.wait_durable()
        lsns = [b["lsn"] for b in shipper.poll(0)["batches"]]
        assert lsns == sorted(lsns) == [1, 2, 3, 4]

    def test_follower_catches_up_after_group_barrier(self):
        leader = make_leader(group_commit=True)
        follower = GeographicDatabase.follow(
            LocalReplicationSource(leader), name="f")
        txn = leader.transaction()
        txn.insert(MIX_SCHEMA, MIX_CLASS, {"name": "grouped", "size": 5})
        txn.commit(wait_durable=False)
        assert follower.poll_replication() == 0  # not durable yet
        txn.wait_durable()
        assert follower.poll_replication() == 1
        assert snapshot_state(follower) == snapshot_state(leader)
