"""Unit tests for the generic interface builder."""

import pytest

from repro.core import (
    AttributeCustomization,
    ClassCustomization,
    CustomizationDecision,
    GenericInterfaceBuilder,
    apply_using_binding,
    resolve_source,
)
from repro.errors import CustomizationError
from repro.uilib import (
    Button,
    InterfaceObjectLibrary,
    ListWidget,
    Slider,
    install_standard_composites,
)
from repro.ui import (
    class_window_areas,
    displayed_attribute_names,
    instance_attribute_panels,
    map_symbols,
)


@pytest.fixture()
def builder():
    library = InterfaceObjectLibrary()
    install_standard_composites(library, persist=False)
    return GenericInterfaceBuilder(library)


def schema_info(phone_db):
    return phone_db.get_schema("phone_net")


def class_data(phone_db, name="Pole"):
    geo_class, objects = phone_db.get_class("phone_net", name)
    schema = phone_db.get_schema_object("phone_net")
    return geo_class, schema.effective_attributes(name), objects


class TestSchemaWindow:
    def test_default_lists_all_classes(self, builder, phone_db):
        window = builder.build_schema_window(schema_info(phone_db))
        class_list = window.find("classes")
        assert isinstance(class_list, ListWidget)
        keys = [k for k, __ in class_list.items]
        assert "Pole" in keys and "Duct" in keys
        assert window.visible
        assert window.get_property("window_kind") == "schema"
        assert window.get_property("display_mode") == "default"

    def test_counts_shown(self, builder, phone_db):
        window = builder.build_schema_window(schema_info(phone_db))
        labels = dict(window.find("classes").items)
        assert labels["Pole"].endswith(
            f"({phone_db.count('phone_net', 'Pole')})")

    def test_hierarchy_mode_indents_subclasses(self, builder, phone_db):
        decision = CustomizationDecision(kind="schema", rule_name="r",
                                         directive_name="d",
                                         schema_display="hierarchy")
        window = builder.build_schema_window(schema_info(phone_db), decision)
        labels = dict(window.find("classes").items)
        assert labels["Pole"].startswith("  ")          # child of NetworkElement
        assert not labels["NetworkElement"].startswith(" ")

    def test_null_mode_builds_hidden_window(self, builder, phone_db):
        decision = CustomizationDecision(kind="schema", rule_name="r",
                                         directive_name="d",
                                         schema_display="null")
        window = builder.build_schema_window(schema_info(phone_db), decision)
        assert not window.visible
        assert window.find("classes") is not None   # hierarchy still built

    def test_user_defined_mode_marks_hook(self, builder, phone_db):
        decision = CustomizationDecision(kind="schema", rule_name="r",
                                         directive_name="d",
                                         schema_display="user_defined")
        window = builder.build_schema_window(schema_info(phone_db), decision)
        assert window.get_property("user_defined_hook") is True


class TestClassWindow:
    def test_default_structure(self, builder, phone_db):
        geo_class, attributes, objects = class_data(phone_db)
        window = builder.build_class_window(geo_class, attributes, objects)
        control, presentation = class_window_areas(window)
        assert control.find("operations") is not None
        assert control.find("class_schema") is not None
        assert presentation.find("map") is not None
        # default control widget is a button labelled with the class name
        widget = control.find("class_widget_Pole")
        assert isinstance(widget, Button)
        assert widget.label == "Pole"
        # default presentation format
        assert window.get_property("presentation_format") == "defaultFormat"
        assert map_symbols(window) == {"*"}

    def test_instance_list_complete(self, builder, phone_db):
        geo_class, attributes, objects = class_data(phone_db)
        window = builder.build_class_window(geo_class, attributes, objects)
        listed = [k for k, __ in window.find("instances").items]
        assert listed == [o.oid for o in objects]

    def test_customized_control_and_format(self, builder, phone_db):
        geo_class, attributes, objects = class_data(phone_db)
        decision = CustomizationDecision(
            kind="class", rule_name="r", directive_name="d",
            class_clause=ClassCustomization(
                "Pole", control_widget="poleWidget",
                presentation_format="pointFormat"))
        window = builder.build_class_window(geo_class, attributes, objects,
                                            decision)
        assert isinstance(window.find("class_widget_Pole"), Slider)
        assert map_symbols(window) == {"o"}
        assert window.get_property("presentation_format") == "pointFormat"

    def test_unknown_control_widget_rejected(self, builder, phone_db):
        geo_class, attributes, objects = class_data(phone_db)
        decision = CustomizationDecision(
            kind="class", rule_name="r", directive_name="d",
            class_clause=ClassCustomization("Pole",
                                            control_widget="ghostWidget"))
        with pytest.raises(CustomizationError):
            builder.build_class_window(geo_class, attributes, objects,
                                       decision)

    def test_class_without_geometry_gets_empty_map(self, builder, phone_db):
        geo_class, attributes, objects = class_data(phone_db, "Supplier")
        window = builder.build_class_window(geo_class, attributes, objects)
        assert window.find("map").features == []
        assert window.get_property("geometry_attribute") is None


class TestInstanceWindow:
    def test_default_one_panel_per_attribute(self, builder, phone_db,
                                              pole_oid):
        obj = phone_db.get_object(pole_oid)
        geo_class, attributes, __ = class_data(phone_db)
        window = builder.build_instance_window(obj, geo_class, attributes)
        assert displayed_attribute_names(window) == [
            a.name for a in attributes]

    def test_null_format_hides_attribute(self, builder, phone_db, pole_oid):
        obj = phone_db.get_object(pole_oid)
        geo_class, attributes, __ = class_data(phone_db)
        window = builder.build_instance_window(
            obj, geo_class, attributes,
            {"pole_location": AttributeCustomization("pole_location", "null")},
        )
        assert "pole_location" not in displayed_attribute_names(window)

    def test_composed_text_with_sources(self, builder, phone_db, pole_oid):
        obj = phone_db.get_object(pole_oid)
        geo_class, attributes, __ = class_data(phone_db)
        custom = AttributeCustomization(
            "pole_composition", "composed_text",
            sources=("pole_composition.pole_material",
                     "pole_composition.pole_height"),
            using="composed_text.notify()",
        )
        window = builder.build_instance_window(
            obj, geo_class, attributes, {"pole_composition": custom},
            database=phone_db)
        panel = instance_attribute_panels(window)["pole_composition"]
        composed = panel.children[0]
        material = obj.get("pole_composition")["pole_material"]
        assert material in composed.summary

    def test_method_call_source(self, builder, phone_db, pole_oid):
        obj = phone_db.get_object(pole_oid)
        geo_class, attributes, __ = class_data(phone_db)
        custom = AttributeCustomization(
            "pole_supplier", "text",
            sources=("get_supplier_name(pole_supplier)",))
        window = builder.build_instance_window(
            obj, geo_class, attributes, {"pole_supplier": custom},
            database=phone_db)
        panel = instance_attribute_panels(window)["pole_supplier"]
        supplier = phone_db.get_object(obj.get("pole_supplier"))
        assert panel.children[0].value == supplier.get("name")


class TestSourceResolution:
    def test_dotted_path(self, phone_db, pole_oid):
        obj = phone_db.get_object(pole_oid)
        geo_class = phone_db.get_schema_object("phone_net").get_class("Pole")
        value = resolve_source(phone_db, obj, geo_class,
                               "pole_composition.pole_material")
        assert value == obj.get("pole_composition")["pole_material"]

    def test_method_call(self, phone_db, pole_oid):
        obj = phone_db.get_object(pole_oid)
        geo_class = phone_db.get_schema_object("phone_net").get_class("Pole")
        name = resolve_source(phone_db, obj, geo_class,
                              "get_supplier_name(pole_supplier)")
        assert isinstance(name, str) and name

    def test_bad_path_rejected(self, phone_db, pole_oid):
        obj = phone_db.get_object(pole_oid)
        geo_class = phone_db.get_schema_object("phone_net").get_class("Pole")
        with pytest.raises(CustomizationError):
            resolve_source(phone_db, obj, geo_class, "pole_composition.ghost")

    def test_malformed_call_rejected(self, phone_db, pole_oid):
        obj = phone_db.get_object(pole_oid)
        geo_class = phone_db.get_schema_object("phone_net").get_class("Pole")
        with pytest.raises(CustomizationError):
            resolve_source(phone_db, obj, geo_class, "broken(pole")

    def test_method_needs_database(self, phone_db, pole_oid):
        obj = phone_db.get_object(pole_oid)
        geo_class = phone_db.get_schema_object("phone_net").get_class("Pole")
        with pytest.raises(CustomizationError):
            resolve_source(None, obj, geo_class,
                           "get_supplier_name(pole_supplier)")


class TestUsingBindings:
    def test_method_binding(self):
        library = InterfaceObjectLibrary()
        install_standard_composites(library, persist=False)
        widget = library.create("composed_text", fields=["a"])
        widget.child("part_a").set_value("v")
        apply_using_binding(widget, "composed_text.notify()")
        assert widget.summary == "v"

    def test_event_binding(self):
        button = Button("b")
        hits = []
        button.on("blink", lambda e: hits.append(1))
        apply_using_binding(button, "b.blink()")
        assert hits == [1]

    def test_non_call_rejected(self):
        with pytest.raises(CustomizationError):
            apply_using_binding(Button("b"), "no_parens")

    def test_unknown_behavior_rejected(self):
        with pytest.raises(CustomizationError):
            apply_using_binding(Button("b"), "b.teleport()")
