"""Unit + property tests for the DE-9IM relate matrix."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.spatial import (
    BBox,
    LineString,
    Point,
    Polygon,
    Relation,
    classify_point,
    matches,
    relate,
    relate_matrix,
    relate_with_mask,
)


def sq(x0, y0, x1, y1):
    return Polygon.from_bbox(BBox(x0, y0, x1, y1))


class TestClassifyPoint:
    def test_point_parts(self):
        p = Point(3, 3)
        assert classify_point(p, 3, 3) == "interior"
        assert classify_point(p, 3.5, 3) == "exterior"

    def test_line_parts(self):
        line = LineString([(0, 0), (10, 0)])
        assert classify_point(line, 5, 0) == "interior"
        assert classify_point(line, 0, 0) == "boundary"   # endpoint
        assert classify_point(line, 5, 1) == "exterior"

    def test_closed_line_has_no_boundary(self):
        ring = LineString([(0, 0), (10, 0), (10, 10), (0, 0)])
        assert classify_point(ring, 0, 0) == "interior"

    def test_polygon_parts(self):
        poly = sq(0, 0, 10, 10)
        assert classify_point(poly, 5, 5) == "interior"
        assert classify_point(poly, 0, 5) == "boundary"
        assert classify_point(poly, 15, 5) == "exterior"

    def test_polygon_hole_is_exterior(self):
        donut = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)],
                        holes=[[(4, 4), (6, 4), (6, 6), (4, 6)]])
        assert classify_point(donut, 5, 5) == "exterior"
        assert classify_point(donut, 4, 5) == "boundary"  # hole ring


class TestCanonicalMatrices:
    """Boolean DE-9IM patterns for the textbook configurations."""

    CASES = [
        ("polygon disjoint", sq(0, 0, 1, 1), sq(5, 5, 6, 6), "FFTFFTTTT"),
        ("polygon meets (edge)", sq(0, 0, 10, 10), sq(10, 0, 20, 10),
         "FFTFTTTTT"),
        ("polygon overlaps", sq(0, 0, 10, 10), sq(5, 5, 15, 15),
         "TTTTTTTTT"),
        ("polygon contains", sq(0, 0, 10, 10), sq(2, 2, 8, 8),
         "TTTFFTFFT"),
        ("polygon within", sq(2, 2, 8, 8), sq(0, 0, 10, 10), "TFFTFFTTT"),
        ("polygon equals", sq(0, 0, 10, 10), sq(0, 0, 10, 10),
         "TFFFTFFFT"),
        ("point in polygon", Point(5, 5), sq(0, 0, 10, 10), "TFFFFFTTT"),
        ("point on boundary", Point(0, 5), sq(0, 0, 10, 10), "FTFFFFTTT"),
        ("line crosses polygon", LineString([(-5, 5), (15, 5)]),
         sq(0, 0, 10, 10), "TTTFFTTTT"),
        ("line within polygon", LineString([(2, 2), (8, 8)]),
         sq(0, 0, 10, 10), "TFFTFFTTT"),
        ("lines crossing", LineString([(0, 0), (10, 10)]),
         LineString([(0, 10), (10, 0)]), "TFTFFTTTT"),
        ("line touches endpoint", LineString([(0, 0), (5, 0)]),
         LineString([(5, 0), (10, 5)]), "FFTFTTTTT"),
    ]

    @pytest.mark.parametrize("label,a,b,expected",
                             CASES, ids=[c[0] for c in CASES])
    def test_matrix(self, label, a, b, expected):
        assert relate_matrix(a, b) == expected


class TestMaskMatching:
    def test_wildcards(self):
        assert matches("TFFFTFFFT", "T*F*****T")
        assert not matches("TFFFTFFFT", "F********")

    def test_canonical_masks(self):
        # OGC-style boolean masks (dimension digits replaced by T)
        disjoint_mask = "FF*FF****"
        within_mask = "T*F**F***"
        assert relate_with_mask(sq(0, 0, 1, 1), sq(5, 5, 6, 6),
                                disjoint_mask)
        assert relate_with_mask(sq(2, 2, 8, 8), sq(0, 0, 10, 10),
                                within_mask)
        assert not relate_with_mask(sq(0, 0, 10, 10), sq(2, 2, 8, 8),
                                    within_mask)

    def test_bad_masks_rejected(self):
        with pytest.raises(GeometryError):
            matches("TFF", "T*F")
        with pytest.raises(GeometryError):
            matches("TFFFTFFFT", "TFFFTFFF1")


class TestConsistencyWithRelate:
    """The matrix must agree with the named-relation kernel."""

    squares = st.builds(
        sq,
        st.integers(min_value=-20, max_value=20),
        st.integers(min_value=-20, max_value=20),
        st.integers(min_value=30, max_value=60),
        st.integers(min_value=30, max_value=60),
    ).map(lambda p: p)

    @st.composite
    @staticmethod
    def square_pairs(draw):
        x0 = draw(st.integers(-10, 10))
        y0 = draw(st.integers(-10, 10))
        w = draw(st.integers(2, 20))
        a = sq(x0, y0, x0 + w, y0 + w)
        x1 = draw(st.integers(-10, 30))
        y1 = draw(st.integers(-10, 30))
        w2 = draw(st.integers(2, 20))
        b = sq(x1, y1, x1 + w2, y1 + w2)
        return a, b

    @given(square_pairs())
    @settings(max_examples=80, deadline=None)
    def test_matrix_agrees_with_named_relation(self, pair):
        a, b = pair
        matrix = relate_matrix(a, b)
        rel = relate(a, b)
        ii, __, __, __, bb, __, __, __, ee = matrix
        assert ee == "T"   # the plane always extends beyond both
        if rel is Relation.DISJOINT:
            assert matches(matrix, "FF*FF****")
        if rel is Relation.EQUALS:
            assert matrix == "TFFFTFFFT"
        if rel is Relation.TOUCHES:
            assert ii == "F"      # interiors do not meet
            assert matches(matrix, "F********")
        if rel is Relation.OVERLAPS:
            assert ii == "T"
            assert matches(matrix, "T*T***T**")
        if rel is Relation.CONTAINS:
            assert matches(matrix, "T*****FF*")
        if rel is Relation.WITHIN:
            assert matches(matrix, "T*F**F***")

    @given(square_pairs())
    @settings(max_examples=40, deadline=None)
    def test_matrix_transpose_symmetry(self, pair):
        """matrix(a, b) is the transpose of matrix(b, a)."""
        a, b = pair
        ab = relate_matrix(a, b)
        ba = relate_matrix(b, a)
        transpose = "".join(ab[3 * col + row]
                            for row in range(3) for col in range(3))
        assert ba == transpose
