"""Unit tests for the interactive command loop."""

import pytest

from repro.cli import CommandLoop, build_demo_session
from repro.core import GISSession
from repro.lang import FIGURE_6_PROGRAM


@pytest.fixture()
def loop_io(phone_db):
    session = GISSession(phone_db, user="demo", application="browser")
    output: list[str] = []
    loop = CommandLoop(session, write=output.append)
    return loop, output


def text_of(output):
    return "".join(output)


class TestCommands:
    def test_connect_and_classes(self, loop_io):
        loop, output = loop_io
        loop.run(["connect phone_net", "classes"])
        text = text_of(output)
        assert "Schema: phone_net" in text
        assert "Pole (" in text

    def test_full_browse(self, loop_io, pole_oid):
        loop, output = loop_io
        loop.run(["connect phone_net", "class Pole",
                  f"instance {pole_oid}", "windows"])
        text = text_of(output)
        assert "Class set: Pole" in text
        assert f"Instance: {pole_oid}" in text
        assert f"instance_{pole_oid}" in text

    def test_query(self, loop_io):
        loop, output = loop_io
        loop.run(["connect phone_net",
                  "query select * from Pole where pole_type = 1 limit 2"])
        text = text_of(output)
        assert "plan:" in text
        assert "matches:" in text

    def test_zoom_pan(self, loop_io):
        loop, output = loop_io
        loop.run(["connect phone_net", "class Pole", "zoom Pole",
                  "pan Pole"])
        assert "extent:" in text_of(output)

    def test_explain_and_stats(self, loop_io):
        loop, output = loop_io
        loop.run(["connect phone_net", "explain schema_phone_net", "stats"])
        text = text_of(output)
        assert "generic (default)" in text
        assert "interactions" in text

    def test_close_and_quit(self, loop_io):
        loop, output = loop_io
        executed = loop.run(["connect phone_net", "close schema_phone_net",
                             "quit", "windows"])
        assert executed == 3          # the loop stops at quit
        assert "bye" in text_of(output)

    def test_help(self, loop_io):
        loop, output = loop_io
        loop.run(["help"])
        assert "connect <schema>" in text_of(output)
        assert "wal-status" in text_of(output)

    def test_wal_status_without_log(self, loop_io):
        loop, output = loop_io
        loop.run(["wal-status"])
        assert "no write-ahead log attached" in text_of(output)

    def test_wal_status_with_log(self, loop_io):
        import json

        from repro.geodb import MemoryPager, WriteAheadLog

        loop, output = loop_io
        loop.session.database.attach_wal(
            WriteAheadLog(MemoryPager(), sync_mode="none"))
        loop.session.database.insert(
            "phone_net", "Supplier", {"name": "LogProbe"})
        loop.run(["wal-status"])
        text = text_of(output)
        assert "sync_mode: none" in text
        assert "appends:" in text
        output.clear()
        loop.run(["wal-status json"])
        status = json.loads(text_of(output))
        assert status["flushes"] == 1
        assert status["damaged"] is False


class TestErrorHandling:
    def test_unknown_command(self, loop_io):
        loop, output = loop_io
        loop.run(["teleport home"])
        assert "unknown command" in text_of(output)

    def test_library_errors_reported_not_raised(self, loop_io):
        loop, output = loop_io
        loop.run(["connect ghost_schema"])
        assert "error:" in text_of(output)

    def test_commands_requiring_schema(self, loop_io):
        loop, output = loop_io
        loop.run(["classes", "class Pole",
                  "query select * from Pole"])
        assert text_of(output).count("connect to a schema first") == 3

    def test_usage_messages(self, loop_io):
        loop, output = loop_io
        loop.run(["connect", "class", "instance", "pick Pole 1",
                  "explain", "close", "zoom", "pan"])
        # `class` without a schema reports the connect requirement instead
        assert text_of(output).count("usage:") == 7
        assert "connect to a schema first" in text_of(output)

    def test_blank_and_comment_lines_skipped(self, loop_io):
        loop, output = loop_io
        executed = loop.run(["", "   ", "# a comment", "help"])
        assert executed == 1

    def test_bad_query_reported(self, loop_io):
        loop, output = loop_io
        loop.run(["connect phone_net", "query select banana"])
        assert "error:" in text_of(output)


class TestInstallAndDemo:
    def test_install_program_from_file(self, loop_io, tmp_path):
        loop, output = loop_io
        path = tmp_path / "custom.gisl"
        path.write_text(FIGURE_6_PROGRAM)
        loop.run([f"install {path}"])
        assert "installed 1 directive(s)" in text_of(output)

    def test_demo_session_with_figure6(self, capsys):
        session = build_demo_session("juliano", None, "pole_manager",
                                     figure6=True)
        output: list[str] = []
        loop = CommandLoop(session, write=output.append)
        loop.run(["connect phone_net", "windows"])
        text = text_of(output)
        assert "hidden" in text            # the NULL schema window
        assert "classset_Pole" in text
        session.engine.manager.detach()

    def test_pick_on_map(self, loop_io):
        loop, output = loop_io
        loop.run(["connect phone_net", "class Pole"])
        session = loop.session
        area = session.screen.window("classset_Pole").find("map")
        (col, row), __ = next(iter(area.rasterize().items()))
        loop.run([f"pick Pole {col} {row}"])
        assert "picked Pole#" in text_of(output)


class TestHtmlExport:
    def test_html_command_writes_page(self, loop_io, tmp_path):
        loop, output = loop_io
        path = tmp_path / "screen.html"
        loop.run(["connect phone_net", "class Pole", f"html {path}"])
        assert "wrote" in text_of(output)
        content = path.read_text()
        assert content.startswith("<!DOCTYPE html>")
        assert "Class set: Pole" in content

    def test_html_usage(self, loop_io):
        loop, output = loop_io
        loop.run(["html"])
        assert "usage: html" in text_of(output)


class TestObservabilityCommands:
    def test_stats_prints_live_counters(self, obs_recorder, loop_io):
        loop, output = loop_io
        loop.run(["connect phone_net", "class Pole", "stats"])
        text = text_of(output)
        assert "-- metrics --" in text
        assert "event_bus.events_published" in text
        assert "builder.windows_built" in text
        assert "rules.evaluated" in text
        assert "dispatcher.interactions" in text
        assert "hit_ratio" in text  # buffer section of session stats

    def test_stats_json_exports_registry(self, obs_recorder, loop_io):
        import json as _json

        loop, output = loop_io
        loop.run(["connect phone_net"])
        output.clear()
        loop.run(["stats json"])
        payload = _json.loads(text_of(output))
        assert set(payload) >= {"counters", "gauges", "histograms"}

    def test_stats_reports_disabled_mode(self, loop_io):
        loop, output = loop_io
        loop.run(["connect phone_net", "stats"])
        assert "observability disabled" in text_of(output)

    def test_trace_prints_dispatch_span_tree(self, obs_recorder, loop_io):
        loop, output = loop_io
        loop.run(["connect phone_net", "class Pole", "trace"])
        text = text_of(output)
        assert "dispatch.open_class" in text
        assert "event_bus.publish" in text
        assert "builder.build" in text

    def test_trace_json(self, obs_recorder, loop_io):
        import json as _json

        loop, output = loop_io
        loop.run(["connect phone_net"])
        output.clear()
        loop.run(["trace json"])
        payload = _json.loads(text_of(output))
        assert payload["name"] == "dispatch.open_schema"
        assert payload["children"]

    def test_trace_all_lists_recent_traces(self, obs_recorder, loop_io):
        loop, output = loop_io
        loop.run(["connect phone_net", "class Pole", "trace all"])
        text = text_of(output)
        assert "dispatch.open_schema" in text
        assert "dispatch.open_class" in text

    def test_trace_without_recorder_explains(self, loop_io):
        loop, output = loop_io
        loop.run(["trace"])
        assert "observability is disabled" in text_of(output)


class TestRasterStatusCommand:
    def test_without_rasters(self, loop_io):
        loop, output = loop_io
        loop.run(["raster-status"])
        assert "no rasters stored" in text_of(output)

    def test_with_rasters_and_json(self):
        import json

        from repro.workloads import build_image_log_database

        db = build_image_log_database()
        session = GISSession(db, user="demo", application="atlas")
        output: list[str] = []
        loop = CommandLoop(session, write=output.append)
        loop.run(["raster-status"])
        text = text_of(output)
        assert "rasters: 6" in text
        assert "tile size: 64px" in text
        assert "level 0:" in text
        output.clear()
        loop.run(["raster-status json"])
        status = json.loads(text_of(output))
        assert status["rasters"] == 6
        assert status["tiles"] == status["tile_writes"] > 0


class TestColumnStatusCommand:
    def test_without_caches(self, loop_io):
        loop, output = loop_io
        loop.run(["column-status"])
        assert "no column caches built" in text_of(output)

    def test_after_queries_and_json(self, loop_io):
        import json

        loop, output = loop_io
        loop.run(["connect phone_net",
                  "query select * from Pole where pole_type = 1",
                  "query select * from Pole where install_year > 1950",
                  "column-status"])
        text = text_of(output)
        assert "classes: 1" in text
        assert "builds: 1" in text
        assert "hits: 1" in text
        assert "phone_net.Pole v" in text
        output.clear()
        loop.run(["column-status json"])
        status = json.loads(text_of(output))
        assert status["summary"]["classes"] == 1
        assert status["summary"]["hit_ratio"] == 0.5
        assert status["classes"][0]["class"] == "Pole"


class TestHelpStaysInSyncWithDispatch:
    """Satellite regression: every dash command the loop dispatches must
    appear in the ``help``/argparse listing, and vice versa. A new
    ``cmd_*`` method without a help line (or a documented command with
    no implementation) fails this row instead of shipping silently."""

    def test_command_names_match_documented_names(self):
        assert CommandLoop.command_names() == \
            CommandLoop.documented_command_names()

    def test_dash_commands_dispatch(self, loop_io):
        loop, output = loop_io
        # the two dash commands resolve through the underscore rewrite
        loop.run(["wal-status", "raster-status"])
        text = text_of(output)
        assert "no write-ahead log attached" in text
        assert "no rasters stored" in text

    def test_help_lists_every_command(self, loop_io):
        loop, output = loop_io
        loop.run(["help"])
        text = text_of(output)
        for name in CommandLoop.command_names():
            assert name in text, f"help omits {name!r}"

    def test_argparse_epilog_carries_the_listing(self):
        import argparse

        from repro.cli import main  # noqa: F401  (import builds the parser)

        assert "raster-status" in CommandLoop.help_text()
        # the epilog main() installs is exactly the help listing
        parser = argparse.ArgumentParser(
            epilog="commands:\n" + CommandLoop.help_text(),
            formatter_class=argparse.RawDescriptionHelpFormatter)
        assert "raster-status" in parser.format_help()
