"""Unit tests for the geographic database façade."""

import pytest

from repro.active import EventKind
from repro.errors import ObjectNotFoundError, SchemaError
from repro.geodb import (
    Attribute,
    FilePager,
    GeoClass,
    GeographicDatabase,
    GeometryType,
    Method,
    MetadataCatalog,
    Schema,
    TEXT,
)
from repro.spatial import BBox, Point


@pytest.fixture()
def db():
    database = GeographicDatabase("D")
    schema = database.create_schema("s")
    schema.add_class(GeoClass("Base", [Attribute("tag", TEXT)]))
    schema.add_class(GeoClass(
        "Station",
        [Attribute("code", TEXT, required=True),
         Attribute("position", GeometryType("point"))],
        methods=[Method("describe", [])],
        superclass="Base",
    ))
    return database


class TestSchemaManagement:
    def test_duplicate_schema_rejected(self, db):
        with pytest.raises(SchemaError):
            db.create_schema("s")

    def test_register_external_schema(self, db):
        other = Schema("other")
        db.register_schema(other)
        assert "other" in db.schema_names()
        with pytest.raises(SchemaError):
            db.register_schema(other)

    def test_unknown_schema(self, db):
        with pytest.raises(SchemaError):
            db.get_schema_object("ghost")


class TestObjectAccess:
    def test_find_vs_get(self, db):
        oid = db.insert("s", "Station", {"code": "a"})
        assert db.find_object(oid) is db.get_object(oid)
        assert db.find_object("Station#999") is None
        with pytest.raises(ObjectNotFoundError):
            db.get_object("Station#999")

    def test_locate(self, db):
        oid = db.insert("s", "Station", {"code": "a"})
        assert db.locate_object(oid) == ("s", "Station")

    def test_extent_with_subclasses(self, db):
        db.insert("s", "Base", {"tag": "b"})
        db.insert("s", "Station", {"code": "a"})
        all_base = list(db.extent_with_subclasses("s", "Base"))
        assert len(all_base) == 2


class TestSpatialIndex:
    def test_window_query(self, db):
        near = db.insert("s", "Station", {"code": "n", "position": Point(1, 1)})
        db.insert("s", "Station", {"code": "f", "position": Point(99, 99)})
        hits = db.window_query("s", "Station", "position", BBox(0, 0, 10, 10))
        assert [o.oid for o in hits] == [near]

    def test_non_spatial_attribute_rejected(self, db):
        with pytest.raises(SchemaError):
            db.spatial_index("s", "Station", "code")

    def test_index_tracks_delete(self, db):
        oid = db.insert("s", "Station", {"code": "n", "position": Point(1, 1)})
        db.delete(oid)
        assert db.window_query("s", "Station", "position",
                               BBox(0, 0, 10, 10)) == []


class TestMethods:
    def test_register_and_call(self, db):
        db.register_method("s", "Station", "describe",
                           lambda d, o: f"station {o.get('code')}")
        oid = db.insert("s", "Station", {"code": "X1"})
        assert db.call_method(db.get_object(oid), "describe") == "station X1"

    def test_undeclared_method_rejected(self, db):
        with pytest.raises(SchemaError):
            db.register_method("s", "Station", "ghost", lambda d, o: None)

    def test_unimplemented_method_rejected(self, db):
        oid = db.insert("s", "Station", {"code": "X1"})
        with pytest.raises(SchemaError):
            db.call_method(db.get_object(oid), "describe")


class TestPrimitives:
    def test_get_schema_returns_metadata_and_publishes(self, db):
        events = []
        db.bus.subscribe(lambda e: events.append(e),
                         kinds=[EventKind.GET_SCHEMA])
        info = db.get_schema("s", context="ctx")
        assert {c["name"] for c in info["classes"]} == {"Base", "Station"}
        assert info["hierarchy"]["Base"] == ["Station"]
        assert len(events) == 1
        assert events[0].context == "ctx"

    def test_get_class_returns_definition_and_extension(self, db):
        oid = db.insert("s", "Station", {"code": "a"})
        geo_class, objects = db.get_class("s", "Station")
        assert geo_class.name == "Station"
        assert [o.oid for o in objects] == [oid]
        assert db.bus.last_event.kind is EventKind.GET_CLASS

    def test_get_value(self, db):
        oid = db.insert("s", "Station", {"code": "a"})
        obj = db.get_value(oid)
        assert obj.oid == oid
        assert db.bus.last_event.payload["class"] == "Station"


class TestStorageIntegration:
    def test_verify_storage(self, db):
        for i in range(20):
            db.insert("s", "Station",
                      {"code": f"c{i}", "position": Point(i, i)})
        assert db.verify_storage() == 20

    def test_updates_reach_storage(self, db):
        oid = db.insert("s", "Station", {"code": "a"})
        db.update(oid, {"code": "changed"})
        assert db.verify_storage() == 1

    def test_load_from_storage_roundtrip(self, db, tmp_path):
        path = str(tmp_path / "geo.db")
        source = GeographicDatabase("P", pager=FilePager(path))
        schema = Schema("s")
        schema.add_class(GeoClass("Station", [
            Attribute("code", TEXT, required=True),
            Attribute("position", GeometryType("point")),
        ]))
        source.register_schema(schema)
        oids = [
            source.insert("s", "Station",
                          {"code": f"c{i}", "position": Point(i, 0)})
            for i in range(7)
        ]
        catalog = MetadataCatalog(source)
        catalog.save_all_schemas()
        source.buffer.flush()
        source.pager.close()

        reopened = GeographicDatabase("P", pager=FilePager(path))
        catalog2 = MetadataCatalog(reopened)
        reopened.register_schema(catalog2.load_schema("s"))
        assert reopened.load_from_storage() == 7
        assert sorted(reopened.extent("s", "Station").oids()) == sorted(oids)
        # spatial index rebuilt
        assert len(reopened.window_query("s", "Station", "position",
                                         BBox(0, 0, 3, 1))) == 4
        # fresh oids do not collide with restored ones
        new_oid = reopened.insert("s", "Station", {"code": "new"})
        assert new_oid not in oids
        reopened.pager.close()

    def test_load_is_idempotent(self, db):
        db.insert("s", "Station", {"code": "a"})
        assert db.load_from_storage() == 0  # everything already live

    def test_stats_shape(self, db):
        db.insert("s", "Station", {"code": "a"})
        stats = db.stats()
        assert stats["objects"] == 1
        assert stats["extents"]["s.Station"] == 1
        assert "hit_ratio" in stats["buffer"]
