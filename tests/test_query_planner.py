"""Cost-based planner decisions and the kernel query result cache."""

import pytest

from repro.core import GISKernel, QueryResultCache
from repro.geodb import Query, QueryEngine, parse_query, run_query
from repro.geodb.query import SpatialPredicate
from repro.geodb.catalog import KIND_STATISTICS, MetadataCatalog
from repro.geodb.planner import (
    FULL_SCAN,
    HASH_SCAN,
    INDEX_SCAN,
    QueryPlanner,
    _overlap_ratio,
)
from repro.spatial import BBox, LineString, Point


class TestPlanDecisions:
    """Each access path wins exactly where its cost is lowest."""

    CASES = [
        # (query text, wants hash index on pole_type?, expected plan)
        ("select * from Pole where within(pole_location, "
         "bbox(-1, -1, 30, 30))", False, INDEX_SCAN),
        ("select * from Pole where within(pole_location, "
         "bbox(-1, -1, 500, 500))", False, FULL_SCAN),
        ("select * from Pole where pole_type = 1", True, HASH_SCAN),
        ("select * from Pole where pole_type = 1", False, FULL_SCAN),
        ("select * from Pole where pole_type in [0, 1]", True, HASH_SCAN),
        # = None never uses the hash index (None is not an index key)
        ("select * from Pole where pole_type = null", True, FULL_SCAN),
    ]

    @pytest.mark.parametrize("text,index,expected", CASES)
    def test_plan_choice(self, phone_db, text, index, expected):
        if index:
            phone_db.create_attribute_index("phone_net", "Pole", "pole_type")
        result = run_query(phone_db, "phone_net", text)
        assert result.report["plan"] == expected

    def test_empty_probe_bbox_disables_spatial_prefilter(self, phone_db):
        # The text parser cannot build an empty box, but code can (e.g.
        # an intersection-derived probe). It carries no information, so
        # the planner must not feed it to the R-tree.
        class _EmptyProbe(Point):
            def bbox(self):
                return BBox.empty()

        pred = SpatialPredicate("pole_location", "within", _EmptyProbe(5, 5))
        planner = QueryPlanner(phone_db)
        prefilter, equality = planner.prefilters(Query("Pole", where=pred))
        assert prefilter is None and equality is None
        result = QueryEngine(phone_db).execute(
            "phone_net", Query("Pole", where=pred))
        assert result.report["plan"] == FULL_SCAN

    def test_none_equality_correctness(self, phone_db):
        # The plan must not come from the hash index: a bucket miss does
        # not prove a predicate miss for None.
        phone_db.create_attribute_index("phone_net", "Pole", "pole_type")
        planned = run_query(phone_db, "phone_net",
                            "select * from Pole where pole_type = null")
        full = run_query(phone_db, "phone_net", "select * from Pole")
        expected = [o.oid for o in full.objects if o.get("pole_type") is None]
        assert sorted(planned.oids()) == sorted(expected)

    def test_selective_bbox_beats_big_hash_bucket(self, phone_db):
        # status='ok' covers most poles; the 30x30 probe covers few.
        phone_db.create_attribute_index("phone_net", "Pole", "status")
        result = run_query(
            phone_db, "phone_net",
            "select * from Pole where status = 'ok' and "
            "within(pole_location, bbox(-1, -1, 30, 30))")
        assert result.report["plan"] == INDEX_SCAN

    def test_tiny_hash_bucket_beats_selective_bbox(self, phone_db):
        # One-row bucket is cheaper than any R-tree descent here.
        phone_db.create_attribute_index("phone_net", "Pole", "status")
        oid = phone_db.extent("phone_net", "Pole").oids()[0]
        phone_db.update(oid, {"status": "condemned"})
        result = run_query(
            phone_db, "phone_net",
            "select * from Pole where status = 'condemned' and "
            "within(pole_location, bbox(-1, -1, 500, 500))")
        assert result.report["plan"] == HASH_SCAN
        assert result.oids() == [oid]

    def test_plans_report_and_explain_are_truthful(self, phone_db):
        phone_db.create_attribute_index("phone_net", "Pole", "status")
        result = run_query(
            phone_db, "phone_net",
            "select * from NetworkElement where status = 'ok' "
            "including subclasses")
        report = result.report
        assert report["plan"] == "mixed"
        by_class = {p["class"]: p for p in report["plans"]}
        assert set(by_class) == {"NetworkElement", "Pole", "Duct", "Cable"}
        assert by_class["Pole"]["plan"] == HASH_SCAN
        assert by_class["Pole"]["index"] == "hash(Pole.status)"
        assert by_class["Duct"]["plan"] == FULL_SCAN
        text = result.explain()
        assert "Pole: hash-scan via hash(Pole.status)" in text
        assert "Duct: full-scan" in text

    def test_index_fallback_counter(self, phone_db, obs_recorder):
        # pole_location only exists on Pole; the other closure members
        # fall back observably instead of swallowing an exception.
        result = run_query(
            phone_db, "phone_net",
            "select * from NetworkElement where "
            "within(pole_location, bbox(-1, -1, 30, 30)) "
            "including subclasses")
        registry = obs_recorder.registry
        assert registry.counter_total("query.index_fallback") >= 2.0
        assert registry.counter_value(
            "query.index_fallback", cls="Duct", attr="pole_location") == 1.0
        by_class = {p["class"]: p for p in result.report["plans"]}
        assert by_class["Pole"]["plan"] == INDEX_SCAN
        assert "not spatial here" in by_class["Duct"]["reason"]


class TestStatistics:
    def test_snapshot_cached_until_commit(self, phone_db):
        stats = phone_db.statistics
        first = stats.for_class("phone_net", "Pole")
        assert stats.for_class("phone_net", "Pole") is first
        phone_db.insert("phone_net", "Pole",
                        {"pole_location": Point(2, 2), "pole_type": 1})
        second = stats.for_class("phone_net", "Pole")
        assert second is not first
        assert second.cardinality == first.cardinality + 1

    def test_commit_bumps_only_touched_class_versions(self, phone_db):
        before = phone_db.class_version("phone_net", "Duct")
        phone_db.insert("phone_net", "Pole",
                        {"pole_location": Point(2, 2), "pole_type": 1})
        assert phone_db.class_version("phone_net", "Duct") == before
        assert phone_db.class_version("phone_net", "Pole") > 0

    def test_overlap_ratio(self):
        extent = BBox(0, 0, 100, 100)
        assert _overlap_ratio(BBox(0, 0, 100, 100), extent) == 1.0
        assert _overlap_ratio(BBox(0, 0, 50, 100), extent) == pytest.approx(0.5)
        assert _overlap_ratio(BBox(200, 200, 300, 300), extent) == 0.0
        # degenerate axis: all geometry on one vertical line
        line = BBox(10, 0, 10, 100)
        assert _overlap_ratio(BBox(0, 0, 50, 100), line) == 1.0
        assert _overlap_ratio(BBox(20, 0, 50, 100), line) == 0.0

    def test_statistics_persist_roundtrip(self, phone_db):
        catalog = MetadataCatalog(phone_db)
        catalog.save_statistics("phone_net")
        stored = catalog.load_statistics("phone_net")
        assert catalog.has(KIND_STATISTICS, "phone_net")
        assert stored["Pole"]["cardinality"] == phone_db.count("phone_net",
                                                               "Pole")
        assert "pole_location" in stored["Pole"]["spatial"]

    def test_planner_closure_order_is_deterministic(self, phone_db):
        planner = QueryPlanner(phone_db)
        query = parse_query(
            "select * from NetworkElement including subclasses")
        first = planner.class_closure("phone_net", query)
        assert first == planner.class_closure("phone_net", query)
        assert set(first) == {"NetworkElement", "Pole", "Duct", "Cable"}


class TestQueryResultCache:
    QUERY = "select * from Pole where pole_type = 1"

    def test_hit_on_repeat(self, phone_db):
        cache = QueryResultCache(phone_db)
        first = cache.execute("phone_net", parse_query(self.QUERY))
        assert first.report["cache"] == "miss"
        second = cache.execute("phone_net", parse_query(self.QUERY))
        # Per-call views share the (immutable) payload but own their
        # report: a hit must not rewrite the report a prior caller holds.
        assert second is not first
        assert second.objects is first.objects
        assert second.report["cache"] == "hit"
        assert first.report["cache"] == "miss"
        assert cache.stats() == {"entries": 1, "capacity": 128,
                                 "lookups": 2, "hits": 1, "misses": 1,
                                 "invalidations": 0, "coalesced": 0}

    def test_commit_to_touched_class_invalidates(self, phone_db):
        cache = QueryResultCache(phone_db)
        first = cache.execute("phone_net", parse_query(self.QUERY))
        phone_db.insert("phone_net", "Pole",
                        {"pole_location": Point(2, 2), "pole_type": 1})
        second = cache.execute("phone_net", parse_query(self.QUERY))
        assert second is not first
        assert second.report["cache"] == "miss"
        assert len(second) == len(first) + 1
        assert cache.invalidations == 1

    def test_unrelated_commit_preserves_entry(self, phone_db):
        cache = QueryResultCache(phone_db)
        cache.execute("phone_net", parse_query(self.QUERY))
        phone_db.insert("phone_net", "Supplier",
                        {"name": "Novo", "city": "Recife", "rating": 3})
        second = cache.execute("phone_net", parse_query(self.QUERY))
        assert second.report["cache"] == "hit"
        assert cache.invalidations == 0

    def test_subclass_closure_tracks_every_member(self, phone_db):
        cache = QueryResultCache(phone_db)
        text = ("select * from NetworkElement where status = 'ok' "
                "including subclasses")
        cache.execute("phone_net", parse_query(text))
        # A commit to a *subclass* extent must invalidate the closure
        # query even though the query names only the base class.
        phone_db.insert("phone_net", "Cable",
                        {"cable_route": LineString([(0, 0), (5, 5)]),
                         "pair_count": 10, "status": "ok"})
        second = cache.execute("phone_net", parse_query(text))
        assert second.report["cache"] == "miss"

    def test_lru_eviction(self, phone_db):
        cache = QueryResultCache(phone_db, capacity=2)
        q = ["select * from Pole where pole_type = %d" % i for i in range(3)]
        cache.execute("phone_net", parse_query(q[0]))
        cache.execute("phone_net", parse_query(q[1]))
        cache.execute("phone_net", parse_query(q[2]))   # evicts q[0]
        assert len(cache) == 2
        again = cache.execute("phone_net", parse_query(q[0]))
        assert again.report["cache"] == "miss"

    def test_metrics(self, phone_db, obs_recorder):
        cache = QueryResultCache(phone_db)
        cache.execute("phone_net", parse_query(self.QUERY))
        cache.execute("phone_net", parse_query(self.QUERY))
        phone_db.insert("phone_net", "Pole",
                        {"pole_location": Point(2, 2), "pole_type": 1})
        cache.execute("phone_net", parse_query(self.QUERY))
        registry = obs_recorder.registry
        assert registry.counter_total("query.cache.hit") == 1.0
        assert registry.counter_total("query.cache.miss") == 2.0
        assert registry.counter_total("query.cache.invalidation") == 1.0


class TestKernelQueries:
    def test_cache_shared_across_sessions(self, phone_db):
        with GISKernel(phone_db) as kernel:
            s1 = kernel.session(user="ana")
            s2 = kernel.session(user="juliano")
            first = s1.query("phone_net",
                             "select * from Pole where pole_type = 1")
            assert first.report["cache"] == "miss"
            second = s2.query("phone_net",
                              "select * from Pole where pole_type = 1")
            assert second.report["cache"] == "hit"
            assert second.objects is first.objects
            assert kernel.stats()["query_cache"]["hits"] == 1

    def test_session_commit_invalidates_for_all_sessions(self, phone_db):
        with GISKernel(phone_db) as kernel:
            s1 = kernel.session(user="ana")
            s2 = kernel.session(user="juliano")
            s1.query("phone_net", "select * from Pole where pole_type = 1")
            with kernel.transaction(s2) as txn:
                txn.insert("phone_net", "Pole",
                           {"pole_location": Point(2, 2), "pole_type": 1})
            refreshed = s1.query(
                "phone_net", "select * from Pole where pole_type = 1")
            assert refreshed.report["cache"] == "miss"
            assert any(o.get("pole_type") == 1 and
                       o.geometry("pole_location") == Point(2, 2)
                       for o in refreshed.objects)

    def test_query_accepts_query_objects_and_bypass(self, phone_db):
        with GISKernel(phone_db) as kernel:
            query = Query("Pole")
            cached = kernel.query("phone_net", query)
            assert cached.report["cache"] == "miss"
            bypass = kernel.query("phone_net", query, use_cache=False)
            assert "cache" not in bypass.report
            assert kernel.query_cache.stats()["entries"] == 1
            hit = kernel.query("phone_net", query)
            assert hit.report["cache"] == "hit"
