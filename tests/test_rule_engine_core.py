"""Unit tests for the customization rule engine (the paper's core)."""

import pytest

from repro.active import EventKind
from repro.core import (
    AttributeCustomization,
    ClassCustomization,
    Context,
    ContextPattern,
    CustomizationDirective,
    CustomizationEngine,
)
from repro.errors import CustomizationError, RuleError
from repro.geodb import MetadataCatalog


def directive(name="d1", user="juliano", category=None,
              application="pole_manager", schema_display="null",
              class_name="Pole"):
    return CustomizationDirective(
        name=name,
        pattern=ContextPattern(user=user, category=category,
                               application=application),
        schema_name="phone_net",
        schema_display=schema_display,
        classes=(ClassCustomization(
            class_name=class_name,
            control_widget="poleWidget",
            presentation_format="pointFormat",
            attributes=(
                AttributeCustomization("pole_location", "null"),
                AttributeCustomization("pole_supplier", "text"),
            ),
        ),),
    )


@pytest.fixture()
def engine(phone_db):
    return CustomizationEngine(phone_db.bus)


CTX = Context(user="juliano", application="pole_manager")


class TestDirectiveModel:
    def test_duplicate_class_clause_rejected(self):
        with pytest.raises(CustomizationError):
            CustomizationDirective(
                name="bad",
                pattern=ContextPattern(),
                schema_name="s",
                classes=(ClassCustomization("A"), ClassCustomization("A")),
            )

    def test_unknown_schema_display_rejected(self):
        with pytest.raises(CustomizationError):
            CustomizationDirective(name="bad", pattern=ContextPattern(),
                                   schema_name="s", schema_display="rotated")

    def test_description_roundtrip(self):
        d = directive()
        rebuilt = CustomizationDirective.from_description(d.describe())
        assert rebuilt == d

    def test_class_clause_lookup(self):
        d = directive()
        assert d.class_clause("Pole").control_widget == "poleWidget"
        assert d.class_clause("Ghost") is None
        assert d.class_names() == ["Pole"]
        clause = d.class_clause("Pole")
        assert clause.attribute("pole_location").format_name == "null"
        assert clause.attribute("missing") is None


class TestRuleGeneration:
    def test_rule_count_per_directive(self, engine):
        rules = engine.register_directive(directive(), persist=False)
        # 1 schema + 1 class + 2 attribute rules
        assert len(rules) == 4
        names = {r.name for r in rules}
        assert "d1::schema" in names
        assert "d1::class::Pole" in names
        assert "d1::attr::Pole.pole_location" in names

    def test_rule_docs_in_paper_notation(self, engine):
        rules = engine.register_directive(directive(), persist=False)
        schema_rule = next(r for r in rules if r.name == "d1::schema")
        assert "On Get_Schema" in schema_rule.doc
        assert "Get_Class(Pole)" in schema_rule.doc  # the R1 cascade

    def test_duplicate_directive_rejected(self, engine):
        engine.register_directive(directive(), persist=False)
        with pytest.raises(CustomizationError):
            engine.register_directive(directive(), persist=False)

    def test_unregister_removes_rules(self, engine):
        engine.register_directive(directive(), persist=False)
        engine.unregister_directive("d1")
        assert engine.manager.rules() == []
        assert engine.directives() == []
        with pytest.raises(CustomizationError):
            engine.unregister_directive("d1")

    def test_conflicting_registration_rolls_back(self, engine):
        engine.register_directive(directive(), persist=False)
        before = len(engine.manager.rules())
        # Occupy a rule name the next directive will need for its *second*
        # rule, so registration fails midway and must roll back rule 1.
        engine.manager.define("d2::class::Pole", [EventKind.GET_CLASS],
                              lambda e: False, lambda e, m: None)
        with pytest.raises(RuleError):
            engine.register_directive(directive(name="d2"), persist=False)
        assert len(engine.manager.rules()) == before + 1  # only the blocker
        assert [d.name for d in engine.directives()] == ["d1"]


class TestDecisionCapture:
    def test_schema_decision(self, engine, phone_db):
        engine.register_directive(directive(), persist=False)
        phone_db.get_schema("phone_net", context=CTX)
        event_id = phone_db.bus.last_event.event_id
        decision = engine.schema_decision(event_id)
        assert decision is not None
        assert decision.schema_display == "null"
        assert decision.cascade_classes == ("Pole",)

    def test_no_decision_for_other_context(self, engine, phone_db):
        engine.register_directive(directive(), persist=False)
        phone_db.get_schema("phone_net",
                            context=Context(user="maria"))
        event_id = phone_db.bus.last_event.event_id
        assert engine.schema_decision(event_id) is None

    def test_no_cascade_for_visible_schema(self, engine, phone_db):
        engine.register_directive(directive(schema_display="hierarchy"),
                                  persist=False)
        phone_db.get_schema("phone_net", context=CTX)
        decision = engine.schema_decision(phone_db.bus.last_event.event_id)
        assert decision.cascade_classes == ()

    def test_class_decision(self, engine, phone_db):
        engine.register_directive(directive(), persist=False)
        phone_db.get_class("phone_net", "Pole", context=CTX)
        decision = engine.class_decision(phone_db.bus.last_event.event_id)
        assert decision.class_clause.control_widget == "poleWidget"

    def test_attribute_decisions(self, engine, phone_db, pole_oid):
        engine.register_directive(directive(), persist=False)
        phone_db.get_value(pole_oid, context=CTX)
        decisions = engine.attribute_decisions(
            phone_db.bus.last_event.event_id)
        assert set(decisions) == {"pole_location", "pole_supplier"}
        assert decisions["pole_location"].format_name == "null"

    def test_decision_window_bounded(self, engine, phone_db):
        engine.register_directive(directive(), persist=False)
        engine._decision_window = 4
        ids = []
        for __ in range(10):
            phone_db.get_schema("phone_net", context=CTX)
            ids.append(phone_db.bus.last_event.event_id)
        assert engine.schema_decision(ids[0]) is None     # evicted
        assert engine.schema_decision(ids[-1]) is not None


class TestSpecificitySelection:
    def test_most_specific_rule_wins(self, engine, phone_db, pole_oid):
        engine.register_directive(
            directive(name="generic", user=None, application=None),
            persist=False)
        engine.register_directive(
            directive(name="category", user=None, category="eng",
                      application=None, schema_display="hierarchy"),
            persist=False)
        engine.register_directive(
            directive(name="personal", schema_display="null"),
            persist=False)

        # Generic user: only the generic rule matches.
        phone_db.get_schema("phone_net", context=Context(user="zoe"))
        d = engine.schema_decision(phone_db.bus.last_event.event_id)
        assert d.directive_name == "generic"

        # Category member: category beats generic.
        phone_db.get_schema("phone_net",
                            context=Context(user="zoe", category="eng"))
        d = engine.schema_decision(phone_db.bus.last_event.event_id)
        assert d.directive_name == "category"

        # The named user within the category: personal beats both.
        phone_db.get_schema(
            "phone_net",
            context=Context(user="juliano", category="eng",
                            application="pole_manager"))
        d = engine.schema_decision(phone_db.bus.last_event.event_id)
        assert d.directive_name == "personal"

    def test_equal_specificity_conflict_raises(self, engine, phone_db):
        engine.register_directive(directive(name="a"), persist=False)
        engine.register_directive(directive(name="b"), persist=False)
        with pytest.raises(RuleError, match="ambiguous"):
            phone_db.get_schema("phone_net", context=CTX)

    def test_different_targets_do_not_conflict(self, engine, phone_db):
        engine.register_directive(directive(name="a"), persist=False)
        engine.register_directive(
            directive(name="b", class_name="Duct"), persist=False)
        with pytest.raises(RuleError):
            # both customize schema phone_net at equal specificity
            phone_db.get_schema("phone_net", context=CTX)
        # but the class-level rules target different classes: no conflict
        phone_db.get_class("phone_net", "Pole", context=CTX)
        d = engine.class_decision(phone_db.bus.last_event.event_id)
        assert d.directive_name == "a"


class TestPersistence:
    def test_catalog_roundtrip(self, phone_db):
        catalog = MetadataCatalog(phone_db)
        engine = CustomizationEngine(phone_db.bus, catalog=catalog)
        engine.register_directive(directive(), persist=True)
        engine.manager.detach()

        fresh = CustomizationEngine(phone_db.bus, catalog=catalog)
        assert fresh.load_from_catalog() == 1
        phone_db.get_schema("phone_net", context=CTX)
        decision = fresh.schema_decision(phone_db.bus.last_event.event_id)
        assert decision is not None
        fresh.manager.detach()

    def test_load_without_catalog_rejected(self, engine):
        with pytest.raises(CustomizationError):
            engine.load_from_catalog()


class TestExplanation:
    def test_explain_decisions(self, engine, phone_db):
        engine.register_directive(directive(), persist=False)
        phone_db.get_schema("phone_net", context=CTX)
        text = engine.explain(phone_db.bus.last_event.event_id)
        assert "d1::schema" in text
        assert "On Get_Schema" in text

    def test_explain_default(self, engine, phone_db):
        phone_db.get_schema("phone_net", context=CTX)
        text = engine.explain(phone_db.bus.last_event.event_id)
        assert "generic (default)" in text

    def test_stats(self, engine):
        engine.register_directive(directive(), persist=False)
        stats = engine.stats()
        assert stats["directives"] == 1
        assert stats["rules"] == 4


class TestEnableDisable:
    def test_disabled_directive_stops_firing(self, engine, phone_db):
        engine.register_directive(directive(), persist=False)
        assert engine.set_directive_enabled("d1", False) == 4
        phone_db.get_schema("phone_net", context=CTX)
        assert engine.schema_decision(phone_db.bus.last_event.event_id) \
            is None
        assert engine.set_directive_enabled("d1", True) == 4
        phone_db.get_schema("phone_net", context=CTX)
        assert engine.schema_decision(phone_db.bus.last_event.event_id) \
            is not None

    def test_disable_resolves_priority_conflicts(self, engine, phone_db):
        engine.register_directive(directive(name="a"), persist=False)
        engine.register_directive(directive(name="b"), persist=False)
        engine.set_directive_enabled("b", False)
        phone_db.get_schema("phone_net", context=CTX)   # no ambiguity now
        decision = engine.schema_decision(phone_db.bus.last_event.event_id)
        assert decision.directive_name == "a"

    def test_unknown_directive(self, engine):
        with pytest.raises(CustomizationError):
            engine.set_directive_enabled("ghost", True)
