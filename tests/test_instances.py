"""Unit tests for geo-objects and extents."""

import pytest

from repro.errors import SchemaError, TypeMismatchError
from repro.geodb import (
    Attribute,
    Extent,
    FLOAT,
    GeoClass,
    GeoObject,
    GeometryType,
    Schema,
    TEXT,
)
from repro.spatial import BBox, Point


def schema():
    s = Schema("s")
    s.add_class(GeoClass("Thing", [
        Attribute("name", TEXT, required=True),
        Attribute("height", FLOAT),
        Attribute("location", GeometryType("point")),
    ]))
    return s


class TestCreate:
    def test_create_valid(self):
        obj = GeoObject.create(schema(), "Thing",
                               {"name": "a", "height": 2.0})
        assert obj.get("name") == "a"
        assert obj.class_name == "Thing"
        assert obj.version == 0

    def test_missing_required_rejected(self):
        with pytest.raises(TypeMismatchError):
            GeoObject.create(schema(), "Thing", {"height": 2.0})

    def test_unknown_attribute_rejected(self):
        with pytest.raises(SchemaError):
            GeoObject.create(schema(), "Thing", {"name": "a", "color": "red"})

    def test_type_checked(self):
        with pytest.raises(TypeMismatchError):
            GeoObject.create(schema(), "Thing", {"name": 42})

    def test_oid_generated_with_class_prefix(self):
        obj = GeoObject.create(schema(), "Thing", {"name": "a"})
        assert obj.oid.startswith("Thing#")

    def test_explicit_oid(self):
        obj = GeoObject.create(schema(), "Thing", {"name": "a"}, oid="Thing#x")
        assert obj.oid == "Thing#x"


class TestUpdate:
    def test_update_and_version_bump(self):
        s = schema()
        obj = GeoObject.create(s, "Thing", {"name": "a"})
        previous = obj.update(s, {"height": 3.0})
        assert obj.get("height") == 3.0
        assert previous == {"height": None}
        assert obj.version == 1

    def test_unset_optional_with_none(self):
        s = schema()
        obj = GeoObject.create(s, "Thing", {"name": "a", "height": 3.0})
        obj.update(s, {"height": None})
        assert "height" not in obj

    def test_cannot_unset_required(self):
        s = schema()
        obj = GeoObject.create(s, "Thing", {"name": "a"})
        with pytest.raises(TypeMismatchError):
            obj.update(s, {"name": None})

    def test_previous_values_support_undo(self):
        s = schema()
        obj = GeoObject.create(s, "Thing", {"name": "a", "height": 1.0})
        previous = obj.update(s, {"height": 9.0, "name": "b"})
        obj.update(s, previous)  # undo
        assert obj.get("height") == 1.0
        assert obj.get("name") == "a"


class TestAccess:
    def test_get_with_default_fallback(self):
        s = schema()
        obj = GeoObject.create(s, "Thing", {"name": "a"})
        assert obj.get("height") is None
        assert obj.get("height", s.get_class("Thing")) == 0.0

    def test_geometry_and_bbox(self):
        s = schema()
        obj = GeoObject.create(s, "Thing",
                               {"name": "a", "location": Point(3, 4)})
        assert obj.geometry() == Point(3, 4)
        assert obj.geometry("location") == Point(3, 4)
        assert obj.bbox() == BBox(3, 4, 3, 4)
        assert obj.geometry("name") is None

    def test_values_snapshot_is_copy(self):
        s = schema()
        obj = GeoObject.create(s, "Thing", {"name": "a"})
        snap = obj.values()
        snap["name"] = "mutated"
        assert obj.get("name") == "a"


class TestExtent:
    def test_add_and_iterate_in_order(self):
        s = schema()
        extent = Extent("Thing")
        objs = [GeoObject.create(s, "Thing", {"name": str(i)})
                for i in range(3)]
        for obj in objs:
            extent.add(obj)
        assert [o.oid for o in extent] == [o.oid for o in objs]
        assert len(extent) == 3

    def test_wrong_class_rejected(self):
        extent = Extent("Other")
        obj = GeoObject.create(schema(), "Thing", {"name": "a"})
        with pytest.raises(SchemaError):
            extent.add(obj)

    def test_duplicate_oid_rejected(self):
        s = schema()
        extent = Extent("Thing")
        obj = GeoObject.create(s, "Thing", {"name": "a"})
        extent.add(obj)
        with pytest.raises(SchemaError):
            extent.add(obj)

    def test_remove(self):
        s = schema()
        extent = Extent("Thing")
        obj = GeoObject.create(s, "Thing", {"name": "a"})
        extent.add(obj)
        assert extent.remove(obj.oid) is obj
        assert extent.get(obj.oid) is None
        with pytest.raises(SchemaError):
            extent.remove(obj.oid)
