"""MVCC snapshot isolation: snapshots, conflicts, recovery, GC, kernel.

The deterministic interleaving suite (``test_mvcc_interleavings.py``)
covers the anomaly space; this file pins the concrete API contracts —
read-your-writes, first-committer-wins errors, the retry helper, WAL
commit timestamps, version garbage collection, the kernel/session
transaction entry points, and thread safety of id allocation and WAL
appends.
"""

from __future__ import annotations

import gc
import threading

import pytest

from repro.core import GISKernel
from repro.errors import (
    ObjectNotFoundError,
    SessionError,
    TransactionConflictError,
    TransactionError,
    WALError,
)
from repro.geodb import (
    RASTER,
    TEXT,
    Attribute,
    GeoClass,
    GeographicDatabase,
    MemoryPager,
    WriteAheadLog,
)
from repro.geodb.transactions import _Intent
from repro.spatial.geometry import BBox
from repro.workloads import (
    build_mix_schema,
    commit_with_retries,
    synthetic_raster,
)
from repro.workloads.txn_mix import MIX_CLASS, MIX_SCHEMA


@pytest.fixture()
def db():
    database = GeographicDatabase("mvcc-test")
    database.register_schema(build_mix_schema())
    return database


def _insert(db, oid, size=0):
    db.insert(MIX_SCHEMA, MIX_CLASS, {"name": oid, "size": size}, oid=oid)


def _size(db, oid):
    obj = db.find_object(oid)
    return None if obj is None else obj.get("size")


# ---------------------------------------------------------------------------
# Snapshot reads
# ---------------------------------------------------------------------------


class TestSnapshotReads:
    def test_reader_pinned_to_begin_state(self, db):
        _insert(db, "Feature#a", size=1)
        reader = db.transaction()
        assert reader.read("Feature#a")["size"] == 1
        db.update("Feature#a", {"size": 2})
        assert reader.read("Feature#a")["size"] == 1  # repeatable
        assert db.get_object("Feature#a").get("size") == 2
        reader.abort()
        assert db.transaction().read("Feature#a")["size"] == 2

    def test_concurrent_insert_and_delete_invisible(self, db):
        _insert(db, "Feature#old")
        reader = db.transaction()
        _insert(db, "Feature#new")
        db.delete("Feature#old")
        assert reader.read("Feature#new") is None
        assert not reader.exists("Feature#new")
        assert reader.read("Feature#old") is not None
        assert set(reader.query(MIX_SCHEMA, MIX_CLASS)) == {"Feature#old"}
        reader.abort()

    def test_snapshot_query_sees_begin_extent(self, db):
        for i in range(3):
            _insert(db, f"Feature#q{i}", size=i)
        reader = db.transaction()
        db.update("Feature#q1", {"size": 99})
        result = reader.query(MIX_SCHEMA, MIX_CLASS)
        assert {oid: v["size"] for oid, v in result.items()} == {
            "Feature#q0": 0, "Feature#q1": 1, "Feature#q2": 2,
        }
        reader.abort()

    def test_read_requires_active_transaction(self, db):
        txn = db.transaction()
        txn.abort()
        with pytest.raises(TransactionError):
            txn.read("Feature#a")


class TestReadYourWrites:
    """Satellite 1: a transaction's reads see its own staged writes."""

    def test_read_sees_staged_insert_update_delete(self, db):
        _insert(db, "Feature#u", size=1)
        _insert(db, "Feature#d", size=1)
        txn = db.transaction()
        new_oid = txn.insert(MIX_SCHEMA, MIX_CLASS,
                             {"name": "n", "size": 7})
        txn.update("Feature#u", {"size": 42})
        txn.delete("Feature#d")
        assert txn.read(new_oid)["size"] == 7
        assert txn.read("Feature#u")["size"] == 42
        assert txn.read("Feature#d") is None
        # ... while the database itself is unchanged until commit
        assert _size(db, new_oid) is None
        assert _size(db, "Feature#u") == 1
        assert _size(db, "Feature#d") == 1
        txn.abort()

    def test_query_overlays_staged_writes(self, db):
        _insert(db, "Feature#u", size=1)
        _insert(db, "Feature#d", size=1)
        with db.transaction() as txn:
            new_oid = txn.insert(MIX_SCHEMA, MIX_CLASS,
                                 {"name": "n", "size": 7})
            txn.update("Feature#u", {"size": 42})
            txn.delete("Feature#d")
            result = txn.query(MIX_SCHEMA, MIX_CLASS)
            assert {oid: v["size"] for oid, v in result.items()} == {
                new_oid: 7, "Feature#u": 42,
            }
            txn.abort()

    def test_update_of_own_staged_insert(self, db):
        with db.transaction() as txn:
            oid = txn.insert(MIX_SCHEMA, MIX_CLASS, {"name": "x", "size": 1})
            txn.update(oid, {"size": 2})
            assert txn.read(oid)["size"] == 2
        assert _size(db, oid) == 2


# ---------------------------------------------------------------------------
# First-committer-wins
# ---------------------------------------------------------------------------


class TestFirstCommitterWins:
    def test_update_update_conflict(self, db, obs_recorder):
        _insert(db, "Feature#c", size=0)
        loser = db.transaction()
        loser.update("Feature#c", {"size": 1})
        db.update("Feature#c", {"size": 2})  # winner commits first
        with pytest.raises(TransactionConflictError) as exc_info:
            loser.commit()
        assert exc_info.value.oids == ["Feature#c"]
        assert loser.state.value == "aborted"
        assert _size(db, "Feature#c") == 2  # loser left no trace
        assert obs_recorder.registry.counter_total("txn.conflicts") == 1

    def test_insert_insert_conflict_on_same_oid(self, db):
        loser = db.transaction()
        loser.insert(MIX_SCHEMA, MIX_CLASS, {"name": "a", "size": 1},
                     oid="Feature#dup")
        _insert(db, "Feature#dup", size=2)
        with pytest.raises(TransactionConflictError):
            loser.commit()
        assert _size(db, "Feature#dup") == 2

    def test_delete_vs_update_conflict(self, db):
        _insert(db, "Feature#c", size=0)
        loser = db.transaction()
        loser.delete("Feature#c")
        db.update("Feature#c", {"size": 5})
        with pytest.raises(TransactionConflictError):
            loser.commit()
        assert _size(db, "Feature#c") == 5

    def test_disjoint_write_sets_do_not_conflict(self, db):
        _insert(db, "Feature#a")
        _insert(db, "Feature#b")
        txn = db.transaction()
        txn.update("Feature#a", {"size": 1})
        db.update("Feature#b", {"size": 2})
        txn.commit()
        assert _size(db, "Feature#a") == 1
        assert _size(db, "Feature#b") == 2

    def test_read_only_transactions_never_conflict(self, db):
        _insert(db, "Feature#a")
        reader = db.transaction()
        reader.read("Feature#a")
        db.update("Feature#a", {"size": 9})
        reader.commit()  # writes nothing: always wins

    def test_conflict_checked_against_commits_not_snapshots(self, db):
        # An *uncommitted* concurrent writer is not a conflict.
        _insert(db, "Feature#a", size=0)
        first = db.transaction()
        second = db.transaction()
        first.update("Feature#a", {"size": 1})
        second.update("Feature#a", {"size": 2})
        first.commit()
        with pytest.raises(TransactionConflictError):
            second.commit()
        assert _size(db, "Feature#a") == 1


class TestCommitWithRetries:
    def test_retries_until_success(self, db):
        _insert(db, "Feature#ctr", size=0)
        attempts = {"n": 0}

        def body(txn):
            attempts["n"] += 1
            value = txn.read("Feature#ctr")["size"]
            if attempts["n"] == 1:
                # Sneak a conflicting commit in between read and commit.
                db.update("Feature#ctr", {"size": value + 10})
            txn.update("Feature#ctr", {"size": value + 1})
            return value

        result, retries = commit_with_retries(db, body)
        assert retries == 1
        assert attempts["n"] == 2
        assert result == 10  # second attempt saw the winner's value
        assert _size(db, "Feature#ctr") == 11

    def test_gives_up_after_attempts(self, db):
        _insert(db, "Feature#ctr", size=0)

        def body(txn):
            value = txn.read("Feature#ctr")["size"]
            db.update("Feature#ctr", {"size": value + 10})  # always loses
            txn.update("Feature#ctr", {"size": value + 1})

        with pytest.raises(TransactionConflictError):
            commit_with_retries(db, body, attempts=3)

    def test_body_errors_propagate_and_abort(self, db):
        with pytest.raises(ObjectNotFoundError):
            commit_with_retries(db, lambda txn: txn.delete("Feature#nope"))


# ---------------------------------------------------------------------------
# Raster attributes under MVCC
# ---------------------------------------------------------------------------


def _raster_db():
    database = GeographicDatabase("mvcc-raster", pager=MemoryPager())
    database.attach_wal(WriteAheadLog(MemoryPager(), sync_mode="none"))
    schema = database.create_schema("img")
    schema.add_class(GeoClass("Scan", attributes=[
        Attribute("name", TEXT, required=True),
        Attribute("scan", RASTER),
    ]))
    database.raster_store.tile = 16
    return database


def _scan(seed):
    return synthetic_raster(32, 32, seed=seed,
                            extent=BBox(0.0, 0.0, 32.0, 32.0))


class TestRasterSnapshots:
    """Rasters are copy-on-write (an overwrite commits a *new* tile set
    under a fresh rid), so MVCC snapshot reads extend to pixels: an old
    snapshot's RasterRef keeps resolving to the old tiles byte-for-byte
    while newer transactions see the replacement."""

    def test_reader_sees_precommit_raster_during_overwrite(self):
        db = _raster_db()
        old = _scan(1)
        with db.transaction() as txn:
            txn.insert("img", "Scan", {"name": "s", "scan": old},
                       oid="Scan#s")
        reader = db.transaction()
        old_ref = reader.read("Scan#s")["scan"]
        # a concurrent writer overwrites the scan and commits
        new = _scan(2)
        with db.transaction() as writer:
            writer.update("Scan#s", {"scan": new})
        # the reader's snapshot still answers with the old descriptor
        # AND the old pixels — at every pyramid level
        ref_again = reader.read("Scan#s")["scan"]
        assert ref_again == old_ref
        assert db.raster_store.read_level(old_ref, 0) == old.pixels
        reader.abort()
        # a fresh snapshot sees the replacement, under a different rid
        with db.transaction() as after:
            new_ref = after.read("Scan#s")["scan"]
            after.abort()
        assert new_ref.rid != old_ref.rid
        assert db.raster_store.read_level(new_ref, 0) == new.pixels

    def test_first_committer_wins_on_conflicting_tile_writes(self):
        db = _raster_db()
        with db.transaction() as txn:
            txn.insert("img", "Scan", {"name": "s", "scan": _scan(1)},
                       oid="Scan#s")
        tiles_before = dict(db.raster_store._tiles)
        rasters_before = dict(db.raster_store._rasters)

        loser = db.transaction()
        loser.update("Scan#s", {"scan": _scan(7)})
        winner_pixels = _scan(8)
        with db.transaction() as winner:
            winner.update("Scan#s", {"scan": winner_pixels})
        with pytest.raises(TransactionConflictError):
            loser.commit()
        assert loser.state.value == "aborted"
        # the winner's tiles landed; the loser staged nothing into the
        # store (conflicts are detected before tile staging begins)
        ref = db.get_object("Scan#s").get("scan")
        assert db.raster_store.read_level(ref, 0) == winner_pixels.pixels
        store_rids = set(db.raster_store._rasters)
        assert store_rids == set(rasters_before) | {ref.rid}
        winner_keys = {key for key in db.raster_store._tiles
                       if key.startswith(f"{ref.rid}/")}
        assert set(db.raster_store._tiles) == \
            set(tiles_before) | winner_keys

    def test_aborted_transaction_stages_no_tiles(self):
        db = _raster_db()
        tiles_before = dict(db.raster_store._tiles)
        txn = db.transaction()
        txn.insert("img", "Scan", {"name": "s", "scan": _scan(3)})
        txn.abort()
        assert db.raster_store._tiles == tiles_before
        assert db.raster_store.status()["tile_writes"] == 0


# ---------------------------------------------------------------------------
# WAL integration and recovery
# ---------------------------------------------------------------------------


class TestWALTimestamps:
    def _db_with_wal(self):
        db = GeographicDatabase("mvcc-wal")
        db.register_schema(build_mix_schema())
        db.attach_wal(WriteAheadLog(MemoryPager(), sync_mode="none"))
        return db

    def test_commit_records_carry_timestamps(self):
        db = self._db_with_wal()
        _insert(db, "Feature#a")
        db.update("Feature#a", {"size": 5})
        batches = db.wal.replay()
        timestamps = [batch[-1]["ts"] for batch in batches]
        assert all(doc["t"] == "C" for batch in batches
                   for doc in batch[-1:])
        assert timestamps == [1, 2]
        assert db._commit_ts == 2

    def test_recovery_rebuilds_versions_at_logged_timestamps(self):
        db = self._db_with_wal()
        _insert(db, "Feature#a", size=1)
        db.update("Feature#a", {"size": 2})
        _insert(db, "Feature#b", size=3)
        wal = db.wal  # simulate crash: fresh db over the surviving log
        fresh = GeographicDatabase("mvcc-wal-2")
        fresh.register_schema(build_mix_schema())
        fresh.attach_wal(wal)
        assert fresh.recover() == 3
        assert fresh._commit_ts == 3  # advanced to the logged maximum
        assert _size(fresh, "Feature#a") == 2
        assert _size(fresh, "Feature#b") == 3
        # New snapshots observe the recovered state.
        with fresh.transaction() as txn:
            assert txn.read("Feature#a")["size"] == 2
            txn.abort()

    def test_legacy_commit_records_without_ts(self):
        # Logs written before commit records carried timestamps must
        # still recover; batches get synthetic ascending timestamps.
        db = self._db_with_wal()
        wal = db.wal
        intent = _Intent("insert", MIX_SCHEMA, MIX_CLASS, "Feature#old",
                         {"name": "o", "size": 4})
        wal.log_begin(77)
        wal.log_intent(77, db._encode_intent(intent))
        wal.log_commit(77)  # no commit_ts
        fresh = GeographicDatabase("legacy")
        fresh.register_schema(build_mix_schema())
        fresh.attach_wal(wal)
        assert fresh.recover() == 1
        assert _size(fresh, "Feature#old") == 4
        assert fresh._commit_ts == 1


# ---------------------------------------------------------------------------
# Garbage collection
# ---------------------------------------------------------------------------


class TestVersionGC:
    def test_live_snapshot_pins_versions(self, db, obs_recorder):
        _insert(db, "Feature#a", size=1)
        reader = db.transaction()
        for size in (2, 3, 4):
            db.update("Feature#a", {"size": size})
        assert db._mvcc.chain_length("Feature#a") >= 3
        db.checkpoint()  # GC runs at the watermark = reader's snapshot
        assert db._mvcc.has_chain("Feature#a")
        assert reader.read("Feature#a")["size"] == 1  # still readable
        reader.abort()
        reclaimed = db.gc_versions()
        assert reclaimed > 0
        assert not db._mvcc.has_chain("Feature#a")  # falls through to extent
        assert obs_recorder.registry.counter_total("mvcc.gc_reclaimed") > 0
        with db.transaction() as txn:
            assert txn.read("Feature#a")["size"] == 4
            txn.abort()

    def test_commit_log_trimmed_at_watermark(self, db):
        _insert(db, "Feature#a")
        for size in range(5):
            db.update("Feature#a", {"size": size})
        assert len(db._commit_log) == 6
        db.checkpoint()
        assert db._commit_log == []
        # Conflict detection still works after the trim.
        txn = db.transaction()
        txn.update("Feature#a", {"size": 100})
        db.update("Feature#a", {"size": 200})
        with pytest.raises(TransactionConflictError):
            txn.commit()

    def test_stats_expose_version_store(self, db):
        _insert(db, "Feature#a")
        reader = db.transaction()
        db.update("Feature#a", {"size": 1})
        stats = db.stats()["mvcc"]
        assert stats["chains"] == 1
        assert stats["versions"] == 2
        reader.abort()


# ---------------------------------------------------------------------------
# Kernel / session integration
# ---------------------------------------------------------------------------


class TestKernelTransactions:
    def test_sessions_get_isolated_snapshots(self, db):
        with GISKernel(db) as kernel:
            ana = kernel.session(user="ana")
            ben = kernel.session(user="ben")
            _insert(db, "Feature#s", size=1)
            txn_a = ana.transaction()
            with ben.transaction() as txn_b:
                txn_b.update("Feature#s", {"size": 2})
            assert txn_a.read("Feature#s")["size"] == 1
            assert ana.transaction().read("Feature#s")["size"] == 2
            txn_a.abort()

    def test_commit_events_carry_session_and_ts(self, db):
        events = []
        db.bus.subscribe(
            lambda e: events.append(e)
            if e.payload.get("phase") == "commit" else None
        )
        with GISKernel(db) as kernel:
            session = kernel.session(user="ana")
            with session.transaction() as txn:
                txn.insert(MIX_SCHEMA, MIX_CLASS, {"name": "e", "size": 1})
        assert len(events) == 1
        assert events[0].session_id == session.session_id
        assert events[0].payload["ts"] == db._commit_ts

    def test_foreign_session_rejected(self, db):
        other_db = GeographicDatabase("other")
        with GISKernel(db) as kernel, GISKernel(other_db) as other:
            foreign = other.session(user="eve")
            with pytest.raises(SessionError):
                kernel.transaction(foreign)

    def test_detached_session_rejected(self, db):
        with GISKernel(db) as kernel:
            session = kernel.session(user="ana")
            session.shutdown()
            with pytest.raises(SessionError):
                kernel.transaction(session)
            with pytest.raises(SessionError):
                session.transaction()

    def test_kernel_transaction_without_session(self, db):
        with GISKernel(db) as kernel:
            with kernel.transaction() as txn:
                oid = txn.insert(MIX_SCHEMA, MIX_CLASS,
                                 {"name": "k", "size": 1})
        assert _size(db, oid) == 1


# ---------------------------------------------------------------------------
# Thread safety (satellite 2)
# ---------------------------------------------------------------------------


class TestThreadSafety:
    def test_threaded_commits_allocate_unique_ids_and_ordered_wal(self):
        db = GeographicDatabase("threads")
        db.register_schema(build_mix_schema())
        db.attach_wal(WriteAheadLog(MemoryPager(), sync_mode="none"))
        threads_n, per_thread = 8, 10
        txn_ids: list[list[int]] = [[] for _ in range(threads_n)]
        errors: list[BaseException] = []

        def worker(worker_id: int) -> None:
            try:
                for i in range(per_thread):
                    txn = db.transaction()
                    txn.insert(MIX_SCHEMA, MIX_CLASS,
                               {"name": f"w{worker_id}", "size": i},
                               oid=f"Feature#w{worker_id}_{i}")
                    txn.commit()
                    txn_ids[worker_id].append(txn.txn_id)
            except BaseException as exc:  # surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        flat = [txn_id for ids in txn_ids for txn_id in ids]
        assert len(flat) == len(set(flat)) == threads_n * per_thread
        # Every object committed, and the log holds one intact,
        # well-formed batch per commit (no interleaved tails).
        for worker_id in range(threads_n):
            for i in range(per_thread):
                assert db.find_object(f"Feature#w{worker_id}_{i}")
        batches = db.wal.replay()
        assert len(batches) == threads_n * per_thread
        for batch in batches:
            kinds = [doc["t"] for doc in batch]
            assert kinds == ["B", "I", "C"]
            assert batch[-1]["ts"] > 0

    def test_threaded_contended_counter_with_retries(self):
        db = GeographicDatabase("contended")
        db.register_schema(build_mix_schema())
        _insert(db, "Feature#ctr", size=0)
        threads_n, per_thread = 4, 5
        errors: list[BaseException] = []

        def bump(txn):
            txn.update("Feature#ctr",
                       {"size": txn.read("Feature#ctr")["size"] + 1})

        def worker() -> None:
            try:
                for _ in range(per_thread):
                    commit_with_retries(db, bump, attempts=500)
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=worker)
                   for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert _size(db, "Feature#ctr") == threads_n * per_thread


# ---------------------------------------------------------------------------
# Commit-vs-reader visibility (review fixes: seeded chains + seqlock)
# ---------------------------------------------------------------------------


class TestCommitReadRace:
    """A snapshot reader must never observe the commit apply window.

    Deterministic probes: hooks planted inside the commit critical
    section (after the extents mutate, before versions are recorded —
    or before an injected commit failure) perform a concurrent-snapshot
    read at exactly the point the seeded base versions must cover.
    """

    def test_update_invisible_mid_apply(self, db, monkeypatch):
        _insert(db, "Feature#a", size=1)
        reader = db.transaction()
        observed = {}
        real_record = GeographicDatabase._record_versions

        def probing_record(database, *args, **kwargs):
            # Extents already hold size=2 here; the reader's snapshot
            # must still resolve to 1 through the seeded pre-image.
            observed["mid"] = reader.read("Feature#a")["size"]
            return real_record(database, *args, **kwargs)

        monkeypatch.setattr(GeographicDatabase, "_record_versions",
                            probing_record)
        with db.transaction() as txn:
            txn.update("Feature#a", {"size": 2})
        assert observed["mid"] == 1
        assert reader.read("Feature#a")["size"] == 1
        reader.abort()
        with db.transaction() as after:
            assert after.read("Feature#a")["size"] == 2
            after.abort()

    def test_insert_invisible_mid_apply(self, db, monkeypatch):
        reader = db.transaction()
        observed = {}
        real_record = GeographicDatabase._record_versions

        def probing_record(database, *args, **kwargs):
            # The new object is already in the extent; the seeded base
            # tombstone must keep it absent from the reader's snapshot.
            observed["mid"] = reader.read("Feature#new")
            return real_record(database, *args, **kwargs)

        monkeypatch.setattr(GeographicDatabase, "_record_versions",
                            probing_record)
        _insert(db, "Feature#new", size=5)
        assert observed["mid"] is None
        assert reader.read("Feature#new") is None
        assert reader.exists("Feature#new") is False
        reader.abort()

    def test_failed_commit_is_never_observed(self, db):
        """No dirty reads: a commit that fails after mutating the
        extents (WAL barrier failure -> rollback) must be invisible to a
        concurrent snapshot reader probing inside the failure window."""
        _insert(db, "Feature#a", size=1)
        reader = db.transaction()
        observed = {}

        class ExplodingWAL:
            def log_begin(self, txn_id):
                pass

            def log_intent(self, txn_id, doc):
                pass

            def log_commit(self, txn_id, commit_ts=None):
                # Extents hold the uncommitted size=2 right now.
                observed["mid"] = reader.read("Feature#a")["size"]
                raise WALError("injected barrier failure")

            def log_abort(self, txn_id):
                pass

        db.wal = ExplodingWAL()
        txn = db.transaction()
        txn.update("Feature#a", {"size": 2})
        with pytest.raises(WALError):
            txn.commit()
        db.wal = None
        assert observed["mid"] == 1
        assert reader.read("Feature#a")["size"] == 1
        reader.abort()
        assert _size(db, "Feature#a") == 1  # rollback restored the extent
        with db.transaction() as after:
            assert after.read("Feature#a")["size"] == 1
            after.abort()

    def test_seeding_skipped_without_concurrent_snapshots(self, db):
        """With no other live snapshot there is nobody to protect: a
        fresh insert records exactly one version (no base tombstone), so
        the single-writer memory profile matches the pre-fix behaviour."""
        _insert(db, "Feature#solo", size=1)
        assert db._mvcc.chain_length("Feature#solo") == 1

    def test_seeded_tombstone_survives_for_old_snapshots(self, db):
        reader = db.transaction()
        _insert(db, "Feature#late", size=7)
        # base tombstone + committed version
        assert db._mvcc.chain_length("Feature#late") == 2
        assert reader.read("Feature#late") is None
        reader.abort()

    def test_snapshot_reads_stable_under_concurrent_commits(self):
        """Wall-clock smoke: lock-free readers re-reading their snapshot
        while a writer thread commits must never see the value move."""
        db = GeographicDatabase("race-smoke")
        db.register_schema(build_mix_schema())
        _insert(db, "Feature#hot", size=0)
        stop = threading.Event()
        errors: list = []

        def reader_loop():
            try:
                while not stop.is_set():
                    txn = db.transaction()
                    first = txn.read("Feature#hot")["size"]
                    for __ in range(4):
                        again = txn.read("Feature#hot")["size"]
                        if again != first:
                            errors.append((first, again))
                            return
                    txn.abort()
            except BaseException as exc:
                errors.append(exc)

        readers = [threading.Thread(target=reader_loop) for __ in range(3)]
        for t in readers:
            t.start()
        for i in range(200):
            db.update("Feature#hot", {"size": i + 1})
        stop.set()
        for t in readers:
            t.join()
        assert not errors
        assert _size(db, "Feature#hot") == 200


# ---------------------------------------------------------------------------
# Checkpoint serialization (review fix: checkpoint takes the commit lock)
# ---------------------------------------------------------------------------


class TestCheckpointSerialization:
    def test_checkpoint_waits_for_the_commit_lock(self, db):
        _insert(db, "Feature#a", size=1)
        held = threading.Event()
        release = threading.Event()
        done = threading.Event()

        def hold_lock():
            with db._commit_lock:
                held.set()
                release.wait(10)

        def run_checkpoint():
            db.checkpoint()
            done.set()

        holder = threading.Thread(target=hold_lock)
        holder.start()
        assert held.wait(10)
        worker = threading.Thread(target=run_checkpoint)
        worker.start()
        # While a "commit" holds the lock, checkpoint must not proceed
        # (it would flush half-applied no-steal pages to the heap).
        assert not done.wait(0.3)
        release.set()
        assert done.wait(10)
        holder.join()
        worker.join()

    def test_checkpoint_reentrant_from_recovery_path(self):
        """recover() -> checkpoint() must still work now that checkpoint
        locks: the commit lock is reentrant and recover is unlocked."""
        pager = MemoryPager()
        wal = WriteAheadLog(pager, sync_mode="none")
        db = GeographicDatabase("reentrant", wal=wal)
        db.register_schema(build_mix_schema())
        _insert(db, "Feature#a", size=1)
        # recover() replays the logged insert batch, then checkpoints —
        # which now takes the (reentrant) commit lock without deadlock.
        assert db.recover() == 1
        assert db.checkpoint() >= 0
        assert _size(db, "Feature#a") == 1


# ---------------------------------------------------------------------------
# Abandoned transactions (review fix: weakref-released snapshots)
# ---------------------------------------------------------------------------


class TestAbandonedTransactions:
    def test_dropped_transaction_releases_its_snapshot(self, db):
        _insert(db, "Feature#a", size=1)
        txn = db.transaction()
        txn_id = txn.txn_id
        assert txn_id in db._snapshots
        del txn
        gc.collect()
        assert txn_id not in db._snapshots
        assert db.oldest_snapshot() == db._commit_ts

    def test_dropped_transaction_unpins_the_gc_watermark(self, db):
        _insert(db, "Feature#a", size=0)
        leaked = db.transaction()
        leaked.read("Feature#a")
        for size in (1, 2, 3):
            db.update("Feature#a", {"size": size})
        # The leaked snapshot pins the watermark: nothing reclaimable.
        assert db.gc_versions() == 0
        assert db._mvcc.has_chain("Feature#a")
        del leaked
        gc.collect()
        reclaimed = db.gc_versions()
        assert reclaimed > 0
        assert not db._mvcc.has_chain("Feature#a")
        assert db._mvcc.total_versions == 0

    def test_commit_and_abort_still_release_exactly_once(self, db):
        _insert(db, "Feature#a", size=1)
        committed = db.transaction()
        committed.update("Feature#a", {"size": 2})
        committed.commit()
        aborted = db.transaction()
        aborted.abort()
        assert committed.txn_id not in db._snapshots
        assert aborted.txn_id not in db._snapshots
        gc.collect()  # finalizers already ran; nothing double-fires
        assert db.oldest_snapshot() == db._commit_ts
