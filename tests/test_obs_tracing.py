"""Unit tests for the tracer: span nesting, ring-buffer eviction, the
end-to-end dispatch span tree, and disabled-mode silence."""

import pytest

from repro import obs
from repro.obs import Tracer
from repro.core import GISSession


class FakeClock:
    """Deterministic clock: each read advances by ``step`` seconds."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


@pytest.fixture()
def tracer():
    return Tracer(capacity=4, clock=FakeClock())


class TestSpanNesting:
    def test_children_attach_to_enclosing_span(self, tracer):
        with tracer.span("root"):
            with tracer.span("child_a"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child_b"):
                pass
        trace = tracer.last_trace()
        assert trace.name == "root"
        assert [c.name for c in trace.children] == ["child_a", "child_b"]
        assert trace.children[0].children[0].name == "grandchild"

    def test_durations_from_clock(self, tracer):
        with tracer.span("root"):
            pass
        # FakeClock ticks once at start and once at end.
        assert tracer.last_trace().duration == pytest.approx(1.0)

    def test_active_span_tracks_stack(self, tracer):
        assert tracer.active_span is None
        with tracer.span("root") as root:
            assert tracer.active_span is root
            with tracer.span("inner") as inner:
                assert tracer.active_span is inner
            assert tracer.active_span is root
        assert tracer.active_span is None

    def test_exception_recorded_and_propagated(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("root"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        trace = tracer.last_trace()
        assert trace.find("inner").error == "ValueError('boom')"
        assert "boom" in trace.render()

    def test_annotate_and_attrs(self, tracer):
        with tracer.span("root", schema="phone_net") as span:
            span.annotate(classes=3)
        trace = tracer.last_trace()
        assert trace.attrs == {"schema": "phone_net", "classes": 3}
        assert trace.to_dict()["attrs"] == {"schema": "phone_net",
                                            "classes": "3"}

    def test_walk_find_and_find_all(self, tracer):
        with tracer.span("root"):
            with tracer.span("leaf"):
                pass
            with tracer.span("leaf"):
                pass
        trace = tracer.last_trace()
        assert [s.name for s in trace.walk()] == ["root", "leaf", "leaf"]
        assert len(trace.find_all("leaf")) == 2
        assert trace.find("absent") is None


class TestRingBuffer:
    def test_only_roots_become_traces(self, tracer):
        with tracer.span("root"):
            with tracer.span("inner"):
                pass
        assert len(tracer.traces()) == 1

    def test_eviction_keeps_most_recent(self, tracer):
        for i in range(6):
            with tracer.span(f"t{i}"):
                pass
        names = [t.name for t in tracer.traces()]
        assert names == ["t2", "t3", "t4", "t5"]   # capacity 4
        assert tracer.dropped == 2
        assert tracer.completed == 6

    def test_last_trace_prefix_filter(self, tracer):
        with tracer.span("dispatch.open_class"):
            pass
        with tracer.span("render"):
            pass
        assert tracer.last_trace().name == "render"
        assert tracer.last_trace("dispatch.").name == "dispatch.open_class"
        assert tracer.last_trace("nothing.") is None

    def test_reset(self, tracer):
        with tracer.span("t"):
            pass
        tracer.reset()
        assert tracer.last_trace() is None
        assert tracer.completed == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestEndToEndDispatchTrace:
    def test_open_class_produces_expected_span_tree(self, obs_recorder,
                                                    generic_session):
        generic_session.connect("phone_net")
        obs_recorder.tracer.reset()
        generic_session.select_class("Pole")

        trace = obs_recorder.tracer.last_trace("dispatch.")
        assert trace is not None
        assert trace.name == "dispatch.open_class"
        # The §3.5 pipeline, in order: the primitive event is published
        # (rules select inside it), then the builder assembles the window.
        publish = trace.find("event_bus.publish")
        assert publish is not None
        assert publish.attrs["kind"] == "get_class"
        assert publish.find("rule_manager.select") is not None
        build = trace.find("builder.build")
        assert build is not None
        assert build.attrs == {"kind": "class_set", "target": "Pole"}
        # publish completes before the builder runs
        assert trace.children.index(publish) < trace.children.index(build)

    def test_customized_dispatch_shows_rule_execution(self, obs_recorder,
                                                      juliano_session):
        from repro.lang import FIGURE_6_PROGRAM

        juliano_session.install_program(FIGURE_6_PROGRAM, persist=False)
        juliano_session.connect("phone_net")
        trace = obs_recorder.tracer.last_trace("dispatch.")
        assert trace.name == "dispatch.open_schema"
        execute = trace.find("rule_manager.execute")
        assert execute is not None
        assert execute.attrs["rule"].endswith("::schema")

    def test_render_traced(self, obs_recorder, generic_session):
        generic_session.connect("phone_net")
        generic_session.render()
        assert obs_recorder.tracer.last_trace().name == "render"


class TestDisabledMode:
    def test_disabled_records_no_traces_or_metrics(self, generic_session):
        assert not obs.is_enabled()
        recorder = obs.enable()
        obs.disable()  # instrumentation now routes to the NullRecorder
        generic_session.connect("phone_net")
        generic_session.select_class("Pole")
        generic_session.render()
        assert recorder.tracer.last_trace() is None
        assert len(recorder.registry) == 0

    def test_noop_span_is_reusable_and_silent(self):
        span = obs.RECORDER.span("x", any_attr=1)
        with span:
            span.annotate(more=2)
        with span:  # reusable: shared singleton
            pass
        assert span is obs.NOOP_SPAN
