"""Unit tests for the tiled raster store: lifecycle, durability, wiring."""

import pytest

from repro.errors import RasterError, TypeMismatchError
from repro.geodb import (
    RASTER,
    TEXT,
    Attribute,
    GeoClass,
    GeographicDatabase,
    MemoryPager,
    Raster,
    RasterRef,
    Schema,
    WriteAheadLog,
)
from repro.geodb.raster import DEFAULT_TILE
from repro.geodb.types import RasterType, type_from_description
from repro.spatial.geometry import BBox
from repro.spatial.scale import MapScale, Viewport
from repro.workloads import (
    IMAGE_LOG_PROGRAM,
    ImageLogParams,
    build_image_log_database,
    synthetic_raster,
)


def make_db(tile: int = 16) -> GeographicDatabase:
    db = GeographicDatabase("GEO", pager=MemoryPager())
    db.wal = WriteAheadLog(MemoryPager())
    schema = db.create_schema("img")
    schema.add_class(GeoClass("Scan", attributes=[
        Attribute("name", TEXT, required=True),
        Attribute("scan", RASTER),
    ]))
    db.raster_store.tile = tile
    return db


def checker(width: int, height: int, seed: int = 0,
            extent: BBox | None = None) -> Raster:
    return synthetic_raster(width, height, seed=seed, extent=extent)


def insert_scan(db, raster, name="s"):
    with db.transaction() as txn:
        oid = txn.insert("img", "Scan", {"name": name, "scan": raster})
    return oid, db.get_object(oid).get("scan")


class TestRasterValues:
    def test_payload_size_is_validated(self):
        with pytest.raises(RasterError):
            Raster(4, 4, bytes(15))
        with pytest.raises(RasterError):
            Raster(0, 4, b"")

    def test_ref_describe_roundtrip(self):
        ref = RasterRef("r9", 100, 60, 16, 3, (0.0, 0.0, 10.0, 6.0))
        again = RasterRef.from_description(ref.describe())
        assert again == ref
        assert again.bbox() == BBox(0.0, 0.0, 10.0, 6.0)

    def test_type_encodes_only_refs(self):
        rtype = RasterType()
        ref = RasterRef("r1", 8, 8, 16, 1, None)
        assert rtype.decode(rtype.encode(ref)) == ref
        # a staged payload reaching encode means the commit path skipped
        # RasterStore staging — that must be loud, not silently inlined
        with pytest.raises(TypeMismatchError):
            rtype.encode(Raster(2, 2, bytes(4)))

    def test_type_description_roundtrip(self):
        assert type_from_description(RasterType().describe()) is \
            type_from_description({"tag": "raster"})

    def test_schema_with_raster_survives_description(self):
        schema = Schema("s")
        schema.add_class(GeoClass("C", attributes=[
            Attribute("scan", RASTER)]))
        rebuilt = Schema.from_description(schema.describe())
        attr = {a.name: a for a in rebuilt.effective_attributes("C")}["scan"]
        assert attr.type.tag == "raster"


class TestLevelSelection:
    def ref(self):
        # 256px over 256 ground units -> 1 ground unit per pixel at level 0
        return RasterRef("r1", 256, 256, 64, 3, (0.0, 0.0, 256.0, 256.0))

    def test_zoomed_in_viewport_picks_base_level(self):
        vp = Viewport(BBox(0, 0, 64, 64), 64, 64)  # 1 ground unit per cell
        assert self.ref().level_for(vp) == 0

    def test_zoomed_out_viewport_picks_coarse_level(self):
        vp = Viewport(BBox(0, 0, 256, 256), 64, 64)  # 4 ground units/cell
        assert self.ref().level_for(vp) == 2

    def test_level_is_clamped_to_pyramid_depth(self):
        vp = Viewport(BBox(0, 0, 256, 256), 2, 2)  # 128 ground units/cell
        assert self.ref().level_for(vp) == 2

    def test_map_scale_selection(self):
        # 1:8000 at 0.25mm/px -> 2 ground units per pixel -> level 1
        assert self.ref().level_for(MapScale(8000)) == 1
        assert self.ref().level_for(MapScale(100)) == 0

    def test_explicit_level_and_none(self):
        assert self.ref().level_for(1) == 1
        assert self.ref().level_for(None) == 0
        with pytest.raises(RasterError):
            self.ref().level_for(7)

    def test_ungeoreferenced_raster_stays_at_base(self):
        ref = RasterRef("r1", 64, 64, 16, 3, None)
        assert ref.level_for(MapScale(50000)) == 0


class TestStoreLifecycle:
    def test_multi_page_tiles(self):
        """A default-size tile (64x64 = 4096B) spans multiple pages."""
        db = GeographicDatabase("GEO", pager=MemoryPager())
        schema = db.create_schema("img")
        schema.add_class(GeoClass("Scan", attributes=[
            Attribute("name", TEXT, required=True),
            Attribute("scan", RASTER)]))
        __, ref = insert_scan(db, checker(64, 64))
        assert ref.tile == DEFAULT_TILE
        store = db.raster_store
        pages = store._tiles[store.tile_key(ref.rid, 0, 0)]
        assert len(pages) >= 2
        assert store.read_tile(ref.rid, 0, 0) == checker(64, 64).pixels

    def test_tile_pages_are_invisible_to_the_heap(self):
        db = make_db()
        oid, __ = insert_scan(db, checker(40, 40))
        scanned = [record for __, record in db.heap.scan()]
        assert all("rid" not in r or "oid" in r for r in scanned)
        assert {r["oid"] for r in scanned if "oid" in r} == {oid}
        assert db.verify_storage() == 1

    def test_missing_tile_and_unknown_raster(self):
        db = make_db()
        store = db.raster_store
        with pytest.raises(RasterError):
            store.read_tile("r99", 0, 0)
        with pytest.raises(RasterError):
            store.ref("r99")
        with pytest.raises(RasterError):
            store.release("r99")

    def test_release_returns_pages_to_free_list(self):
        db = make_db()
        __, ref1 = insert_scan(db, checker(40, 40, seed=1))
        store = db.raster_store
        pages_before = sum(len(p) for p in store._tiles.values())
        freed = store.release(ref1)
        assert freed == pages_before
        assert store.status()["rasters"] == 0
        assert store.status()["free_pages"] == freed
        # the next raster reuses the freed pages before allocating
        page_count = db.pager.page_count
        __, ref2 = insert_scan(db, checker(40, 40, seed=2))
        assert db.pager.page_count <= page_count + 1
        assert store.read_level(ref2, 0) == checker(40, 40, seed=2).pixels

    def test_window_reads_without_extent_are_refused(self):
        db = make_db()
        __, ref = insert_scan(db, Raster(20, 20, bytes(400)))
        with pytest.raises(RasterError):
            db.raster_store.read_window(ref, BBox(0, 0, 5, 5), 0)

    def test_obs_counters(self):
        from repro import obs

        db = make_db()
        r = checker(48, 48, extent=BBox(0, 0, 48, 48))
        obs.enable()
        try:
            __, ref = insert_scan(db, r)
            db.raster_store.read_window(ref, BBox(0, 0, 10, 10),
                                        Viewport(BBox(0, 0, 48, 48), 12, 12))
            exported = obs.RECORDER.registry.export()
            counters = {row["name"] for row in exported["counters"]}
            assert "raster.tile_writes" in counters
            assert "raster.tile_reads" in counters
            assert "raster.pyramid_level" in counters
        finally:
            obs.disable()


class TestRollbackAndDurability:
    def test_failed_commit_rolls_tiles_back_exactly(self):
        db = make_db()
        oid, ref0 = insert_scan(db, checker(40, 40, seed=1))
        store = db.raster_store
        tiles0 = dict(store._tiles)
        rasters0 = set(store._rasters)

        t1 = db.transaction()
        t2 = db.transaction()
        with t1, t2:
            t1.update(oid, {"name": "winner"})
            with pytest.raises(Exception):
                t2.update(oid, {"scan": checker(40, 40, seed=2)})
                t1.commit()
                t2.commit()
        assert store._tiles == tiles0
        assert set(store._rasters) == rasters0
        assert db.get_object(oid).get("scan") == ref0
        assert store.read_level(ref0, 0) == checker(40, 40, seed=1).pixels

    def test_checkpoint_then_reload_from_heap(self):
        db = make_db()
        oid, ref = insert_scan(db, checker(50, 30, seed=3))
        db.checkpoint()
        # a cold process over the surviving data pager, no WAL replay
        db2 = GeographicDatabase("GEO2", pager=db.pager)
        db2.register_schema(db.get_schema_object("img"))
        assert db2.load_from_storage() == 1
        ref2 = db2.get_object(oid).get("scan")
        assert ref2 == ref
        assert db2.raster_store.read_level(ref2, 0) == \
            checker(50, 30, seed=3).pixels

    def test_crash_before_checkpoint_recovers_from_wal(self):
        data_disk, wal_disk = MemoryPager(), MemoryPager()
        db = GeographicDatabase("GEO", pager=data_disk)
        db.attach_wal(WriteAheadLog(wal_disk))
        schema = db.create_schema("img")
        schema.add_class(GeoClass("Scan", attributes=[
            Attribute("name", TEXT, required=True),
            Attribute("scan", RASTER)]))
        db.raster_store.tile = 16
        oid, __ = insert_scan(db, checker(40, 40, seed=5))
        # crash: nothing flushed. Rebuild over the surviving "disks".
        db2 = GeographicDatabase("GEO", pager=data_disk)
        db2.register_schema(schema)
        db2.load_from_storage()
        db2.attach_wal(WriteAheadLog(wal_disk))
        assert db2.recover() == 1
        ref = db2.get_object(oid).get("scan")
        assert db2.raster_store.read_level(ref, 0) == \
            checker(40, 40, seed=5).pixels

    def test_file_backed_reopen(self, tmp_path):
        path = str(tmp_path / "geo.db")
        db = GeographicDatabase.open(path, sync_mode="none")
        schema = db.create_schema("img")
        schema.add_class(GeoClass("Scan", attributes=[
            Attribute("name", TEXT, required=True),
            Attribute("scan", RASTER)]))
        db.catalog.save_schema(schema)
        db.raster_store.tile = 16
        oid, __ = insert_scan(db, checker(33, 47, seed=9))
        db.checkpoint()
        db.close()
        db2 = GeographicDatabase.open(path, sync_mode="none")
        ref = db2.get_object(oid).get("scan")
        assert db2.raster_store.read_level(ref, 0) == \
            checker(33, 47, seed=9).pixels
        db2.close()


class TestReplication:
    def build_leader(self):
        db = make_db()
        db.enable_shipping()
        oid, ref = insert_scan(db, checker(40, 40, seed=7,
                                           extent=BBox(0, 0, 40, 40)))
        return db, oid, ref

    def test_snapshot_bootstrap_carries_tiles(self):
        from repro.geodb import LocalReplicationSource

        leader, oid, ref = self.build_leader()
        follower = GeographicDatabase.follow(
            LocalReplicationSource(leader))
        fref = follower.get_object(oid).get("scan")
        assert fref == ref
        assert follower.raster_store.read_level(fref, 0) == \
            checker(40, 40, seed=7).pixels

    def test_shipped_raster_commits_replay(self):
        from repro.geodb import LocalReplicationSource

        leader, oid, __ = self.build_leader()
        follower = GeographicDatabase.follow(
            LocalReplicationSource(leader))
        with leader.transaction() as txn:
            txn.update(oid, {"scan": checker(24, 24, seed=8,
                                             extent=BBox(0, 0, 24, 24))})
        assert follower.poll_replication() == 1
        fref = follower.get_object(oid).get("scan")
        assert fref.width == 24
        assert follower.raster_store.read_level(fref, 0) == \
            checker(24, 24, seed=8).pixels


class TestImageLogWorkload:
    def test_populates_and_reads(self):
        db = build_image_log_database(ImageLogParams(
            sites=2, logs_per_site=1, raster_width=64, raster_height=64))
        logs = list(db.extent("image_logs", "ImageLog"))
        assert len(logs) == 2
        ref = logs[0].get("scan")
        assert db.raster_store.read_level(ref, ref.levels - 1)

    def test_customization_program_selects_overview(self):
        from repro.lang.compiler import compile_program
        from repro.uilib.library import InterfaceObjectLibrary
        from repro.uilib.presentation import PresentationRegistry

        db = build_image_log_database(ImageLogParams(
            sites=1, logs_per_site=1, raster_width=128, raster_height=128))
        lib = InterfaceObjectLibrary()
        registry = PresentationRegistry()
        directives = compile_program(IMAGE_LOG_PROGRAM, db, lib, registry)
        assert len(directives) == 1
        ref = next(iter(db.extent("image_logs", "ImageLog"))).get("scan")
        overview = registry.attribute_format("raster_overview")
        widget = overview.build(lib, "scan", ref)
        assert f"level {ref.levels - 1}" in widget.value
        # zoomed-in context gets the full-resolution level instead
        zoomed = overview.build(
            lib, "scan", ref,
            scale=Viewport(BBox(0.0, 0.0, 4.0, 4.0), 128, 128))
        assert "level 0" in zoomed.value
