"""Unit tests for the textual analysis-mode query language."""

import pytest

from repro.errors import QueryError
from repro.geodb import parse_query, run_query
from repro.geodb.query import (
    And,
    Comparison,
    Not,
    Or,
    SpatialPredicate,
    TruePredicate,
    WithinDistance,
)
from repro.spatial import Point


class TestParsing:
    def test_minimal(self):
        query = parse_query("select * from Pole")
        assert query.class_name == "Pole"
        assert isinstance(query.where, TruePredicate)
        assert query.projection is None
        assert query.limit is None

    def test_projection(self):
        query = parse_query(
            "select pole_type, pole_composition.pole_material from Pole")
        assert query.projection == ["pole_type",
                                    "pole_composition.pole_material"]

    def test_comparisons(self):
        query = parse_query("select * from Pole where pole_type >= 2")
        assert isinstance(query.where, Comparison)
        assert (query.where.path, query.where.op, query.where.value) == (
            "pole_type", ">=", 2)

    def test_string_and_bool_literals(self):
        q1 = parse_query("select * from Pole where status = 'ok'")
        assert q1.where.value == "ok"
        q2 = parse_query("select * from Pole where flag = true")
        assert q2.where.value is True
        q3 = parse_query("select * from Pole where note = null")
        assert q3.where.value is None

    def test_like_and_in(self):
        q1 = parse_query("select * from Pole where status like 'main'")
        assert q1.where.op == "like"
        q2 = parse_query(
            "select * from Pole where pole_type in [1, 2, 3]")
        assert q2.where.op == "in"
        assert q2.where.value == [1, 2, 3]

    def test_boolean_precedence_and_grouping(self):
        query = parse_query(
            "select * from Pole where a = 1 and b = 2 or c = 3")
        assert isinstance(query.where, Or)          # or is outermost
        assert isinstance(query.where.parts[0], And)
        grouped = parse_query(
            "select * from Pole where a = 1 and (b = 2 or c = 3)")
        assert isinstance(grouped.where, And)

    def test_not(self):
        query = parse_query("select * from Pole where not pole_type = 1")
        assert isinstance(query.where, Not)

    def test_spatial_predicates(self):
        query = parse_query(
            "select * from Pole where within(pole_location, "
            "bbox(0, 0, 10, 10))")
        assert isinstance(query.where, SpatialPredicate)
        assert query.where.relation == "within"
        point = parse_query(
            "select * from Pole where touches(pole_location, point(1, 2))")
        assert point.where.probe == Point(1, 2)
        line = parse_query(
            "select * from Duct where crosses(duct_path, line(0 0, 10 10))")
        assert line.where.probe.geom_type == "linestring"
        poly = parse_query(
            "select * from Pole where within(pole_location, "
            "polygon(0 0, 10 0, 10 10, 0 10))")
        assert poly.where.probe.geom_type == "polygon"

    def test_distance(self):
        query = parse_query(
            "select * from Pole where "
            "distance(pole_location, point(5, 5)) <= 20")
        assert isinstance(query.where, WithinDistance)
        assert query.where.radius == 20.0

    def test_order_limit_subclasses(self):
        query = parse_query(
            "select * from Pole order by desc install_year limit 7 "
            "including subclasses")
        assert query.order_by == "-install_year"
        assert query.limit == 7
        assert query.include_subclasses

    def test_keywords_case_insensitive(self):
        query = parse_query("SELECT * FROM Pole WHERE pole_type = 1 LIMIT 2")
        assert query.limit == 2


class TestParseErrors:
    BROKEN = [
        "from Pole",                                     # no select
        "select from Pole",                              # no projection
        "select * where x = 1",                          # no from
        "select * from Pole where",                      # dangling where
        "select * from Pole where x ~ 1",                # bad operator
        "select * from Pole where x = word",             # bare literal
        "select * from Pole where within(loc)",          # missing probe
        "select * from Pole where distance(loc, point(1, 1)) = 3",  # not <=
        "select * from Pole where hovers(loc, point(1, 1))",        # bad rel
        "select * from Pole where x in 5",               # in needs a list
        "select * from Pole limit 3 garbage",            # trailing input
        "select * from Pole where within(loc, sphere(1, 2))",       # shape
    ]

    @pytest.mark.parametrize("text", BROKEN)
    def test_broken_query_rejected(self, text):
        with pytest.raises(QueryError):
            parse_query(text)


class TestExecution:
    def test_end_to_end(self, phone_db):
        result = run_query(
            phone_db, "phone_net",
            "select * from Pole where "
            "within(pole_location, bbox(-1, -1, 500, 500))")
        assert len(result) == phone_db.count("phone_net", "Pole")
        # The probe covers the whole extent, so the cost-based planner
        # correctly prefers the plain scan over the R-tree walk.
        assert result.report["plan"] == "full-scan"
        selective = run_query(
            phone_db, "phone_net",
            "select * from Pole where "
            "within(pole_location, bbox(-1, -1, 30, 30))")
        assert selective.report["plan"] == "index-scan"

    def test_tuple_field_filter(self, phone_db):
        result = run_query(
            phone_db, "phone_net",
            "select pole_composition.pole_material from Pole "
            "where pole_composition.pole_material = 'wood'")
        assert all(
            row["pole_composition.pole_material"] == "wood"
            for row in result.rows)

    def test_mixed_spatial_and_attribute(self, phone_db):
        result = run_query(
            phone_db, "phone_net",
            "select * from Pole where pole_type = 1 and "
            "distance(pole_location, point(0, 0)) <= 150")
        for obj in result.objects:
            assert obj.get("pole_type") == 1
            assert obj.geometry("pole_location").distance_to(
                Point(0, 0)) <= 150.0

    def test_subclass_query(self, phone_db):
        base = run_query(phone_db, "phone_net",
                         "select * from NetworkElement")
        subs = run_query(phone_db, "phone_net",
                         "select * from NetworkElement including subclasses")
        assert len(base) == 0
        assert len(subs) == (
            phone_db.count("phone_net", "Pole")
            + phone_db.count("phone_net", "Duct")
            + phone_db.count("phone_net", "Cable"))


class TestRelateMask:
    def test_relate_mask_parses_and_runs(self, phone_db):
        result = run_query(
            phone_db, "phone_net",
            "select * from Pole where relate(pole_location, "
            "bbox(-1, -1, 500, 500), 'T*F**F***')")   # boolean 'within'
        named = run_query(
            phone_db, "phone_net",
            "select * from Pole where within(pole_location, "
            "bbox(-1, -1, 500, 500))")
        assert set(result.oids()) == set(named.oids())
        # The mask demands contact, so it exposes the same prefilter as
        # the named predicate — the planner must treat both alike (here:
        # the probe covers everything, so both full-scan by cost).
        assert result.report["plan"] == named.report["plan"]
        selective = run_query(
            phone_db, "phone_net",
            "select * from Pole where relate(pole_location, "
            "bbox(-1, -1, 30, 30), 'T*F**F***')")
        assert selective.report["plan"] == "index-scan"

    def test_relate_without_contact_requirement_scans(self, phone_db):
        result = run_query(
            phone_db, "phone_net",
            "select * from Pole where relate(pole_location, "
            "bbox(0, 0, 10, 10), 'FF*FF****')")        # boolean 'disjoint'
        assert result.report["plan"] == "full-scan"
        named = run_query(
            phone_db, "phone_net",
            "select * from Pole where disjoint(pole_location, "
            "bbox(0, 0, 10, 10))")
        assert set(result.oids()) == set(named.oids())

    def test_bad_mask_rejected(self, phone_db):
        with pytest.raises(QueryError):
            parse_query("select * from Pole where "
                        "relate(pole_location, point(1, 1), 'TTT')")
        with pytest.raises(QueryError):
            parse_query("select * from Pole where "
                        "relate(pole_location, point(1, 1), bbox)")


class TestAggregates:
    def test_count_star(self, phone_db):
        result = run_query(phone_db, "phone_net",
                           "select count(*) from Pole")
        assert result.rows == [
            {"count(*)": phone_db.count("phone_net", "Pole")}]

    def test_min_max_avg_sum(self, phone_db):
        result = run_query(
            phone_db, "phone_net",
            "select min(install_year), max(install_year), "
            "sum(pole_type), avg(pole_composition.pole_height) from Pole")
        row = result.rows[0]
        years = [o.get("install_year")
                 for o in phone_db.extent("phone_net", "Pole")]
        assert row["min(install_year)"] == min(years)
        assert row["max(install_year)"] == max(years)
        heights = [o.get("pole_composition")["pole_height"]
                   for o in phone_db.extent("phone_net", "Pole")]
        assert row["avg(pole_composition.pole_height)"] == pytest.approx(
            sum(heights) / len(heights))

    def test_aggregates_respect_where(self, phone_db):
        result = run_query(phone_db, "phone_net",
                           "select count(*) from Pole where pole_type = 1")
        expected = sum(1 for o in phone_db.extent("phone_net", "Pole")
                       if o.get("pole_type") == 1)
        assert result.rows == [{"count(*)": expected}]

    def test_count_path_skips_unset(self, phone_db):
        from repro.spatial import Point

        phone_db.insert("phone_net", "Pole",
                        {"pole_location": Point(1, 1)})  # no install_year
        result = run_query(
            phone_db, "phone_net",
            "select count(*), count(install_year) from Pole")
        row = result.rows[0]
        assert row["count(*)"] == row["count(install_year)"] + 1

    def test_empty_set_aggregates(self, phone_db):
        result = run_query(
            phone_db, "phone_net",
            "select count(*), min(install_year) from Pole "
            "where pole_type = 999")
        assert result.rows == [{"count(*)": 0, "min(install_year)": None}]

    def test_mixed_selection_rejected(self, phone_db):
        with pytest.raises(QueryError):
            parse_query("select pole_type, count(*) from Pole")

    def test_star_aggregate_only_for_count(self, phone_db):
        with pytest.raises(QueryError):
            parse_query("select min(*) from Pole")
