"""Spatial sharding and scatter-gather query execution.

The contract under test: once a class extent is partitioned with
:meth:`GeographicDatabase.shard_extent`, every query over it runs as a
scatter over the live shards and a gather that merges per-shard results
— and the merged answer is **byte-identical** to what the single-extent
path returns for the same query on the same database. Pruning (disjoint
cells, the no-geometry residual shard) must be sound, the shard map must
follow the class's commit version, and the planner statistics must come
back fresh after WAL recovery (the staleness regression at the end).
"""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.geodb import (
    GeographicDatabase,
    MemoryPager,
    QueryEngine,
    WriteAheadLog,
    build_shard_map,
)
from repro.geodb.query_language import parse_query, run_query
from repro.geodb.sharding import RESIDUAL
from repro.spatial import BBox, Point
from repro.workloads import build_mix_schema
from repro.workloads.txn_mix import MIX_CLASS, MIX_SCHEMA


def make_db(n=40, residual=3) -> GeographicDatabase:
    """A mix database with points spread over [0, 100)^2.

    Positions are deterministic and cover all four quadrants; the last
    ``residual`` objects have no geometry.
    """
    db = GeographicDatabase("sg", pager=MemoryPager())
    db.register_schema(build_mix_schema())
    with db.transaction() as txn:
        for i in range(n):
            located = i < n - residual
            txn.insert(MIX_SCHEMA, MIX_CLASS, {
                "name": f"f{i:03d}",
                "size": (i * 7) % 23,
                "location": Point((i * 13) % 100, (i * 29) % 100)
                            if located else None,
            })
    return db


def answer(db, text):
    """A comparable rendering of one query's full answer.

    Ordered and aggregate answers must match *exactly* (the gather's
    k-way merge reproduces the global sort, oid tie-break included).
    Row order of an unordered query is unspecified — the single-extent
    path yields extent order, the scatter path shard order — so those
    are normalized by sorting before comparison.
    """
    result = run_query(db, MIX_SCHEMA, text)
    ordered = "order by" in text or result.rows is not None and \
        any("(" in key for row in result.rows[:1] for key in row)
    if result.rows is not None:
        return result.rows if ordered else \
            sorted(result.rows, key=repr)
    oids = [obj.oid for obj in result.objects]
    return oids if "order by" in text else sorted(oids)


IDENTITY_QUERIES = [
    "select * from Feature",
    "select * from Feature where size > 10",
    "select name, size from Feature where size <= 15 order by size",
    "select * from Feature order by desc size limit 7",
    "select * from Feature where within(location, bbox(0, 0, 49, 49))",
    "select name from Feature where "
    "within(location, bbox(25, 25, 75, 75)) order by desc name limit 5",
    "select count(*), count(size), min(size), max(size), "
    "sum(size), avg(size) from Feature",
    "select count(*), avg(size) from Feature "
    "where within(location, bbox(0, 0, 60, 60))",
    "select * from Feature where size = 4",
]


class TestScatterIdentity:
    @pytest.mark.parametrize("text", IDENTITY_QUERIES)
    def test_scatter_answer_equals_single_extent_answer(self, text):
        db = make_db()
        before = answer(db, text)
        db.shard_extent(MIX_SCHEMA, MIX_CLASS, "location", grid=(2, 2))
        assert answer(db, text) == before

    def test_scatter_is_reported(self):
        db = make_db()
        db.shard_extent(MIX_SCHEMA, MIX_CLASS, "location", grid=(2, 2))
        result = run_query(db, MIX_SCHEMA, "select * from Feature")
        assert result.report["plan"] == "scatter"
        scatter = result.report["scatter"]
        assert scatter["shards"] == 5          # 4 cells + residual
        assert scatter["pruned"] == 0
        assert "scatter: 5 shard(s)" in result.explain()

    def test_window_prunes_disjoint_cells_and_residual(self):
        db = make_db()
        db.shard_extent(MIX_SCHEMA, MIX_CLASS, "location", grid=(2, 2))
        result = run_query(
            db, MIX_SCHEMA,
            "select * from Feature where within(location, bbox(1, 1, 4, 4))")
        scatter = result.report["scatter"]
        # only the lower-left cell intersects; the residual shard is
        # skipped because the window is a necessary condition
        assert scatter["shards"] < 5
        assert scatter["pruned"] >= 1
        [described] = scatter["classes"]
        assert RESIDUAL not in described["shards"]
        assert described["pruned"] > 0

    def test_non_spatial_filter_keeps_every_shard(self):
        db = make_db()
        db.shard_extent(MIX_SCHEMA, MIX_CLASS, "location", grid=(2, 2))
        result = run_query(db, MIX_SCHEMA,
                           "select * from Feature where size > 3")
        assert result.report["scatter"]["pruned"] == 0

    def test_threaded_scatter_matches_serial(self):
        db = make_db()
        db.shard_extent(MIX_SCHEMA, MIX_CLASS, "location", grid=(2, 2))
        query = parse_query("select * from Feature order by size")
        serial = QueryEngine(db).execute(MIX_SCHEMA, query)
        threaded_engine = QueryEngine(db, scatter_workers=4)
        threaded = threaded_engine.execute(MIX_SCHEMA, query)
        assert [o.oid for o in threaded.objects] \
            == [o.oid for o in serial.objects]
        assert threaded.report["scatter"]["workers"] == 4

    def test_scatter_metrics(self, obs_recorder):
        db = make_db()
        db.shard_extent(MIX_SCHEMA, MIX_CLASS, "location", grid=(2, 2))
        run_query(db, MIX_SCHEMA, "select * from Feature")
        registry = obs_recorder.registry
        assert registry.counter_total("query.scatter.shards") == 5
        assert registry.counter_total("query.scatter.merges") == 1


class TestShardMap:
    def test_grid_partition_with_residual(self):
        db = make_db(n=20, residual=2)
        shard_map = build_shard_map(
            db, MIX_SCHEMA, MIX_CLASS, "location", (2, 2),
            version=db.class_version(MIX_SCHEMA, MIX_CLASS))
        ids = [s.shard_id for s in shard_map.shards]
        assert ids[-1] == RESIDUAL
        assert sum(s.cardinality for s in shard_map.shards) == 20
        assert shard_map.shards[-1].cardinality == 2
        assert shard_map.shards[-1].bbox is None
        # every object lands in exactly one shard
        all_oids = [oid for s in shard_map.shards for oid in s.oids]
        assert len(all_oids) == len(set(all_oids))

    def test_shard_bbox_is_union_of_member_bboxes(self):
        db = make_db(residual=0)
        shard_map = db_map = build_shard_map(
            db, MIX_SCHEMA, MIX_CLASS, "location", (2, 2),
            version=0)
        extent = {obj.oid: obj for obj in db.extent(MIX_SCHEMA, MIX_CLASS)}
        for shard in db_map.shards:
            for oid in shard.oids:
                box = extent[oid].geometry("location").bbox()
                assert shard.bbox.contains_bbox(box)

    def test_live_shards_pruning_rules(self):
        db = make_db()
        shard_map = build_shard_map(
            db, MIX_SCHEMA, MIX_CLASS, "location", (2, 2), version=0)
        everything = shard_map.live_shards(None, prune_residual=True)
        assert everything == list(shard_map.shards)
        nowhere = shard_map.live_shards(
            BBox(1000, 1000, 1001, 1001), prune_residual=True)
        assert nowhere == []
        # without the necessary-condition guarantee the residual stays
        with_residual = shard_map.live_shards(
            BBox(1000, 1000, 1001, 1001), prune_residual=False)
        assert [s.shard_id for s in with_residual] == [RESIDUAL]

    def test_map_cache_follows_class_version(self):
        db = make_db()
        db.shard_extent(MIX_SCHEMA, MIX_CLASS, "location", grid=(2, 2))
        first = db.shard_map(MIX_SCHEMA, MIX_CLASS)
        assert db.shard_map(MIX_SCHEMA, MIX_CLASS) is first
        db.insert(MIX_SCHEMA, MIX_CLASS,
                  {"name": "new", "size": 1, "location": Point(50, 50)})
        rebuilt = db.shard_map(MIX_SCHEMA, MIX_CLASS)
        assert rebuilt is not first
        assert rebuilt.cardinality == first.cardinality + 1

    def test_unsharded_class_has_no_map(self):
        db = make_db()
        assert db.shard_map(MIX_SCHEMA, MIX_CLASS) is None

    def test_shard_extent_validates_attr_and_grid(self):
        db = make_db()
        with pytest.raises(SchemaError, match="geometry"):
            db.shard_extent(MIX_SCHEMA, MIX_CLASS, "size")
        with pytest.raises(SchemaError, match="grid"):
            db.shard_extent(MIX_SCHEMA, MIX_CLASS, "location", grid=(0, 2))

    def test_shard_config_replicates_to_follower(self):
        from repro.geodb import LocalReplicationSource

        leader = make_db()
        leader.attach_wal(WriteAheadLog(MemoryPager(), sync_mode="none"))
        leader.shard_extent(MIX_SCHEMA, MIX_CLASS, "location", grid=(2, 2))
        follower = GeographicDatabase.follow(
            LocalReplicationSource(leader), name="f")
        follower_map = follower.shard_map(MIX_SCHEMA, MIX_CLASS)
        assert follower_map is not None
        assert follower_map.describe() == \
            leader.shard_map(MIX_SCHEMA, MIX_CLASS).describe()
        # scatter executes on the follower too
        result = run_query(follower, MIX_SCHEMA, "select * from Feature")
        assert result.report["plan"] == "scatter"


class TestStatisticsAfterRecovery:
    """Regression: planner statistics must not survive ``recover()`` stale.

    Replay bumps the commit version of every class it touches; both the
    statistics cache and the shard-map cache key on that version, so a
    plan computed before recovery can never be reused after it.
    """

    def _crashed_pagers(self):
        wal_pager = MemoryPager()
        db = GeographicDatabase("mix", pager=MemoryPager())
        db.register_schema(build_mix_schema())
        db.attach_wal(WriteAheadLog(wal_pager, sync_mode="none"))
        for i in range(6):
            db.insert(MIX_SCHEMA, MIX_CLASS,
                      {"name": f"r{i}", "size": i,
                       "location": Point(i * 10.0, i * 10.0)})
        # no checkpoint: the heap "disk" is empty, all state is in the WAL
        return wal_pager

    def test_recover_bumps_versions_and_refreshes_statistics(self):
        wal_pager = self._crashed_pagers()
        db = GeographicDatabase("mix", pager=MemoryPager())
        db.register_schema(build_mix_schema())
        db.load_from_storage()
        db.attach_wal(WriteAheadLog(wal_pager, sync_mode="none"))
        # warm the planner's view of the (still empty) pre-recovery world
        stale = db.statistics.for_class(MIX_SCHEMA, MIX_CLASS)
        assert stale.cardinality == 0
        version_before = db.class_version(MIX_SCHEMA, MIX_CLASS)
        db.recover()
        assert db.class_version(MIX_SCHEMA, MIX_CLASS) > version_before
        fresh = db.statistics.for_class(MIX_SCHEMA, MIX_CLASS)
        assert fresh is not stale
        assert fresh.cardinality == 6
        # and a plan built now sees the recovered rows
        result = run_query(db, MIX_SCHEMA,
                           "select count(*) from Feature")
        assert result.rows[0]["count(*)"] == 6

    def test_recover_refreshes_shard_maps(self):
        wal_pager = self._crashed_pagers()
        db = GeographicDatabase("mix", pager=MemoryPager())
        db.register_schema(build_mix_schema())
        db.load_from_storage()
        db.attach_wal(WriteAheadLog(wal_pager, sync_mode="none"))
        db.shard_extent(MIX_SCHEMA, MIX_CLASS, "location", grid=(2, 2))
        empty_map = db.shard_map(MIX_SCHEMA, MIX_CLASS)
        assert empty_map.cardinality == 0
        db.recover()
        recovered_map = db.shard_map(MIX_SCHEMA, MIX_CLASS)
        assert recovered_map is not empty_map
        assert recovered_map.cardinality == 6
