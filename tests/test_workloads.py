"""Unit tests for the workload generators."""

import pytest

from repro.spatial import BBox, Point
from repro.workloads import (
    PhoneNetParams,
    build_environment_database,
    build_phone_net_database,
    clustered_points,
    pan_zoom_walk,
    random_boxes,
    random_convex_polygon,
    random_points,
    random_walk_line,
)


class TestPhoneNet:
    def test_counts_match_parameters(self):
        params = PhoneNetParams(blocks_x=3, blocks_y=2, poles_per_street=2,
                                duct_count=4, seed=5)
        db = build_phone_net_database(params)
        streets = (params.blocks_x + 1) + (params.blocks_y + 1)
        assert db.count("phone_net", "Street") == streets
        assert db.count("phone_net", "Pole") == streets * 2
        assert db.count("phone_net", "Duct") == 4
        assert db.count("phone_net", "District") == 1

    def test_deterministic_for_seed(self):
        a = build_phone_net_database(PhoneNetParams(seed=7))
        b = build_phone_net_database(PhoneNetParams(seed=7))
        poles_a = [o.geometry("pole_location").as_tuple()
                   for o in a.extent("phone_net", "Pole")]
        poles_b = [o.geometry("pole_location").as_tuple()
                   for o in b.extent("phone_net", "Pole")]
        assert poles_a == poles_b

    def test_poles_inside_extent(self):
        params = PhoneNetParams()
        db = build_phone_net_database(params)
        width, height = params.extent
        for pole in db.extent("phone_net", "Pole"):
            loc = pole.geometry("pole_location")
            assert 0 <= loc.x <= width and 0 <= loc.y <= height

    def test_figure5_pole_class_shape(self):
        db = build_phone_net_database()
        schema = db.get_schema_object("phone_net")
        pole = schema.get_class("Pole")
        assert pole.attribute_names() == [
            "pole_type", "pole_composition", "pole_supplier",
            "pole_location", "pole_picture", "pole_historic",
        ]
        comp = pole.attribute("pole_composition").type
        assert list(comp.fields) == ["pole_material", "pole_diameter",
                                     "pole_height"]
        assert "get_supplier_name" in pole.methods

    def test_method_registered(self):
        db = build_phone_net_database()
        pole = next(iter(db.extent("phone_net", "Pole")))
        name = db.call_method(pole, "get_supplier_name", "pole_supplier")
        assert isinstance(name, str) and name

    def test_references_valid(self):
        db = build_phone_net_database()
        for cable in db.extent("phone_net", "Cable"):
            assert db.find_object(cable.get("from_pole")) is not None
            assert db.find_object(cable.get("to_pole")) is not None


class TestEnvironment:
    def test_counts(self):
        db = build_environment_database(parcels=10, rivers=2, roads=3,
                                        stations=5, seed=1)
        assert db.count("land_use", "VegetationParcel") == 10
        assert db.count("land_use", "River") == 2
        assert db.count("land_use", "Road") == 3
        assert db.count("land_use", "Station") == 5

    def test_parcels_are_valid_polygons(self):
        db = build_environment_database(parcels=15, seed=2)
        for parcel in db.extent("land_use", "VegetationParcel"):
            geom = parcel.geometry("parcel_area")
            assert geom.is_valid()
            assert geom.area() > 0

    def test_area_method(self):
        db = build_environment_database(parcels=3, seed=3)
        parcel = next(iter(db.extent("land_use", "VegetationParcel")))
        hectares = db.call_method(parcel, "area_hectares")
        assert hectares == pytest.approx(
            parcel.geometry("parcel_area").area() / 10_000.0, rel=0.01)


class TestGenerators:
    EXTENT = BBox(0, 0, 100, 100)

    def test_random_points_bounds_and_determinism(self):
        pts = random_points(50, self.EXTENT, seed=1)
        assert len(pts) == 50
        assert all(self.EXTENT.contains_point(p.x, p.y) for p in pts)
        assert pts == random_points(50, self.EXTENT, seed=1)
        assert pts != random_points(50, self.EXTENT, seed=2)

    def test_clustered_points_cluster(self):
        pts = clustered_points(200, self.EXTENT, clusters=2, spread=0.01,
                               seed=3)
        assert all(self.EXTENT.contains_point(p.x, p.y) for p in pts)
        # clustered points have a smaller average nearest-center distance
        xs = sorted(p.x for p in pts)
        spread = xs[-1] - xs[0]
        assert spread <= self.EXTENT.width

    def test_random_boxes_inside(self):
        boxes = random_boxes(40, self.EXTENT, seed=4)
        assert all(self.EXTENT.contains_bbox(b) for b in boxes)

    def test_random_walk_line(self):
        line = random_walk_line(30, self.EXTENT, step_size=2.0, seed=5)
        assert len(line.coords) == 31
        assert self.EXTENT.expanded(1e-9).contains_bbox(line.bbox())

    def test_random_convex_polygon_valid(self):
        poly = random_convex_polygon((50, 50), 10, seed=6)
        assert poly.is_valid()
        assert poly.contains_point(50, 50)

    def test_pan_zoom_walk_windows_inside(self):
        windows = list(pan_zoom_walk(self.EXTENT, 0.2, steps=50, seed=7))
        assert len(windows) == 50
        for w in windows:
            assert self.EXTENT.expanded(1e-6).contains_bbox(w)

    def test_pan_zoom_walk_has_locality(self):
        windows = list(pan_zoom_walk(self.EXTENT, 0.2, steps=100, seed=8))
        overlapping = sum(
            1 for a, b in zip(windows, windows[1:]) if a.intersects(b))
        assert overlapping > 50   # mostly local movements
