"""Unit tests for attribute hash indexes and the hash-scan plan."""

import pytest

from repro.errors import IndexError_, SchemaError
from repro.geodb import Comparison, HashIndex, Query, QueryEngine, run_query
from repro.spatial import Point


class TestHashIndex:
    def test_insert_lookup_delete(self):
        index = HashIndex("kind")
        index.insert("wood", "P#1")
        index.insert("wood", "P#2")
        index.insert("steel", "P#3")
        assert index.lookup("wood") == {"P#1", "P#2"}
        assert index.lookup_many(["wood", "steel"]) == {"P#1", "P#2", "P#3"}
        assert len(index) == 3
        assert index.distinct_values() == 2
        index.delete("wood", "P#1")
        assert index.lookup("wood") == {"P#2"}

    def test_duplicate_insert_rejected(self):
        index = HashIndex("kind")
        index.insert("wood", "P#1")
        with pytest.raises(IndexError_):
            index.insert("wood", "P#1")

    def test_delete_missing_rejected(self):
        index = HashIndex("kind")
        with pytest.raises(IndexError_):
            index.delete("wood", "P#1")

    def test_unindexable_values_ignored(self):
        index = HashIndex("kind")
        index.insert(None, "P#1")
        index.insert({"not": "hashable-scalar"}, "P#2")
        assert len(index) == 0
        index.delete(None, "P#1")   # symmetric no-op

    def test_lookup_view_is_live_and_protected(self):
        index = HashIndex("kind")
        index.insert("wood", "P#1")
        view = index.lookup_view("wood")
        assert view == {"P#1"}
        # The view is the live bucket: later mutations show through it.
        index.insert("wood", "P#2")
        assert view == {"P#1", "P#2"}
        # Misses share one frozen empty bucket; mutating it raises
        # instead of corrupting the shared sentinel.
        miss = index.lookup_view("steel")
        with pytest.raises(AttributeError):
            miss.add("P#3")
        assert index.lookup_view("steel") == frozenset()
        # The public APIs still hand out copies safe to mutate.
        copied = index.lookup("wood")
        copied.add("P#999")
        assert index.lookup("wood") == {"P#1", "P#2"}
        union = index.lookup_many(["wood"])
        union.add("P#999")
        assert index.lookup("wood") == {"P#1", "P#2"}

    def test_stats(self):
        index = HashIndex("kind")
        index.insert("a", "1")
        index.insert("a", "2")
        stats = index.stats()
        assert stats == {"attr": "kind", "entries": 2,
                         "distinct_values": 1, "max_bucket": 2}


class TestDatabaseIntegration:
    def test_create_indexes_existing_extent(self, phone_db):
        index = phone_db.create_attribute_index("phone_net", "Pole",
                                                "pole_type")
        assert len(index) == phone_db.count("phone_net", "Pole")
        # idempotent
        assert phone_db.create_attribute_index(
            "phone_net", "Pole", "pole_type") is index

    def test_spatial_attribute_rejected(self, phone_db):
        with pytest.raises(SchemaError):
            phone_db.create_attribute_index("phone_net", "Pole",
                                            "pole_location")

    def test_unknown_attribute_rejected(self, phone_db):
        with pytest.raises(SchemaError):
            phone_db.create_attribute_index("phone_net", "Pole", "ghost")

    def test_maintenance_on_commit(self, phone_db):
        index = phone_db.create_attribute_index("phone_net", "Pole",
                                                "pole_type")
        oid = phone_db.insert("phone_net", "Pole",
                              {"pole_location": Point(1, 1),
                               "pole_type": 99})
        assert oid in index.lookup(99)
        phone_db.update(oid, {"pole_type": 98})
        assert oid not in index.lookup(99)
        assert oid in index.lookup(98)
        phone_db.delete(oid)
        assert index.lookup(98) == set()

    def test_drop(self, phone_db):
        phone_db.create_attribute_index("phone_net", "Pole", "pole_type")
        phone_db.drop_attribute_index("phone_net", "Pole", "pole_type")
        assert phone_db.attribute_index("phone_net", "Pole",
                                        "pole_type") is None
        with pytest.raises(SchemaError):
            phone_db.drop_attribute_index("phone_net", "Pole", "pole_type")


class TestPlanner:
    def test_hash_scan_plan_chosen(self, phone_db):
        phone_db.create_attribute_index("phone_net", "Pole", "pole_type")
        engine = QueryEngine(phone_db)
        result = engine.execute("phone_net", Query(
            "Pole", where=Comparison("pole_type", "=", 1)))
        assert result.report["plan"] == "hash-scan"
        full = engine.execute("phone_net", Query("Pole"))
        expected = [o.oid for o in full.objects if o.get("pole_type") == 1]
        assert sorted(result.oids()) == sorted(expected)

    def test_in_predicate_uses_index(self, phone_db):
        phone_db.create_attribute_index("phone_net", "Pole", "pole_type")
        result = run_query(phone_db, "phone_net",
                           "select * from Pole where pole_type in [0, 1]")
        assert result.report["plan"] == "hash-scan"
        assert all(o.get("pole_type") in (0, 1) for o in result.objects)

    def test_conjunction_pushes_equality(self, phone_db):
        phone_db.create_attribute_index("phone_net", "Pole", "pole_type")
        result = run_query(
            phone_db, "phone_net",
            "select * from Pole where pole_type = 1 and install_year > 0")
        assert result.report["plan"] == "hash-scan"
        assert result.report["candidates"] <= phone_db.count("phone_net",
                                                             "Pole")

    def test_cost_picks_cheapest_prefilter(self, phone_db):
        # Both prefilters are available; the bbox covers the whole
        # extent while the hash bucket holds only the pole_type=1 rows,
        # so the cost-based planner must pick the hash scan.
        phone_db.create_attribute_index("phone_net", "Pole", "pole_type")
        result = run_query(
            phone_db, "phone_net",
            "select * from Pole where pole_type = 1 and "
            "within(pole_location, bbox(-1, -1, 500, 500))")
        assert result.report["plan"] == "hash-scan"
        assert result.report["candidates"] < phone_db.count("phone_net",
                                                            "Pole")
        expected = [o.oid for o in phone_db.extent("phone_net", "Pole")
                    if o.get("pole_type") == 1]
        assert sorted(result.oids()) == sorted(expected)

    def test_no_index_falls_back_to_scan(self, phone_db):
        result = run_query(phone_db, "phone_net",
                           "select * from Pole where pole_type = 1")
        assert result.report["plan"] == "full-scan"

    def test_dotted_paths_never_use_hash(self, phone_db):
        phone_db.create_attribute_index("phone_net", "Pole", "pole_type")
        result = run_query(
            phone_db, "phone_net",
            "select * from Pole where "
            "pole_composition.pole_material = 'wood'")
        assert result.report["plan"] == "full-scan"

    def test_or_never_uses_hash(self, phone_db):
        phone_db.create_attribute_index("phone_net", "Pole", "pole_type")
        result = run_query(
            phone_db, "phone_net",
            "select * from Pole where pole_type = 1 or install_year > 0")
        assert result.report["plan"] == "full-scan"

    def test_subclass_query_mixes_per_class_plans(self, phone_db):
        # NetworkElement subclasses: Pole, Duct, Cable. Index only Pole.
        # Each class picks its own access path: Pole uses its hash
        # index, the unindexed classes scan — and the report says so.
        phone_db.create_attribute_index("phone_net", "Pole", "status")
        result = run_query(
            phone_db, "phone_net",
            "select * from NetworkElement where status = 'ok' "
            "including subclasses")
        assert result.report["plan"] == "mixed"
        by_class = {p["class"]: p["plan"] for p in result.report["plans"]}
        assert by_class["Pole"] == "hash-scan"
        assert by_class["Duct"] == "full-scan"
        assert by_class["Cable"] == "full-scan"
