"""Unit tests for the attribute type system."""

import pytest

from repro.errors import SchemaError, TypeMismatchError
from repro.geodb import (
    BITMAP,
    BOOLEAN,
    FLOAT,
    INTEGER,
    TEXT,
    GeometryType,
    ListType,
    ReferenceType,
    TupleType,
    scalar,
    type_from_description,
)
from repro.spatial import LineString, Point


class TestScalars:
    def test_integer(self):
        INTEGER.validate(5, "n")
        with pytest.raises(TypeMismatchError):
            INTEGER.validate(5.0, "n")
        with pytest.raises(TypeMismatchError):
            INTEGER.validate(True, "n")   # bool is not an integer here
        assert INTEGER.default() == 0

    def test_float_accepts_int(self):
        FLOAT.validate(5, "x")
        FLOAT.validate(5.5, "x")
        with pytest.raises(TypeMismatchError):
            FLOAT.validate("5", "x")
        assert FLOAT.decode(3) == 3.0

    def test_text(self):
        TEXT.validate("hello", "t")
        with pytest.raises(TypeMismatchError):
            TEXT.validate(5, "t")
        assert TEXT.default() == ""

    def test_boolean(self):
        BOOLEAN.validate(True, "b")
        with pytest.raises(TypeMismatchError):
            BOOLEAN.validate(1, "b")

    def test_bitmap_roundtrip(self):
        BITMAP.validate(b"\x00\x01", "img")
        with pytest.raises(TypeMismatchError):
            BITMAP.validate("not bytes", "img")
        encoded = BITMAP.encode(b"\x00\xff\x10")
        assert isinstance(encoded, str)
        assert BITMAP.decode(encoded) == b"\x00\xff\x10"

    def test_scalar_lookup(self):
        assert scalar("integer") is INTEGER
        with pytest.raises(SchemaError):
            scalar("complex")


class TestGeometryType:
    def test_any_geometry(self):
        t = GeometryType()
        t.validate(Point(1, 2), "g")
        t.validate(LineString([(0, 0), (1, 1)]), "g")
        with pytest.raises(TypeMismatchError):
            t.validate("POINT(1 2)", "g")

    def test_subtype_restriction(self):
        t = GeometryType("point")
        t.validate(Point(1, 2), "g")
        with pytest.raises(TypeMismatchError):
            t.validate(LineString([(0, 0), (1, 1)]), "g")
        assert t.spec() == "geometry(point)"

    def test_unknown_subtype(self):
        with pytest.raises(SchemaError):
            GeometryType("circle")

    def test_encode_decode_roundtrip(self):
        t = GeometryType()
        for geom in (Point(1, 2), LineString([(0, 0), (3, 4), (5, 5)])):
            assert t.decode(t.encode(geom)) == geom


class TestReferenceType:
    def test_validate(self):
        t = ReferenceType("Supplier")
        t.validate("Supplier#3", "ref")
        with pytest.raises(TypeMismatchError):
            t.validate(42, "ref")
        with pytest.raises(TypeMismatchError):
            t.validate("", "ref")

    def test_needs_class_name(self):
        with pytest.raises(SchemaError):
            ReferenceType("")

    def test_spec_is_class_name(self):
        assert ReferenceType("Supplier").spec() == "Supplier"


class TestTupleType:
    def make(self):
        return TupleType({"material": TEXT, "height": FLOAT})

    def test_validate_complete(self):
        self.make().validate({"material": "wood", "height": 9.0}, "comp")

    def test_missing_field(self):
        with pytest.raises(TypeMismatchError):
            self.make().validate({"material": "wood"}, "comp")

    def test_unknown_field(self):
        with pytest.raises(TypeMismatchError):
            self.make().validate(
                {"material": "wood", "height": 9.0, "color": "red"}, "comp"
            )

    def test_field_type_checked(self):
        with pytest.raises(TypeMismatchError):
            self.make().validate({"material": "wood", "height": "tall"}, "comp")

    def test_no_nesting(self):
        with pytest.raises(SchemaError):
            TupleType({"inner": self.make()})

    def test_needs_fields(self):
        with pytest.raises(SchemaError):
            TupleType({})

    def test_default(self):
        assert self.make().default() == {"material": "", "height": 0.0}

    def test_spec_preserves_order(self):
        assert self.make().spec() == "tuple(material: text; height: float)"


class TestListType:
    def test_validate(self):
        t = ListType(INTEGER)
        t.validate([1, 2, 3], "xs")
        with pytest.raises(TypeMismatchError):
            t.validate([1, "two"], "xs")
        with pytest.raises(TypeMismatchError):
            t.validate("not a list", "xs")

    def test_roundtrip_with_geometry(self):
        t = ListType(GeometryType("point"))
        value = [Point(0, 0), Point(1, 1)]
        assert t.decode(t.encode(value)) == value


class TestDescriptions:
    def test_roundtrip_every_type(self):
        samples = [
            INTEGER, FLOAT, TEXT, BOOLEAN, BITMAP,
            GeometryType(), GeometryType("polygon"),
            ReferenceType("Supplier"),
            TupleType({"a": TEXT, "b": FLOAT}),
            ListType(ReferenceType("Pole")),
        ]
        for t in samples:
            rebuilt = type_from_description(t.describe())
            assert rebuilt == t
            assert rebuilt.spec() == t.spec()

    def test_unknown_description_rejected(self):
        with pytest.raises(SchemaError):
            type_from_description({"tag": "quantum"})
