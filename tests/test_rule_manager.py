"""Unit tests for the generic ECA rule manager."""

import pytest

from repro.active import (
    Coupling,
    Event,
    EventBus,
    EventKind,
    Rule,
    RuleManager,
    SelectionPolicy,
)
from repro.errors import CascadeLimitError, RuleError


@pytest.fixture()
def bus():
    return EventBus()


@pytest.fixture()
def manager(bus):
    return RuleManager(bus)


def fire(bus, kind=EventKind.GET_SCHEMA, subject="s", depth=0, context=None):
    event = Event(kind, subject, context=context, depth=depth)
    bus.publish(event)
    return event


class TestRuleMatching:
    def test_event_kind_filter(self, bus, manager):
        hits = []
        manager.define("r", [EventKind.GET_CLASS], lambda e: True,
                       lambda e, m: hits.append(e))
        fire(bus, EventKind.GET_SCHEMA)
        assert hits == []
        fire(bus, EventKind.GET_CLASS)
        assert len(hits) == 1

    def test_condition_filter(self, bus, manager):
        hits = []
        manager.define("r", [EventKind.GET_SCHEMA],
                       lambda e: e.subject == "wanted",
                       lambda e, m: hits.append(e.subject))
        fire(bus, subject="other")
        fire(bus, subject="wanted")
        assert hits == ["wanted"]

    def test_disabled_rule_skipped(self, bus, manager):
        hits = []
        rule = manager.define("r", [EventKind.GET_SCHEMA], lambda e: True,
                              lambda e, m: hits.append(1))
        rule.enabled = False
        fire(bus)
        assert hits == []

    def test_condition_error_wrapped(self, bus, manager):
        manager.define("bad", [EventKind.GET_SCHEMA],
                       lambda e: 1 / 0, lambda e, m: None)
        with pytest.raises(RuleError, match="condition of rule 'bad'"):
            fire(bus)


class TestRuleSetManagement:
    def test_duplicate_name_rejected(self, manager):
        manager.define("r", [EventKind.GET_SCHEMA], lambda e: True,
                       lambda e, m: None)
        with pytest.raises(RuleError):
            manager.define("r", [EventKind.GET_SCHEMA], lambda e: True,
                           lambda e, m: None)

    def test_remove_and_get(self, manager):
        manager.define("r", [EventKind.GET_SCHEMA], lambda e: True,
                       lambda e, m: None)
        assert manager.get_rule("r").name == "r"
        manager.remove_rule("r")
        with pytest.raises(RuleError):
            manager.get_rule("r")
        with pytest.raises(RuleError):
            manager.remove_rule("r")

    def test_rules_by_group(self, manager):
        manager.define("a", [EventKind.GET_SCHEMA], lambda e: True,
                       lambda e, m: None, group="g1")
        manager.define("b", [EventKind.GET_SCHEMA], lambda e: True,
                       lambda e, m: None, group="g2")
        assert [r.name for r in manager.rules("g1")] == ["a"]
        assert len(manager.rules()) == 2


class TestSelectionPolicies:
    def test_all_matching_runs_every_rule(self, bus, manager):
        hits = []
        for i in range(3):
            manager.define(f"r{i}", [EventKind.GET_SCHEMA], lambda e: True,
                           lambda e, m, i=i: hits.append(i), priority=i)
        fire(bus)
        assert hits == [2, 1, 0]  # priority order, high first

    def test_highest_priority_selects_one(self, bus, manager):
        hits = []
        manager.set_policy("g", SelectionPolicy.HIGHEST_PRIORITY)
        for i in range(3):
            manager.define(f"r{i}", [EventKind.GET_SCHEMA], lambda e: True,
                           lambda e, m, i=i: hits.append(i),
                           priority=i, group="g")
        fire(bus)
        assert hits == [2]

    def test_priority_tie_in_highest_mode_is_error(self, bus, manager):
        manager.set_policy("g", SelectionPolicy.HIGHEST_PRIORITY)
        for name in ("a", "b"):
            manager.define(name, [EventKind.GET_SCHEMA], lambda e: True,
                           lambda e, m: None, priority=5, group="g")
        with pytest.raises(RuleError, match="ambiguous"):
            fire(bus)

    def test_tie_is_fine_when_only_one_matches(self, bus, manager):
        hits = []
        manager.set_policy("g", SelectionPolicy.HIGHEST_PRIORITY)
        manager.define("a", [EventKind.GET_SCHEMA], lambda e: e.subject == "x",
                       lambda e, m: hits.append("a"), priority=5, group="g")
        manager.define("b", [EventKind.GET_SCHEMA], lambda e: e.subject == "y",
                       lambda e, m: hits.append("b"), priority=5, group="g")
        fire(bus, subject="x")
        assert hits == ["a"]

    def test_groups_are_independent(self, bus, manager):
        hits = []
        manager.set_policy("pick_one", SelectionPolicy.HIGHEST_PRIORITY)
        manager.define("one_a", [EventKind.GET_SCHEMA], lambda e: True,
                       lambda e, m: hits.append("one_a"), priority=1,
                       group="pick_one")
        manager.define("one_b", [EventKind.GET_SCHEMA], lambda e: True,
                       lambda e, m: hits.append("one_b"), priority=2,
                       group="pick_one")
        manager.define("all_a", [EventKind.GET_SCHEMA], lambda e: True,
                       lambda e, m: hits.append("all_a"), group="run_all")
        fire(bus)
        assert set(hits) == {"one_b", "all_a"}


class TestCouplingModes:
    def test_deferred_rules_queue(self, bus, manager):
        hits = []
        manager.define("d", [EventKind.GET_SCHEMA], lambda e: True,
                       lambda e, m: hits.append(1),
                       coupling=Coupling.DEFERRED)
        fire(bus)
        assert hits == []
        assert manager.deferred_count == 1
        assert manager.flush_deferred() == 1
        assert hits == [1]
        assert manager.deferred_count == 0

    def test_immediate_runs_inline(self, bus, manager):
        hits = []
        manager.define("i", [EventKind.GET_SCHEMA], lambda e: True,
                       lambda e, m: hits.append(1))
        fire(bus)
        assert hits == [1]


class TestCascades:
    def test_action_raises_derived_event(self, bus, manager):
        seen = []
        manager.define(
            "cascade", [EventKind.GET_SCHEMA], lambda e: True,
            lambda e, m: m.raise_event(e.derived(EventKind.GET_CLASS, "C")),
        )
        manager.define("leaf", [EventKind.GET_CLASS], lambda e: True,
                       lambda e, m: seen.append(e.depth))
        fire(bus)
        assert seen == [1]

    def test_cascade_depth_limit(self, bus):
        manager = RuleManager(bus, max_cascade_depth=3)
        manager.define(
            "looper", [EventKind.GET_SCHEMA], lambda e: True,
            lambda e, m: m.raise_event(e.derived(EventKind.GET_SCHEMA, "s")),
        )
        with pytest.raises(CascadeLimitError):
            fire(bus)

    def test_detach_stops_reactions(self, bus, manager):
        hits = []
        manager.define("r", [EventKind.GET_SCHEMA], lambda e: True,
                       lambda e, m: hits.append(1))
        manager.detach()
        fire(bus)
        assert hits == []


class TestTrace:
    def test_firings_recorded(self, bus, manager):
        manager.define("r", [EventKind.GET_SCHEMA], lambda e: True,
                       lambda e, m: "result")
        event = fire(bus)
        firings = manager.firings_for(event.event_id)
        assert len(firings) == 1
        assert firings[0].result == "result"
        assert firings[0].error is None
        assert "r on get_schema(s)" in manager.explain_last()

    def test_action_error_recorded_and_reraised(self, bus, manager):
        manager.define("boom", [EventKind.GET_SCHEMA], lambda e: True,
                       lambda e, m: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            fire(bus)
        assert "error" in manager.trace[-1].describe()

    def test_trace_bounded(self, bus):
        manager = RuleManager(bus, trace_limit=5)
        manager.define("r", [EventKind.GET_SCHEMA], lambda e: True,
                       lambda e, m: None)
        for __ in range(20):
            fire(bus)
        assert len(manager.trace) == 5

    def test_explain_empty(self, manager):
        assert "no rule" in manager.explain_last()
