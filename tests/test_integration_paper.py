"""Integration tests reproducing the paper's §4 walkthrough end to end.

These are the executable versions of paper Figures 4–7: the default
interface, the Figure 6 customization program, the generated R1/R2 rules,
and the customized windows — asserted structurally, not by screenshot.
"""

import pytest

from repro.core import Context, GISSession
from repro.lang import FIGURE_6_PROGRAM, render_rules
from repro.ui import (
    class_window_areas,
    displayed_attribute_names,
    instance_attribute_panels,
    map_symbols,
    summarize_window,
)
from repro.workloads import build_phone_net_database


@pytest.fixture()
def db():
    return build_phone_net_database()


@pytest.fixture()
def pole(db):
    return db.extent("phone_net", "Pole").oids()[0]


class TestFigure4DefaultWindows:
    """Paper Figure 4: the three default windows."""

    def test_default_browsing_loop(self, db, pole):
        session = GISSession(db, user="maria", application="browser")
        # step 1: schema window with the class list
        session.connect("phone_net")
        schema_window = session.screen.window("schema_phone_net")
        assert schema_window.visible
        keys = [k for k, __ in schema_window.find("classes").items]
        assert keys == ["Supplier", "District", "Street", "NetworkElement",
                        "Pole", "Duct", "Cable"]
        # step 2: class window with control + presentation areas
        session.select_class("Pole")
        class_window = session.screen.window("classset_Pole")
        control, presentation = class_window_areas(class_window)
        assert control.find("class_schema") is not None   # "class schema"
        assert presentation.find("map") is not None       # "generic map"
        assert map_symbols(class_window) == {"*"}          # default format
        assert class_window.find("class_widget_Pole").widget_type == "button"
        # step 3: instance window, one panel per attribute
        session.select_instance(pole)
        instance_window = session.screen.window(f"instance_{pole}")
        assert displayed_attribute_names(instance_window) == [
            "install_year", "status",                      # inherited
            "pole_type", "pole_composition", "pole_supplier",
            "pole_location", "pole_picture", "pole_historic",
        ]

    def test_renderable(self, db, pole):
        session = GISSession(db, user="maria", application="browser")
        session.connect("phone_net")
        session.select_class("Pole")
        session.select_instance(pole)
        out = session.render()
        assert "Schema: phone_net" in out
        assert "Class set: Pole" in out
        assert f"Instance: {pole}" in out


class TestFigure6Compilation:
    """Paper Figure 6 compiles to the §4 rules R1 and R2."""

    def test_generated_rules(self, db):
        session = GISSession(db, user="juliano", application="pole_manager")
        directives = session.install_program(FIGURE_6_PROGRAM, persist=False)
        assert len(directives) == 1
        rules = render_rules(directives[0])
        # R1 (§4): On Get_Schema If <juliano, pole_manager>
        #          Then Build Window(Schema, phone_net, NULL); Get_Class(Pole)
        assert "On Get_Schema" in rules[0]
        assert "Build Window(Schema, phone_net, NULL)" in rules[0]
        assert "Get_Class(Pole)" in rules[0]
        # R2 (§4): Build Window(Class set, Pole, Pole_Widget, pointFormat)
        assert "Build Window(Class set, Pole, poleWidget, pointFormat)" in rules[1]

    def test_five_rules_total(self, db):
        session = GISSession(db, user="juliano", application="pole_manager")
        session.install_program(FIGURE_6_PROGRAM, persist=False)
        assert len(session.engine.manager.rules()) == 5


class TestFigure7CustomizedWindows:
    """Paper Figure 7: the customized Class-set and Instance windows."""

    @pytest.fixture()
    def juliano(self, db):
        session = GISSession(db, user="juliano", application="pole_manager")
        session.install_program(FIGURE_6_PROGRAM, persist=False)
        return session

    def test_schema_window_built_but_hidden(self, juliano):
        juliano.connect("phone_net")
        window = juliano.screen.window("schema_phone_net")
        assert not window.visible            # NULL parameter hides it
        assert window.find("classes") is not None  # but hierarchy exists

    def test_class_window_opened_by_cascade(self, juliano):
        juliano.connect("phone_net")
        assert "classset_Pole" in juliano.screen.names()

    def test_class_window_pole_widget_and_point_format(self, juliano):
        juliano.connect("phone_net")
        window = juliano.screen.window("classset_Pole")
        widget = window.find("class_widget_Pole")
        assert widget.widget_type == "slider"        # poleWidget is a slider
        assert widget.maximum == 30.0
        assert map_symbols(window) == {"o"}          # pointFormat
        assert window.get_property("presentation_format") == "pointFormat"

    def test_instance_window_customizations(self, juliano, db, pole):
        juliano.connect("phone_net")
        juliano.select_instance(pole)
        window = juliano.screen.window(f"instance_{pole}")
        shown = displayed_attribute_names(window)
        # (12): pole_location hidden
        assert "pole_location" not in shown
        # omitted attributes keep the default presentation (§4)
        assert {"pole_type", "pole_picture", "pole_historic"} <= set(shown)
        # (7)-(9): composed_text over the three tuple fields, notified
        panels = instance_attribute_panels(window)
        composed = panels["pole_composition"].children[0]
        composition = db.get_object(pole).get("pole_composition")
        assert composed.get_property("library_type") == "composed_text"
        assert str(composition["pole_material"]) in composed.summary
        assert str(composition["pole_height"]) in composed.summary
        # (10)-(11): supplier shown through get_supplier_name
        supplier_text = panels["pole_supplier"].children[0]
        supplier = db.get_object(db.get_object(pole).get("pole_supplier"))
        assert supplier_text.value == supplier.get("name")

    def test_default_vs_customized_diff(self, db, pole):
        """The exact delta between Figure 4 and Figure 7 windows."""
        generic = GISSession(db, user="maria", application="browser")
        generic.connect("phone_net")
        generic.select_class("Pole")
        custom = GISSession(db, user="juliano", application="pole_manager")
        custom.install_program(FIGURE_6_PROGRAM, persist=False)
        custom.connect("phone_net")

        g = summarize_window(generic.screen.window("classset_Pole"))
        c = summarize_window(custom.screen.window("classset_Pole"))
        assert g.presentation_format == "defaultFormat"
        assert c.presentation_format == "pointFormat"
        assert g.widget_types["button"] == c.widget_types.get("button", 0) + 1
        assert c.widget_types["slider"] == 1
        assert g.feature_count == c.feature_count   # same data, new look

    def test_same_database_other_user_unaffected(self, db, juliano, pole):
        """§3.5 transparency: customization never leaks across contexts."""
        juliano.connect("phone_net")
        other = GISSession(db, user="maria", application="browser",
                           engine=juliano.engine)
        other.connect("phone_net")
        assert other.screen.window("schema_phone_net").visible
        other.select_class("Pole")
        window = other.screen.window("classset_Pole")
        assert window.find("class_widget_Pole").widget_type == "button"
        assert map_symbols(window) == {"*"}


class TestExplanationMode:
    def test_customized_window_explains_its_rules(self, db, pole):
        session = GISSession(db, user="juliano", application="pole_manager")
        session.install_program(FIGURE_6_PROGRAM, persist=False)
        session.connect("phone_net")
        session.select_instance(pole)
        text = session.explain_window(f"instance_{pole}")
        assert "pole_composition" in text
        assert "On Get_Value" in text


class TestContextSwitchSameUser:
    def test_same_user_different_application(self, db):
        """§2.2: different answers to the same query by context."""
        session_pm = GISSession(db, user="juliano",
                                application="pole_manager")
        session_pm.install_program(FIGURE_6_PROGRAM, persist=False)
        session_other = GISSession(db, user="juliano",
                                   application="inventory",
                                   engine=session_pm.engine)
        session_pm.connect("phone_net")
        session_other.connect("phone_net")
        assert not session_pm.screen.window("schema_phone_net").visible
        assert session_other.screen.window("schema_phone_net").visible
