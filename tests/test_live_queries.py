"""Delta-maintained live queries: correctness against full re-execution.

The tentpole contract of the live subsystem: a watched query's
maintained result is *always* byte-identical to a fresh engine
execution, yet a ``live_update`` is delivered only when the result's
content actually changed. These tests check the contract three ways:

* unit cases per result shape (plain, ordered, ordered+limit,
  projection, aggregates) hitting every delta branch and every
  declared fallback;
* a randomized, seeded churn mix over *all* shapes at once — after
  every single commit the maintained result must match a fresh
  execution, and the presence of an update must match an actual
  content change (the per-session delivery oracle);
* the same churn with a scatter-sharded extent and replica-routed
  reads underneath, and over the wire with two clients whose pushes
  must route only to the connection whose watch changed.
"""

from __future__ import annotations

import random

import pytest

from repro.core.kernel import GISKernel
from repro.geodb import GeographicDatabase, LocalReplicationSource, QueryEngine
from repro.geodb.query_language import parse_query
from repro.spatial import Point
from repro.workloads.txn_mix import MIX_CLASS, MIX_SCHEMA, build_mix_schema

WORLD = 1000


@pytest.fixture()
def db():
    database = GeographicDatabase("livetest")
    database.register_schema(build_mix_schema())
    with database.transaction() as txn:
        for i in range(40):
            txn.insert(MIX_SCHEMA, MIX_CLASS, {
                "name": f"seed{i:02d}",
                "size": (i * 7) % 53,
                "location": Point((i * 13) % WORLD, (i * 29) % WORLD)
                            if i % 5 else None,
            }, oid=f"Feature#seed{i:02d}")
    return database


@pytest.fixture()
def kernel(db):
    with GISKernel(db) as k:
        yield k


def fresh(db, text):
    return QueryEngine(db).execute(MIX_SCHEMA, parse_query(text))


def content(result):
    """A comparison key capturing everything a session can observe."""
    if result.rows is not None:
        return [dict(row) for row in result.rows]
    return [(obj.oid, dict(obj.values())) for obj in result.objects]


def assert_matches_fresh(db, watch, text):
    expected = fresh(db, text)
    got = watch.result()
    assert got.oids() == expected.oids() or (
        # unordered results may differ in plan-dependent order
        "order by" not in text
        and sorted(got.oids()) == sorted(expected.oids())
    ), f"oids diverged for {text!r}"
    if expected.rows is not None:
        if "order by" in text or "count(" in text:
            assert got.rows == expected.rows
        else:
            assert sorted(got.rows, key=lambda r: r["oid"]) == \
                sorted(expected.rows, key=lambda r: r["oid"])


class TestDeltaShapes:
    """Each result shape stays exact through its delta branches."""

    def test_plain_insert_update_delete(self, db, kernel):
        session = kernel.session(user="u")
        text = "select * from Feature where size >= 20"
        watch = session.watch(MIX_SCHEMA, text)
        with kernel.transaction(session) as txn:
            txn.insert(MIX_SCHEMA, MIX_CLASS, {"name": "in", "size": 30},
                       oid="Feature#in")
        assert_matches_fresh(db, watch, text)
        assert "Feature#in" in watch.result().oids()
        with kernel.transaction(session) as txn:
            txn.update("Feature#in", {"size": 5})      # leaves the set
        assert_matches_fresh(db, watch, text)
        assert "Feature#in" not in watch.result().oids()
        with kernel.transaction(session) as txn:
            txn.update("Feature#in", {"size": 40})     # re-enters
            txn.delete("Feature#seed05")
        assert_matches_fresh(db, watch, text)
        assert kernel.live.stats()["fallback_reexec"] == 0

    def test_ordered_repositioning(self, db, kernel):
        session = kernel.session(user="u")
        text = "select name, size from Feature order by desc size"
        watch = session.watch(MIX_SCHEMA, text)
        first = watch.result().objects[0].oid
        with kernel.transaction(session) as txn:
            txn.update(first, {"size": -1})            # sinks to the bottom
            txn.insert(MIX_SCHEMA, MIX_CLASS,
                       {"name": "top", "size": 999}, oid="Feature#top")
        assert_matches_fresh(db, watch, text)
        assert watch.result().objects[0].oid == "Feature#top"
        assert watch.result().objects[-1].oid == first
        assert kernel.live.stats()["fallback_reexec"] == 0

    def test_ordered_limit_top_k(self, db, kernel):
        session = kernel.session(user="u")
        text = "select name, size from Feature order by desc size limit 5"
        watch = session.watch(MIX_SCHEMA, text)
        # an insert beyond the horizon is provably invisible: no
        # fallback, no push
        with kernel.transaction(session) as txn:
            txn.insert(MIX_SCHEMA, MIX_CLASS,
                       {"name": "deep", "size": -100}, oid="Feature#deep")
        assert kernel.live.stats()["fallback_reexec"] == 0
        assert watch.pop_updates() == []
        assert_matches_fresh(db, watch, text)
        # an insert into the top-k is a pure delta too
        with kernel.transaction(session) as txn:
            txn.insert(MIX_SCHEMA, MIX_CLASS,
                       {"name": "peak", "size": 999}, oid="Feature#peak")
        assert kernel.live.stats()["fallback_reexec"] == 0
        assert len(watch.pop_updates()) == 1
        assert_matches_fresh(db, watch, text)
        # losing a member under the horizon needs the unseen tail:
        # falls back, still exact
        with kernel.transaction(session) as txn:
            txn.delete("Feature#peak")
        assert kernel.live.stats()["fallback_reexec"] == 1
        assert_matches_fresh(db, watch, text)

    def test_projection_rows_stay_minimal(self, db, kernel):
        session = kernel.session(user="u")
        text = "select name from Feature where size >= 20"
        watch = session.watch(MIX_SCHEMA, text)
        member = watch.result().objects[0].oid
        # a change to an unprojected, unfiltered attribute is silent
        with kernel.transaction(session) as txn:
            txn.update(member, {"location": Point(1, 2)})
        assert watch.pop_updates() == []
        assert_matches_fresh(db, watch, text)
        # a change to the projected attribute pushes the new row
        with kernel.transaction(session) as txn:
            txn.update(member, {"name": "renamed"})
        updates = watch.pop_updates()
        assert len(updates) == 1 and updates[0].reason == "delta"
        assert_matches_fresh(db, watch, text)

    def test_aggregates_recombine_exactly(self, db, kernel):
        session = kernel.session(user="u")
        text = ("select count(*), count(size), sum(size), min(size), "
                "max(size), avg(size) from Feature where size >= 10")
        watch = session.watch(MIX_SCHEMA, text)
        with kernel.transaction(session) as txn:
            txn.insert(MIX_SCHEMA, MIX_CLASS, {"name": "a", "size": 11},
                       oid="Feature#a")
            txn.insert(MIX_SCHEMA, MIX_CLASS, {"name": "b", "size": None},
                       oid="Feature#b")
        assert_matches_fresh(db, watch, text)
        with kernel.transaction(session) as txn:
            txn.update("Feature#a", {"size": 50})
            txn.delete("Feature#seed07")
        assert_matches_fresh(db, watch, text)
        # a member edit not touching the aggregated attribute is silent
        watch.pop_updates()
        with kernel.transaction(session) as txn:
            txn.update("Feature#a", {"name": "a2"})
        assert watch.pop_updates() == []
        assert_matches_fresh(db, watch, text)
        assert kernel.live.stats()["fallback_reexec"] == 0


class TestTargetedDelivery:
    def test_irrelevant_commits_are_silent_but_keep_cache_fresh(
            self, db, kernel):
        session = kernel.session(user="u")
        text = "select name, size from Feature where size >= 9000"
        watch = session.watch(MIX_SCHEMA, text)
        with kernel.transaction(session) as txn:
            txn.insert(MIX_SCHEMA, MIX_CLASS, {"name": "x", "size": 1})
        assert watch.pop_updates() == []
        # the maintained entry advanced its versions anyway: the next
        # plain kernel.query is a hit, not an invalidation
        result = kernel.query(MIX_SCHEMA, text)
        assert result.report["cache"] == "hit"
        assert result.rows == []

    def test_updates_go_only_to_changed_watches(self, db, kernel):
        s1 = kernel.session(user="a")
        s2 = kernel.session(user="b")
        low = s1.watch(MIX_SCHEMA,
                       "select name from Feature where size <= 5")
        high = s2.watch(MIX_SCHEMA,
                        "select name from Feature where size >= 9000")
        with kernel.transaction(s1) as txn:
            txn.insert(MIX_SCHEMA, MIX_CLASS, {"name": "tiny", "size": 1})
        assert len(low.pop_updates()) == 1
        assert high.pop_updates() == []
        deliveries = []
        kernel.live.add_listener(lambda u: deliveries.append(u.session_id))
        with kernel.transaction(s2) as txn:
            txn.insert(MIX_SCHEMA, MIX_CLASS, {"name": "tiny2", "size": 2})
        assert deliveries == [s1.session_id]

    def test_shared_state_single_maintenance(self, db, kernel):
        """A registration storm on one query costs one maintained state."""
        sessions = [kernel.session(user=f"u{i}") for i in range(5)]
        watches = [s.watch(MIX_SCHEMA, "select count(*) from Feature")
                   for s in sessions]
        assert kernel.live.stats()["queries"] == 1
        assert kernel.live.stats()["watches"] == 5
        with kernel.transaction(sessions[0]) as txn:
            txn.insert(MIX_SCHEMA, MIX_CLASS, {"name": "n", "size": 0})
        assert all(len(w.pop_updates()) == 1 for w in watches)
        # one delta application served all five watches
        assert kernel.live.stats()["delta_applied"] == 1

    def test_session_shutdown_releases_watches(self, db, kernel):
        session = kernel.session(user="u")
        session.watch(MIX_SCHEMA, "select * from Feature")
        assert kernel.live.stats()["watches"] == 1
        session.shutdown()
        assert kernel.live.stats()["watches"] == 0
        assert kernel.live.stats()["queries"] == 0
        # the manager detached from the database listener hook
        assert not db._write_set_listeners


WATCHED = [
    "select * from Feature where size >= 25",
    "select name, size from Feature where size >= 10 and size <= 40",
    "select name, size from Feature order by size",
    "select name, size from Feature order by desc size limit 7",
    "select count(*), sum(size), min(size) from Feature where size >= 15",
    ("select count(*), sum(size) from Feature where "
     "within(location, bbox(0, 0, 500, 500))"),
]


def run_churn(db, kernel, session, watches, rng, commits, prefix="n"):
    """Seeded commit mix; after every commit every watch must match a
    fresh execution, and an update must mean a content change."""
    oids = list(db.extent(MIX_SCHEMA, MIX_CLASS).oids())
    snapshots = {w.watch_id: content(w.result()) for w, _ in watches}
    serial = 0
    for _ in range(commits):
        with kernel.transaction(session) as txn:
            for _ in range(rng.randint(1, 3)):
                action = rng.random()
                if action < 0.45 or len(oids) < 10:
                    serial += 1
                    oid = f"Feature#{prefix}{serial:04d}"
                    txn.insert(MIX_SCHEMA, MIX_CLASS, {
                        "name": f"{prefix}{serial:04d}",
                        "size": rng.randint(0, 60),
                        "location": Point(rng.randint(0, WORLD),
                                          rng.randint(0, WORLD))
                                    if rng.random() < 0.8 else None,
                    }, oid=oid)
                    oids.append(oid)
                elif action < 0.85:
                    oid = rng.choice(oids)
                    changes = {"size": rng.randint(0, 60)}
                    if rng.random() < 0.3:
                        changes["location"] = Point(rng.randint(0, WORLD),
                                                    rng.randint(0, WORLD))
                    txn.update(oid, changes)
                else:
                    oid = rng.choice(oids)
                    oids.remove(oid)
                    txn.delete(oid)
        for watch, text in watches:
            assert_matches_fresh(db, watch, text)
            now = content(watch.result())
            pushed = len(watch.pop_updates()) > 0
            changed = now != snapshots[watch.watch_id]
            assert pushed == changed, (
                f"{text!r}: pushed={pushed} but changed={changed}")
            snapshots[watch.watch_id] = now


class TestRandomizedChurn:
    def test_delta_equals_reexec_over_commit_mix(self, db, kernel):
        session = kernel.session(user="u")
        watches = [(session.watch(MIX_SCHEMA, text), text)
                   for text in WATCHED]
        run_churn(db, kernel, session, watches, random.Random(1234),
                  commits=80)
        stats = kernel.live.stats()
        # the mix must actually exercise both paths
        assert stats["delta_applied"] > stats["fallback_reexec"] > 0

    def test_churn_over_sharded_extent_with_replica_reads(self, db):
        """Scatter-sharded execution underneath changes nothing: shard
        layout affects how a fallback executes, never what the
        maintained result contains. Replica-routed reads of the same
        queries agree with the maintained results."""
        from repro.geodb import MemoryPager, WriteAheadLog

        db.attach_wal(WriteAheadLog(MemoryPager(), sync_mode="none"))
        db.shard_extent(MIX_SCHEMA, MIX_CLASS, "location", grid=(2, 2))
        with GISKernel(db) as kernel:
            follower = GeographicDatabase.follow(
                LocalReplicationSource(db), name="r0")
            kernel.attach_replica(follower)
            session = kernel.session(user="u")
            watches = [(session.watch(MIX_SCHEMA, text), text)
                       for text in WATCHED]
            run_churn(db, kernel, session, watches, random.Random(99),
                      commits=40)
            # reshard mid-stream: content is unaffected
            db.shard_extent(MIX_SCHEMA, MIX_CLASS, "location", grid=(4, 2))
            run_churn(db, kernel, session, watches, random.Random(7),
                      commits=20, prefix="m")
            for watch, text in watches:
                routed = session.query(MIX_SCHEMA, text,
                                       read_preference="replica")
                assert sorted(routed.oids()) == \
                    sorted(watch.result().oids()), text
                if routed.rows is not None and "count(" in text:
                    assert routed.rows == watch.result().rows


class TestOverTheWire:
    def test_pushes_route_only_to_changed_watches(self, db, kernel):
        """Two connections, disjoint predicates: commits matching only
        A's watch must push only to A's connection — B hears nothing,
        and A's pushed rows equal a fresh execution."""
        from repro.net.client import GISClient
        from repro.net.server import ServerThread

        text_a = "select name, size from Feature where size >= 30"
        text_b = "select name, size from Feature where size >= 9000"
        with ServerThread(kernel) as (host, port):
            with GISClient(host, port) as a, GISClient(host, port) as b, \
                    GISClient(host, port) as writer:
                a.open_session(user="a")
                b.open_session(user="b")
                snap_a = a.watch(MIX_SCHEMA, text_a)
                snap_b = b.watch(MIX_SCHEMA, text_b)
                assert snap_a["count"] > 0 and snap_b["count"] == 0

                writer.insert(MIX_SCHEMA, MIX_CLASS,
                              {"name": "hit", "size": 77})
                writer.insert(MIX_SCHEMA, MIX_CLASS,
                              {"name": "miss", "size": 1})
                pushes_a = a.poll_pushes(timeout=1.0)
                pushes_b = b.poll_pushes(timeout=0.5)

                assert [p["push"] for p in pushes_a] == ["live_update"]
                assert pushes_a[0]["watch"] == snap_a["watch"]
                assert pushes_a[0]["reason"] == "delta"
                expected = fresh(db, text_a)
                assert sorted(pushes_a[0]["oids"]) == \
                    sorted(expected.oids())
                assert sorted(r["name"] for r in pushes_a[0]["rows"]) == \
                    sorted(r["name"] for r in expected.rows)
                assert pushes_b == []

                # released watches stop pushing
                assert a.unwatch(snap_a["watch"]) is True
                writer.insert(MIX_SCHEMA, MIX_CLASS,
                              {"name": "hit2", "size": 88})
                assert a.poll_pushes(timeout=0.5) == []

    def test_watch_dies_with_its_connection(self, db, kernel):
        from repro.net.client import GISClient
        from repro.net.server import ServerThread
        import time

        with ServerThread(kernel) as (host, port):
            client = GISClient(host, port)
            client.open_session(user="a")
            client.watch(MIX_SCHEMA, "select * from Feature")
            assert kernel.live.stats()["watches"] == 1
            client.close()
            deadline = time.monotonic() + 5
            while kernel.live.stats()["watches"] and \
                    time.monotonic() < deadline:
                time.sleep(0.02)
            assert kernel.live.stats()["watches"] == 0
