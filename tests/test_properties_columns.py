"""Property-based tests for the columnar scan path.

Random databases and random queries prove the invariant the columnar
subsystem rests on: **the column kernels and the row path are the same
function**. For every generated (data, query) pair the two engines must
agree on membership, order, projected rows and aggregates — and a
commit after the columns are warm must never leave a stale answer
behind (the version stamp, not luck, keeps them equal).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geodb import GeographicDatabase, MemoryPager, QueryEngine
from repro.geodb.query_language import parse_query
from repro.spatial import Point
from repro.workloads import build_mix_schema
from repro.workloads.txn_mix import MIX_CLASS, MIX_SCHEMA

#: (name suffix, size, has-location) rows; names collide on purpose so
#: equality and ``like`` predicates select multi-row groups.
rows_strategy = st.lists(
    st.tuples(st.sampled_from(["ash", "beech", "cedar", "ash/2"]),
              st.one_of(st.none(), st.integers(min_value=-50, max_value=50)),
              st.booleans()),
    min_size=0, max_size=30)

OPS = ["=", "!=", "<", "<=", ">", ">="]


def make_db(rows) -> GeographicDatabase:
    db = GeographicDatabase("props", pager=MemoryPager())
    db.register_schema(build_mix_schema())
    if rows:
        with db.transaction() as txn:
            for i, (name, size, located) in enumerate(rows):
                txn.insert(MIX_SCHEMA, MIX_CLASS, {
                    "name": name,
                    "size": size,
                    "location": Point(float(i % 7), float(i % 5))
                                if located else None,
                })
    return db


@st.composite
def where_clauses(draw):
    terms = []
    for __ in range(draw(st.integers(min_value=1, max_value=3))):
        if draw(st.booleans()):
            op = draw(st.sampled_from(OPS))
            value = draw(st.integers(min_value=-50, max_value=50))
            terms.append(f"size {op} {value}")
        else:
            name = draw(st.sampled_from(["ash", "beech", "a%"]))
            op = "like" if "%" in name else draw(st.sampled_from(["=", "!="]))
            terms.append(f"name {op} '{name}'")
    joiner = draw(st.sampled_from([" and ", " or "]))
    clause = joiner.join(terms)
    if draw(st.booleans()):
        clause = f"not ({clause})"
    return clause


@st.composite
def queries(draw):
    select = draw(st.sampled_from([
        "*",
        "oid, name, size",
        "count(*), min(size), max(size), avg(size)",
    ]))
    text = f"select {select} from {MIX_CLASS}"
    if draw(st.booleans()):
        text += f" where {draw(where_clauses())}"
    if select != "count(*), min(size), max(size), avg(size)":
        if draw(st.booleans()):
            direction = draw(st.sampled_from(["", "desc "]))
            text += f" order by {direction}size"
            if draw(st.booleans()):
                text += f" limit {draw(st.integers(1, 10))}"
    return text


def answers(db, text):
    """(column answer, row answer) for one query, byte-comparable."""
    out = []
    for engine in (QueryEngine(db), QueryEngine(db, use_columns=False)):
        result = engine.execute(MIX_SCHEMA, parse_query(text))
        out.append((result.oids(), result.rows,
                    result.report["candidates"]))
    return out


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy, text=queries())
def test_columns_equal_rows(rows, text):
    db = make_db(rows)
    column_answer, row_answer = answers(db, text)
    assert column_answer == row_answer


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy, text=queries())
def test_unordered_membership_is_extent_order(rows, text):
    """Unordered columnar results keep extent order, like the row path."""
    db = make_db(rows)
    engine = QueryEngine(db)
    result = engine.execute(MIX_SCHEMA, parse_query(text))
    extent_order = {oid: i for i, oid in
                    enumerate(db.extent(MIX_SCHEMA, MIX_CLASS).oids())}
    if "order by" not in text and result.rows is None:
        positions = [extent_order[oid] for oid in result.oids()]
        assert positions == sorted(positions)


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy,
       text=queries(),
       new_size=st.integers(min_value=-50, max_value=50),
       deletes=st.booleans())
def test_commit_invalidation_never_stale(rows, text, new_size, deletes):
    """Warm columns + a commit = fresh answers, never the old snapshot."""
    db = make_db(rows)
    engine = QueryEngine(db)
    engine.execute(MIX_SCHEMA, parse_query(text))      # warm the cache
    oids = db.extent(MIX_SCHEMA, MIX_CLASS).oids()
    with db.transaction() as txn:
        if oids and deletes:
            txn.delete(oids[0])
        if len(oids) > 1:
            txn.update(oids[1], {"size": new_size})
        txn.insert(MIX_SCHEMA, MIX_CLASS, {"name": "fresh",
                                           "size": new_size})
    column_answer, row_answer = answers(db, text)
    assert column_answer == row_answer
    # And the fresh insert is actually visible through the columns.
    visible = QueryEngine(db).execute(
        MIX_SCHEMA, parse_query("select * from Feature where name = 'fresh'"))
    assert len(visible.objects) == 1
