"""Property-based fuzzing of whole sessions.

Invariants checked across random interaction sequences, with and without
customization directives installed:

* the session never corrupts the screen (every open window renders and
  describes);
* the dispatcher interaction count matches the successful steps;
* customization never leaks across contexts: a parallel generic session
  on the same database keeps its default presentation throughout.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GISKernel
from repro.lang import FIGURE_6_PROGRAM
from repro.ui import random_browse_script, summarize_window
from repro.workloads import PhoneNetParams, build_phone_net_database


@pytest.fixture(scope="module")
def fuzz_db():
    return build_phone_net_database(
        PhoneNetParams(blocks_x=2, blocks_y=2, poles_per_street=2,
                       duct_count=2, seed=99))


class TestSessionFuzz:
    @given(seed=st.integers(min_value=0, max_value=10_000),
           steps=st.integers(min_value=1, max_value=12))
    @settings(max_examples=25, deadline=None)
    def test_random_browse_keeps_invariants(self, fuzz_db, seed, steps):
        with GISKernel(fuzz_db) as kernel:
            session = kernel.session(user=f"fuzz_{seed}", application="b")
            script = random_browse_script(fuzz_db, "phone_net", steps,
                                          seed=seed)
            results = script.run(session)
            assert all(r.ok for r in results)
            assert session.dispatcher.interactions >= len(results)
            # every open window is coherent: renders, describes, summarizes
            for window in session.screen.windows():
                assert window.describe()["type"] == "window"
                summary = summarize_window(window)
                assert summary.widget_count >= 1
                text = session.renderer.render(window)
                assert isinstance(text, str) and text

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_customization_never_leaks_across_contexts(self, fuzz_db, seed):
        kernel = GISKernel(fuzz_db)
        kernel.install_program(FIGURE_6_PROGRAM, persist=False)
        try:
            juliano = kernel.session(user="juliano",
                                     application="pole_manager")
            bystander = kernel.session(user=f"bystander_{seed}",
                                       application="pole_manager")
            script = random_browse_script(fuzz_db, "phone_net", 6, seed=seed)
            results = script.run(bystander)
            assert all(r.ok for r in results)
            # the bystander's Pole window (if opened) stays default
            if "classset_Pole" in bystander.screen.names():
                window = bystander.screen.window("classset_Pole")
                assert window.find("class_widget_Pole").widget_type == \
                    "button"
                assert window.get_property("presentation_format") == \
                    "defaultFormat"
            # and juliano still gets the customized one
            juliano.connect("phone_net")
            assert not juliano.screen.window("schema_phone_net").visible
        finally:
            kernel.shutdown()

    @given(seed=st.integers(min_value=0, max_value=1_000))
    @settings(max_examples=10, deadline=None)
    def test_interleaved_sessions_are_isolated(self, fuzz_db, seed):
        """Two sessions interleave arbitrarily; screens stay separate."""
        with GISKernel(fuzz_db) as kernel:
            a = kernel.session(user=f"a{seed}", application="x")
            b = kernel.session(user=f"b{seed}", application="y")
            assert a.session_id != b.session_id
            script_a = random_browse_script(fuzz_db, "phone_net", 4,
                                            seed=seed)
            script_b = random_browse_script(fuzz_db, "phone_net", 4,
                                            seed=seed + 1)
            for step_a, step_b in zip(script_a.steps, script_b.steps):
                script_one = type(script_a)(steps=[step_a])
                script_two = type(script_b)(steps=[step_b])
                assert all(r.ok for r in script_one.run(a))
                assert all(r.ok for r in script_two.run(b))
            for window in a.screen.windows():
                assert window.get_property("context") is a.context
            for window in b.screen.windows():
                assert window.get_property("context") is b.context
