"""Unit tests for presentation formats and the renderers."""

import pytest

from repro.errors import CustomizationError, RenderError
from repro.geodb import Attribute, GeoClass, GeoObject, GeometryType, Schema, TEXT, FLOAT
from repro.spatial import LineString, MapScale, Point
from repro.uilib import (
    AttributeFormat,
    Button,
    ClassFormat,
    DrawingArea,
    InterfaceObjectLibrary,
    ListWidget,
    Menu,
    Panel,
    PresentationRegistry,
    Slider,
    Text,
    TextRenderer,
    Window,
    install_standard_composites,
    render_text,
    scene_graph,
)


@pytest.fixture()
def registry():
    return PresentationRegistry()


@pytest.fixture()
def library():
    lib = InterfaceObjectLibrary()
    install_standard_composites(lib, persist=False)
    return lib


def make_objects():
    schema = Schema("s")
    schema.add_class(GeoClass("Thing", [
        Attribute("name", TEXT),
        Attribute("length", FLOAT),
        Attribute("geom", GeometryType()),
    ]))
    objs = [
        GeoObject.create(schema, "Thing",
                         {"name": f"t{i}", "geom": Point(i * 10.0, 5.0)})
        for i in range(4)
    ]
    long_line = GeoObject.create(schema, "Thing", {
        "name": "line",
        "geom": LineString([(0.0, 0.0), (0.5, 0.2), (1000.0, 0.0)]),
    })
    return schema, objs, long_line


class TestClassFormats:
    def test_builtins_registered(self, registry):
        assert set(registry.class_format_names()) >= {
            "defaultFormat", "pointFormat", "lineFormat", "polygonFormat"}

    def test_point_format_places_symbols(self, registry):
        __, objs, __line = make_objects()
        area = DrawingArea("map", width=30, height=10)
        fmt = registry.class_format("pointFormat")
        assert fmt.place(area, objs, "geom") == 4
        assert {s for __, __g, s in area.features} == {"o"}

    def test_generalized_format_simplifies(self, registry):
        __, __, line_obj = make_objects()
        area = DrawingArea("map", width=30, height=10)
        fmt = registry.class_format("lineFormat")
        fmt.place(area, [line_obj], "geom", scale=MapScale(50_000))
        __, geom, __s = area.features[0]
        assert len(geom.coords) == 2   # interior vertex generalized away

    def test_objects_without_geometry_skipped(self, registry):
        schema, __, __line = make_objects()
        bare = GeoObject.create(schema, "Thing", {"name": "no geom"})
        area = DrawingArea("map")
        assert registry.class_format("pointFormat").place(
            area, [bare], "geom") == 0

    def test_unknown_and_duplicate(self, registry):
        with pytest.raises(CustomizationError):
            registry.class_format("mystery")
        with pytest.raises(CustomizationError):
            registry.register_class_format(ClassFormat("pointFormat"))


class TestAttributeFormats:
    def test_default_renders_every_value_shape(self, registry, library):
        fmt = registry.attribute_format("default")
        cases = [
            ("txt", "hello", "hello"),
            ("num", 4.5, "4.5"),
            ("blob", b"abc", "[bitmap, 3 bytes]"),
            ("tup", {"a": 1, "b": 2}, "a=1; b=2"),
            ("geom", Point(1, 2), "POINT (1 2)"),
            ("unset", None, "(unset)"),
        ]
        for name, value, expected in cases:
            widget = fmt.build(library, name, value)
            assert isinstance(widget, Text)
            assert widget.value == expected

    def test_null_hides(self, registry, library):
        assert registry.attribute_format("null").build(
            library, "x", "anything") is None

    def test_slider_clamps(self, registry, library):
        fmt = registry.attribute_format("slider")
        widget = fmt.build(library, "h", 250.0, minimum=0.0, maximum=100.0)
        assert isinstance(widget, Slider)
        assert widget.value == 100.0
        widget2 = fmt.build(library, "h", "not numeric")
        assert widget2.value == 0.0

    def test_composed_text_infers_fields_from_dict(self, registry, library):
        fmt = registry.attribute_format("composed_text")
        widget = fmt.build(library, "comp", {"m": "wood", "d": 0.3})
        assert widget.summary == "wood / 0.3"

    def test_composed_text_without_fields_rejected(self, registry, library):
        with pytest.raises(CustomizationError):
            registry.attribute_format("composed_text").build(
                library, "comp", "scalar value")

    def test_image_placeholder(self, registry, library):
        widget = registry.attribute_format("image").build(
            library, "pic", b"\x00" * 10)
        assert "[image 10 bytes]" in widget.value

    def test_custom_format_registration(self, registry, library):
        registry.register_attribute_format(AttributeFormat(
            "shout", lambda lib, name, value, **o: Text(
                f"attr_{name}", label=name, value=str(value).upper())))
        widget = registry.attribute_format("shout").build(library, "x", "hi")
        assert widget.value == "HI"
        with pytest.raises(CustomizationError):
            registry.register_attribute_format(AttributeFormat(
                "shout", lambda *a, **k: None))


class TestTextRenderer:
    def make_window(self):
        window = Window("w", title="My window")
        control = Panel("control")
        window.add_child(control)
        menu = Menu("m", label="Ops")
        menu.add_item("go", "Go")
        control.add_child(menu)
        control.add_child(Text("t", label="Field", value="val"))
        control.add_child(Button("b", label="Press"))
        lst = ListWidget("l", items=[("a", "Item A"), ("b", "Item B")])
        lst.select("a")
        control.add_child(lst)
        return window

    def test_window_frame_and_content(self):
        out = render_text(self.make_window())
        lines = out.splitlines()
        assert "My window" in lines[0]
        assert lines[0].startswith("+=") and lines[-1].startswith("+=")
        assert any("Field: val" in line for line in lines)
        assert any("[ Press ]" in line for line in lines)
        assert any("> Item A" in line for line in lines)
        assert any("Ops v [Go]" in line for line in lines)
        # frame is rectangular
        assert len({len(line) for line in lines}) == 1

    def test_hidden_window(self):
        window = Window("w", title="secret", visible=False)
        assert "hidden" in render_text(window)

    def test_hidden_widget_skipped(self):
        window = self.make_window()
        window.find("b").set_property("visible", False)
        assert "[ Press ]" not in render_text(window)

    def test_horizontal_panel_one_line(self):
        panel = Panel("p", layout="horizontal")
        panel.add_child(Button("a", label="A"))
        panel.add_child(Button("b", label="B"))
        out = render_text(panel)
        assert "[ A ]   [ B ]" in out

    def test_slider_rendering(self):
        slider = Slider("s", minimum=0, maximum=10, value=5, label="H")
        out = render_text(slider)
        assert out.startswith("H: 0 [")
        assert "(5)" in out

    def test_drawing_area_rendering(self):
        area = DrawingArea("map", width=10, height=4)
        area.add_feature("p", Point(5, 5), "o")
        out = render_text(area)
        assert "o" in out
        assert "features: 1" in out

    def test_empty_list_placeholder(self):
        lst = ListWidget("l", label="Things")
        assert "(empty)" in render_text(lst)

    def test_renderer_width_validated(self):
        with pytest.raises(RenderError):
            TextRenderer(max_width=10)

    def test_unknown_widget_fallback(self):
        from repro.uilib.base import InterfaceObject

        class Custom(InterfaceObject):
            widget_type = "custom"
            allowed_children = ("button",)

        widget = Custom("c")
        widget.add_child(Button("b", label="In"))
        out = render_text(widget)
        assert "<custom c>" in out
        assert "[ In ]" in out


class TestSceneGraph:
    def test_scene_matches_describe(self):
        window = Window("w", title="T")
        assert scene_graph(window) == window.describe()
