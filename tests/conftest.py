"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import obs
from repro.core import GISSession
from repro.workloads import PhoneNetParams, build_phone_net_database


@pytest.fixture(autouse=True)
def _obs_isolation():
    """Keep the process-global observability recorder out of other tests.

    Any test may enable observability (the CLI demo does it implicitly);
    this guarantees the next test starts from the disabled default.
    """
    yield
    obs.disable()


@pytest.fixture()
def obs_recorder():
    """An enabled, fresh recorder for tests that assert on metrics/traces."""
    recorder = obs.enable(registry=obs.MetricsRegistry(),
                          tracer=obs.Tracer())
    yield recorder
    obs.disable()


@pytest.fixture()
def phone_db():
    """A small, freshly populated phone-net database."""
    return build_phone_net_database(PhoneNetParams(blocks_x=2, blocks_y=2,
                                                   poles_per_street=3,
                                                   duct_count=3, seed=11))


@pytest.fixture()
def pole_oid(phone_db):
    return phone_db.extent("phone_net", "Pole").oids()[0]


@pytest.fixture()
def generic_session(phone_db):
    return GISSession(phone_db, user="ana", application="browser")


@pytest.fixture()
def juliano_session(phone_db):
    return GISSession(phone_db, user="juliano", application="pole_manager")
