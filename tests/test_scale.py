"""Unit tests for map scale, viewport and generalization."""

import pytest

from repro.errors import GeometryError
from repro.spatial import (
    BBox,
    LineString,
    MapScale,
    MultiLineString,
    Point,
    Polygon,
    SCALE_BANDS,
    Viewport,
    extent_for_scale,
    generalize,
    scale_for_extent,
)


class TestMapScale:
    def test_ground_units(self):
        assert MapScale(10_000).ground_units_per_mm() == 10.0
        assert MapScale(1_000).ground_units_per_mm() == 1.0

    def test_smaller_scale_comparison(self):
        assert MapScale(50_000).is_smaller_than(MapScale(10_000))
        assert not MapScale(1_000).is_smaller_than(MapScale(10_000))

    def test_invalid_denominator(self):
        with pytest.raises(GeometryError):
            MapScale(0)

    def test_bands_ordered(self):
        assert SCALE_BANDS["detail"].denominator < SCALE_BANDS["city"].denominator

    def test_str(self):
        assert str(MapScale(10_000)) == "1:10000"


class TestViewport:
    def test_to_cell_corners(self):
        vp = Viewport(BBox(0, 0, 100, 100), width=10, height=10)
        assert vp.to_cell(0, 100) == (0, 0)          # top-left
        assert vp.to_cell(99.9, 0.1) == (9, 9)       # bottom-right
        assert vp.to_cell(150, 50) is None           # outside

    def test_row_zero_is_top(self):
        vp = Viewport(BBox(0, 0, 100, 100), width=10, height=10)
        __, top_row = vp.to_cell(50, 99)
        __, bottom_row = vp.to_cell(50, 1)
        assert top_row < bottom_row

    def test_cell_ground_size(self):
        vp = Viewport(BBox(0, 0, 100, 50), width=10, height=5)
        assert vp.cell_ground_size() == (10.0, 10.0)

    def test_zoom_in_shrinks_extent(self):
        vp = Viewport(BBox(0, 0, 100, 100), width=10, height=10)
        zoomed = vp.zoomed(2.0)
        assert zoomed.extent.width == pytest.approx(50.0)
        assert zoomed.extent.center() == vp.extent.center()

    def test_pan(self):
        vp = Viewport(BBox(0, 0, 100, 100), width=10, height=10)
        panned = vp.panned(0.5, 0.0)
        assert panned.extent.min_x == pytest.approx(50.0)

    def test_validation(self):
        with pytest.raises(GeometryError):
            Viewport(BBox.empty(), 10, 10)
        with pytest.raises(GeometryError):
            Viewport(BBox(0, 0, 10, 10), 0, 5)
        with pytest.raises(GeometryError):
            Viewport(BBox(0, 0, 10, 10), 10, 10).zoomed(0)


class TestGeneralize:
    def test_points_survive(self):
        assert generalize(Point(1, 2), MapScale(1_000_000)) == Point(1, 2)

    def test_short_line_drops(self):
        line = LineString([(0, 0), (1, 0)])      # 1 m long
        assert generalize(line, MapScale(10_000)) is None  # 10 m per mm

    def test_long_line_simplifies(self):
        coords = [(i * 10.0, 0.02 * (i % 2)) for i in range(100)]
        line = LineString(coords)
        out = generalize(line, MapScale(10_000))
        assert isinstance(out, LineString)
        assert len(out.coords) < len(line.coords)

    def test_tiny_polygon_collapses_to_centroid(self):
        poly = Polygon.from_bbox(BBox(0, 0, 2, 2))   # 4 m2
        out = generalize(poly, MapScale(10_000))     # 100 m2 per mm2
        assert isinstance(out, Point)

    def test_large_polygon_stays_polygon(self):
        poly = Polygon.from_bbox(BBox(0, 0, 5_000, 5_000))
        out = generalize(poly, MapScale(10_000))
        assert isinstance(out, Polygon)

    def test_multiline_memberwise(self):
        mls = MultiLineString([
            LineString([(0, 0), (0.5, 0)]),            # drops
            LineString([(0, 0), (5_000, 0)]),          # survives
        ])
        out = generalize(mls, MapScale(10_000))
        assert isinstance(out, LineString)


class TestExtentScale:
    def test_extent_for_scale(self):
        extent = extent_for_scale((0, 0), MapScale(10_000),
                                  width_mm=200, height_mm=100)
        assert extent.width == pytest.approx(2_000.0)
        assert extent.height == pytest.approx(1_000.0)

    def test_scale_for_extent_roundtrip(self):
        extent = BBox(0, 0, 2_000, 1_000)
        scale = scale_for_extent(extent, width_mm=200)
        assert scale.denominator == pytest.approx(10_000, rel=0.01)

    def test_scale_for_degenerate_extent(self):
        with pytest.raises(GeometryError):
            scale_for_extent(BBox.empty())
