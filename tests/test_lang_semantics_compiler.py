"""Unit tests for semantic analysis and the directive compiler."""

import pytest

from repro.core import CustomizationEngine, Context
from repro.errors import SemanticError
from repro.lang import (
    FIGURE_6_PROGRAM,
    compile_and_install,
    compile_program,
    parse_program,
    render_rules,
)
from repro.lang.semantics import SemanticAnalyzer
from repro.uilib import InterfaceObjectLibrary, PresentationRegistry, install_standard_composites


@pytest.fixture()
def toolchain(phone_db):
    library = InterfaceObjectLibrary()
    install_standard_composites(library, persist=False)
    presentations = PresentationRegistry()
    return phone_db, library, presentations


def compile_one(toolchain, source):
    db, library, presentations = toolchain
    return compile_program(source, db, library, presentations)


def check(toolchain, source):
    db, library, presentations = toolchain
    analyzer = SemanticAnalyzer(db, library, presentations)
    return analyzer.check_program(parse_program(source))


GOOD = """
for user juliano application pole_manager
schema phone_net display as Null
class Pole display
    control as poleWidget
    presentation as pointFormat
    instances
        display attribute pole_location as Null
"""


class TestSemanticChecks:
    def test_good_program_passes(self, toolchain):
        assert len(check(toolchain, GOOD).directives) == 1

    def test_unknown_schema(self, toolchain):
        with pytest.raises(SemanticError, match="ghost"):
            check(toolchain, GOOD.replace("phone_net", "ghost"))

    def test_unknown_class(self, toolchain):
        with pytest.raises(SemanticError, match="Tree"):
            check(toolchain, GOOD.replace("class Pole", "class Tree"))

    def test_unknown_attribute(self, toolchain):
        with pytest.raises(SemanticError, match="pole_ghost"):
            check(toolchain, GOOD.replace("pole_location", "pole_ghost"))

    def test_unknown_control_widget(self, toolchain):
        with pytest.raises(SemanticError, match="interface"):
            check(toolchain, GOOD.replace("poleWidget", "ghostWidget"))

    def test_unknown_presentation_format(self, toolchain):
        with pytest.raises(SemanticError, match="registered"):
            check(toolchain, GOOD.replace("pointFormat", "hologramFormat"))

    def test_unknown_attribute_format(self, toolchain):
        bad = GOOD.replace("pole_location as Null", "pole_location as vr")
        with pytest.raises(SemanticError, match="vr"):
            check(toolchain, bad)

    def test_null_with_using_rejected(self, toolchain):
        bad = GOOD.replace("pole_location as Null",
                           "pole_location as Null using x.y()")
        with pytest.raises(SemanticError, match="Null"):
            check(toolchain, bad)

    def test_duplicate_class_clause(self, toolchain):
        bad = GOOD + "class Pole display\n"
        # append second Pole clause inside the same directive
        bad = GOOD.replace(
            "    instances\n        display attribute pole_location as Null",
            "") + "class Pole display"
        with pytest.raises(SemanticError, match="twice"):
            check(toolchain, bad)

    def test_duplicate_attribute_clause(self, toolchain):
        bad = GOOD + "        display attribute pole_location as Null\n"
        with pytest.raises(SemanticError, match="twice"):
            check(toolchain, bad)

    def test_unknown_method_in_source(self, toolchain):
        bad = GOOD.replace(
            "pole_location as Null",
            "pole_supplier as text from ghost_method(pole_supplier)")
        with pytest.raises(SemanticError, match="ghost_method"):
            check(toolchain, bad)

    def test_inherited_attributes_visible(self, toolchain):
        inherited = GOOD.replace("pole_location", "install_year")
        assert check(toolchain, inherited)


class TestSourceNormalization:
    def source_program(self, sources):
        return f"""
        for user j
        schema phone_net display as default
        class Pole display instances
            display attribute pole_composition as composed_text
                from {sources}
        """

    def normalized(self, toolchain, sources):
        program = check(toolchain, self.source_program(sources))
        return [s.text
                for s in program.directives[0].classes[0].attributes[0].sources]

    def test_paper_abbreviations(self, toolchain):
        assert self.normalized(toolchain,
                               "pole.material pole.diameter pole.height") == [
            "pole_composition.pole_material",
            "pole_composition.pole_diameter",
            "pole_composition.pole_height",
        ]

    def test_full_paths_kept(self, toolchain):
        assert self.normalized(
            toolchain, "pole_composition.pole_material") == [
            "pole_composition.pole_material"]

    def test_plain_attribute(self, toolchain):
        assert self.normalized(toolchain, "pole_type") == ["pole_type"]

    def test_suffix_attribute_abbreviation(self, toolchain):
        # `type` resolves to pole_type by suffix match
        assert self.normalized(toolchain, "type") == ["pole_type"]

    def test_unresolvable(self, toolchain):
        with pytest.raises(SemanticError, match="cannot resolve"):
            self.normalized(toolchain, "pole.mystery")

    def test_bad_tuple_field_on_exact_attr(self, toolchain):
        with pytest.raises(SemanticError, match="no field"):
            self.normalized(toolchain, "pole_composition.mystery")

    def test_method_args_normalized(self, toolchain):
        program = check(toolchain, """
        for user j
        schema phone_net display as default
        class Pole display instances
            display attribute pole_supplier as text
                from get_supplier_name(supplier)
        """)
        source = program.directives[0].classes[0].attributes[0].sources[0]
        assert source.text == "get_supplier_name(pole_supplier)"


class TestCompiler:
    def test_figure6_compiles(self, toolchain):
        directives = compile_one(toolchain, FIGURE_6_PROGRAM)
        assert len(directives) == 1
        d = directives[0]
        assert d.pattern.user == "juliano"
        assert d.schema_display == "null"
        clause = d.class_clause("Pole")
        assert clause.control_widget == "poleWidget"
        assert clause.presentation_format == "pointFormat"
        assert clause.attribute("pole_composition").sources == (
            "pole_composition.pole_material",
            "pole_composition.pole_diameter",
            "pole_composition.pole_height",
        )
        assert clause.attribute("pole_location").format_name == "null"

    def test_render_rules_matches_paper_r1_r2(self, toolchain):
        directives = compile_one(toolchain, FIGURE_6_PROGRAM)
        rules = render_rules(directives[0])
        assert rules[0].startswith("R1: On Get_Schema")
        assert "< juliano, pole_manager >" in rules[0]
        assert "Build Window(Schema, phone_net, NULL)" in rules[0]
        assert "Get_Class(Pole)" in rules[0]
        assert rules[1].startswith("R2: On Get_Class(Pole)")
        assert "Build Window(Class set, Pole, poleWidget, pointFormat)" in rules[1]
        assert len(rules) == 5   # R1, R2 + three instance rules

    def test_compile_and_install_is_live(self, toolchain, pole_oid):
        db, library, presentations = toolchain
        engine = CustomizationEngine(db.bus)
        directives = compile_and_install(FIGURE_6_PROGRAM, db, library,
                                         presentations, engine)
        assert engine.directives() == directives
        db.get_schema("phone_net",
                      context=Context(user="juliano",
                                      application="pole_manager"))
        assert engine.schema_decision(db.bus.last_event.event_id) is not None

    def test_multiple_directives_unique_names(self, toolchain):
        two = GOOD + GOOD.replace("juliano", "maria")
        directives = compile_one(toolchain, two)
        assert len({d.name for d in directives}) == 2

    def test_scale_context_compiled(self, toolchain):
        directives = compile_one(toolchain, """
            for application atlas scale 1000..25000
            schema phone_net display as default
            class Pole display presentation as pointFormat
        """)
        assert directives[0].pattern.scale_range == (1000.0, 25000.0)
