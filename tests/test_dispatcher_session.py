"""Unit tests for the dispatcher, screen and session façade."""

import pytest

from repro.core import (
    AttributeCustomization,
    ClassCustomization,
    ContextPattern,
    CustomizationDirective,
    GISSession,
    Screen,
)
from repro.errors import DispatchError, SessionError
from repro.spatial import Point
from repro.uilib import Window


def pole_directive():
    return CustomizationDirective(
        name="pm",
        pattern=ContextPattern(user="juliano", application="pole_manager"),
        schema_name="phone_net",
        schema_display="null",
        classes=(ClassCustomization(
            class_name="Pole",
            control_widget="poleWidget",
            presentation_format="pointFormat",
            attributes=(AttributeCustomization("pole_location", "null"),),
        ),),
    )


class TestScreen:
    def test_show_window_close(self):
        screen = Screen()
        window = Window("w")
        screen.show(window)
        assert screen.window("w") is window
        assert "w" in screen and len(screen) == 1
        closed = []
        window.on("close", lambda e: closed.append(1))
        screen.close("w")
        assert closed == [1]
        assert "w" not in screen
        with pytest.raises(DispatchError):
            screen.window("w")
        with pytest.raises(DispatchError):
            screen.close("w")

    def test_show_replaces_same_name(self):
        screen = Screen()
        first, second = Window("w"), Window("w")
        screen.show(first)
        screen.show(second)
        assert screen.window("w") is second
        assert len(screen) == 1

    def test_find_by_kind(self):
        screen = Screen()
        window = Window("w")
        window.set_property("window_kind", "schema")
        screen.show(window)
        assert screen.find_by_kind("schema") == [window]
        assert screen.find_by_kind("instance") == []


class TestDispatcherFlow:
    def test_schema_to_class_to_instance_via_callbacks(self, generic_session,
                                                       pole_oid):
        session = generic_session
        session.connect("phone_net")
        assert session.screen.names() == ["schema_phone_net"]
        session.select_class("Pole")
        assert "classset_Pole" in session.screen.names()
        session.select_instance(pole_oid)
        assert f"instance_{pole_oid}" in session.screen.names()
        assert session.dispatcher.interactions == 3

    def test_map_pick_opens_instance(self, generic_session):
        session = generic_session
        session.connect("phone_net")
        session.select_class("Pole")
        window = session.screen.window("classset_Pole")
        area = window.find("map")
        raster = area.rasterize()
        (col, row), (__, oid) = next(iter(raster.items()))
        picked = session.pick_on_map("Pole", col, row)
        assert picked == oid
        assert f"instance_{oid}" in session.screen.names()

    def test_close_via_menu(self, generic_session):
        session = generic_session
        session.connect("phone_net")
        session.select_class("Pole")
        window = session.screen.window("classset_Pole")
        window.find("operations").activate("close")
        assert "classset_Pole" not in session.screen.names()

    def test_events_carry_context(self, generic_session, phone_db):
        generic_session.connect("phone_net")
        assert phone_db.bus.last_event.context is generic_session.context


class TestCustomizedFlow:
    def test_r1_cascade_hides_schema_opens_class(self, juliano_session):
        session = juliano_session
        session.install_directive(pole_directive(), persist=False)
        session.connect("phone_net")
        assert set(session.screen.names()) == {"schema_phone_net",
                                               "classset_Pole"}
        assert not session.screen.window("schema_phone_net").visible
        assert session.screen.window("classset_Pole").visible

    def test_customization_transparent_to_other_context(self, phone_db):
        other = GISSession(phone_db, user="maria", application="other_app")
        other.install_directive(pole_directive(), persist=False)
        other.connect("phone_net")
        assert other.screen.window("schema_phone_net").visible
        assert "classset_Pole" not in other.screen.names()

    def test_instance_attribute_hidden(self, juliano_session, pole_oid):
        session = juliano_session
        session.install_directive(pole_directive(), persist=False)
        session.connect("phone_net")
        session.select_instance(pole_oid)
        from repro.ui import displayed_attribute_names

        window = session.screen.window(f"instance_{pole_oid}")
        assert "pole_location" not in displayed_attribute_names(window)


class TestSessionProtocol:
    def test_select_class_before_connect(self, generic_session):
        with pytest.raises(SessionError):
            generic_session.select_class("Pole")

    def test_connect_unknown_schema(self, generic_session):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            generic_session.connect("ghost_schema")

    def test_render_whole_screen(self, generic_session):
        generic_session.connect("phone_net")
        generic_session.select_class("Pole")
        out = generic_session.render()
        assert "Schema: phone_net" in out
        assert "Class set: Pole" in out

    def test_scene(self, generic_session):
        generic_session.connect("phone_net")
        scene = generic_session.scene()
        assert scene[0]["type"] == "window"

    def test_explain_window(self, juliano_session, generic_session):
        juliano_session.install_directive(pole_directive(), persist=False)
        juliano_session.connect("phone_net")
        text = juliano_session.explain_window("classset_Pole")
        assert "pm::class::Pole" in text
        generic_session.connect("phone_net")
        assert "generic (default)" in generic_session.explain_window(
            "schema_phone_net")

    def test_stats(self, generic_session):
        generic_session.connect("phone_net")
        stats = generic_session.stats()
        assert stats["dispatcher"]["interactions"] == 1
        assert "user=ana" in stats["context"]


class TestAutoRefresh:
    def test_class_window_refreshes_on_commit(self, phone_db):
        session = GISSession(phone_db, user="ana", application="b",
                             auto_refresh=True)
        session.connect("phone_net")
        session.select_class("Pole")
        before = session.screen.window("classset_Pole")
        count_before = len(before.find("instances").items)
        phone_db.insert("phone_net", "Pole",
                        {"pole_location": Point(1.0, 1.0)})
        after = session.screen.window("classset_Pole")
        assert after is not before
        assert len(after.find("instances").items) == count_before + 1

    def test_instance_window_closes_on_delete(self, phone_db):
        session = GISSession(phone_db, user="ana", application="b",
                             auto_refresh=True)
        oid = phone_db.insert("phone_net", "Pole",
                              {"pole_location": Point(2.0, 2.0)})
        session.connect("phone_net")
        session.select_class("Pole")
        session.select_instance(oid)
        assert f"instance_{oid}" in session.screen.names()
        phone_db.delete(oid)
        assert f"instance_{oid}" not in session.screen.names()

    def test_instance_window_refreshes_on_update(self, phone_db, pole_oid):
        session = GISSession(phone_db, user="ana", application="b",
                             auto_refresh=True)
        session.connect("phone_net")
        session.select_class("Pole")
        session.select_instance(pole_oid)
        phone_db.update(pole_oid, {"pole_historic": "rebuilt 1997"})
        window = session.screen.window(f"instance_{pole_oid}")
        from repro.ui import instance_attribute_panels

        panel = instance_attribute_panels(window)["pole_historic"]
        assert panel.children[0].value == "rebuilt 1997"

    def test_no_refresh_by_default(self, phone_db):
        session = GISSession(phone_db, user="ana", application="b")
        session.connect("phone_net")
        session.select_class("Pole")
        before = session.screen.window("classset_Pole")
        phone_db.insert("phone_net", "Pole",
                        {"pole_location": Point(3.0, 3.0)})
        assert session.screen.window("classset_Pole") is before


class TestSessionLifecycle:
    def test_shutdown_detaches_everything(self, phone_db):
        subscribers_before = (
            len(phone_db.bus._all)
            + sum(len(v) for v in phone_db.bus._by_kind.values()))
        session = GISSession(phone_db, user="u", application="a",
                             auto_refresh=True)
        session.connect("phone_net")
        session.shutdown()
        subscribers_after = (
            len(phone_db.bus._all)
            + sum(len(v) for v in phone_db.bus._by_kind.values()))
        assert subscribers_after == subscribers_before
        assert len(session.screen) == 0
        session.shutdown()   # idempotent

    def test_context_manager(self, phone_db):
        with GISSession(phone_db, user="u", application="a") as session:
            session.connect("phone_net")
            assert len(session.screen) == 1
        assert len(session.screen) == 0

    def test_shared_engine_left_attached(self, phone_db):
        owner = GISSession(phone_db, user="u", application="a")
        borrower = GISSession(phone_db, user="v", application="a",
                              engine=owner.engine)
        borrower.shutdown()
        # the shared engine still reacts to events
        phone_db.get_schema("phone_net")
        assert owner.engine.manager.bus is phone_db.bus
        owner.shutdown()
