"""Unit tests for the query model and the query engine."""

import pytest

from repro.errors import QueryError
from repro.geodb import (
    And,
    Attribute,
    Comparison,
    FLOAT,
    GeoClass,
    GeographicDatabase,
    GeometryType,
    INTEGER,
    Not,
    Or,
    Query,
    QueryEngine,
    SpatialPredicate,
    TEXT,
    TruePredicate,
    TupleType,
    WithinDistance,
)
from repro.spatial import BBox, LineString, Point, Polygon


@pytest.fixture()
def db():
    database = GeographicDatabase("Q")
    schema = database.create_schema("s")
    schema.add_class(GeoClass("Shape", [
        Attribute("kind", TEXT),
        Attribute("size", FLOAT),
        Attribute("meta", TupleType({"source": TEXT, "rank": INTEGER})),
        Attribute("geom", GeometryType()),
    ]))
    schema.add_class(GeoClass("BigShape", superclass="Shape"))
    with database.transaction() as txn:
        for i in range(20):
            txn.insert("s", "Shape", {
                "kind": "point" if i % 2 == 0 else "line",
                "size": float(i),
                "meta": {"source": f"batch{i % 3}", "rank": i % 5},
                "geom": Point(i * 10.0, 0.0),
            })
        txn.insert("s", "BigShape", {"kind": "big", "size": 999.0,
                                     "geom": Point(5.0, 5.0)})
    return database


@pytest.fixture()
def engine(db):
    return QueryEngine(db)


class TestPredicates:
    def test_comparison_operators(self, db):
        geo_class = db.get_schema_object("s").get_class("Shape")
        obj = next(iter(db.extent("s", "Shape")))
        assert Comparison("size", "=", 0.0).matches(obj, geo_class)
        assert Comparison("size", "<", 1.0).matches(obj, geo_class)
        assert Comparison("kind", "like", "POI").matches(obj, geo_class)
        assert Comparison("kind", "in", ["point", "line"]).matches(obj, geo_class)
        assert not Comparison("size", ">", 0.0).matches(obj, geo_class)

    def test_unknown_operator_rejected(self):
        with pytest.raises(QueryError):
            Comparison("x", "~~", 1)

    def test_dotted_path_into_tuple(self, db):
        geo_class = db.get_schema_object("s").get_class("Shape")
        obj = next(iter(db.extent("s", "Shape")))
        assert Comparison("meta.source", "=", "batch0").matches(obj, geo_class)
        assert not Comparison("meta.rank", ">", 100).matches(obj, geo_class)

    def test_bad_path_is_nonmatch(self, db):
        geo_class = db.get_schema_object("s").get_class("Shape")
        obj = next(iter(db.extent("s", "Shape")))
        assert not Comparison("meta.missing", "=", 1).matches(obj, geo_class)

    def test_combinators(self, db):
        geo_class = db.get_schema_object("s").get_class("Shape")
        obj = next(iter(db.extent("s", "Shape")))
        a = Comparison("size", "=", 0.0)
        b = Comparison("kind", "=", "line")
        assert (a | b).matches(obj, geo_class)
        assert not (a & b).matches(obj, geo_class)
        assert (~b).matches(obj, geo_class)
        assert isinstance(a & b, And) and isinstance(a | b, Or)
        assert isinstance(~a, Not)

    def test_combinator_arity(self):
        with pytest.raises(QueryError):
            And([TruePredicate()])
        with pytest.raises(QueryError):
            Or([TruePredicate()])

    def test_spatial_predicate_validation(self):
        with pytest.raises(QueryError):
            SpatialPredicate("geom", "hovers_over", Point(0, 0))
        with pytest.raises(QueryError):
            SpatialPredicate("geom", "within", "not a geometry")
        with pytest.raises(QueryError):
            WithinDistance("geom", Point(0, 0), -1)

    def test_spatial_prefilter_exposure(self):
        probe = Polygon.from_bbox(BBox(0, 0, 10, 10))
        pred = SpatialPredicate("geom", "within", probe)
        attr, box = pred.spatial_prefilter()
        assert attr == "geom" and box == probe.bbox()
        assert SpatialPredicate("geom", "disjoint", probe).spatial_prefilter() is None
        wd = WithinDistance("geom", Point(5, 5), 3.0)
        assert wd.spatial_prefilter()[1] == BBox(2, 2, 8, 8)
        conj = And([Comparison("size", ">", 0), pred])
        assert conj.spatial_prefilter() == (attr, box)
        assert Or([pred, Comparison("size", ">", 0)]).spatial_prefilter() is None

    def test_describe_strings(self):
        pred = And([Comparison("size", ">", 1),
                    Not(Comparison("kind", "=", "x"))])
        assert "size > 1" in pred.describe()
        assert "not kind" in pred.describe()


class TestQueryValidation:
    def test_needs_class(self):
        with pytest.raises(QueryError):
            Query("")

    def test_negative_limit(self):
        with pytest.raises(QueryError):
            Query("Shape", limit=-1)

    def test_describe(self):
        q = Query("Shape", where=Comparison("size", ">", 3),
                  projection=["size"], order_by="-size", limit=5)
        text = q.describe()
        assert "select size" in text and "limit 5" in text


class TestExecution:
    def test_full_scan_plan(self, engine):
        result = engine.execute("s", Query(
            "Shape", where=Comparison("kind", "=", "point")))
        assert len(result) == 10
        assert result.report["plan"] == "full-scan"

    def test_index_plan_and_correctness(self, engine, db):
        # -1 on the left edge: a point exactly on the boundary is TOUCHES,
        # not WITHIN, so keep x=0 strictly inside the probe.
        probe = Polygon.from_bbox(BBox(-1, -1, 55, 1))
        result = engine.execute("s", Query(
            "Shape", where=SpatialPredicate("geom", "within", probe)))
        assert result.report["plan"] == "index-scan"
        assert result.report["candidates"] < db.count("s", "Shape")
        # shapes sit at x = size * 10, so x in [-1, 55] keeps sizes 0..5
        assert sorted(o.get("size") for o in result.objects) == [
            0.0, 1.0, 2.0, 3.0, 4.0, 5.0]

    def test_within_distance(self, engine):
        result = engine.execute("s", Query(
            "Shape", where=WithinDistance("geom", Point(0, 0), 25.0)))
        assert {o.get("size") for o in result.objects} == {0.0, 1.0, 2.0}

    def test_order_by_and_limit(self, engine):
        result = engine.execute("s", Query("Shape", order_by="-size", limit=3))
        assert [o.get("size") for o in result.objects] == [19.0, 18.0, 17.0]

    def test_order_by_tuple_field(self, engine):
        result = engine.execute("s", Query("Shape", order_by="meta.rank"))
        ranks = [o.get("meta")["rank"] for o in result.objects]
        assert ranks == sorted(ranks)

    def test_projection_rows(self, engine):
        result = engine.execute("s", Query(
            "Shape", projection=["kind", "meta.source"], limit=2))
        assert result.rows is not None
        assert set(result.rows[0]) == {"oid", "kind", "meta.source"}

    def test_include_subclasses(self, engine):
        without = engine.execute("s", Query("Shape"))
        with_subs = engine.execute("s", Query("Shape",
                                              include_subclasses=True))
        assert len(with_subs) == len(without) + 1

    def test_explain_text(self, engine):
        result = engine.execute("s", Query(
            "Shape", where=SpatialPredicate(
                "geom", "within", Polygon.from_bbox(BBox(0, -1, 20, 1)))))
        text = result.explain()
        assert "plan: index-scan" in text
        assert "rtree" in text

    def test_unknown_class_rejected(self, engine):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            engine.execute("s", Query("Ghost"))

    def test_spatial_on_line_geometry(self, engine, db):
        db.insert("s", "Shape", {
            "kind": "road",
            "geom": LineString([(0, -50), (0, 50)]),
        })
        probe = Polygon.from_bbox(BBox(-10, -10, 10, 10))
        result = engine.execute("s", Query(
            "Shape", where=SpatialPredicate("geom", "crosses", probe)))
        assert [o.get("kind") for o in result.objects] == ["road"]


class TestEqualityPrefilter:
    def test_exposed_by_equality_and_in(self):
        assert Comparison("kind", "=", "wood").equality_prefilter() == (
            "kind", ["wood"])
        assert Comparison("kind", "in", ["a", "b"]).equality_prefilter() == (
            "kind", ["a", "b"])

    def test_not_exposed_otherwise(self):
        assert Comparison("kind", ">", 1).equality_prefilter() is None
        assert Comparison("meta.rank", "=", 1).equality_prefilter() is None
        assert TruePredicate().equality_prefilter() is None
        assert Or([Comparison("a", "=", 1),
                   Comparison("b", "=", 2)]).equality_prefilter() is None

    def test_propagates_through_and(self):
        conj = And([Comparison("size", ">", 0),
                    Comparison("kind", "=", "x")])
        assert conj.equality_prefilter() == ("kind", ["x"])
