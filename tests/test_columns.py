"""Vectorized columnar scan path: cache lifecycle, kernel parity, MVCC.

The contract under test: for every query the engine answers through
column kernels, the answer is **byte-identical** (oids, rows, report
candidates) to the row path's answer on the same database — and the
column cache never serves stale state: commits invalidate via the class
version stamp, concurrent commits force a truthful row-path fallback,
and MVCC snapshot readers never touch columns at all.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.geodb import ColumnCache, QueryEngine
from repro.geodb.query_language import parse_query, run_query
from repro.spatial import BBox, Point
from repro.workloads import build_phone_net_database
from repro.workloads.phone_net import PhoneNetParams

SCHEMA = "phone_net"

#: A scan-heavy mix exercising every shaping path over columns:
#: comparisons, conjunction/disjunction/negation, like, dotted paths,
#: ordering (asc + desc), limit, projection, aggregates, subclass
#: closure and spatial containment.
QUERIES = [
    "select * from Pole where status = 'ok'",
    "select * from Pole where pole_type != 1 and install_year >= 1975",
    "select * from Pole where status like 'o%' or pole_type = 2",
    "select * from Pole where not status = 'ok'",
    "select * from Pole where pole_composition.pole_material = 'wood'",
    "select oid, status, install_year from Pole where install_year < 1990"
    " order by install_year",
    "select * from Pole order by desc install_year limit 5",
    "select count(*), min(install_year), max(install_year),"
    " avg(install_year) from Pole where status = 'ok'",
    "select * from Pole where within(pole_location, bbox(0, 0, 400, 400))",
    "select * from NetworkElement where install_year > 1960"
    " order by install_year including subclasses",
]


@pytest.fixture()
def db():
    return build_phone_net_database(PhoneNetParams(
        blocks_x=3, blocks_y=3, poles_per_street=4, duct_count=5, seed=7))


def answer(result):
    """A byte-comparable rendering of one result (order-preserving)."""
    return (result.oids(), result.rows,
            result.report["candidates"], len(result.objects))


def assert_equivalent(db, text):
    columns = QueryEngine(db).execute(SCHEMA, parse_query(text))
    rows = QueryEngine(db, use_columns=False).execute(
        SCHEMA, parse_query(text))
    assert answer(columns) == answer(rows)
    return columns


class TestRowColumnEquivalence:
    @pytest.mark.parametrize("text", QUERIES)
    def test_byte_identical_answers(self, db, text):
        result = assert_equivalent(db, text)
        # Full scans actually took the columnar path (truthful report).
        for class_plan in result.report["plans"]:
            if class_plan["plan"] == "full-scan":
                assert class_plan["columns"] is True

    def test_disabled_engine_reports_rows(self, db):
        result = QueryEngine(db, use_columns=False).execute(
            SCHEMA, parse_query(QUERIES[0]))
        (class_plan,) = result.report["plans"]
        assert class_plan["columns"] is False
        assert class_plan["columns_reason"] == "columns disabled"
        assert "[rows: columns disabled]" in result.explain()

    def test_explain_marks_columnar_classes(self, db):
        result = QueryEngine(db).execute(SCHEMA, parse_query(QUERIES[0]))
        assert "[columns]" in result.explain()


class TestCacheLifecycle:
    def test_build_then_hit(self, db):
        engine = QueryEngine(db)
        engine.execute(SCHEMA, parse_query(QUERIES[0]))
        cache = db.column_cache
        assert cache.builds == 1 and cache.hits == 0
        engine.execute(SCHEMA, parse_query(QUERIES[1]))
        assert cache.builds == 1 and cache.hits == 1

    def test_commit_invalidates_and_never_serves_stale(self, db):
        engine = QueryEngine(db)
        before = engine.execute(
            SCHEMA, parse_query("select * from Pole where status = 'broken'"))
        assert before.oids() == []
        victim = db.extent(SCHEMA, "Pole").oids()[0]
        with db.transaction() as txn:
            txn.update(victim, {"status": "broken"})
        after = engine.execute(
            SCHEMA, parse_query("select * from Pole where status = 'broken'"))
        assert after.oids() == [victim]
        assert db.column_cache.invalidations == 1

    def test_insert_and_delete_move_the_stamp(self, db):
        engine = QueryEngine(db)
        count = len(engine.execute(SCHEMA, parse_query(
            "select * from Pole")).objects)
        with db.transaction() as txn:
            txn.insert(SCHEMA, "Pole", {
                "pole_type": 9, "status": "new", "install_year": 2026,
                "pole_location": Point(1.0, 2.0),
            })
        assert len(engine.execute(SCHEMA, parse_query(
            "select * from Pole")).objects) == count + 1
        victim = db.extent(SCHEMA, "Pole").oids()[-1]
        with db.transaction() as txn:
            txn.delete(victim)
        result = engine.execute(SCHEMA, parse_query("select * from Pole"))
        assert len(result.objects) == count
        assert victim not in result.oids()

    def test_status_shape(self, db):
        engine = QueryEngine(db)
        engine.execute(SCHEMA, parse_query(QUERIES[0]))
        engine.execute(SCHEMA, parse_query(QUERIES[0]))
        status = db.column_cache.status()
        summary = status["summary"]
        assert summary["classes"] == 1
        assert summary["rows"] == len(db.extent(SCHEMA, "Pole"))
        assert summary["builds"] == 1 and summary["hits"] == 1
        assert summary["hit_ratio"] == 0.5
        (entry,) = status["classes"]
        assert entry["class"] == "Pole"
        assert entry["paths"] == ["status"]

    def test_empty_cache_status(self, db):
        cache = ColumnCache(db)
        assert cache.status()["summary"]["hit_ratio"] is None


class TestSeqlockFallback:
    def test_mid_commit_build_falls_back_to_rows(self, db):
        engine = QueryEngine(db)
        row_answer = answer(QueryEngine(db, use_columns=False).execute(
            SCHEMA, parse_query(QUERIES[0])))
        db._mutation_seq += 1          # simulate a commit mid-apply
        try:
            assert db.column_cache.for_class(SCHEMA, "Pole") is None
            result = engine.execute(SCHEMA, parse_query(QUERIES[0]))
        finally:
            db._mutation_seq -= 1
        assert answer(result) == row_answer
        (class_plan,) = result.report["plans"]
        assert class_plan["columns"] is False
        assert class_plan["columns_reason"] == "commit in flight"
        # The lock released: the very next query builds columns again.
        retry = engine.execute(SCHEMA, parse_query(QUERIES[0]))
        assert retry.report["plans"][0]["columns"] is True
        assert answer(retry) == row_answer

    def test_fallback_counter_labelled_by_reason(self, db):
        recorder = obs.enable(registry=obs.MetricsRegistry())
        try:
            db._mutation_seq += 1
            try:
                QueryEngine(db).execute(SCHEMA, parse_query(QUERIES[0]))
            finally:
                db._mutation_seq -= 1
            QueryEngine(db, use_columns=False).execute(
                SCHEMA, parse_query(QUERIES[0]))
            registry = recorder.registry
            assert registry.counter_value(
                "query.columns.fallback", reason="commit-in-flight") == 1
            assert registry.counter_value(
                "query.columns.fallback", reason="disabled") == 1
        finally:
            obs.disable()

    def test_build_and_hit_counters(self, db):
        recorder = obs.enable(registry=obs.MetricsRegistry())
        try:
            engine = QueryEngine(db)
            engine.execute(SCHEMA, parse_query(QUERIES[0]))
            engine.execute(SCHEMA, parse_query(QUERIES[1]))
            victim = db.extent(SCHEMA, "Pole").oids()[0]
            with db.transaction() as txn:
                txn.update(victim, {"status": "ok"})
            engine.execute(SCHEMA, parse_query(QUERIES[0]))
            registry = recorder.registry
            assert registry.counter_value("query.columns.build") == 2
            assert registry.counter_value("query.columns.hit") == 1
            assert registry.counter_value("query.columns.invalidation") == 1
        finally:
            obs.disable()


class TestMVCCRouting:
    """Snapshot readers and mid-txn overlays never see column state."""

    def test_snapshot_reader_sees_old_state_engine_sees_new(self, db):
        engine = QueryEngine(db)
        engine.execute(SCHEMA, parse_query(QUERIES[0]))   # warm columns
        victim = engine.execute(SCHEMA, parse_query(
            "select * from Pole where status = 'ok'")).oids()[0]
        reader = db.transaction()
        try:
            with db.transaction() as txn:
                txn.update(victim, {"status": "retired"})
            # The old snapshot still answers from its version horizon...
            old = reader.query(SCHEMA, "Pole")
            assert old[victim]["status"] == "ok"
            # ...while the engine (latest state, via fresh columns) does not.
            new = engine.execute(SCHEMA, parse_query(
                "select * from Pole where status = 'ok'"))
            assert victim not in new.oids()
            assert new.report["plans"][0]["columns"] is True
        finally:
            reader.abort()

    def test_snapshot_query_leaves_cache_untouched(self, db):
        engine = QueryEngine(db)
        engine.execute(SCHEMA, parse_query(QUERIES[0]))
        cache = db.column_cache
        builds, hits = cache.builds, cache.hits
        reader = db.transaction()
        try:
            reader.query(SCHEMA, "Pole")
        finally:
            reader.abort()
        assert (cache.builds, cache.hits) == (builds, hits)

    def test_staged_overlay_invisible_to_engine(self, db):
        engine = QueryEngine(db)
        txn = db.transaction()
        try:
            txn.insert(SCHEMA, "Pole", {
                "pole_type": 4, "status": "staged", "install_year": 2030,
                "pole_location": Point(3.0, 4.0),
            })
            staged = engine.execute(SCHEMA, parse_query(
                "select * from Pole where status = 'staged'"))
            assert staged.oids() == []
        finally:
            txn.abort()


class TestHashScanParity:
    def test_hash_scan_uses_columns_with_equal_candidates(self, db):
        db.create_attribute_index(SCHEMA, "Pole", "pole_type")
        text = "select * from Pole where pole_type = 1 and status = 'ok'"
        cols = QueryEngine(db).execute(SCHEMA, parse_query(text))
        rows = QueryEngine(db, use_columns=False).execute(
            SCHEMA, parse_query(text))
        assert cols.report["plan"] == rows.report["plan"] == "hash-scan"
        assert cols.report["candidates"] == rows.report["candidates"]
        assert answer(cols) == answer(rows)
        assert cols.report["plans"][0]["columns"] is True

    def test_in_predicate_parity(self, db):
        db.create_attribute_index(SCHEMA, "Pole", "pole_type")
        assert_equivalent(
            db, "select * from Pole where pole_type in [0, 2]"
                " order by install_year")

    def test_index_scan_stays_on_rows(self, db):
        result = QueryEngine(db).execute(SCHEMA, parse_query(
            "select * from Pole where"
            " within(pole_location, bbox(0, 0, 120, 120))"))
        index_plans = [p for p in result.report["plans"]
                       if p["plan"] == "index-scan"]
        if index_plans:          # planner chose the R-tree
            assert all(p["columns"] is False for p in index_plans)
            assert all(p["columns_reason"] == "index scan"
                       for p in index_plans)


class TestScatterColumns:
    def test_scatter_answers_match_row_path(self, db):
        db.shard_extent(SCHEMA, "Pole", "pole_location", grid=(2, 2))
        for text in (
            "select * from Pole where status = 'ok'",
            "select * from Pole order by desc install_year limit 4",
            "select count(*), min(install_year) from Pole",
        ):
            cols = QueryEngine(db).execute(SCHEMA, parse_query(text))
            rows = QueryEngine(db, use_columns=False).execute(
                SCHEMA, parse_query(text))
            assert cols.report["plan"] == "scatter"
            assert answer(cols) == answer(rows)
        shard_entries = [p for p in cols.report["plans"]
                         if p["plan"] == "scatter"]
        assert shard_entries and all(p["columns"] for p in shard_entries)


class TestResultAndStatsBatching:
    """The two perf satellites: cached oids(), batched snapshots."""

    def test_oids_computed_once(self, db):
        result = QueryEngine(db).execute(SCHEMA, parse_query(QUERIES[0]))
        assert result.oids() is result.oids()

    def test_with_report_shares_cached_oids(self, db):
        result = QueryEngine(db).execute(SCHEMA, parse_query(QUERIES[0]))
        oids = result.oids()
        assert result.with_report(cache="hit").oids() is oids

    def test_snapshot_matches_per_class_describes(self, db):
        stats = db.statistics
        snap = stats.snapshot(SCHEMA)
        stats.invalidate()
        for class_name, described in snap[SCHEMA].items():
            assert described == stats.for_class(
                SCHEMA, class_name).describe()


class TestBulkLoadedRebuild:
    def test_rebuild_is_search_equivalent(self, db):
        before = db.spatial_index(SCHEMA, "Pole", "pole_location")
        probe = BBox(0, 0, 500, 500)
        expected = sorted(before.search(probe))
        assert expected          # the workload build populated the index
        rebuilt = db.rebuild_spatial_index(SCHEMA, "Pole", "pole_location")
        rebuilt.check_invariants()
        assert db.spatial_index(SCHEMA, "Pole", "pole_location") is rebuilt
        assert sorted(rebuilt.search(probe)) == expected

    def test_rebuild_counts_a_bulk_load(self, db):
        recorder = obs.enable(registry=obs.MetricsRegistry())
        try:
            db.rebuild_spatial_index(SCHEMA, "Pole", "pole_location")
            assert recorder.registry.counter_value("rtree.bulk_loads") == 1
        finally:
            obs.disable()


class TestRunQueryIntegration:
    def test_run_query_goes_columnar_by_default(self, db):
        result = run_query(db, SCHEMA, QUERIES[0])
        assert result.report["plans"][0]["columns"] is True
