"""Unit tests for events and the event bus."""

import pytest

from repro.active import (
    EXPLORATORY_KINDS,
    Event,
    EventBus,
    EventKind,
    MUTATION_KINDS,
)
from repro.errors import RuleError


class TestEventKind:
    def test_from_name(self):
        assert EventKind.from_name("get_schema") is EventKind.GET_SCHEMA
        with pytest.raises(RuleError):
            EventKind.from_name("explode")

    def test_partitions(self):
        assert EventKind.GET_CLASS in EXPLORATORY_KINDS
        assert EventKind.UPDATE in MUTATION_KINDS
        assert not (EXPLORATORY_KINDS & MUTATION_KINDS)


class TestEvent:
    def test_unique_ids(self):
        a = Event(EventKind.GET_SCHEMA, "s")
        b = Event(EventKind.GET_SCHEMA, "s")
        assert a.event_id != b.event_id

    def test_derived_increments_depth_and_keeps_context(self):
        base = Event(EventKind.GET_SCHEMA, "s", context="ctx")
        child = base.derived(EventKind.GET_CLASS, "Pole", {"k": 1})
        assert child.depth == 1
        assert child.context == "ctx"
        assert child.payload == {"k": 1}
        grandchild = child.derived(EventKind.GET_VALUE, "Pole#1")
        assert grandchild.depth == 2

    def test_describe(self):
        event = Event(EventKind.GET_VALUE, "Pole#1")
        assert event.describe() == "get_value(Pole#1)@depth=0"


class TestEventBus:
    def test_kind_filtering(self):
        bus = EventBus()
        schema_events, all_events = [], []
        bus.subscribe(schema_events.append, kinds=[EventKind.GET_SCHEMA])
        bus.subscribe(all_events.append)
        bus.publish(Event(EventKind.GET_SCHEMA, "s"))
        bus.publish(Event(EventKind.GET_CLASS, "C"))
        assert len(schema_events) == 1
        assert len(all_events) == 2
        assert bus.published_count == 2

    def test_subscriber_order(self):
        bus = EventBus()
        order = []
        bus.subscribe(lambda e: order.append("first"),
                      kinds=[EventKind.GET_SCHEMA])
        bus.subscribe(lambda e: order.append("second"),
                      kinds=[EventKind.GET_SCHEMA])
        bus.subscribe(lambda e: order.append("catch_all"))
        bus.publish(Event(EventKind.GET_SCHEMA, "s"))
        assert order == ["first", "second", "catch_all"]

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, kinds=[EventKind.GET_SCHEMA])
        bus.subscribe(seen.append)
        bus.unsubscribe(seen.append)
        bus.publish(Event(EventKind.GET_SCHEMA, "s"))
        assert seen == []

    def test_last_event(self):
        bus = EventBus()
        assert bus.last_event is None
        event = Event(EventKind.GET_VALUE, "x")
        bus.publish(event)
        assert bus.last_event is event

    def test_log_retention(self):
        bus = EventBus()
        bus.publish(Event(EventKind.GET_SCHEMA, "dropped"))
        bus.keep_log = True
        bus.publish(Event(EventKind.GET_SCHEMA, "kept"))
        log = bus.drain_log()
        assert [e.subject for e in log] == ["kept"]
        assert bus.drain_log() == []

    def test_publish_during_publish(self):
        """A subscriber may publish derived events reentrantly."""
        bus = EventBus()
        seen = []

        def cascade(event):
            seen.append(event.describe())
            if event.depth == 0:
                bus.publish(event.derived(EventKind.GET_CLASS, "C"))

        bus.subscribe(cascade)
        bus.publish(Event(EventKind.GET_SCHEMA, "s"))
        assert seen == ["get_schema(s)@depth=0", "get_class(C)@depth=1"]
