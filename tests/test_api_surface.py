"""Direct tests for public API surfaces not exercised elsewhere."""

import pytest

from repro.active import Event, EventBus, EventKind, Rule, RuleManager
from repro.errors import RuleError
from repro.geodb import GeographicDatabase, fresh_oid
from repro.geodb.instances import ensure_oid_counter_above
from repro.geodb.storage import FilePager, SlottedPage
from repro.spatial import BBox, MapScale, Point, Polygon, RTree, Ring, Viewport


class TestBBoxStretched:
    def test_stretched_grows_minimally(self):
        box = BBox(0, 0, 1, 1).stretched(5, -2)
        assert box == BBox(0, -2, 5, 1)

    def test_stretched_from_empty(self):
        box = BBox.empty().stretched(3, 4)
        assert box.as_tuple() == (3, 4, 3, 4)


class TestRingAndPolygonAccessors:
    def test_closed_coords_repeats_first(self):
        ring = Ring([(0, 0), (1, 0), (1, 1)])
        closed = ring.closed_coords()
        assert closed[0] == closed[-1]
        assert len(closed) == 4

    def test_rings_iterates_exterior_then_holes(self):
        poly = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)],
                       holes=[[(2, 2), (4, 2), (4, 4), (2, 4)]])
        rings = list(poly.rings())
        assert rings[0] is poly.exterior
        assert rings[1] is poly.holes[0]


class TestRTreeSearchEntries:
    def test_entries_include_boxes(self):
        tree = RTree()
        box = BBox(0, 0, 2, 2)
        tree.insert(box, "a")
        entries = tree.search_entries(BBox(1, 1, 3, 3))
        assert entries == [(box, "a")]

    def test_empty_window(self):
        tree = RTree()
        tree.insert(BBox(0, 0, 1, 1), "a")
        assert tree.search_entries(BBox.empty()) == []


class TestViewportImpliedScale:
    def test_implied_scale_magnitude(self):
        # 1000 ground units over 10 cells -> 100 units/cell; at 3 mm per
        # cell that is ~33.3 m/mm -> scale ~1:33333
        vp = Viewport(BBox(0, 0, 1000, 1000), width=10, height=10)
        scale = vp.implied_scale(mm_per_cell=3.0)
        assert scale.denominator == pytest.approx(33333.33, rel=0.01)
        assert isinstance(scale, MapScale)


class TestSlottedPageFreeSpace:
    def test_free_space_decreases_with_content(self):
        page = SlottedPage(page_size=4096)
        before = page.free_space()
        page.add(b"x" * 100)
        after = page.free_space()
        assert after < before
        assert after >= before - 100 - 40  # payload + slot-entry reserve


class TestFilePagerSync:
    def test_sync_flushes_to_disk(self, tmp_path):
        path = str(tmp_path / "sync.db")
        pager = FilePager(path)
        no = pager.allocate_page()
        pager.write_page(no, b"durable")
        pager.sync()
        with open(path, "rb") as f:
            assert f.read().startswith(b"durable")
        pager.close()


class TestRuleManagerDirectAPI:
    def test_add_rule_object(self):
        bus = EventBus()
        manager = RuleManager(bus)
        rule = Rule(name="direct", events=frozenset([EventKind.GET_SCHEMA]),
                    condition=lambda e: True, action=lambda e, m: "ran")
        assert manager.add_rule(rule) is rule
        with pytest.raises(RuleError):
            manager.add_rule(rule)
        manager.detach()

    def test_select_rules_respects_policy(self):
        bus = EventBus()
        manager = RuleManager(bus)
        manager.define("lo", [EventKind.GET_SCHEMA], lambda e: True,
                       lambda e, m: None, priority=1, group="g")
        manager.define("hi", [EventKind.GET_SCHEMA], lambda e: True,
                       lambda e, m: None, priority=2, group="g")
        event = Event(EventKind.GET_SCHEMA, "s")
        assert [r.name for r in manager.select_rules(event)] == ["hi", "lo"]
        from repro.active import SelectionPolicy

        manager.set_policy("g", SelectionPolicy.HIGHEST_PRIORITY)
        assert manager.policy("g") is SelectionPolicy.HIGHEST_PRIORITY
        assert [r.name for r in manager.select_rules(event)] == ["hi"]
        manager.detach()


class TestEngineDecisionsFor:
    def test_decisions_for_lists_everything(self, phone_db, juliano_session,
                                            pole_oid):
        from repro.lang import FIGURE_6_PROGRAM

        session = juliano_session
        session.install_program(FIGURE_6_PROGRAM, persist=False)
        phone_db.get_value(pole_oid, context=session.context)
        event_id = phone_db.bus.last_event.event_id
        decisions = session.engine.decisions_for(event_id)
        assert len(decisions) == 3  # three attribute rules fired
        assert all(d.kind == "instance" for d in decisions)

    def test_decisions_for_unknown_event(self, phone_db, generic_session):
        assert generic_session.engine.decisions_for(10**9) == []


class TestOidGeneration:
    def test_fresh_oid_has_class_prefix_and_monotonic(self):
        a = fresh_oid("Pole")
        b = fresh_oid("Pole")
        assert a.startswith("Pole#") and b.startswith("Pole#")
        assert int(a.split("#")[1]) < int(b.split("#")[1])

    def test_ensure_counter_skips_forward(self):
        current = int(fresh_oid("X").split("#")[1])
        ensure_oid_counter_above(current + 500)
        assert int(fresh_oid("X").split("#")[1]) > current + 500

    def test_ensure_counter_never_rewinds(self):
        current = int(fresh_oid("X").split("#")[1])
        ensure_oid_counter_above(1)   # far below; must not rewind
        assert int(fresh_oid("X").split("#")[1]) > current


class TestSchemaAccessors:
    def test_has_class_and_attribute_partitions(self, phone_db):
        schema = phone_db.get_schema_object("phone_net")
        assert schema.has_class("Pole")
        assert not schema.has_class("Tree")
        pole = schema.get_class("Pole")
        assert [a.name for a in pole.spatial_attributes()] == [
            "pole_location"]
        assert [a.name for a in pole.reference_attributes()] == [
            "pole_supplier"]


class TestDatabaseStatsBuffer:
    def test_stats_buffer_shape(self):
        db = GeographicDatabase("S")
        snap = db.stats_buffer()
        assert set(snap) == {"hits", "misses", "evictions", "write_backs",
                             "hit_ratio", "write_allocs"}


class TestPresentationRegistryQueries:
    def test_has_and_names(self):
        from repro.uilib import PresentationRegistry

        registry = PresentationRegistry()
        assert registry.has_class_format("pointFormat")
        assert not registry.has_class_format("ghost")
        assert registry.has_attribute_format("composed_text")
        assert not registry.has_attribute_format("ghost")
        assert "slider" in registry.attribute_format_names()
        assert "lineFormat" in registry.class_format_names()


class TestLangSingleDirectiveEntry:
    def test_parse_directive_and_check_directive(self, phone_db):
        from repro.lang.parser import Parser
        from repro.lang.semantics import SemanticAnalyzer
        from repro.uilib import (
            InterfaceObjectLibrary,
            PresentationRegistry,
            install_standard_composites,
        )

        parser = Parser(
            "for user x schema phone_net display as default "
            "class Pole display")
        node = parser.parse_directive()
        assert node.context.user == "x"
        library = InterfaceObjectLibrary()
        install_standard_composites(library, persist=False)
        analyzer = SemanticAnalyzer(phone_db, library,
                                    PresentationRegistry())
        checked = analyzer.check_directive(node)
        assert checked.classes[0].class_name == "Pole"


class TestInteractionPickMapStep:
    def test_pick_map_step(self, phone_db):
        from repro.core import GISSession
        from repro.ui import InteractionScript

        session = GISSession(phone_db, user="u", application="a")
        session.connect("phone_net")
        session.select_class("Pole")
        area = session.screen.window("classset_Pole").find("map")
        (col, row), __ = next(iter(area.rasterize().items()))
        script = InteractionScript().pick_map("Pole", col, row)
        results = script.run(session)
        assert results[0].ok
        assert results[0].output is not None
