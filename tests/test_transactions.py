"""Unit tests for transactions: atomicity, staging, integrity, protocol."""

import pytest

from repro.errors import (
    ObjectNotFoundError,
    SchemaError,
    TransactionError,
    TypeMismatchError,
)
from repro.geodb import (
    Attribute,
    GeoClass,
    GeographicDatabase,
    GeometryType,
    ReferenceType,
    TEXT,
    TxnState,
)
from repro.spatial import Point


@pytest.fixture()
def db():
    database = GeographicDatabase("T")
    schema = database.create_schema("s")
    schema.add_class(GeoClass("Supplier", [
        Attribute("name", TEXT, required=True),
    ]))
    schema.add_class(GeoClass("Pole", [
        Attribute("label", TEXT),
        Attribute("supplier", ReferenceType("Supplier")),
        Attribute("location", GeometryType("point")),
    ]))
    return database


class TestCommitAbort:
    def test_commit_applies_all(self, db):
        with db.transaction() as txn:
            sup = txn.insert("s", "Supplier", {"name": "acme"})
            txn.insert("s", "Pole", {"label": "p1", "supplier": sup})
        assert db.count("s", "Supplier") == 1
        assert db.count("s", "Pole") == 1

    def test_abort_applies_nothing(self, db):
        txn = db.transaction()
        txn.insert("s", "Supplier", {"name": "acme"})
        txn.abort()
        assert db.count("s", "Supplier") == 0
        assert txn.state is TxnState.ABORTED

    def test_exception_in_context_aborts(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction() as txn:
                txn.insert("s", "Supplier", {"name": "acme"})
                raise RuntimeError("boom")
        assert db.count("s", "Supplier") == 0

    def test_failed_commit_leaves_database_unchanged(self, db):
        txn = db.transaction()
        txn.insert("s", "Pole", {"label": "orphan",
                                 "supplier": "Supplier#999"})
        with pytest.raises(TransactionError):
            txn.commit()
        assert txn.state is TxnState.ABORTED
        assert db.count("s", "Pole") == 0

    def test_operations_after_commit_rejected(self, db):
        txn = db.transaction()
        txn.insert("s", "Supplier", {"name": "a"})
        txn.commit()
        with pytest.raises(TransactionError):
            txn.insert("s", "Supplier", {"name": "b"})
        with pytest.raises(TransactionError):
            txn.commit()


class TestStagedView:
    def test_read_own_insert(self, db):
        txn = db.transaction()
        oid = txn.insert("s", "Supplier", {"name": "a"})
        assert txn.staged_value(oid) == {"name": "a"}
        assert txn.staged_exists(oid)
        txn.abort()

    def test_update_over_committed(self, db):
        oid = db.insert("s", "Supplier", {"name": "a"})
        txn = db.transaction()
        txn.update(oid, {"name": "b"})
        assert txn.staged_value(oid) == {"name": "b"}
        assert db.get_object(oid).get("name") == "a"  # not applied yet
        txn.commit()
        assert db.get_object(oid).get("name") == "b"

    def test_delete_then_staged_missing(self, db):
        oid = db.insert("s", "Supplier", {"name": "a"})
        txn = db.transaction()
        # No pole references it; delete is legal.
        txn.delete(oid)
        assert not txn.staged_exists(oid)
        txn.commit()
        assert db.find_object(oid) is None

    def test_insert_update_in_same_txn(self, db):
        with db.transaction() as txn:
            oid = txn.insert("s", "Pole", {"label": "x"})
            txn.update(oid, {"label": "y"})
        assert db.get_object(oid).get("label") == "y"


class TestValidationAtStaging:
    def test_insert_type_error_immediate(self, db):
        txn = db.transaction()
        with pytest.raises(TypeMismatchError):
            txn.insert("s", "Supplier", {"name": 42})
        txn.abort()

    def test_insert_unknown_class(self, db):
        txn = db.transaction()
        with pytest.raises(SchemaError):
            txn.insert("s", "Ghost", {})
        txn.abort()

    def test_update_missing_object(self, db):
        txn = db.transaction()
        with pytest.raises(ObjectNotFoundError):
            txn.update("Supplier#404", {"name": "x"})
        txn.abort()

    def test_delete_twice_rejected(self, db):
        oid = db.insert("s", "Supplier", {"name": "a"})
        txn = db.transaction()
        txn.delete(oid)
        with pytest.raises(ObjectNotFoundError):
            txn.delete(oid)
        txn.abort()

    def test_empty_update_rejected(self, db):
        oid = db.insert("s", "Supplier", {"name": "a"})
        txn = db.transaction()
        with pytest.raises(TransactionError):
            txn.update(oid, {})
        txn.abort()


class TestReferentialIntegrity:
    def test_dangling_reference_rejected(self, db):
        with pytest.raises(TransactionError):
            db.insert("s", "Pole", {"supplier": "Supplier#404"})

    def test_reference_to_same_txn_insert_ok(self, db):
        with db.transaction() as txn:
            sup = txn.insert("s", "Supplier", {"name": "a"})
            txn.insert("s", "Pole", {"supplier": sup})
        assert db.count("s", "Pole") == 1

    def test_wrong_class_reference_rejected(self, db):
        pole = db.insert("s", "Pole", {"label": "p"})
        with pytest.raises(TransactionError):
            db.insert("s", "Pole", {"supplier": pole})

    def test_delete_referenced_object_rejected(self, db):
        sup = db.insert("s", "Supplier", {"name": "a"})
        db.insert("s", "Pole", {"supplier": sup})
        with pytest.raises(TransactionError):
            db.delete(sup)

    def test_delete_ok_when_referrer_deleted_in_same_txn(self, db):
        sup = db.insert("s", "Supplier", {"name": "a"})
        pole = db.insert("s", "Pole", {"supplier": sup})
        with db.transaction() as txn:
            txn.delete(pole)
            txn.delete(sup)
        assert db.count("s", "Supplier") == 0

    def test_unsetting_reference_allows_delete(self, db):
        sup = db.insert("s", "Supplier", {"name": "a"})
        pole = db.insert("s", "Pole", {"supplier": sup})
        db.update(pole, {"supplier": None})
        db.delete(sup)
        assert db.count("s", "Supplier") == 0


class TestEvents:
    def test_validate_then_commit_phases(self, db):
        phases = []
        db.bus.subscribe(
            lambda e: phases.append((e.kind.value, e.payload.get("phase")))
        )
        db.insert("s", "Supplier", {"name": "a"})
        assert phases == [("insert", "validate"), ("insert", "commit")]

    def test_aborted_txn_publishes_nothing(self, db):
        events = []
        db.bus.subscribe(lambda e: events.append(e))
        txn = db.transaction()
        txn.insert("s", "Supplier", {"name": "a"})
        txn.abort()
        assert events == []

    def test_multi_intent_event_order(self, db):
        log = []
        db.bus.subscribe(
            lambda e: log.append((e.payload.get("phase"), e.subject))
        )
        with db.transaction() as txn:
            a = txn.insert("s", "Supplier", {"name": "a"})
            b = txn.insert("s", "Supplier", {"name": "b"})
        assert log == [
            ("validate", a), ("validate", b),
            ("commit", a), ("commit", b),
        ]

    def test_geometry_update_keeps_index_current(self, db):
        oid = db.insert("s", "Pole", {"location": Point(1, 1)})
        from repro.spatial import BBox

        assert db.window_query("s", "Pole", "location",
                               BBox(0, 0, 2, 2))[0].oid == oid
        db.update(oid, {"location": Point(50, 50)})
        assert db.window_query("s", "Pole", "location",
                               BBox(0, 0, 2, 2)) == []
        assert db.window_query("s", "Pole", "location",
                               BBox(49, 49, 51, 51))[0].oid == oid
