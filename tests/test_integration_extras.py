"""Integration tests: checkpoint durability, user-defined schema mode,
multi-schema databases, and the full stack under one roof."""

import pytest

from repro.active import ConstraintGuard, ProximityConstraint
from repro.core import (
    ClassCustomization,
    ContextPattern,
    CustomizationDirective,
    GISSession,
)
from repro.geodb import (
    Attribute,
    FilePager,
    GeoClass,
    GeographicDatabase,
    GeometryType,
    MetadataCatalog,
    TEXT,
)
from repro.spatial import LineString, Point
from repro.uilib import Text
from repro.workloads import (
    build_environment_schema,
    build_phone_net_schema,
    populate_environment,
    populate_phone_net,
    register_pole_methods,
)


class TestCheckpoint:
    def test_checkpoint_makes_reopen_complete(self, tmp_path):
        path = str(tmp_path / "ckpt.db")
        db = GeographicDatabase("CK", pager=FilePager(path))
        schema = db.create_schema("s")
        schema.add_class(GeoClass("P", [
            Attribute("loc", GeometryType("point"), required=True)]))
        MetadataCatalog(db).save_all_schemas()
        oids = [db.insert("s", "P", {"loc": Point(i, i)}) for i in range(9)]
        flushed = db.checkpoint()
        assert flushed > 0
        db.pager.close()

        reopened = GeographicDatabase("CK", pager=FilePager(path))
        catalog = MetadataCatalog(reopened)
        reopened.register_schema(catalog.load_schema("s"))
        assert reopened.load_from_storage() == 9
        assert sorted(reopened.extent("s", "P").oids()) == sorted(oids)
        reopened.pager.close()

    def test_checkpoint_on_memory_pager_is_safe(self, phone_db):
        assert phone_db.checkpoint() >= 0


class TestUserDefinedSchemaMode:
    def test_formatter_invoked(self, phone_db):
        session = GISSession(phone_db, user="rita", application="custom")
        session.install_directive(CustomizationDirective(
            name="ud", pattern=ContextPattern(user="rita"),
            schema_name="phone_net", schema_display="user_defined",
            classes=(ClassCustomization("Pole"),),
        ), persist=False)

        def formatter(window, schema_info):
            control = window.child("control")
            control.add_child(Text(
                "banner", label="note",
                value=f"custom view of {schema_info['name']}"))
            # the designer's code may also prune the generic list
            window.find("classes").remove_item("Cable")

        session.builder.user_defined_schema_formatter = formatter
        session.connect("phone_net")
        window = session.screen.window("schema_phone_net")
        assert window.get_property("user_defined_hook") is True
        assert "custom view of phone_net" in session.render(
            "schema_phone_net")
        keys = [k for k, __ in window.find("classes").items]
        assert "Cable" not in keys and "Pole" in keys

    def test_mode_without_formatter_keeps_generic_list(self, phone_db):
        session = GISSession(phone_db, user="rita", application="custom")
        session.install_directive(CustomizationDirective(
            name="ud", pattern=ContextPattern(user="rita"),
            schema_name="phone_net", schema_display="user_defined",
            classes=(ClassCustomization("Pole"),),
        ), persist=False)
        session.connect("phone_net")
        window = session.screen.window("schema_phone_net")
        assert window.visible
        assert window.find("classes") is not None


class TestMultiSchemaDatabase:
    @pytest.fixture()
    def dual_db(self):
        db = GeographicDatabase("DUAL")
        db.register_schema(build_phone_net_schema())
        register_pole_methods(db)
        populate_phone_net(db)
        db.register_schema(build_environment_schema())
        from repro.workloads import register_environment_methods

        register_environment_methods(db)
        populate_environment(db, parcels=5, rivers=1, roads=1, stations=2)
        return db

    def test_sessions_browse_either_schema(self, dual_db):
        session = GISSession(dual_db, user="u", application="a")
        session.connect("phone_net")
        session.select_class("Pole")
        session2 = GISSession(dual_db, user="u", application="a")
        session2.connect("land_use")
        session2.select_class("Station")
        assert "classset_Pole" in session.screen.names()
        assert "classset_Station" in session2.screen.names()

    def test_directives_scoped_to_their_schema(self, dual_db):
        session = GISSession(dual_db, user="u", application="a")
        session.install_directive(CustomizationDirective(
            name="env_only", pattern=ContextPattern(user="u"),
            schema_name="land_use", schema_display="null",
            classes=(ClassCustomization("Station"),),
        ), persist=False)
        session.connect("phone_net")
        assert session.screen.window("schema_phone_net").visible
        session2 = GISSession(dual_db, user="u", application="a",
                              engine=session.engine)
        session2.connect("land_use")
        assert not session2.screen.window("schema_land_use").visible
        assert "classset_Station" in session2.screen.names()


class TestFullStackScenario:
    def test_everything_together(self, tmp_path):
        """Constraints + customization + scenario + persistence, one run."""
        path = str(tmp_path / "full.db")
        db = GeographicDatabase("FULL", pager=FilePager(path))
        db.register_schema(build_phone_net_schema())
        register_pole_methods(db)
        populate_phone_net(db)
        catalog = MetadataCatalog(db)
        catalog.save_all_schemas()

        guard = ConstraintGuard(db, "phone_net")
        guard.add(ProximityConstraint("Pole", "pole_location",
                                      "Street", "axis", 20.0))

        session = GISSession(db, user="juliano",
                             application="pole_manager", catalog=catalog,
                             auto_refresh=True)
        from repro.lang import FIGURE_6_PROGRAM

        session.install_program(FIGURE_6_PROGRAM)
        session.connect("phone_net")
        assert "classset_Pole" in session.screen.names()

        # a scenario that passes constraints commits and refreshes the UI
        count_before = len(
            session.screen.window("classset_Pole").find("instances").items)
        with db.scenario("phone_net") as plan:
            axis = next(iter(db.extent("phone_net", "Street"))).geometry(
                "axis")
            anchor = axis.interpolate(0.5)
            plan.insert("Pole", {"pole_location": Point(anchor.x + 1.0,
                                                        anchor.y + 1.0)})
            plan.commit()
        count_after = len(
            session.screen.window("classset_Pole").find("instances").items)
        assert count_after == count_before + 1

        # persistence survives a checkpointed close/reopen
        db.checkpoint()
        db.pager.close()
        reopened = GeographicDatabase("FULL", pager=FilePager(path))
        catalog2 = MetadataCatalog(reopened)
        reopened.register_schema(catalog2.load_schema("phone_net"))
        assert reopened.load_from_storage() == (
            count_after
            + reopened_count_other_classes(reopened)
        )

        guard.manager.detach()
        session.engine.manager.detach()
        reopened.pager.close()


def reopened_count_other_classes(db) -> int:
    return sum(
        db.count("phone_net", name)
        for name in ("Supplier", "District", "Street", "Duct", "Cable",
                     "NetworkElement")
    )


class TestSchemaScopedRules:
    def test_same_class_name_in_two_schemas(self):
        """Directives never cross-fire between same-named classes."""
        db = GeographicDatabase("TWIN")
        for schema_name in ("city_a", "city_b"):
            schema = db.create_schema(schema_name)
            schema.add_class(GeoClass("Pole", [
                Attribute("loc", GeometryType("point"), required=True)]))
            db.insert(schema_name, "Pole", {"loc": Point(1.0, 1.0)})

        session = GISSession(db, user="u", application="a")
        session.install_directive(CustomizationDirective(
            name="a_only", pattern=ContextPattern(user="u"),
            schema_name="city_a",
            classes=(ClassCustomization(
                "Pole", presentation_format="pointFormat"),),
        ), persist=False)

        session.connect("city_a")
        session.select_class("Pole")
        window_a = session.screen.window("classset_Pole")
        assert window_a.get_property("presentation_format") == "pointFormat"

        other = GISSession(db, user="u", application="a",
                           engine=session.engine)
        other.connect("city_b")
        other.select_class("Pole")
        window_b = other.screen.window("classset_Pole")
        assert window_b.get_property("presentation_format") == \
            "defaultFormat"
        session.shutdown()
        other.shutdown()
