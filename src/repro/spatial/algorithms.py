"""Computational-geometry algorithms used by the topology and display layers.

Everything here is pure: functions take geometries (or raw coordinates) and
return values without touching any database state. The topological predicate
layer (:mod:`repro.spatial.topology`) and the cartographic generalization
helpers (:mod:`repro.spatial.scale`) are built on these primitives.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..errors import GeometryError
from .geometry import (
    EPSILON,
    BBox,
    Geometry,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
    Ring,
    _point_on_segment,
)

Coord = tuple[float, float]


def orientation(a: Coord, b: Coord, c: Coord) -> int:
    """Sign of the cross product of AB and AC.

    Returns ``1`` for a counter-clockwise turn, ``-1`` for clockwise and
    ``0`` for (nearly) collinear points.
    """
    cross = (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])
    scale = max(
        1.0, abs(b[0] - a[0]), abs(b[1] - a[1]), abs(c[0] - a[0]), abs(c[1] - a[1])
    )
    if abs(cross) <= EPSILON * scale:
        return 0
    return 1 if cross > 0 else -1


def segments_intersect(p1: Coord, p2: Coord, q1: Coord, q2: Coord) -> bool:
    """True when closed segments ``p1p2`` and ``q1q2`` share at least a point."""
    d1 = orientation(q1, q2, p1)
    d2 = orientation(q1, q2, p2)
    d3 = orientation(p1, p2, q1)
    d4 = orientation(p1, p2, q2)
    if d1 != d2 and d3 != d4:
        return True
    if d1 == 0 and _point_on_segment(p1[0], p1[1], q1[0], q1[1], q2[0], q2[1]):
        return True
    if d2 == 0 and _point_on_segment(p2[0], p2[1], q1[0], q1[1], q2[0], q2[1]):
        return True
    if d3 == 0 and _point_on_segment(q1[0], q1[1], p1[0], p1[1], p2[0], p2[1]):
        return True
    if d4 == 0 and _point_on_segment(q2[0], q2[1], p1[0], p1[1], p2[0], p2[1]):
        return True
    return False


def segment_intersection_point(
    p1: Coord, p2: Coord, q1: Coord, q2: Coord
) -> Coord | None:
    """Intersection point of two *properly* crossing segments, else ``None``.

    Collinear overlaps return ``None`` — callers that care about overlap use
    :func:`segments_intersect` first.
    """
    rx, ry = p2[0] - p1[0], p2[1] - p1[1]
    sx, sy = q2[0] - q1[0], q2[1] - q1[1]
    denom = rx * sy - ry * sx
    if abs(denom) < EPSILON:
        return None
    t = ((q1[0] - p1[0]) * sy - (q1[1] - p1[1]) * sx) / denom
    u = ((q1[0] - p1[0]) * ry - (q1[1] - p1[1]) * rx) / denom
    if -EPSILON <= t <= 1 + EPSILON and -EPSILON <= u <= 1 + EPSILON:
        return (p1[0] + t * rx, p1[1] + t * ry)
    return None


def point_segment_distance(p: Coord, a: Coord, b: Coord) -> float:
    """Euclidean distance from point ``p`` to closed segment ``ab``."""
    ax, ay = a
    bx, by = b
    px, py = p
    dx, dy = bx - ax, by - ay
    length_sq = dx * dx + dy * dy
    # degenerate-segment cutoff: compare against EPSILON**2, matching the
    # squared-length dimension (EPSILON alone misclassifies short real
    # segments, e.g. length 1e-5, as points)
    if length_sq < EPSILON * EPSILON:
        return math.hypot(px - ax, py - ay)
    t = max(0.0, min(1.0, ((px - ax) * dx + (py - ay) * dy) / length_sq))
    return math.hypot(px - (ax + t * dx), py - (ay + t * dy))


def segment_segment_distance(p1: Coord, p2: Coord, q1: Coord, q2: Coord) -> float:
    if segments_intersect(p1, p2, q1, q2):
        return 0.0
    return min(
        point_segment_distance(p1, q1, q2),
        point_segment_distance(p2, q1, q2),
        point_segment_distance(q1, p1, p2),
        point_segment_distance(q2, p1, p2),
    )


def _boundary_segments(geom: Geometry):
    """Yield every boundary segment of a geometry (empty for points)."""
    if isinstance(geom, LineString):
        yield from geom.segments()
    elif isinstance(geom, Polygon):
        for ring in geom.rings():
            yield from ring.segments()
    elif isinstance(geom, (MultiLineString, MultiPolygon)):
        for member in geom:
            yield from _boundary_segments(member)


def _vertices(geom: Geometry) -> list[Coord]:
    if isinstance(geom, Point):
        return [(geom.x, geom.y)]
    if isinstance(geom, LineString):
        return list(geom.coords)
    if isinstance(geom, Polygon):
        out: list[Coord] = []
        for ring in geom.rings():
            out.extend(ring.coords)
        return out
    if isinstance(geom, (MultiPoint, MultiLineString, MultiPolygon)):
        out = []
        for member in geom:
            out.extend(_vertices(member))
        return out
    raise GeometryError(f"unsupported geometry type {type(geom).__name__}")


def _contains_point(geom: Geometry, x: float, y: float) -> bool:
    """Closed point-in-geometry test (boundary counts as inside)."""
    if isinstance(geom, Point):
        return math.hypot(geom.x - x, geom.y - y) <= EPSILON
    if isinstance(geom, LineString):
        return any(
            _point_on_segment(x, y, a[0], a[1], b[0], b[1]) for a, b in geom.segments()
        )
    if isinstance(geom, Polygon):
        return geom.contains_point(x, y)
    if isinstance(geom, (MultiPoint, MultiLineString, MultiPolygon)):
        return any(_contains_point(m, x, y) for m in geom)
    raise GeometryError(f"unsupported geometry type {type(geom).__name__}")


def geometry_distance(a: Geometry, b: Geometry) -> float:
    """Minimum Euclidean distance between two geometries (0 when touching)."""
    if isinstance(a, Point) and isinstance(b, Point):
        return a.distance_to(b)

    # A point inside an areal geometry, or any boundary crossing → 0.
    for x, y in _vertices(a):
        if _contains_point(b, x, y):
            return 0.0
    for x, y in _vertices(b):
        if _contains_point(a, x, y):
            return 0.0
    segs_a = list(_boundary_segments(a))
    segs_b = list(_boundary_segments(b))
    best = math.inf
    if segs_a and segs_b:
        for sa in segs_a:
            for sb in segs_b:
                best = min(best, segment_segment_distance(sa[0], sa[1], sb[0], sb[1]))
                if best == 0.0:
                    return 0.0
    elif segs_a:
        for x, y in _vertices(b):
            for sa in segs_a:
                best = min(best, point_segment_distance((x, y), sa[0], sa[1]))
    elif segs_b:
        for x, y in _vertices(a):
            for sb in segs_b:
                best = min(best, point_segment_distance((x, y), sb[0], sb[1]))
    else:
        for xa, ya in _vertices(a):
            for xb, yb in _vertices(b):
                best = min(best, math.hypot(xa - xb, ya - yb))
    return best


def convex_hull(points: Sequence[Coord]) -> list[Coord]:
    """Andrew's monotone-chain convex hull; returns CCW vertices.

    Degenerate inputs (fewer than 3 distinct points, or all collinear)
    return the distinct points sorted lexicographically.

    Turn tests use the *exact* sign of the cross product, not the
    tolerance-based :func:`orientation`: with mixed coordinate magnitudes
    an epsilon test can classify a genuine corner as collinear and pop an
    extreme point (the sorted order of nearly-collinear points is not
    their order along the line, so the monotone-chain invariant breaks).
    """
    pts = sorted(set((float(x), float(y)) for x, y in points))
    if len(pts) <= 2:
        return pts

    def exact_turn(a: Coord, b: Coord, c: Coord) -> float:
        return (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])

    def half(chain_pts: list[Coord]) -> list[Coord]:
        chain: list[Coord] = []
        for p in chain_pts:
            while len(chain) >= 2 and exact_turn(chain[-2], chain[-1], p) <= 0:
                chain.pop()
            chain.append(p)
        return chain

    lower = half(pts)
    upper = half(pts[::-1])
    hull = lower[:-1] + upper[:-1]
    return hull if len(hull) >= 3 else pts


def simplify_line(coords: Sequence[Coord], tolerance: float) -> list[Coord]:
    """Douglas–Peucker polyline simplification.

    Used by the display layer for cartographic generalization when a map is
    rendered at a small scale. Always keeps the two endpoints.
    """
    if tolerance < 0:
        raise GeometryError("tolerance must be non-negative")
    pts = [(float(x), float(y)) for x, y in coords]
    if len(pts) <= 2:
        return pts

    keep = [False] * len(pts)
    keep[0] = keep[-1] = True
    stack = [(0, len(pts) - 1)]
    while stack:
        first, last = stack.pop()
        max_dist = -1.0
        index = -1
        for i in range(first + 1, last):
            dist = point_segment_distance(pts[i], pts[first], pts[last])
            if dist > max_dist:
                max_dist = dist
                index = i
        if max_dist > tolerance and index > 0:
            keep[index] = True
            stack.append((first, index))
            stack.append((index, last))
    return [p for p, k in zip(pts, keep) if k]


def buffer_point(point: Point, radius: float, sides: int = 16) -> Polygon:
    """Disc approximation around a point — used by proximity constraints."""
    return Polygon.regular(point.x, point.y, radius, sides)


def buffer_line(line: LineString, radius: float, sides: int = 8) -> MultiPolygon:
    """Crude line buffer: one oriented rectangle per segment plus end discs.

    The pieces overlap, which is fine for the containment/proximity checks
    the constraint layer performs (it tests ``MultiPolygon.contains_point``).
    """
    if radius <= 0:
        raise GeometryError("buffer radius must be positive")
    pieces: list[Polygon] = []
    for (ax, ay), (bx, by) in line.segments():
        length = math.hypot(bx - ax, by - ay)
        if length < EPSILON:
            continue
        nx, ny = -(by - ay) / length * radius, (bx - ax) / length * radius
        pieces.append(
            Polygon(
                [
                    (ax + nx, ay + ny),
                    (bx + nx, by + ny),
                    (bx - nx, by - ny),
                    (ax - nx, ay - ny),
                ]
            )
        )
    for x, y in (line.coords[0], line.coords[-1]):
        pieces.append(Polygon.regular(x, y, radius, max(sides, 8)))
    return MultiPolygon(pieces)


def densify_line(coords: Sequence[Coord], max_segment: float) -> list[Coord]:
    """Insert vertices so that no segment is longer than ``max_segment``."""
    if max_segment <= 0:
        raise GeometryError("max_segment must be positive")
    pts = [(float(x), float(y)) for x, y in coords]
    if len(pts) < 2:
        return pts
    out = [pts[0]]
    for (ax, ay), (bx, by) in zip(pts, pts[1:]):
        seg = math.hypot(bx - ax, by - ay)
        pieces = max(1, math.ceil(seg / max_segment))
        for i in range(1, pieces + 1):
            t = i / pieces
            out.append((ax + t * (bx - ax), ay + t * (by - ay)))
    return out


def polygon_clip_bbox(poly: Polygon, box: BBox) -> Polygon | None:
    """Sutherland–Hodgman clip of a polygon's exterior ring to a bbox.

    Holes are dropped (display-only use: the map window clips phenomena to
    the visible extent). Returns ``None`` when nothing remains visible.
    """
    if box.is_empty():
        return None

    def clip(points: list[Coord], inside, intersect) -> list[Coord]:
        out: list[Coord] = []
        n = len(points)
        for i in range(n):
            cur = points[i]
            prev = points[(i - 1) % n]
            if inside(cur):
                if not inside(prev):
                    out.append(intersect(prev, cur))
                out.append(cur)
            elif inside(prev):
                out.append(intersect(prev, cur))
        return out

    def x_cross(a: Coord, b: Coord, x: float) -> Coord:
        t = (x - a[0]) / (b[0] - a[0])
        return (x, a[1] + t * (b[1] - a[1]))

    def y_cross(a: Coord, b: Coord, y: float) -> Coord:
        t = (y - a[1]) / (b[1] - a[1])
        return (a[0] + t * (b[0] - a[0]), y)

    pts = list(poly.exterior.coords)
    pts = clip(pts, lambda p: p[0] >= box.min_x, lambda a, b: x_cross(a, b, box.min_x))
    if len(pts) >= 3:
        pts = clip(pts, lambda p: p[0] <= box.max_x, lambda a, b: x_cross(a, b, box.max_x))
    if len(pts) >= 3:
        pts = clip(pts, lambda p: p[1] >= box.min_y, lambda a, b: y_cross(a, b, box.min_y))
    if len(pts) >= 3:
        pts = clip(pts, lambda p: p[1] <= box.max_y, lambda a, b: y_cross(a, b, box.max_y))
    if len(pts) < 3:
        return None
    try:
        ring = Ring(pts)
    except GeometryError:
        return None
    if ring.area() < EPSILON:
        return None
    return Polygon(ring)


def line_clip_bbox(line: LineString, box: BBox) -> list[LineString]:
    """Cohen–Sutherland-style clip of a polyline to a bbox.

    Returns the visible pieces (possibly empty, possibly several).
    """
    if box.is_empty():
        return []

    def clip_segment(a: Coord, b: Coord) -> tuple[Coord, Coord] | None:
        t0, t1 = 0.0, 1.0
        dx, dy = b[0] - a[0], b[1] - a[1]
        for p, q in (
            (-dx, a[0] - box.min_x),
            (dx, box.max_x - a[0]),
            (-dy, a[1] - box.min_y),
            (dy, box.max_y - a[1]),
        ):
            if abs(p) < EPSILON:
                if q < 0:
                    return None
                continue
            r = q / p
            if p < 0:
                if r > t1:
                    return None
                t0 = max(t0, r)
            else:
                if r < t0:
                    return None
                t1 = min(t1, r)
        if t0 > t1:
            return None
        return (
            (a[0] + t0 * dx, a[1] + t0 * dy),
            (a[0] + t1 * dx, a[1] + t1 * dy),
        )

    pieces: list[list[Coord]] = []
    current: list[Coord] = []
    for a, b in line.segments():
        clipped = clip_segment(a, b)
        if clipped is None:
            if len(current) >= 2:
                pieces.append(current)
            current = []
            continue
        start, end = clipped
        if current and math.hypot(
            current[-1][0] - start[0], current[-1][1] - start[1]
        ) <= EPSILON:
            current.append(end)
        else:
            if len(current) >= 2:
                pieces.append(current)
            current = [start, end]
    if len(current) >= 2:
        pieces.append(current)
    out = []
    for piece in pieces:
        try:
            out.append(LineString(piece))
        except GeometryError:
            continue
    return out
