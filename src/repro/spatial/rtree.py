"""An in-memory R-tree (Guttman, quadratic split) for spatial access.

The geographic DBMS uses this index to answer the window queries behind the
Class-set window's map display ("show every pole within the visible
extent") without scanning the full extension. Benchmark C5 compares this
index against a naive scan.

The tree stores ``(BBox, item)`` pairs where ``item`` is any hashable
payload — the query layer stores object ids. Deletion uses the classic
condense-tree + reinsert strategy.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterator

from ..errors import IndexError_
from .geometry import BBox


class _Node:
    __slots__ = ("leaf", "entries", "parent")

    def __init__(self, leaf: bool):
        self.leaf = leaf
        #: For leaves: list of (BBox, item). For internal: list of (BBox, _Node).
        self.entries: list[tuple[BBox, Any]] = []
        self.parent: "_Node | None" = None

    def bbox(self) -> BBox:
        box = BBox.empty()
        for entry_box, _child in self.entries:
            box = box.union(entry_box)
        return box


class RTree:
    """Dynamic R-tree with Guttman's quadratic split.

    Parameters
    ----------
    max_entries:
        Node capacity; a node splits when it would exceed this.
    min_entries:
        Minimum fill; defaults to ``max_entries // 2``. Underfull nodes are
        dissolved and their entries reinserted on delete.
    """

    def __init__(self, max_entries: int = 8, min_entries: int | None = None):
        if max_entries < 2:
            raise IndexError_("max_entries must be at least 2")
        self.max_entries = max_entries
        self.min_entries = min_entries if min_entries is not None else max(1, max_entries // 2)
        if self.min_entries > self.max_entries // 2:
            raise IndexError_("min_entries must be at most max_entries // 2")
        self._root = _Node(leaf=True)
        self._size = 0

    # -- basic properties ---------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def bbox(self) -> BBox:
        """Bounding box of everything indexed (empty box when empty)."""
        return self._root.bbox()

    @property
    def height(self) -> int:
        """Number of levels (1 for a tree that is just a leaf root)."""
        node, levels = self._root, 1
        while not node.leaf:
            node = node.entries[0][1]
            levels += 1
        return levels

    # -- insertion ----------------------------------------------------------

    def insert(self, box: BBox, item: Any) -> None:
        """Index ``item`` under bounding box ``box``."""
        if box.is_empty():
            raise IndexError_("cannot index an empty bbox")
        leaf = self._choose_leaf(self._root, box)
        leaf.entries.append((box, item))
        self._size += 1
        if len(leaf.entries) > self.max_entries:
            self._split_and_propagate(leaf)
        else:
            self._adjust_upward(leaf)

    def _choose_leaf(self, node: _Node, box: BBox) -> _Node:
        while not node.leaf:
            best = None
            best_key: tuple[float, float] | None = None
            for entry_box, child in node.entries:
                key = (entry_box.enlargement(box), entry_box.area())
                if best_key is None or key < best_key:
                    best_key = key
                    best = child
            assert best is not None
            node = best
        return node

    def _split_and_propagate(self, node: _Node) -> None:
        while len(node.entries) > self.max_entries:
            sibling = self._quadratic_split(node)
            parent = node.parent
            if parent is None:
                new_root = _Node(leaf=False)
                new_root.entries = [(node.bbox(), node), (sibling.bbox(), sibling)]
                node.parent = new_root
                sibling.parent = new_root
                self._root = new_root
                return
            sibling.parent = parent
            self._refresh_child_box(parent, node)
            parent.entries.append((sibling.bbox(), sibling))
            node = parent
        self._adjust_upward(node)

    def _quadratic_split(self, node: _Node) -> _Node:
        entries = node.entries
        # Pick the two seeds wasting the most area if grouped together.
        worst = -1.0
        seeds = (0, 1)
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                waste = (
                    entries[i][0].union(entries[j][0]).area()
                    - entries[i][0].area()
                    - entries[j][0].area()
                )
                if waste > worst:
                    worst = waste
                    seeds = (i, j)
        i, j = seeds
        group_a = [entries[i]]
        group_b = [entries[j]]
        box_a, box_b = entries[i][0], entries[j][0]
        rest = [e for k, e in enumerate(entries) if k not in (i, j)]

        while rest:
            # Force assignment if one group must absorb everything left.
            if len(group_a) + len(rest) == self.min_entries:
                group_a.extend(rest)
                for entry_box, __ in rest:
                    box_a = box_a.union(entry_box)
                rest = []
                break
            if len(group_b) + len(rest) == self.min_entries:
                group_b.extend(rest)
                for entry_box, __ in rest:
                    box_b = box_b.union(entry_box)
                rest = []
                break
            # Pick the entry with the greatest preference for one group.
            best_idx = 0
            best_diff = -1.0
            for k, (entry_box, __) in enumerate(rest):
                d_a = box_a.enlargement(entry_box)
                d_b = box_b.enlargement(entry_box)
                diff = abs(d_a - d_b)
                if diff > best_diff:
                    best_diff = diff
                    best_idx = k
            entry = rest.pop(best_idx)
            d_a = box_a.enlargement(entry[0])
            d_b = box_b.enlargement(entry[0])
            if (d_a, box_a.area(), len(group_a)) <= (d_b, box_b.area(), len(group_b)):
                group_a.append(entry)
                box_a = box_a.union(entry[0])
            else:
                group_b.append(entry)
                box_b = box_b.union(entry[0])

        node.entries = group_a
        sibling = _Node(leaf=node.leaf)
        sibling.entries = group_b
        if not sibling.leaf:
            for __, child in sibling.entries:
                child.parent = sibling
        return sibling

    def _refresh_child_box(self, parent: _Node, child: _Node) -> None:
        for idx, (__, node) in enumerate(parent.entries):
            if node is child:
                parent.entries[idx] = (child.bbox(), child)
                return
        raise IndexError_("child not present in its parent (corrupt tree)")

    def _adjust_upward(self, node: _Node) -> None:
        while node.parent is not None:
            self._refresh_child_box(node.parent, node)
            node = node.parent

    # -- search -------------------------------------------------------------

    def search(self, box: BBox) -> list[Any]:
        """All items whose bbox intersects ``box``."""
        return [item for __, item in self.search_entries(box)]

    def search_entries(self, box: BBox) -> list[tuple[BBox, Any]]:
        """Like :meth:`search` but returns ``(bbox, item)`` pairs."""
        out: list[tuple[BBox, Any]] = []
        if box.is_empty():
            return out
        stack = [self._root]
        while stack:
            node = stack.pop()
            for entry_box, payload in node.entries:
                if not entry_box.intersects(box):
                    continue
                if node.leaf:
                    out.append((entry_box, payload))
                else:
                    stack.append(payload)
        return out

    def search_point(self, x: float, y: float) -> list[Any]:
        """All items whose bbox contains the point."""
        return self.search(BBox(x, y, x, y))

    def count(self, box: BBox) -> int:
        return len(self.search_entries(box))

    def nearest(self, x: float, y: float, k: int = 1) -> list[Any]:
        """The ``k`` items whose bounding boxes are nearest to a point.

        Best-first search over node bounding boxes; distance ties are broken
        by insertion-independent heap order.
        """
        if k < 1:
            raise IndexError_("k must be positive")
        heap: list[tuple[float, int, bool, Any]] = []
        counter = 0
        heap.append((self._root.bbox().distance_to_point(x, y), counter, False, self._root))
        results: list[Any] = []
        while heap and len(results) < k:
            dist, __, is_item, payload = heapq.heappop(heap)
            if is_item:
                results.append(payload)
                continue
            node: _Node = payload
            for entry_box, child in node.entries:
                counter += 1
                heapq.heappush(
                    heap,
                    (entry_box.distance_to_point(x, y), counter, node.leaf, child),
                )
        return results

    def items(self) -> Iterator[tuple[BBox, Any]]:
        """Iterate over every indexed ``(bbox, item)`` pair."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            for entry_box, payload in node.entries:
                if node.leaf:
                    yield entry_box, payload
                else:
                    stack.append(payload)

    # -- deletion -----------------------------------------------------------

    def delete(self, box: BBox, item: Any) -> None:
        """Remove one ``(box, item)`` entry; raises if absent."""
        leaf = self._find_leaf(self._root, box, item)
        if leaf is None:
            raise IndexError_(f"entry {item!r} with bbox {box!r} not in the index")
        for idx, (entry_box, payload) in enumerate(leaf.entries):
            if payload == item and entry_box == box:
                del leaf.entries[idx]
                break
        self._size -= 1
        self._condense(leaf)
        # Shrink the root when it has a single internal child.
        while not self._root.leaf and len(self._root.entries) == 1:
            self._root = self._root.entries[0][1]
            self._root.parent = None

    def _find_leaf(self, node: _Node, box: BBox, item: Any) -> _Node | None:
        if node.leaf:
            for entry_box, payload in node.entries:
                if payload == item and entry_box == box:
                    return node
            return None
        for entry_box, child in node.entries:
            if entry_box.contains_bbox(box) or entry_box.intersects(box):
                found = self._find_leaf(child, box, item)
                if found is not None:
                    return found
        return None

    def _condense(self, node: _Node) -> None:
        orphans: list[tuple[BBox, Any, bool]] = []
        while node.parent is not None:
            parent = node.parent
            if len(node.entries) < self.min_entries:
                parent.entries = [e for e in parent.entries if e[1] is not node]
                for entry_box, payload in node.entries:
                    orphans.append((entry_box, payload, node.leaf))
            else:
                self._refresh_child_box(parent, node)
            node = parent
        for entry_box, payload, was_leaf in orphans:
            if was_leaf:
                self._size -= 1
                self.insert(entry_box, payload)
            else:
                self._reinsert_subtree(payload)

    def _reinsert_subtree(self, node: _Node) -> None:
        for entry_box, payload in node.entries:
            if node.leaf:
                self._size -= 1
                self.insert(entry_box, payload)
            else:
                self._reinsert_subtree(payload)

    # -- bulk loading ---------------------------------------------------------

    @classmethod
    def bulk_load(cls, entries: list[tuple[BBox, Any]],
                  max_entries: int = 8,
                  min_entries: int | None = None) -> "RTree":
        """Build a packed R-tree with Sort-Tile-Recursive (STR) loading.

        For static datasets (a loaded map layer, a snapshot install, a
        recovery replay) STR packs nodes full and tiles them spatially:
        sort by x-center, slice into vertical slabs, sort each slab by
        y-center, chunk into nodes. The same procedure then packs each
        upper level until one root remains. Build time is O(n log n) and
        both build and query beat incremental quadratic-split insertion.

        The resulting tree supports subsequent inserts/deletes normally.
        A chunking step never leaves a node under ``min_entries`` (the
        tail chunk borrows from its neighbour), so all structural
        invariants hold — ``check_invariants()`` passes on the result.
        """
        import math

        from .. import obs

        tree = cls(max_entries=max_entries, min_entries=min_entries)
        rec = obs.RECORDER
        if rec.enabled:
            rec.inc("rtree.bulk_loads")
        if not entries:
            return tree

        min_fill = tree.min_entries

        def chunk(items: list, size: int) -> list[list]:
            """Split into chunks of ``size``; rebalance an undersized tail."""
            out = [items[i: i + size] for i in range(0, len(items), size)]
            if len(out) >= 2 and len(out[-1]) < min_fill:
                need = min_fill - len(out[-1])
                out[-1] = out[-2][-need:] + out[-1]
                out[-2] = out[-2][:-need]
            return out

        def tile(items: list, key_box) -> list[list]:
            """STR tiling: x-sorted slabs, then y-sorted chunks per slab."""
            node_count = math.ceil(len(items) / max_entries)
            slab_count = max(1, math.ceil(math.sqrt(node_count)))
            slab_size = max(max_entries,
                            math.ceil(len(items) / slab_count))
            by_x = sorted(items, key=lambda it: key_box(it).center()[0])
            groups: list[list] = []
            for start in range(0, len(by_x), slab_size):
                slab = sorted(by_x[start: start + slab_size],
                              key=lambda it: key_box(it).center()[1])
                groups.extend(chunk(slab, max_entries))
            # a slab boundary can still strand an undersized group
            if len(groups) >= 2 and len(groups[-1]) < min_fill:
                need = min_fill - len(groups[-1])
                groups[-1] = groups[-2][-need:] + groups[-1]
                groups[-2] = groups[-2][:-need]
            return groups

        # Pack the leaf level.
        level: list[_Node] = []
        for group in tile(list(entries), key_box=lambda e: e[0]):
            leaf = _Node(leaf=True)
            leaf.entries = list(group)
            level.append(leaf)
        # Pack upper levels until a single node remains.
        while len(level) > 1:
            next_level: list[_Node] = []
            for group in tile(level, key_box=lambda n: n.bbox()):
                parent = _Node(leaf=False)
                parent.entries = [(child.bbox(), child) for child in group]
                for child in group:
                    child.parent = parent
                next_level.append(parent)
            level = next_level
        tree._root = level[0]
        tree._size = len(entries)
        return tree

    # -- diagnostics ----------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise :class:`IndexError_` when a structural invariant is broken.

        Used by property-based tests: parent boxes cover children, all
        leaves are at the same depth, node fills respect min/max (except
        the root), and the entry count matches ``len(self)``.
        """
        leaf_depths: set[int] = []  # type: ignore[assignment]
        leaf_depths = set()
        total = 0

        def walk(node: _Node, depth: int, is_root: bool) -> None:
            nonlocal total
            if not is_root and not (
                self.min_entries <= len(node.entries) <= self.max_entries
            ):
                raise IndexError_(
                    f"node fill {len(node.entries)} outside "
                    f"[{self.min_entries}, {self.max_entries}]"
                )
            if len(node.entries) > self.max_entries:
                raise IndexError_("node overflow")
            if node.leaf:
                leaf_depths.add(depth)
                total += len(node.entries)
                return
            for entry_box, child in node.entries:
                if child.parent is not node:
                    raise IndexError_("broken parent pointer")
                if not (entry_box == child.bbox()):
                    raise IndexError_("stale child bounding box")
                walk(child, depth + 1, False)

        walk(self._root, 0, True)
        if len(leaf_depths) > 1:
            raise IndexError_(f"leaves at different depths: {sorted(leaf_depths)}")
        if total != self._size:
            raise IndexError_(f"size mismatch: counted {total}, recorded {self._size}")


def bulk_load(entries: list[tuple[BBox, Any]], max_entries: int = 8) -> RTree:
    """Module-level alias for :meth:`RTree.bulk_load` (back-compat)."""
    return RTree.bulk_load(entries, max_entries=max_entries)


def naive_search(
    entries: list[tuple[BBox, Any]], box: BBox, key: Callable[[Any], Any] | None = None
) -> list[Any]:
    """Baseline linear scan used by benchmark C5."""
    hits = [item for entry_box, item in entries if entry_box.intersects(box)]
    if key is not None:
        hits.sort(key=key)
    return hits
