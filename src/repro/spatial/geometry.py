"""Geometry model for the geographic substrate.

The paper's geographic DBMS stores georeferenced phenomena (poles, ducts,
road networks, vegetation). This module provides the vector geometry types
those phenomena use:

* :class:`Point`, :class:`LineString`, :class:`Polygon` (with holes),
* homogeneous collections :class:`MultiPoint`, :class:`MultiLineString`,
  :class:`MultiPolygon`,
* the :class:`BBox` axis-aligned rectangle used throughout the index and
  query layers.

Geometries are immutable value objects: hashing and equality are structural,
so they can live inside database objects, rule payloads, and index entries
without defensive copying. Coordinates are plain floats in an arbitrary
planar CRS (the paper never leaves a projected municipal coordinate system).
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence

from ..errors import GeometryError

#: Tolerance used by coordinate comparisons throughout the spatial package.
EPSILON = 1e-9


def _almost_equal(a: float, b: float, eps: float = EPSILON) -> bool:
    return abs(a - b) <= eps * max(1.0, abs(a), abs(b))


class BBox:
    """An axis-aligned bounding rectangle ``[min_x, min_y, max_x, max_y]``.

    Degenerate boxes (zero width or height) are legal: a point's bbox is a
    degenerate box. An *empty* box, produced by :meth:`BBox.empty`, is the
    identity for :meth:`union` and intersects nothing.
    """

    __slots__ = ("min_x", "min_y", "max_x", "max_y")

    def __init__(self, min_x: float, min_y: float, max_x: float, max_y: float):
        if min_x > max_x or min_y > max_y:
            raise GeometryError(
                f"invalid bbox: ({min_x}, {min_y}, {max_x}, {max_y}) has min > max"
            )
        self.min_x = float(min_x)
        self.min_y = float(min_y)
        self.max_x = float(max_x)
        self.max_y = float(max_y)

    @classmethod
    def empty(cls) -> "BBox":
        """The empty box: union identity, intersects nothing."""
        box = cls.__new__(cls)
        box.min_x = math.inf
        box.min_y = math.inf
        box.max_x = -math.inf
        box.max_y = -math.inf
        return box

    @classmethod
    def from_points(cls, points: Iterable[tuple[float, float]]) -> "BBox":
        box = cls.empty()
        for x, y in points:
            box = box.stretched(x, y)
        if box.is_empty():
            raise GeometryError("cannot build bbox from an empty point set")
        return box

    def is_empty(self) -> bool:
        return self.min_x > self.max_x

    @property
    def width(self) -> float:
        return 0.0 if self.is_empty() else self.max_x - self.min_x

    @property
    def height(self) -> float:
        return 0.0 if self.is_empty() else self.max_y - self.min_y

    def area(self) -> float:
        return self.width * self.height

    def perimeter(self) -> float:
        return 0.0 if self.is_empty() else 2.0 * (self.width + self.height)

    def center(self) -> tuple[float, float]:
        if self.is_empty():
            raise GeometryError("empty bbox has no center")
        return ((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def stretched(self, x: float, y: float) -> "BBox":
        """Return the smallest box containing ``self`` and point ``(x, y)``."""
        box = BBox.__new__(BBox)
        box.min_x = min(self.min_x, x)
        box.min_y = min(self.min_y, y)
        box.max_x = max(self.max_x, x)
        box.max_y = max(self.max_y, y)
        return box

    def union(self, other: "BBox") -> "BBox":
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        return BBox(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def intersection(self, other: "BBox") -> "BBox":
        if not self.intersects(other):
            return BBox.empty()
        return BBox(
            max(self.min_x, other.min_x),
            max(self.min_y, other.min_y),
            min(self.max_x, other.max_x),
            min(self.max_y, other.max_y),
        )

    def intersects(self, other: "BBox") -> bool:
        if self.is_empty() or other.is_empty():
            return False
        return not (
            self.max_x < other.min_x
            or other.max_x < self.min_x
            or self.max_y < other.min_y
            or other.max_y < self.min_y
        )

    def contains_point(self, x: float, y: float) -> bool:
        if self.is_empty():
            return False
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    def contains_bbox(self, other: "BBox") -> bool:
        if self.is_empty() or other.is_empty():
            return False
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    def expanded(self, margin: float) -> "BBox":
        """Return this box grown by ``margin`` on every side."""
        if self.is_empty():
            return self
        if margin < 0 and (2 * margin > self.width or 2 * margin > self.height):
            raise GeometryError("negative margin collapses the bbox")
        return BBox(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def enlargement(self, other: "BBox") -> float:
        """Area growth needed to also cover ``other`` (R-tree heuristic)."""
        return self.union(other).area() - self.area()

    def distance_to_point(self, x: float, y: float) -> float:
        """Euclidean distance from the point to the box (0 when inside)."""
        if self.is_empty():
            return math.inf
        dx = max(self.min_x - x, 0.0, x - self.max_x)
        dy = max(self.min_y - y, 0.0, y - self.max_y)
        return math.hypot(dx, dy)

    def as_tuple(self) -> tuple[float, float, float, float]:
        return (self.min_x, self.min_y, self.max_x, self.max_y)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BBox):
            return NotImplemented
        if self.is_empty() and other.is_empty():
            return True
        return self.as_tuple() == other.as_tuple()

    def __hash__(self) -> int:
        if self.is_empty():
            return hash("BBox.empty")
        return hash(self.as_tuple())

    def __repr__(self) -> str:
        if self.is_empty():
            return "BBox.empty()"
        return f"BBox({self.min_x}, {self.min_y}, {self.max_x}, {self.max_y})"


class Geometry:
    """Abstract base for all geometry types.

    Subclasses implement :meth:`bbox`, :meth:`is_valid` and the WKT-style
    text form returned by :meth:`wkt`; the base class supplies structural
    equality, hashing, and convenience measures shared by all types.
    """

    #: Short lowercase type tag, e.g. ``"point"`` — also used by the
    #: attribute type system in :mod:`repro.geodb.types`.
    geom_type: str = "geometry"

    def bbox(self) -> BBox:
        raise NotImplementedError

    def is_valid(self) -> bool:
        raise NotImplementedError

    def wkt(self) -> str:
        raise NotImplementedError

    def _signature(self) -> tuple:
        """A hashable structural signature used for equality/hash."""
        raise NotImplementedError

    def translated(self, dx: float, dy: float) -> "Geometry":
        """Return a copy shifted by ``(dx, dy)``."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Geometry):
            return NotImplemented
        return self.geom_type == other.geom_type and self._signature() == other._signature()

    def __hash__(self) -> int:
        return hash((self.geom_type, self._signature()))

    def __repr__(self) -> str:
        return self.wkt()


def _coerce_coords(coords: Sequence[Sequence[float]]) -> tuple[tuple[float, float], ...]:
    out = []
    for pair in coords:
        seq = tuple(pair)
        if len(seq) != 2:
            raise GeometryError(f"coordinate {pair!r} is not an (x, y) pair")
        x, y = float(seq[0]), float(seq[1])
        if not (math.isfinite(x) and math.isfinite(y)):
            raise GeometryError(f"coordinate {pair!r} is not finite")
        out.append((x, y))
    return tuple(out)


class Point(Geometry):
    """A single position."""

    geom_type = "point"
    __slots__ = ("x", "y")

    def __init__(self, x: float, y: float):
        x, y = float(x), float(y)
        if not (math.isfinite(x) and math.isfinite(y)):
            raise GeometryError(f"point coordinates must be finite, got ({x}, {y})")
        self.x = x
        self.y = y

    def bbox(self) -> BBox:
        return BBox(self.x, self.y, self.x, self.y)

    def is_valid(self) -> bool:
        return True

    def distance_to(self, other: "Point") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> tuple[float, float]:
        return (self.x, self.y)

    def wkt(self) -> str:
        return f"POINT ({self.x:g} {self.y:g})"

    def _signature(self) -> tuple:
        return (self.x, self.y)


class LineString(Geometry):
    """An open polyline with at least two vertices."""

    geom_type = "linestring"
    __slots__ = ("coords",)

    def __init__(self, coords: Sequence[Sequence[float]]):
        self.coords = _coerce_coords(coords)
        if len(self.coords) < 2:
            raise GeometryError("a LineString needs at least 2 vertices")

    def bbox(self) -> BBox:
        return BBox.from_points(self.coords)

    def is_valid(self) -> bool:
        """Valid when no two consecutive vertices coincide."""
        return all(
            not (_almost_equal(ax, bx) and _almost_equal(ay, by))
            for (ax, ay), (bx, by) in zip(self.coords, self.coords[1:])
        )

    def length(self) -> float:
        return sum(
            math.hypot(bx - ax, by - ay)
            for (ax, ay), (bx, by) in zip(self.coords, self.coords[1:])
        )

    def segments(self) -> Iterator[tuple[tuple[float, float], tuple[float, float]]]:
        """Yield consecutive vertex pairs."""
        for a, b in zip(self.coords, self.coords[1:]):
            yield a, b

    def is_closed(self) -> bool:
        (ax, ay), (bx, by) = self.coords[0], self.coords[-1]
        return _almost_equal(ax, bx) and _almost_equal(ay, by)

    def translated(self, dx: float, dy: float) -> "LineString":
        return LineString([(x + dx, y + dy) for x, y in self.coords])

    def interpolate(self, fraction: float) -> Point:
        """Point at ``fraction`` (0..1) of the line's length from its start."""
        if not 0.0 <= fraction <= 1.0:
            raise GeometryError(f"fraction {fraction} outside [0, 1]")
        target = self.length() * fraction
        walked = 0.0
        for (ax, ay), (bx, by) in self.segments():
            seg = math.hypot(bx - ax, by - ay)
            if walked + seg >= target and seg > 0:
                t = (target - walked) / seg
                return Point(ax + t * (bx - ax), ay + t * (by - ay))
            walked += seg
        x, y = self.coords[-1]
        return Point(x, y)

    def wkt(self) -> str:
        body = ", ".join(f"{x:g} {y:g}" for x, y in self.coords)
        return f"LINESTRING ({body})"

    def _signature(self) -> tuple:
        return self.coords


class Ring:
    """A closed ring of vertices, stored without the repeated last vertex.

    Rings are building blocks of :class:`Polygon`; they are not geometries
    on their own. Orientation is normalized lazily via :meth:`signed_area`.
    """

    __slots__ = ("coords",)

    def __init__(self, coords: Sequence[Sequence[float]]):
        pts = list(_coerce_coords(coords))
        if len(pts) >= 2 and pts[0] == pts[-1]:
            pts = pts[:-1]
        if len(pts) < 3:
            raise GeometryError("a ring needs at least 3 distinct vertices")
        self.coords = tuple(pts)

    def signed_area(self) -> float:
        """Shoelace area: positive for counter-clockwise rings."""
        total = 0.0
        n = len(self.coords)
        for i in range(n):
            ax, ay = self.coords[i]
            bx, by = self.coords[(i + 1) % n]
            total += ax * by - bx * ay
        return total / 2.0

    def area(self) -> float:
        return abs(self.signed_area())

    def perimeter(self) -> float:
        n = len(self.coords)
        return sum(
            math.hypot(
                self.coords[(i + 1) % n][0] - self.coords[i][0],
                self.coords[(i + 1) % n][1] - self.coords[i][1],
            )
            for i in range(n)
        )

    def closed_coords(self) -> tuple[tuple[float, float], ...]:
        """Vertices with the first repeated at the end (WKT convention)."""
        return self.coords + (self.coords[0],)

    def segments(self) -> Iterator[tuple[tuple[float, float], tuple[float, float]]]:
        closed = self.closed_coords()
        for a, b in zip(closed, closed[1:]):
            yield a, b

    def contains_point(self, x: float, y: float) -> bool:
        """Ray-casting test; boundary points count as inside."""
        n = len(self.coords)
        inside = False
        for i in range(n):
            ax, ay = self.coords[i]
            bx, by = self.coords[(i + 1) % n]
            if _point_on_segment(x, y, ax, ay, bx, by):
                return True
            if (ay > y) != (by > y):
                x_cross = ax + (y - ay) * (bx - ax) / (by - ay)
                if x < x_cross:
                    inside = not inside
        return inside

    def bbox(self) -> BBox:
        return BBox.from_points(self.coords)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Ring):
            return NotImplemented
        return self.coords == other.coords

    def __hash__(self) -> int:
        return hash(self.coords)

    def __repr__(self) -> str:
        return f"Ring({list(self.coords)!r})"


def _point_on_segment(
    px: float, py: float, ax: float, ay: float, bx: float, by: float
) -> bool:
    """True when point P lies on segment AB (within :data:`EPSILON`)."""
    cross = (bx - ax) * (py - ay) - (by - ay) * (px - ax)
    scale = max(1.0, abs(bx - ax), abs(by - ay))
    if abs(cross) > EPSILON * scale:
        return False
    dot = (px - ax) * (bx - ax) + (py - ay) * (by - ay)
    length_sq = (bx - ax) ** 2 + (by - ay) ** 2
    return -EPSILON <= dot <= length_sq + EPSILON


class Polygon(Geometry):
    """A polygon with one exterior ring and zero or more interior holes."""

    geom_type = "polygon"
    __slots__ = ("exterior", "holes")

    def __init__(
        self,
        exterior: Sequence[Sequence[float]] | Ring,
        holes: Sequence[Sequence[Sequence[float]] | Ring] = (),
    ):
        self.exterior = exterior if isinstance(exterior, Ring) else Ring(exterior)
        self.holes = tuple(h if isinstance(h, Ring) else Ring(h) for h in holes)

    def bbox(self) -> BBox:
        return self.exterior.bbox()

    def area(self) -> float:
        return self.exterior.area() - sum(h.area() for h in self.holes)

    def perimeter(self) -> float:
        return self.exterior.perimeter() + sum(h.perimeter() for h in self.holes)

    def centroid(self) -> Point:
        """Area-weighted centroid of the exterior ring minus holes."""
        def ring_moment(ring: Ring) -> tuple[float, float, float]:
            a = cx = cy = 0.0
            n = len(ring.coords)
            for i in range(n):
                x0, y0 = ring.coords[i]
                x1, y1 = ring.coords[(i + 1) % n]
                cross = x0 * y1 - x1 * y0
                a += cross
                cx += (x0 + x1) * cross
                cy += (y0 + y1) * cross
            return a / 2.0, cx / 6.0, cy / 6.0

        area, mx, my = ring_moment(self.exterior)
        for hole in self.holes:
            ha, hx, hy = ring_moment(hole)
            # Subtract using magnitudes so hole orientation does not matter.
            sign = -1.0 if (ha > 0) == (area > 0) else 1.0
            area += sign * ha
            mx += sign * hx
            my += sign * hy
        if abs(area) < EPSILON:
            return Point(*self.exterior.bbox().center())
        return Point(mx / area, my / area)

    def contains_point(self, x: float, y: float) -> bool:
        if not self.exterior.contains_point(x, y):
            return False
        # Points strictly inside a hole are outside the polygon; hole
        # boundaries still belong to the polygon.
        for hole in self.holes:
            if hole.contains_point(x, y) and not any(
                _point_on_segment(x, y, ax, ay, bx, by)
                for (ax, ay), (bx, by) in hole.segments()
            ):
                return False
        return True

    def is_valid(self) -> bool:
        """Cheap validity: non-degenerate rings, holes inside the exterior."""
        if self.exterior.area() < EPSILON:
            return False
        outer_box = self.exterior.bbox()
        for hole in self.holes:
            if hole.area() < EPSILON:
                return False
            if not outer_box.contains_bbox(hole.bbox()):
                return False
            if hole.area() > self.exterior.area():
                return False
        return True

    def translated(self, dx: float, dy: float) -> "Polygon":
        return Polygon(
            Ring([(x + dx, y + dy) for x, y in self.exterior.coords]),
            [Ring([(x + dx, y + dy) for x, y in h.coords]) for h in self.holes],
        )

    def rings(self) -> Iterator[Ring]:
        yield self.exterior
        yield from self.holes

    def wkt(self) -> str:
        def ring_text(ring: Ring) -> str:
            return "(" + ", ".join(f"{x:g} {y:g}" for x, y in ring.closed_coords()) + ")"

        body = ", ".join(ring_text(r) for r in self.rings())
        return f"POLYGON ({body})"

    def _signature(self) -> tuple:
        return (self.exterior.coords, tuple(h.coords for h in self.holes))

    @classmethod
    def from_bbox(cls, box: BBox) -> "Polygon":
        if box.is_empty():
            raise GeometryError("cannot build polygon from empty bbox")
        return cls(
            [
                (box.min_x, box.min_y),
                (box.max_x, box.min_y),
                (box.max_x, box.max_y),
                (box.min_x, box.max_y),
            ]
        )

    @classmethod
    def regular(cls, cx: float, cy: float, radius: float, sides: int = 16) -> "Polygon":
        """A regular polygon approximating a disc — used for buffers."""
        if sides < 3:
            raise GeometryError("a polygon needs at least 3 sides")
        if radius <= 0:
            raise GeometryError("radius must be positive")
        coords = [
            (
                cx + radius * math.cos(2.0 * math.pi * i / sides),
                cy + radius * math.sin(2.0 * math.pi * i / sides),
            )
            for i in range(sides)
        ]
        return cls(coords)


class _MultiGeometry(Geometry):
    """Shared machinery for homogeneous geometry collections."""

    member_type: type = Geometry
    __slots__ = ("members",)

    def __init__(self, members: Sequence[Geometry]):
        members = tuple(members)
        if not members:
            raise GeometryError(f"{type(self).__name__} cannot be empty")
        for m in members:
            if not isinstance(m, self.member_type):
                raise GeometryError(
                    f"{type(self).__name__} members must be "
                    f"{self.member_type.__name__}, got {type(m).__name__}"
                )
        self.members = members

    def bbox(self) -> BBox:
        box = BBox.empty()
        for m in self.members:
            box = box.union(m.bbox())
        return box

    def is_valid(self) -> bool:
        return all(m.is_valid() for m in self.members)

    def translated(self, dx: float, dy: float) -> "_MultiGeometry":
        return type(self)([m.translated(dx, dy) for m in self.members])

    def _signature(self) -> tuple:
        return tuple(m._signature() for m in self.members)

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self) -> Iterator[Geometry]:
        return iter(self.members)


class MultiPoint(_MultiGeometry):
    geom_type = "multipoint"
    member_type = Point

    def wkt(self) -> str:
        body = ", ".join(f"({p.x:g} {p.y:g})" for p in self.members)
        return f"MULTIPOINT ({body})"


class MultiLineString(_MultiGeometry):
    geom_type = "multilinestring"
    member_type = LineString

    def length(self) -> float:
        return sum(m.length() for m in self.members)

    def wkt(self) -> str:
        parts = []
        for line in self.members:
            parts.append("(" + ", ".join(f"{x:g} {y:g}" for x, y in line.coords) + ")")
        return f"MULTILINESTRING ({', '.join(parts)})"


class MultiPolygon(_MultiGeometry):
    geom_type = "multipolygon"
    member_type = Polygon

    def area(self) -> float:
        return sum(m.area() for m in self.members)

    def contains_point(self, x: float, y: float) -> bool:
        return any(m.contains_point(x, y) for m in self.members)

    def wkt(self) -> str:
        parts = []
        for poly in self.members:
            rings = ", ".join(
                "(" + ", ".join(f"{x:g} {y:g}" for x, y in r.closed_coords()) + ")"
                for r in poly.rings()
            )
            parts.append(f"({rings})")
        return f"MULTIPOLYGON ({', '.join(parts)})"


#: Map from ``geom_type`` tag to class, used by the type system and storage.
GEOMETRY_TYPES: dict[str, type] = {
    cls.geom_type: cls
    for cls in (Point, LineString, Polygon, MultiPoint, MultiLineString, MultiPolygon)
}
