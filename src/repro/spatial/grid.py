"""A uniform grid spatial index.

A simpler alternative to the R-tree for dense, evenly distributed layers
(e.g. city-wide pole grids). Cells are fixed-size buckets over a declared
universe extent; items spanning several cells are registered in each.
The query layer picks grid or R-tree per layer; benchmark C5 compares both.
"""

from __future__ import annotations

import math
from typing import Any, Iterator

from ..errors import IndexError_
from .geometry import BBox


class GridIndex:
    """Fixed-resolution bucket grid over a universe bounding box."""

    def __init__(self, universe: BBox, cell_size: float):
        if universe.is_empty():
            raise IndexError_("grid universe cannot be empty")
        if cell_size <= 0:
            raise IndexError_("cell_size must be positive")
        self.universe = universe
        self.cell_size = float(cell_size)
        self._cols = max(1, math.ceil(universe.width / cell_size))
        self._rows = max(1, math.ceil(universe.height / cell_size))
        self._cells: dict[tuple[int, int], list[tuple[BBox, Any]]] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def shape(self) -> tuple[int, int]:
        """(columns, rows) of the grid."""
        return (self._cols, self._rows)

    def _cell_range(self, box: BBox) -> tuple[int, int, int, int]:
        """Clamped (col0, row0, col1, row1) covering ``box``."""
        col0 = int((box.min_x - self.universe.min_x) // self.cell_size)
        row0 = int((box.min_y - self.universe.min_y) // self.cell_size)
        col1 = int((box.max_x - self.universe.min_x) // self.cell_size)
        row1 = int((box.max_y - self.universe.min_y) // self.cell_size)
        return (
            max(0, min(col0, self._cols - 1)),
            max(0, min(row0, self._rows - 1)),
            max(0, min(col1, self._cols - 1)),
            max(0, min(row1, self._rows - 1)),
        )

    def insert(self, box: BBox, item: Any) -> None:
        if box.is_empty():
            raise IndexError_("cannot index an empty bbox")
        if not self.universe.intersects(box):
            raise IndexError_(f"bbox {box!r} lies outside the grid universe")
        col0, row0, col1, row1 = self._cell_range(box)
        for col in range(col0, col1 + 1):
            for row in range(row0, row1 + 1):
                self._cells.setdefault((col, row), []).append((box, item))
        self._size += 1

    def delete(self, box: BBox, item: Any) -> None:
        col0, row0, col1, row1 = self._cell_range(box)
        removed = False
        for col in range(col0, col1 + 1):
            for row in range(row0, row1 + 1):
                bucket = self._cells.get((col, row))
                if not bucket:
                    continue
                before = len(bucket)
                bucket[:] = [e for e in bucket if not (e[0] == box and e[1] == item)]
                if len(bucket) != before:
                    removed = True
                if not bucket:
                    del self._cells[(col, row)]
        if not removed:
            raise IndexError_(f"entry {item!r} with bbox {box!r} not in the grid")
        self._size -= 1

    def search(self, box: BBox) -> list[Any]:
        """Items whose bbox intersects ``box`` (deduplicated, insertion order)."""
        if box.is_empty():
            return []
        col0, row0, col1, row1 = self._cell_range(box)
        seen: set[int] = set()
        out: list[Any] = []
        for col in range(col0, col1 + 1):
            for row in range(row0, row1 + 1):
                for entry_box, item in self._cells.get((col, row), ()):
                    marker = id((entry_box, item)) if not _hashable(item) else hash(
                        (entry_box, item)
                    )
                    if marker in seen:
                        continue
                    seen.add(marker)
                    if entry_box.intersects(box):
                        out.append(item)
        return out

    def search_point(self, x: float, y: float) -> list[Any]:
        return self.search(BBox(x, y, x, y))

    def items(self) -> Iterator[tuple[BBox, Any]]:
        """Every distinct indexed entry."""
        seen: set[int] = set()
        for bucket in self._cells.values():
            for entry_box, item in bucket:
                marker = hash((entry_box, item)) if _hashable(item) else id((entry_box, item))
                if marker in seen:
                    continue
                seen.add(marker)
                yield entry_box, item

    def cell_stats(self) -> dict[str, float]:
        """Occupancy statistics for tuning (used in benchmark reports)."""
        if not self._cells:
            return {"cells_used": 0, "max_bucket": 0, "mean_bucket": 0.0}
        sizes = [len(b) for b in self._cells.values()]
        return {
            "cells_used": len(sizes),
            "max_bucket": max(sizes),
            "mean_bucket": sum(sizes) / len(sizes),
        }


def _hashable(item: Any) -> bool:
    try:
        hash(item)
    except TypeError:
        return False
    return True
