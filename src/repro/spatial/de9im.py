"""A DE-9IM-style intersection matrix for simple geometries.

:func:`relate_matrix` computes the 3×3 boolean intersection pattern
between the interiors (I), boundaries (B) and exteriors (E) of two
geometries, returned as the usual 9-character string in the order::

    II IB IE
    BI BB BE
    EI EB EE      ->  "TFT..." with 'T' = nonempty, 'F' = empty

('T'/'F' only — this implementation does not compute intersection
*dimensions*, which the full DE-9IM records as 0/1/2.)

Method: witness sampling. A candidate point set is built from both
geometries' vertices, segment midpoints, boundary/boundary crossing
points (plus midpoints of the sub-segments those crossings induce, and
midpoints *between* consecutive crossing points, which witness
interior/interior overlaps of convex regions), interior representative
points, and one far-exterior probe. Each candidate is classified as
interior/boundary/exterior of each geometry, and every observed
combination sets its matrix cell.

Exact for the simple (non-self-intersecting, centroid-representable)
geometries this library's generators produce; pathological shapes may
under-report a cell (never over-report: every 'T' has a concrete witness
point).
"""

from __future__ import annotations

import math
from typing import Iterable

from ..errors import GeometryError
from .algorithms import segment_intersection_point
from .geometry import (
    EPSILON,
    Geometry,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)
from .topology import (
    _in_line_interior,
    _in_polygon_interior,
    _line_endpoints,
    _on_line,
    _on_polygon_boundary,
)

Coord = tuple[float, float]

#: matrix cell order: (part of A, part of B) row-major over (I, B, E)
_PARTS = ("interior", "boundary", "exterior")


def classify_point(geom: Geometry, x: float, y: float) -> str:
    """Which point-set part of ``geom`` the point belongs to.

    Follows the point-set topology conventions DE-9IM uses:

    * a Point's *interior* is the point itself; its boundary is empty;
    * a LineString's boundary is its endpoints (empty when closed);
    * a Polygon's boundary is its rings; interiors of holes are exterior.
    """
    if isinstance(geom, Point):
        if math.hypot(geom.x - x, geom.y - y) <= EPSILON:
            return "interior"
        return "exterior"
    if isinstance(geom, LineString):
        if _in_line_interior(geom, x, y):
            return "interior"
        if _on_line(geom, x, y):
            return "boundary"
        return "exterior"
    if isinstance(geom, Polygon):
        if _on_polygon_boundary(geom, x, y):
            return "boundary"
        if _in_polygon_interior(geom, x, y):
            return "interior"
        return "exterior"
    if isinstance(geom, (MultiPoint, MultiLineString, MultiPolygon)):
        classes = {classify_point(m, x, y) for m in geom}
        if "interior" in classes:
            return "interior"
        if "boundary" in classes:
            return "boundary"
        return "exterior"
    raise GeometryError(f"cannot classify against {type(geom).__name__}")


def _segments(geom: Geometry) -> Iterable[tuple[Coord, Coord]]:
    if isinstance(geom, LineString):
        yield from geom.segments()
    elif isinstance(geom, Polygon):
        for ring in geom.rings():
            yield from ring.segments()
    elif isinstance(geom, (MultiLineString, MultiPolygon)):
        for member in geom:
            yield from _segments(member)


def _vertices(geom: Geometry) -> list[Coord]:
    if isinstance(geom, Point):
        return [(geom.x, geom.y)]
    if isinstance(geom, LineString):
        return list(geom.coords)
    if isinstance(geom, Polygon):
        out: list[Coord] = []
        for ring in geom.rings():
            out.extend(ring.coords)
        return out
    out = []
    for member in geom:  # type: ignore[union-attr]
        out.extend(_vertices(member))
    return out


def _interior_representatives(geom: Geometry) -> list[Coord]:
    """Points expected to lie in the geometry's interior."""
    if isinstance(geom, Point):
        return [(geom.x, geom.y)]
    if isinstance(geom, LineString):
        return [((a[0] + b[0]) / 2.0, (a[1] + b[1]) / 2.0)
                for a, b in geom.segments()]
    if isinstance(geom, Polygon):
        c = geom.centroid()
        out = [(c.x, c.y)]
        # probes along centroid->vertex chords at several depths: the
        # mid-depth ones escape centroid-in-hole cases, the near-vertex
        # ones witness interior points close to the boundary (needed for
        # the I(A) ∩ E(B) cell when B sits well inside A)
        for vx, vy in geom.exterior.coords:
            for t in (0.5, 0.9, 0.99):
                out.append((c.x + t * (vx - c.x), c.y + t * (vy - c.y)))
        return out
    out: list[Coord] = []
    for member in geom:  # type: ignore[union-attr]
        out.extend(_interior_representatives(member))
    return out


def _split_points(geom: Geometry, other: Geometry) -> list[Coord]:
    """Crossing points of the two boundaries, midpoints of the induced
    sub-segments of ``geom``, and midpoints between consecutive crossings
    (interior/interior witnesses for convex overlaps)."""
    crossings: list[Coord] = []
    out: list[Coord] = []
    for seg_a in _segments(geom):
        cuts = [0.0, 1.0]
        (ax, ay), (bx, by) = seg_a
        dx, dy = bx - ax, by - ay
        denom = dx * dx + dy * dy
        for seg_b in _segments(other):
            pt = segment_intersection_point(seg_a[0], seg_a[1],
                                            seg_b[0], seg_b[1])
            if pt is None:
                continue
            crossings.append(pt)
            if denom > EPSILON:
                t = ((pt[0] - ax) * dx + (pt[1] - ay) * dy) / denom
                cuts.append(min(1.0, max(0.0, t)))
        cuts.sort()
        for t0, t1 in zip(cuts, cuts[1:]):
            tm = (t0 + t1) / 2.0
            out.append((ax + tm * dx, ay + tm * dy))
    out.extend(crossings)
    for (x0, y0), (x1, y1) in zip(crossings, crossings[1:]):
        out.append(((x0 + x1) / 2.0, (y0 + y1) / 2.0))
    return out


def _candidates(a: Geometry, b: Geometry) -> list[Coord]:
    out: list[Coord] = []
    for geom in (a, b):
        out.extend(_vertices(geom))
        out.extend(_interior_representatives(geom))
        if isinstance(geom, LineString):
            out.extend(_line_endpoints(geom))
    out.extend(_split_points(a, b))
    out.extend(_split_points(b, a))
    # one probe far outside both: the EE witness
    box = a.bbox().union(b.bbox())
    margin = max(box.width, box.height, 1.0)
    out.append((box.max_x + margin, box.max_y + margin))
    return out


def relate_matrix(a: Geometry, b: Geometry) -> str:
    """The 9-character boolean DE-9IM pattern between two geometries."""
    cells = {(pa, pb): False for pa in _PARTS for pb in _PARTS}
    for x, y in _candidates(a, b):
        part_a = classify_point(a, x, y)
        part_b = classify_point(b, x, y)
        cells[(part_a, part_b)] = True
    return "".join(
        "T" if cells[(pa, pb)] else "F"
        for pa in _PARTS for pb in _PARTS
    )


def matches(pattern: str, mask: str) -> bool:
    """DE-9IM pattern matching: ``mask`` chars are T, F or ``*`` (any).

    (The dimension digits of full DE-9IM masks are not supported — use T.)
    """
    if len(pattern) != 9 or len(mask) != 9:
        raise GeometryError("DE-9IM patterns have exactly 9 characters")
    for got, want in zip(pattern, mask.upper()):
        if want == "*":
            continue
        if want not in "TF":
            raise GeometryError(f"unsupported mask character {want!r}")
        if got != want:
            return False
    return True


def relate_with_mask(a: Geometry, b: Geometry, mask: str) -> bool:
    """Compute the matrix and match it against a mask in one call."""
    return matches(relate_matrix(a, b), mask)
