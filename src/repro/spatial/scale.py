"""Map scale, viewport and cartographic generalization helpers.

The paper motivates context-sensitive answers: "gis users expect different
answers to the same query, according to the context (e.g., scale, time,
region, application)" (§2.2), and notes the context tuple "can conceivably
be extended to other contextual data (e.g., geographic scale, time
framework)" (§3.3). This module supplies the scale/viewport vocabulary the
extended contexts and the map display use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import GeometryError
from .algorithms import simplify_line
from .geometry import BBox, Geometry, LineString, MultiLineString, Point, Polygon, Ring


@dataclass(frozen=True)
class MapScale:
    """A representative-fraction map scale, e.g. ``MapScale(10_000)`` = 1:10k."""

    denominator: float

    def __post_init__(self) -> None:
        if self.denominator <= 0:
            raise GeometryError("scale denominator must be positive")

    def ground_units_per_mm(self) -> float:
        """Ground meters represented by one millimetre of screen/paper."""
        return self.denominator / 1000.0

    def is_smaller_than(self, other: "MapScale") -> bool:
        """1:50k is *smaller* than 1:10k (less detail)."""
        return self.denominator > other.denominator

    def __str__(self) -> str:
        return f"1:{self.denominator:g}"


#: Conventional scale bands used by default generalization rules.
SCALE_BANDS = {
    "detail": MapScale(1_000),
    "street": MapScale(10_000),
    "district": MapScale(50_000),
    "city": MapScale(250_000),
    "region": MapScale(1_000_000),
}


class Viewport:
    """A screen viewport mapping ground coordinates to character/pixel cells.

    The renderers in :mod:`repro.uilib.rendering` use a viewport to place
    geometries on a fixed-size raster.
    """

    def __init__(self, extent: BBox, width: int, height: int):
        if extent.is_empty() or extent.width <= 0 or extent.height <= 0:
            raise GeometryError("viewport extent must have positive area")
        if width < 1 or height < 1:
            raise GeometryError("viewport raster must be at least 1x1")
        self.extent = extent
        self.width = int(width)
        self.height = int(height)

    def to_cell(self, x: float, y: float) -> tuple[int, int] | None:
        """Map a ground coordinate to a (col, row) cell; None when outside.

        Row 0 is the *top* of the raster (screen convention).
        """
        if not self.extent.contains_point(x, y):
            return None
        fx = (x - self.extent.min_x) / self.extent.width
        fy = (y - self.extent.min_y) / self.extent.height
        col = min(self.width - 1, int(fx * self.width))
        row = min(self.height - 1, int((1.0 - fy) * self.height))
        return (col, max(0, row))

    def cell_ground_size(self) -> tuple[float, float]:
        """Ground width/height represented by one raster cell."""
        return (self.extent.width / self.width, self.extent.height / self.height)

    def implied_scale(self, mm_per_cell: float = 3.0) -> MapScale:
        """Scale implied by the viewport assuming ``mm_per_cell`` on screen."""
        gw, __ = self.cell_ground_size()
        meters_per_mm = gw / mm_per_cell
        return MapScale(meters_per_mm * 1000.0)

    def zoomed(self, factor: float) -> "Viewport":
        """Return a viewport zoomed about the extent center.

        ``factor > 1`` zooms in (smaller ground extent).
        """
        if factor <= 0:
            raise GeometryError("zoom factor must be positive")
        cx, cy = self.extent.center()
        half_w = self.extent.width / (2.0 * factor)
        half_h = self.extent.height / (2.0 * factor)
        return Viewport(
            BBox(cx - half_w, cy - half_h, cx + half_w, cy + half_h),
            self.width,
            self.height,
        )

    def panned(self, dx_fraction: float, dy_fraction: float) -> "Viewport":
        """Return a viewport shifted by fractions of its own extent."""
        dx = dx_fraction * self.extent.width
        dy = dy_fraction * self.extent.height
        return Viewport(
            BBox(
                self.extent.min_x + dx,
                self.extent.min_y + dy,
                self.extent.max_x + dx,
                self.extent.max_y + dy,
            ),
            self.width,
            self.height,
        )


def generalize(geom: Geometry, scale: MapScale) -> Geometry | None:
    """Cartographic generalization of a geometry for a display scale.

    * Points always survive.
    * Lines are Douglas–Peucker simplified with a tolerance of half the
      ground distance covered by one display millimetre; lines shorter than
      one display millimetre collapse to ``None`` (not drawn).
    * Polygons smaller than one square display millimetre collapse to their
      centroid point; otherwise their exterior is simplified.
    """
    mm_ground = scale.ground_units_per_mm()
    tolerance = mm_ground / 2.0
    if isinstance(geom, Point):
        return geom
    if isinstance(geom, LineString):
        if geom.length() < mm_ground:
            return None
        coords = simplify_line(geom.coords, tolerance)
        if len(coords) < 2:
            return None
        return LineString(coords)
    if isinstance(geom, MultiLineString):
        kept = [g for g in (generalize(m, scale) for m in geom) if g is not None]
        if not kept:
            return None
        return MultiLineString(kept) if len(kept) > 1 else kept[0]
    if isinstance(geom, Polygon):
        if geom.area() < mm_ground * mm_ground:
            return geom.centroid()
        coords = simplify_line(list(geom.exterior.coords) + [geom.exterior.coords[0]],
                               tolerance)
        if len(coords) < 4:
            return geom.centroid()
        try:
            return Polygon(Ring(coords))
        except GeometryError:
            return geom.centroid()
    # Collections of points / polygons: generalize member-wise, keep type.
    if hasattr(geom, "members"):
        kept = [g for g in (generalize(m, scale) for m in geom.members) if g is not None]
        return kept[0] if len(kept) == 1 else (type(geom)(kept) if kept and all(
            isinstance(k, type(geom).member_type) for k in kept) else None)
    raise GeometryError(f"cannot generalize {type(geom).__name__}")


def extent_for_scale(center: tuple[float, float], scale: MapScale,
                     width_mm: float = 200.0, height_mm: float = 150.0) -> BBox:
    """Ground extent visible on a ``width_mm`` x ``height_mm`` display."""
    gw = scale.ground_units_per_mm() * width_mm
    gh = scale.ground_units_per_mm() * height_mm
    cx, cy = center
    return BBox(cx - gw / 2, cy - gh / 2, cx + gw / 2, cy + gh / 2)


def scale_for_extent(extent: BBox, width_mm: float = 200.0) -> MapScale:
    """The scale at which ``extent`` fits a display ``width_mm`` wide."""
    if extent.is_empty() or extent.width <= 0:
        raise GeometryError("extent must have positive width")
    meters_per_mm = extent.width / width_mm
    return MapScale(math.ceil(meters_per_mm * 1000.0))
