"""Topological predicates between geometries.

The paper's geographic DBMS answers queries "on spatial properties and
relationships" (§2.1) and its companion prototype maintained *binary
topological constraints* through active rules (paper reference [11],
Medeiros & Cilia 1995). This module provides the binary relations those
layers need, following the Egenhofer point-set semantics:

``equals, disjoint, touches, overlaps, crosses, within, contains,
covers, covered_by, intersects``

Predicates are decided by exact case analysis over the point / line /
polygon type lattice: vertex-in-interior tests, segment-intersection tests
and boundary-membership tests. Multi-geometries are handled by reduction
over their members. This is exact for simple (non-self-intersecting)
inputs, which is what the data generators produce and what the constraint
layer checks.
"""

from __future__ import annotations

import math
from enum import Enum

from ..errors import GeometryError
from .algorithms import (
    geometry_distance,
    orientation,
    segment_intersection_point,
    segments_intersect,
)
from .geometry import (
    EPSILON,
    Geometry,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
    _point_on_segment,
)


class Relation(Enum):
    """Named binary topological relations (Egenhofer-style)."""

    EQUALS = "equals"
    DISJOINT = "disjoint"
    TOUCHES = "touches"
    OVERLAPS = "overlaps"
    CROSSES = "crosses"
    WITHIN = "within"
    CONTAINS = "contains"

    def inverse(self) -> "Relation":
        if self is Relation.WITHIN:
            return Relation.CONTAINS
        if self is Relation.CONTAINS:
            return Relation.WITHIN
        return self


# ---------------------------------------------------------------------------
# Boundary / interior membership helpers
# ---------------------------------------------------------------------------


def _on_polygon_boundary(poly: Polygon, x: float, y: float) -> bool:
    return any(
        _point_on_segment(x, y, a[0], a[1], b[0], b[1])
        for ring in poly.rings()
        for a, b in ring.segments()
    )


def _in_polygon_interior(poly: Polygon, x: float, y: float) -> bool:
    return poly.contains_point(x, y) and not _on_polygon_boundary(poly, x, y)


def _on_line(line: LineString, x: float, y: float) -> bool:
    return any(
        _point_on_segment(x, y, a[0], a[1], b[0], b[1]) for a, b in line.segments()
    )


def _line_endpoints(line: LineString) -> list[tuple[float, float]]:
    """Topological boundary of a line: its endpoints (empty when closed)."""
    if line.is_closed():
        return []
    return [line.coords[0], line.coords[-1]]


def _in_line_interior(line: LineString, x: float, y: float) -> bool:
    if not _on_line(line, x, y):
        return False
    return not any(
        math.hypot(ex - x, ey - y) <= EPSILON for ex, ey in _line_endpoints(line)
    )


def _segment_midpoints(line: LineString) -> list[tuple[float, float]]:
    return [((a[0] + b[0]) / 2.0, (a[1] + b[1]) / 2.0) for a, b in line.segments()]


def _line_line_crossing_kinds(a: LineString, b: LineString) -> tuple[bool, bool]:
    """Return ``(proper_crossing, collinear_overlap)`` between two lines.

    A *proper crossing* is an interior/interior intersection at a single
    point; a *collinear overlap* is a shared 1-dimensional piece.
    """
    proper = False
    overlap = False
    for sa in a.segments():
        for sb in b.segments():
            if not segments_intersect(sa[0], sa[1], sb[0], sb[1]):
                continue
            pt = segment_intersection_point(sa[0], sa[1], sb[0], sb[1])
            if pt is None:
                # Collinear contact; overlap only if they share more than
                # a single point (test both segment midpoint directions).
                shared_span = _collinear_shared_length(sa, sb)
                if shared_span > EPSILON:
                    overlap = True
                continue
            x, y = pt
            if _in_line_interior(a, x, y) and _in_line_interior(b, x, y):
                # Interior/interior contact; is it a crossing or a graze
                # along a shared segment? If the intersection is a single
                # point of two non-parallel segments, it is a crossing.
                proper = True
    return proper, overlap


def _segments_cross_transversally(p1, p2, q1, q2) -> bool:
    """True only for a strict X-crossing: endpoints on opposite sides.

    A shared edge, a shared vertex, or a T-junction is *not* transversal.
    Used for polygon boundaries, whose closed rings have no topological
    boundary points to anchor the interior test on.
    """
    d1 = orientation(q1, q2, p1)
    d2 = orientation(q1, q2, p2)
    d3 = orientation(p1, p2, q1)
    d4 = orientation(p1, p2, q2)
    return d1 * d2 < 0 and d3 * d4 < 0


def _collinear_shared_length(sa, sb) -> float:
    (ax, ay), (bx, by) = sa
    dx, dy = bx - ax, by - ay
    length = math.hypot(dx, dy)
    if length < EPSILON:
        return 0.0
    ux, uy = dx / length, dy / length

    def project(p) -> float:
        return (p[0] - ax) * ux + (p[1] - ay) * uy

    # Both endpoints of sb must lie on sa's supporting line.
    for px, py in sb:
        cross = (px - ax) * dy - (py - ay) * dx
        if abs(cross) > EPSILON * max(1.0, length):
            return 0.0
    t0, t1 = sorted((project(sb[0]), project(sb[1])))
    lo, hi = max(0.0, t0), min(length, t1)
    return max(0.0, hi - lo)


# ---------------------------------------------------------------------------
# Pairwise relation kernels
# ---------------------------------------------------------------------------


def _relate_point_point(a: Point, b: Point) -> Relation:
    if a.distance_to(b) <= EPSILON:
        return Relation.EQUALS
    return Relation.DISJOINT


def _relate_point_line(p: Point, line: LineString) -> Relation:
    if _in_line_interior(line, p.x, p.y):
        return Relation.WITHIN
    if _on_line(line, p.x, p.y):
        return Relation.TOUCHES  # on the line's boundary (an endpoint)
    return Relation.DISJOINT


def _relate_point_polygon(p: Point, poly: Polygon) -> Relation:
    if _on_polygon_boundary(poly, p.x, p.y):
        return Relation.TOUCHES
    if poly.contains_point(p.x, p.y):
        return Relation.WITHIN
    return Relation.DISJOINT


def _relate_line_line(a: LineString, b: LineString) -> Relation:
    if a.coords == b.coords or a.coords == b.coords[::-1]:
        return Relation.EQUALS
    if not a.bbox().intersects(b.bbox()):
        return Relation.DISJOINT

    a_in_b = all(_on_line(b, x, y) for x, y in a.coords) and all(
        _on_line(b, x, y) for x, y in _segment_midpoints(a)
    )
    b_in_a = all(_on_line(a, x, y) for x, y in b.coords) and all(
        _on_line(a, x, y) for x, y in _segment_midpoints(b)
    )
    if a_in_b and b_in_a:
        return Relation.EQUALS
    if a_in_b:
        return Relation.WITHIN
    if b_in_a:
        return Relation.CONTAINS

    proper, overlap = _line_line_crossing_kinds(a, b)
    if overlap:
        return Relation.OVERLAPS
    if proper:
        return Relation.CROSSES

    # Any remaining contact must involve a boundary (endpoint) of one line.
    if geometry_distance(a, b) <= EPSILON:
        return Relation.TOUCHES
    return Relation.DISJOINT


def _line_polygon_contact(line: LineString, poly: Polygon) -> tuple[bool, bool, bool]:
    """Classify contact: (has_interior_pts, has_exterior_pts, has_boundary_pts).

    Samples line vertices, segment midpoints, and intersection points of the
    line with the polygon boundary (midpoints of the resulting sub-segments
    decide interior vs exterior exactly for simple inputs).
    """
    samples = list(line.coords) + _segment_midpoints(line)
    # Split line segments at polygon boundary crossings for exact sampling.
    for seg in line.segments():
        cuts = [0.0, 1.0]
        (ax, ay), (bx, by) = seg
        for ring in poly.rings():
            for rseg in ring.segments():
                pt = segment_intersection_point(seg[0], seg[1], rseg[0], rseg[1])
                if pt is not None:
                    dx, dy = bx - ax, by - ay
                    denom = dx * dx + dy * dy
                    if denom > EPSILON:
                        t = ((pt[0] - ax) * dx + (pt[1] - ay) * dy) / denom
                        cuts.append(min(1.0, max(0.0, t)))
        cuts.sort()
        for t0, t1 in zip(cuts, cuts[1:]):
            tm = (t0 + t1) / 2.0
            samples.append((ax + tm * (bx - ax), ay + tm * (by - ay)))

    interior = exterior = boundary = False
    for x, y in samples:
        if _on_polygon_boundary(poly, x, y):
            boundary = True
        elif poly.contains_point(x, y):
            interior = True
        else:
            exterior = True
    return interior, exterior, boundary


def _relate_line_polygon(line: LineString, poly: Polygon) -> Relation:
    if not line.bbox().intersects(poly.bbox()):
        return Relation.DISJOINT
    interior, exterior, boundary = _line_polygon_contact(line, poly)
    if interior and exterior:
        return Relation.CROSSES
    if interior:
        return Relation.WITHIN
    if boundary:
        return Relation.TOUCHES
    return Relation.DISJOINT


def _polygon_boundary_as_lines(poly: Polygon) -> list[LineString]:
    return [LineString(ring.closed_coords()) for ring in poly.rings()]


def _interior_overlap_witness(a: Polygon, b: Polygon) -> bool:
    """True when a point strictly interior to both polygons can be found.

    Handles the configurations vertex/crossing tests miss (e.g. two
    axis-aligned rectangles overlapping in a band, with every vertex on
    the other's boundary): candidate witnesses are the pairwise midpoints
    of all boundary/boundary intersection points, the two centroids, and
    the center of the bbox intersection.
    """
    crossings: list[tuple[float, float]] = []
    for ring_a in a.rings():
        for sa in ring_a.segments():
            for ring_b in b.rings():
                for sb in ring_b.segments():
                    pt = segment_intersection_point(sa[0], sa[1],
                                                    sb[0], sb[1])
                    if pt is not None:
                        crossings.append(pt)
    candidates = list(crossings)
    for i in range(len(crossings)):
        for j in range(i + 1, len(crossings)):
            candidates.append((
                (crossings[i][0] + crossings[j][0]) / 2.0,
                (crossings[i][1] + crossings[j][1]) / 2.0,
            ))
    for poly in (a, b):
        c = poly.centroid()
        candidates.append((c.x, c.y))
    inter = a.bbox().intersection(b.bbox())
    if not inter.is_empty():
        candidates.append(inter.center())
    return any(
        _in_polygon_interior(a, x, y) and _in_polygon_interior(b, x, y)
        for x, y in candidates
    )


def _relate_polygon_polygon(a: Polygon, b: Polygon) -> Relation:
    if a == b:
        return Relation.EQUALS
    if not a.bbox().intersects(b.bbox()):
        return Relation.DISJOINT

    boundary_cross = any(
        _segments_cross_transversally(sa[0], sa[1], sb[0], sb[1])
        for ring_a in a.rings()
        for sa in ring_a.segments()
        for ring_b in b.rings()
        for sb in ring_b.segments()
    )

    a_vertices_in_b = [
        ("interior" if _in_polygon_interior(b, x, y) else
         "boundary" if _on_polygon_boundary(b, x, y) else "exterior")
        for x, y in a.exterior.coords
    ]
    b_vertices_in_a = [
        ("interior" if _in_polygon_interior(a, x, y) else
         "boundary" if _on_polygon_boundary(a, x, y) else "exterior")
        for x, y in b.exterior.coords
    ]

    if boundary_cross:
        return Relation.OVERLAPS

    a_all_inside = all(v != "exterior" for v in a_vertices_in_b)
    b_all_inside = all(v != "exterior" for v in b_vertices_in_a)
    a_some_interior = any(v == "interior" for v in a_vertices_in_b)
    b_some_interior = any(v == "interior" for v in b_vertices_in_a)

    if a_all_inside and b_all_inside:
        return Relation.EQUALS
    if a_all_inside and not b_some_interior:
        # b might still poke into a hole of b? For simple data: a within b.
        if _centroid_interior(a, b):
            return Relation.WITHIN
        return Relation.TOUCHES
    if b_all_inside and not a_some_interior:
        if _centroid_interior(b, a):
            return Relation.CONTAINS
        return Relation.TOUCHES

    # Partial containment without boundary crossing can still happen when a
    # vertex sits exactly on the other boundary — decide by interior probes.
    if a_some_interior or b_some_interior:
        return Relation.OVERLAPS
    # Aligned configurations (every vertex on the other's boundary, no
    # transversal crossing) can still share interior area — probe for an
    # interior/interior witness before settling on a boundary-only contact.
    if _interior_overlap_witness(a, b):
        return Relation.OVERLAPS
    if geometry_distance(a, b) <= EPSILON:
        return Relation.TOUCHES
    return Relation.DISJOINT


def _centroid_interior(inner: Polygon, outer: Polygon) -> bool:
    c = inner.centroid()
    return _in_polygon_interior(outer, c.x, c.y)


# ---------------------------------------------------------------------------
# Public dispatch
# ---------------------------------------------------------------------------

_SIMPLE_KERNELS = {
    ("point", "point"): _relate_point_point,
    ("point", "linestring"): _relate_point_line,
    ("point", "polygon"): _relate_point_polygon,
    ("linestring", "linestring"): _relate_line_line,
    ("linestring", "polygon"): _relate_line_polygon,
    ("polygon", "polygon"): _relate_polygon_polygon,
}

_MULTI_MEMBERS = (MultiPoint, MultiLineString, MultiPolygon)


def relate(a: Geometry, b: Geometry) -> Relation:
    """Compute the named topological relation between two geometries."""
    if isinstance(a, _MULTI_MEMBERS) or isinstance(b, _MULTI_MEMBERS):
        return _relate_multi(a, b)
    key = (a.geom_type, b.geom_type)
    if key in _SIMPLE_KERNELS:
        return _SIMPLE_KERNELS[key](a, b)
    flipped = (b.geom_type, a.geom_type)
    if flipped in _SIMPLE_KERNELS:
        return _SIMPLE_KERNELS[flipped](b, a).inverse()
    raise GeometryError(f"cannot relate {a.geom_type} with {b.geom_type}")


def _members(geom: Geometry) -> list[Geometry]:
    if isinstance(geom, _MULTI_MEMBERS):
        return list(geom.members)
    return [geom]


def _relate_multi(a: Geometry, b: Geometry) -> Relation:
    """Aggregate member-wise relations for collection geometries."""
    rels = {relate(ma, mb) for ma in _members(a) for mb in _members(b)}
    if rels == {Relation.DISJOINT}:
        return Relation.DISJOINT
    if rels == {Relation.EQUALS} and len(_members(a)) == len(_members(b)):
        return Relation.EQUALS
    if rels <= {Relation.DISJOINT, Relation.TOUCHES}:
        return Relation.TOUCHES
    if all(
        any(relate(ma, mb) in (Relation.WITHIN, Relation.EQUALS) for mb in _members(b))
        for ma in _members(a)
    ):
        return Relation.WITHIN
    if all(
        any(relate(ma, mb) in (Relation.CONTAINS, Relation.EQUALS) for ma in _members(a))
        for mb in _members(b)
    ):
        return Relation.CONTAINS
    if Relation.CROSSES in rels and not (rels & {Relation.OVERLAPS}):
        return Relation.CROSSES
    return Relation.OVERLAPS


# Convenience boolean wrappers -------------------------------------------------


def equals(a: Geometry, b: Geometry) -> bool:
    return relate(a, b) is Relation.EQUALS


def disjoint(a: Geometry, b: Geometry) -> bool:
    return relate(a, b) is Relation.DISJOINT


def intersects(a: Geometry, b: Geometry) -> bool:
    return relate(a, b) is not Relation.DISJOINT


def touches(a: Geometry, b: Geometry) -> bool:
    return relate(a, b) is Relation.TOUCHES


def overlaps(a: Geometry, b: Geometry) -> bool:
    return relate(a, b) is Relation.OVERLAPS


def crosses(a: Geometry, b: Geometry) -> bool:
    return relate(a, b) is Relation.CROSSES


def within(a: Geometry, b: Geometry) -> bool:
    return relate(a, b) in (Relation.WITHIN, Relation.EQUALS)


def contains(a: Geometry, b: Geometry) -> bool:
    return relate(a, b) in (Relation.CONTAINS, Relation.EQUALS)


def covers(a: Geometry, b: Geometry) -> bool:
    """a covers b: no point of b is exterior to a (contains or touches-inside)."""
    rel = relate(a, b)
    if rel in (Relation.CONTAINS, Relation.EQUALS):
        return True
    if rel is Relation.TOUCHES and isinstance(a, Polygon):
        return all(a.contains_point(x, y) for x, y in _sample_points(b))
    return False


def covered_by(a: Geometry, b: Geometry) -> bool:
    return covers(b, a)


def _sample_points(geom: Geometry) -> list[tuple[float, float]]:
    if isinstance(geom, Point):
        return [(geom.x, geom.y)]
    if isinstance(geom, LineString):
        return list(geom.coords) + _segment_midpoints(geom)
    if isinstance(geom, Polygon):
        return list(geom.exterior.coords)
    out: list[tuple[float, float]] = []
    for member in _members(geom):
        out.extend(_sample_points(member))
    return out


#: Predicate registry used by the query language (`where touches(...)`).
PREDICATES = {
    "equals": equals,
    "disjoint": disjoint,
    "intersects": intersects,
    "touches": touches,
    "overlaps": overlaps,
    "crosses": crosses,
    "within": within,
    "contains": contains,
    "covers": covers,
    "covered_by": covered_by,
}
