"""repro — reproduction of "Active Customization of GIS User Interfaces".

Medeiros, Oliveira & Cilia, ICDE 1997.

The public API is organized in subpackages:

* :mod:`repro.spatial`   — geometry, topology, spatial indexes, map scale;
* :mod:`repro.geodb`     — the object-oriented geographic DBMS substrate;
* :mod:`repro.active`    — the generic ECA rule engine and constraints;
* :mod:`repro.uilib`     — the interface objects library and renderers;
* :mod:`repro.lang`      — the declarative customization language;
* :mod:`repro.core`      — contexts, customization rules, builder,
  dispatcher, and the :class:`~repro.core.session.GISSession` façade;
* :mod:`repro.ui`        — MVC plumbing and the interaction driver;
* :mod:`repro.workloads` — synthetic data generators;
* :mod:`repro.baselines` — conventional comparators for the benchmarks.

Quickstart::

    from repro.core import GISSession
    from repro.workloads import build_phone_net_database
    from repro.lang import FIGURE_6_PROGRAM

    db = build_phone_net_database()
    session = GISSession(db, user="juliano", application="pole_manager")
    session.install_program(FIGURE_6_PROGRAM, persist=False)
    session.connect("phone_net")
    print(session.render())
"""

from .core.kernel import GISKernel
from .core.session import GISSession
from .core.context import Context, ContextPattern
from .core.customization import (
    AttributeCustomization,
    ClassCustomization,
    CustomizationDirective,
)
from .geodb.database import GeographicDatabase

__version__ = "1.0.0"

__all__ = [
    "GISKernel",
    "GISSession",
    "Context",
    "ContextPattern",
    "CustomizationDirective",
    "ClassCustomization",
    "AttributeCustomization",
    "GeographicDatabase",
    "__version__",
]
