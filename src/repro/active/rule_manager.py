"""Generic ECA (Event-Condition-Action) rule engine.

§3.3: "Active databases are systems which respond to events generated
internally or externally to the system itself without user intervention.
The active dimension is supported by production rule mechanisms ... rules
are usually defined using three components: Event, Condition, Action."

This module is the *generic* engine the paper says it does not need to
specialize ("we do not require a special purpose active mechanism, but
have only introduced a new type of rules and events to be handled"):

* rules subscribe to event kinds, carry a condition predicate and an
  action callable;
* the rule set is **partitioned** (§3.3: "the rule set may be partitioned
  into (at least) two subsets: rules for interface customization, and
  other rules") by a free-form ``group`` tag;
* per-group **selection policies**: ``ALL_MATCHING`` runs every matching
  rule in priority order (integrity rules), ``HIGHEST_PRIORITY`` runs only
  the single most specific rule (the paper's customization policy);
* **coupling modes**: immediate (action runs on the publisher's stack) or
  deferred (queued until :meth:`RuleManager.flush_deferred`);
* **cascade control**: actions may raise derived events; depth is bounded;
* an **execution trace** records which rule fired on which event and why —
  the hook for the §2.2 *explanation* interaction mode.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Iterable

from .. import obs
from ..errors import CascadeLimitError, RuleError
from .event_bus import Event, EventBus, EventKind

Condition = Callable[[Event], bool]
Action = Callable[[Event, "RuleManager"], Any]

_rule_ids = itertools.count(1)


class Coupling(Enum):
    """When an action runs relative to its triggering event."""

    IMMEDIATE = "immediate"
    DEFERRED = "deferred"


class SelectionPolicy(Enum):
    """How many of the matching rules in a group execute per event."""

    ALL_MATCHING = "all"
    HIGHEST_PRIORITY = "highest"


@dataclass
class Rule:
    """One ECA rule.

    ``priority`` orders execution (higher first). For customization rules
    the priority encodes context specificity — see
    :mod:`repro.core.priority`.
    """

    name: str
    events: frozenset[EventKind]
    condition: Condition
    action: Action
    priority: int = 0
    group: str = "default"
    coupling: Coupling = Coupling.IMMEDIATE
    enabled: bool = True
    doc: str = ""
    rule_id: int = field(default_factory=lambda: next(_rule_ids))

    def matches(self, event: Event) -> bool:
        if not self.enabled or event.kind not in self.events:
            return False
        try:
            return bool(self.condition(event))
        except Exception as exc:
            raise RuleError(
                f"condition of rule {self.name!r} raised {exc!r}"
            ) from exc


@dataclass
class Firing:
    """Trace entry: one rule execution."""

    rule_name: str
    group: str
    event: Event
    result: Any = None
    error: str | None = None

    def describe(self) -> str:
        status = f"error={self.error}" if self.error else "ok"
        return f"{self.rule_name} on {self.event.describe()} [{status}]"


class RuleManager:
    """Holds the rule set and reacts to events on a bus.

    ``cache_key`` enables the **selection cache**: a callable mapping an
    event to a hashable key (or ``None`` for "don't cache this event").
    When two events map to the same key, rule selection must be
    guaranteed — by the caller providing the key function — to pick the
    same rules; the manager then memoizes the selected rule names. The
    cache is keyed by a **generation counter** bumped on every rule-set
    change (add/remove/enable/policy), so cached selections can never
    survive a mutation. Actions still execute per event — only the
    O(rules) matching scan is skipped.
    """

    def __init__(self, bus: EventBus, max_cascade_depth: int = 8,
                 trace_limit: int = 1000,
                 cache_key: Callable[[Event], Any] | None = None,
                 cache_limit: int = 4096):
        self.bus = bus
        self.max_cascade_depth = max_cascade_depth
        self._rules: dict[str, Rule] = {}
        self._policies: dict[str, SelectionPolicy] = {}
        self._deferred: list[tuple[Rule, Event]] = []
        self.trace: list[Firing] = []
        self.trace_limit = trace_limit
        self.generation = 0
        self._cache_key = cache_key
        self._cache_limit = cache_limit
        self._selection_cache: dict[Any, tuple[str, ...]] = {}
        self.cache_invalidations = 0
        self._handler = self._on_event
        bus.subscribe(self._handler)

    def detach(self) -> None:
        """Stop reacting to the bus (used when swapping engines)."""
        self.bus.unsubscribe(self._handler)

    def _bump_generation(self) -> None:
        """Record a rule-set mutation; stale cached selections are dropped."""
        self.generation += 1
        if self._selection_cache:
            self._selection_cache.clear()
            self.cache_invalidations += 1
            rec = obs.RECORDER
            if rec.enabled:
                rec.inc("engine.decision_cache.invalidation")

    # -- rule set management ----------------------------------------------------

    def add_rule(self, rule: Rule) -> Rule:
        if rule.name in self._rules:
            raise RuleError(f"a rule named {rule.name!r} already exists")
        self._rules[rule.name] = rule
        self._bump_generation()
        return rule

    def define(self, name: str, events: Iterable[EventKind], condition: Condition,
               action: Action, priority: int = 0, group: str = "default",
               coupling: Coupling = Coupling.IMMEDIATE, doc: str = "") -> Rule:
        """Convenience builder + :meth:`add_rule`."""
        return self.add_rule(
            Rule(
                name=name,
                events=frozenset(events),
                condition=condition,
                action=action,
                priority=priority,
                group=group,
                coupling=coupling,
                doc=doc,
            )
        )

    def remove_rule(self, name: str) -> None:
        if name not in self._rules:
            raise RuleError(f"no rule named {name!r}")
        del self._rules[name]
        self._bump_generation()

    def set_enabled(self, name: str, enabled: bool) -> None:
        """Toggle one rule; invalidates cached selections (unlike a bare
        ``rule.enabled = ...`` assignment, which callers using the
        selection cache must avoid)."""
        rule = self.get_rule(name)
        if rule.enabled != enabled:
            rule.enabled = enabled
            self._bump_generation()

    def get_rule(self, name: str) -> Rule:
        if name not in self._rules:
            raise RuleError(f"no rule named {name!r}")
        return self._rules[name]

    def rules(self, group: str | None = None) -> list[Rule]:
        out = list(self._rules.values())
        if group is not None:
            out = [r for r in out if r.group == group]
        return out

    def set_policy(self, group: str, policy: SelectionPolicy) -> None:
        if self._policies.get(group) is not policy:
            self._policies[group] = policy
            self._bump_generation()

    def policy(self, group: str) -> SelectionPolicy:
        return self._policies.get(group, SelectionPolicy.ALL_MATCHING)

    # -- event handling ------------------------------------------------------------

    def _on_event(self, event: Event) -> None:
        if event.depth > self.max_cascade_depth:
            raise CascadeLimitError(
                f"event {event.describe()} exceeds cascade depth "
                f"{self.max_cascade_depth}"
            )
        rec = obs.RECORDER
        key = self._cache_key(event) if self._cache_key is not None else None
        if key is not None:
            cached = self._selection_cache.get(key)
            if cached is not None:
                selected = [self._rules[name] for name in cached]
                if rec.enabled:
                    rec.inc("engine.decision_cache.hit")
                    rec.inc("rules.selected", len(selected))
            else:
                selected = self._select_observed(event, rec)
                if len(self._selection_cache) >= self._cache_limit:
                    self._selection_cache.pop(
                        next(iter(self._selection_cache)))
                self._selection_cache[key] = tuple(r.name for r in selected)
                if rec.enabled:
                    rec.inc("engine.decision_cache.miss")
        else:
            selected = self._select_observed(event, rec)
        for rule in selected:
            if rule.coupling is Coupling.DEFERRED:
                self._deferred.append((rule, event))
                if rec.enabled:
                    rec.inc("rules.deferred")
            else:
                self._execute(rule, event)

    def _select_observed(self, event: Event, rec) -> list[Rule]:
        """Full selection scan, with the observability wrapping."""
        if not rec.enabled:
            return self.select_rules(event)
        with rec.span("rule_manager.select", kind=event.kind.value) as sp:
            selected = self.select_rules(event)
            sp.annotate(selected=len(selected))
        rec.inc("rules.evaluated", len(self._rules))
        rec.inc("rules.selected", len(selected))
        return selected

    def select_rules(self, event: Event) -> list[Rule]:
        """Matching rules after applying each group's selection policy.

        Rules are grouped, each group is ordered by (priority desc,
        rule_id asc), and groups with ``HIGHEST_PRIORITY`` policy are cut
        to their single top rule. Ties at the top of such a group raise
        :class:`RuleError` — the paper's execution model requires a single
        most-specific rule.
        """
        by_group: dict[str, list[Rule]] = {}
        for rule in self._rules.values():
            if rule.matches(event):
                by_group.setdefault(rule.group, []).append(rule)
        selected: list[Rule] = []
        for group, rules in sorted(by_group.items()):
            rules.sort(key=lambda r: (-r.priority, r.rule_id))
            if self.policy(group) is SelectionPolicy.HIGHEST_PRIORITY:
                if len(rules) > 1 and rules[0].priority == rules[1].priority:
                    raise RuleError(
                        f"ambiguous rule selection in group {group!r}: "
                        f"{rules[0].name!r} and {rules[1].name!r} share "
                        f"priority {rules[0].priority} for {event.describe()}"
                    )
                rules = rules[:1]
            selected.extend(rules)
        return selected

    def _execute(self, rule: Rule, event: Event) -> None:
        firing = Firing(rule_name=rule.name, group=rule.group, event=event)
        rec = obs.RECORDER
        with rec.span("rule_manager.execute", rule=rule.name,
                      group=rule.group):
            try:
                firing.result = rule.action(event, self)
            except Exception as exc:
                firing.error = repr(exc)
                self._record(firing)
                if rec.enabled:
                    rec.inc("rules.fired", group=rule.group, status="error")
                raise
        self._record(firing)
        if rec.enabled:
            rec.inc("rules.fired", group=rule.group, status="ok")

    def _record(self, firing: Firing) -> None:
        self.trace.append(firing)
        if len(self.trace) > self.trace_limit:
            del self.trace[: len(self.trace) - self.trace_limit]

    # -- action helpers ----------------------------------------------------------

    def raise_event(self, event: Event) -> None:
        """Publish a derived event from inside an action (cascade)."""
        self.bus.publish(event)

    def flush_deferred(self) -> int:
        """Run every queued deferred action; returns the count executed."""
        executed = 0
        while self._deferred:
            rule, event = self._deferred.pop(0)
            self._execute(rule, event)
            executed += 1
        return executed

    @property
    def deferred_count(self) -> int:
        return len(self._deferred)

    def firings_for(self, event_id: int) -> list[Firing]:
        return [f for f in self.trace if f.event.event_id == event_id]

    def explain_last(self, n: int = 5) -> str:
        """The last ``n`` firings, for the explanation interaction mode."""
        tail = self.trace[-n:]
        if not tail:
            return "(no rule has fired yet)"
        return "\n".join(f.describe() for f in tail)
