"""Active database mechanism: events, ECA rules, integrity constraints."""

from .event_bus import (
    EXPLORATORY_KINDS,
    MUTATION_KINDS,
    Event,
    EventBus,
    EventKind,
)
from .rule_manager import (
    Action,
    Condition,
    Coupling,
    Firing,
    Rule,
    RuleManager,
    SelectionPolicy,
)
from .constraints import (
    Constraint,
    ConstraintGuard,
    ProximityConstraint,
    RelationConstraint,
    Violation,
)

__all__ = [
    "Event", "EventBus", "EventKind", "EXPLORATORY_KINDS", "MUTATION_KINDS",
    "Rule", "RuleManager", "Coupling", "SelectionPolicy", "Firing",
    "Condition", "Action",
    "Constraint", "RelationConstraint", "ProximityConstraint",
    "ConstraintGuard", "Violation",
]
