"""Event definitions and the synchronous event bus.

The paper's active mechanism "responds to events generated internally or
externally to the system itself" (§3.3). Events may be *internal* to the
database (queries, updates) or *external* (application and interface
events). Interface interactions are split in two: an interface event
``IE_i`` handled by widget callbacks, and a database event ``DBE_i``
captured by the active mechanism.

This module defines the shared :class:`Event` value object and a small
synchronous :class:`EventBus`. The geographic DBMS publishes its primitive
events (``get_schema``, ``get_class``, ``get_value``, ``insert``,
``update``, ``delete``) here; the rule managers in
:mod:`repro.active.rule_manager` and :mod:`repro.core.rule_engine`
subscribe to it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Iterable

from .. import obs
from ..errors import RuleError


class EventKind(Enum):
    """Primitive event vocabulary shared by the database and the interface.

    The three ``GET_*`` kinds are the exploratory-mode primitives of §3.3;
    the three mutation kinds extend the paper toward its stated future work
    (customization and constraint checking of update requests).
    """

    GET_SCHEMA = "get_schema"
    GET_CLASS = "get_class"
    GET_VALUE = "get_value"
    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"
    # External/application events (hardware interrupts, timers, app signals).
    EXTERNAL = "external"

    @classmethod
    def from_name(cls, name: str) -> "EventKind":
        for kind in cls:
            if kind.value == name:
                return kind
        raise RuleError(f"unknown event kind {name!r}")


#: Event kinds the exploratory interaction mode is restricted to (§3.3).
EXPLORATORY_KINDS = frozenset(
    {EventKind.GET_SCHEMA, EventKind.GET_CLASS, EventKind.GET_VALUE}
)

#: Mutation kinds, used by the constraint rules and the update extension.
MUTATION_KINDS = frozenset({EventKind.INSERT, EventKind.UPDATE, EventKind.DELETE})

_event_ids = itertools.count(1)


@dataclass(frozen=True)
class Event:
    """One occurrence of a primitive event.

    Attributes
    ----------
    kind:
        The primitive vocabulary entry (:class:`EventKind`).
    subject:
        What the event is about: a schema name for ``GET_SCHEMA``, a class
        name for ``GET_CLASS``/mutations, an object id for ``GET_VALUE``.
    payload:
        Kind-specific data (e.g. the updated attribute values, the query
        parameters). Stored as an immutable-by-convention mapping.
    context:
        The interaction context in which the event occurred — the paper's
        ``<user class, application domain>`` tuple, carried as an opaque
        object understood by the rule condition layer.
    session_id:
        The originating session, when the event was raised on behalf of
        one (``None`` for system-side events such as recovery or bulk
        loads). The shared kernel uses this to record customization
        decisions per session and to scope subscriber delivery.
    depth:
        Cascade depth: 0 for primary events, incremented for events raised
        by rule actions. The rule managers bound this.
    """

    kind: EventKind
    subject: str
    payload: dict[str, Any] = field(default_factory=dict)
    context: Any = None
    session_id: str | None = None
    depth: int = 0
    event_id: int = field(default_factory=lambda: next(_event_ids))

    def derived(self, kind: EventKind, subject: str, payload: dict | None = None) -> "Event":
        """A follow-up event raised by a rule action (depth + 1)."""
        return Event(
            kind=kind,
            subject=subject,
            payload=dict(payload or {}),
            context=self.context,
            session_id=self.session_id,
            depth=self.depth + 1,
        )

    def describe(self) -> str:
        return f"{self.kind.value}({self.subject})@depth={self.depth}"


Subscriber = Callable[[Event], None]


class EventBus:
    """A synchronous publish/subscribe hub for :class:`Event` objects.

    Subscribers are invoked in registration order, immediately, on the
    publisher's call stack (the paper's *immediate* coupling mode). A
    subscriber may be registered for specific kinds or for all events,
    and may additionally be **session-scoped**: it then only sees events
    carrying its ``session_id``. Unscoped subscribers (the shared rule
    engine, integrity guards) see every event.
    """

    def __init__(self) -> None:
        self._by_kind: dict[EventKind, list[Subscriber]] = {}
        self._all: list[Subscriber] = []
        #: session-scoped subscribers: subscriber -> session_id filter
        self._scopes: dict[Subscriber, str] = {}
        self._published = 0
        self._log: list[Event] = []
        self.keep_log = False
        #: the most recently published event — lets a caller that triggered
        #: a primitive (and thus its event) correlate with rule decisions
        self.last_event: Event | None = None

    def subscribe(self, subscriber: Subscriber,
                  kinds: Iterable[EventKind] | None = None,
                  session_id: str | None = None) -> None:
        """Register ``subscriber`` for ``kinds`` (or every kind when None).

        With ``session_id``, delivery is scoped: the subscriber only
        receives events whose ``session_id`` matches.
        """
        if session_id is not None:
            self._scopes[subscriber] = session_id
        if kinds is None:
            self._all.append(subscriber)
            return
        for kind in kinds:
            self._by_kind.setdefault(kind, []).append(subscriber)

    def unsubscribe(self, subscriber: Subscriber) -> None:
        """Remove a subscriber from every registration point.

        Uses ``==`` rather than ``is``: bound methods (e.g. ``seen.append``)
        produce a fresh object on every attribute access, but compare equal.
        """
        self._all = [s for s in self._all if s != subscriber]
        for kind in list(self._by_kind):
            self._by_kind[kind] = [
                s for s in self._by_kind[kind] if s != subscriber
            ]
            if not self._by_kind[kind]:
                del self._by_kind[kind]
        self._scopes.pop(subscriber, None)

    def publish(self, event: Event) -> None:
        """Deliver ``event`` to every matching subscriber, synchronously."""
        self._published += 1
        self.last_event = event
        if self.keep_log:
            self._log.append(event)
        rec = obs.RECORDER
        if rec.enabled:
            rec.inc("event_bus.events_published", kind=event.kind.value)
            with rec.span("event_bus.publish", kind=event.kind.value,
                          subject=event.subject):
                self._deliver(event)
        else:
            self._deliver(event)

    def _deliver(self, event: Event) -> None:
        scopes = self._scopes
        for subscriber in list(self._by_kind.get(event.kind, ())):
            scope = scopes.get(subscriber) if scopes else None
            if scope is None or scope == event.session_id:
                subscriber(event)
        for subscriber in list(self._all):
            scope = scopes.get(subscriber) if scopes else None
            if scope is None or scope == event.session_id:
                subscriber(event)

    @property
    def published_count(self) -> int:
        return self._published

    def drain_log(self) -> list[Event]:
        """Return and clear the retained event log (requires ``keep_log``)."""
        log, self._log = self._log, []
        return log
