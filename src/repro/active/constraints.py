"""Topological integrity constraints maintained by active rules.

The paper's §5 reports: "A prototype has been developed to associate a gis
with an active dbms, and it has been used for maintaining topological
constraints in the gis" (reference [11], Medeiros & Cilia 1995). This
module reproduces that companion capability on the same generic rule
engine the customization rules use — demonstrating the §3.3 claim that
one active mechanism serves both rule families.

A constraint declares a binary topological requirement between classes::

    # every Pole must lie within the service District
    RelationConstraint("Pole", "pole_location", "within", "District",
                       "boundary", quantifier="some")

    # no two Ducts may cross
    RelationConstraint("Duct", "duct_path", "crosses", "Duct", "duct_path",
                       quantifier="none")

A :class:`ConstraintGuard` compiles each constraint into an ECA rule on
the mutation events' *validate* phase; a violating transaction is aborted
by raising :class:`~repro.errors.ConstraintViolationError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import ConstraintViolationError, RuleError
from ..spatial.geometry import Geometry
from ..spatial.algorithms import geometry_distance
from ..spatial.topology import PREDICATES
from .event_bus import Event, EventKind, MUTATION_KINDS
from .rule_manager import Rule, RuleManager

_QUANTIFIERS = ("some", "all", "none")


@dataclass(frozen=True)
class Violation:
    """One detected constraint violation."""

    constraint: str
    subject_oid: str
    detail: str

    def describe(self) -> str:
        return f"[{self.constraint}] {self.subject_oid}: {self.detail}"


class Constraint:
    """Base class: checks a staged object, returns violations."""

    name: str = "constraint"
    subject_class: str = ""

    def check(self, database, schema_name: str, oid: str,
              staged: dict[str, Any]) -> list[Violation]:
        raise NotImplementedError


class RelationConstraint(Constraint):
    """``<subject>.<attr> <relation> <target>.<attr>`` with a quantifier.

    quantifier:
        * ``"some"`` — the relation must hold against at least one target;
        * ``"all"``  — against every target;
        * ``"none"`` — against no target (a prohibition).

    The subject object itself is excluded from the target set when subject
    and target classes coincide.
    """

    def __init__(self, subject_class: str, subject_attr: str, relation: str,
                 target_class: str, target_attr: str,
                 quantifier: str = "some", name: str | None = None):
        if relation not in PREDICATES:
            raise RuleError(f"unknown topological relation {relation!r}")
        if quantifier not in _QUANTIFIERS:
            raise RuleError(
                f"quantifier must be one of {_QUANTIFIERS}, got {quantifier!r}"
            )
        self.subject_class = subject_class
        self.subject_attr = subject_attr
        self.relation = relation
        self.target_class = target_class
        self.target_attr = target_attr
        self.quantifier = quantifier
        self.name = name or (
            f"{subject_class}.{subject_attr} {relation} "
            f"[{quantifier}] {target_class}.{target_attr}"
        )

    def check(self, database, schema_name: str, oid: str,
              staged: dict[str, Any]) -> list[Violation]:
        geom = staged.get(self.subject_attr)
        if not isinstance(geom, Geometry):
            return []  # nothing spatial staged; nothing to check
        predicate = PREDICATES[self.relation]
        targets = [
            obj
            for obj in database.extent(schema_name, self.target_class)
            if obj.oid != oid
        ]
        holds = []
        for target in targets:
            target_geom = target.geometry(self.target_attr)
            if target_geom is None:
                continue
            if predicate(geom, target_geom):
                holds.append(target.oid)
        if self.quantifier == "some" and not holds:
            if not targets:
                return []  # vacuously satisfied: no targets exist yet
            return [
                Violation(
                    self.name,
                    oid,
                    f"{self.relation} holds against no {self.target_class}",
                )
            ]
        if self.quantifier == "all":
            checked = [
                t.oid for t in targets if t.geometry(self.target_attr) is not None
            ]
            missing = sorted(set(checked) - set(holds))
            if missing:
                return [
                    Violation(
                        self.name,
                        oid,
                        f"{self.relation} fails against {missing}",
                    )
                ]
        if self.quantifier == "none" and holds:
            return [
                Violation(
                    self.name,
                    oid,
                    f"{self.relation} holds against {sorted(holds)} "
                    f"but is prohibited",
                )
            ]
        return []


class ProximityConstraint(Constraint):
    """Subject geometry must lie within ``max_distance`` of some target.

    E.g. a pole must stand within 30 m of a street segment.
    """

    def __init__(self, subject_class: str, subject_attr: str,
                 target_class: str, target_attr: str, max_distance: float,
                 name: str | None = None):
        if max_distance < 0:
            raise RuleError("max_distance must be non-negative")
        self.subject_class = subject_class
        self.subject_attr = subject_attr
        self.target_class = target_class
        self.target_attr = target_attr
        self.max_distance = float(max_distance)
        self.name = name or (
            f"{subject_class}.{subject_attr} near({max_distance}) "
            f"{target_class}.{target_attr}"
        )

    def check(self, database, schema_name: str, oid: str,
              staged: dict[str, Any]) -> list[Violation]:
        geom = staged.get(self.subject_attr)
        if not isinstance(geom, Geometry):
            return []
        best = None
        for target in database.extent(schema_name, self.target_class):
            if target.oid == oid:
                continue
            target_geom = target.geometry(self.target_attr)
            if target_geom is None:
                continue
            dist = geometry_distance(geom, target_geom)
            best = dist if best is None else min(best, dist)
            if dist <= self.max_distance:
                return []
        if best is None:
            return []  # no targets: vacuously satisfied
        return [
            Violation(
                self.name,
                oid,
                f"nearest {self.target_class} is {best:.2f} away "
                f"(limit {self.max_distance})",
            )
        ]


class ConstraintGuard:
    """Wires constraints into a database's event bus as active rules.

    One ECA rule per constraint, in rule group ``"integrity"``, listening
    to the *validate* phase of insert/update events. Delete events are not
    guarded (the paper's constraints concern spatial configurations of
    existing objects; referential integrity already guards deletes).
    """

    GROUP = "integrity"

    def __init__(self, database, schema_name: str,
                 manager: RuleManager | None = None):
        self.database = database
        self.schema_name = schema_name
        self.manager = manager or RuleManager(database.bus)
        self._constraints: list[Constraint] = []
        #: violations found by check-only sweeps (not aborted transactions)
        self.audit_log: list[Violation] = []

    def add(self, constraint: Constraint) -> Constraint:
        self._constraints.append(constraint)
        subject = constraint.subject_class
        name = f"integrity::{constraint.name}"

        def condition(event: Event, _subject=subject) -> bool:
            return (
                event.payload.get("phase") == "validate"
                and event.payload.get("schema") == self.schema_name
                and event.payload.get("class") == _subject
            )

        def action(event: Event, _manager, _constraint=constraint) -> None:
            staged = event.payload.get("staged") or {}
            violations = _constraint.check(
                self.database, self.schema_name, event.subject, staged
            )
            if violations:
                raise ConstraintViolationError(
                    "; ".join(v.describe() for v in violations),
                    violations=violations,
                )

        self.manager.define(
            name,
            events=MUTATION_KINDS - {EventKind.DELETE},
            condition=condition,
            action=action,
            group=self.GROUP,
            doc=f"topological integrity: {constraint.name}",
        )
        return constraint

    def constraints(self) -> list[Constraint]:
        return list(self._constraints)

    def sweep(self) -> list[Violation]:
        """Audit the whole database against every constraint.

        Unlike the event path this never raises; it reports. Useful after
        bulk loads or after enabling a new constraint on existing data.
        """
        found: list[Violation] = []
        for constraint in self._constraints:
            for obj in self.database.extent(self.schema_name,
                                            constraint.subject_class):
                found.extend(
                    constraint.check(
                        self.database, self.schema_name, obj.oid, obj.values()
                    )
                )
        self.audit_log.extend(found)
        return found
