"""Standard composite widgets shipped with the library.

These are the concrete artifacts the paper names:

* ``composed_text`` — §4 line (7): "the attribute pole_composition is
  customized to be represented as a predefined widget named
  composed_text", with behavior bound via ``composed_text.notify()``.
* ``poleWidget`` — §4 lines (4)-(5): "a predefined composed widget
  (poleWidget, defined as a slider)".
* ``map_selection_panel`` — the §3.2 reuse example: "a control panel for
  selecting maps from a map collection ... may contain lists for
  visualization and choice, text fields for geographic region names,
  operation buttons".

:func:`install_standard_composites` registers all of them into a library.
"""

from __future__ import annotations

from typing import Any

from ..errors import WidgetError
from .base import UIEvent
from .library import InterfaceObjectLibrary, WidgetTemplate
from .widgets import Panel, Text


class ComposedText(Panel):
    """Several source fields rendered as one composite textual widget.

    Built as a Panel holding one :class:`Text` per source field plus a
    summary line. :meth:`notify` (also reachable as the ``notify`` event,
    the §4 ``using composed_text.notify()`` binding) refreshes the summary
    from the parts.
    """

    widget_type = "panel"  # stays a panel structurally
    default_events = ("notify",)

    def __init__(self, name: str | None = None, fields: Any = (),
                 separator: str = " / ", **props: Any):
        fields = list(fields)
        if not fields:
            raise WidgetError("composed_text needs at least one field name")
        super().__init__(name, **props)
        self.set_property("library_type", "composed_text")
        self.separator = separator
        self._field_names = [str(f) for f in fields]
        self._summary = Text("summary", label=props.get("label", "value"))
        self.add_child(self._summary)
        for field_name in self._field_names:
            self.add_child(Text(f"part_{field_name}", label=field_name))
        self.on("notify", self._on_notify)

    def set_parts(self, values: dict[str, Any]) -> None:
        """Load the source field values and refresh the summary."""
        for field_name in self._field_names:
            part: Text = self.child(f"part_{field_name}")  # type: ignore[assignment]
            part.set_value("" if values.get(field_name) is None
                           else str(values[field_name]))
        self.notify()

    def notify(self) -> str:
        """Recompute the summary line from the parts; returns it."""
        parts = []
        for field_name in self._field_names:
            part: Text = self.child(f"part_{field_name}")  # type: ignore[assignment]
            if part.value:
                parts.append(part.value)
        self._summary.set_value(self.separator.join(parts))
        return self._summary.value

    def _on_notify(self, event: UIEvent) -> str:
        return self.notify()

    @property
    def summary(self) -> str:
        return self._summary.value

    def _describe_extra(self) -> dict[str, Any]:
        return {"composed_of": list(self._field_names), "summary": self.summary}


#: Template for the §3.2 map-selection control panel.
MAP_SELECTION_TEMPLATE = WidgetTemplate(
    name="map_selection_panel",
    doc="Panel for selecting maps from a map collection (paper §3.2)",
    defaults={"region_label": "Geographic region", "title": "Map selection"},
    spec={
        "type": "panel",
        "name": "map_selection",
        "props": {"layout": "vertical", "label": "$title"},
        "children": [
            {
                "type": "list",
                "name": "available_maps",
                "props": {"label": "Available maps"},
            },
            {
                "type": "list",
                "name": "chosen_maps",
                "props": {"label": "Chosen maps"},
            },
            {
                "type": "text",
                "name": "region_name",
                "props": {"label": "$region_label", "editable": True},
            },
            {
                "type": "panel",
                "name": "operations",
                "props": {"layout": "horizontal"},
                "children": [
                    {"type": "button", "name": "add_map",
                     "props": {"label": "Add"}},
                    {"type": "button", "name": "remove_map",
                     "props": {"label": "Remove"}},
                    {"type": "button", "name": "open_maps",
                     "props": {"label": "Open"}},
                ],
            },
        ],
    },
)


def install_standard_composites(library: InterfaceObjectLibrary,
                                persist: bool = True) -> list[str]:
    """Register the paper's named composites; returns the installed names.

    Safe to call on a library that already holds (some of) them — existing
    names are kept as-is, which makes reloading from the catalog idempotent.
    """
    installed = []
    if not library.has("composed_text"):
        library.register_class("composed_text", ComposedText)
        installed.append("composed_text")
    if not library.has("poleWidget"):
        library.specialize(
            "poleWidget",
            base="slider",
            props={"minimum": 0.0, "maximum": 30.0, "label": "pole height (m)"},
            doc="predefined composed widget for poles, defined as a slider (§4)",
            persist=persist,
        )
        installed.append("poleWidget")
    if not library.has("map_selection_panel"):
        library.register_template(MAP_SELECTION_TEMPLATE, persist=persist)
        installed.append("map_selection_panel")
    return installed
