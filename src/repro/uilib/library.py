"""The interface objects library.

§3.2: "Each of these interaction windows is constructed from (and can be
customized by) a hierarchy of interface objects, stored in the interface
objects library. Interface objects can be used to compose progressively
more complex interface elements ... The benefit of this approach is that
it is not necessary to define these dialog components statically at
compilation time; rather, they can be inserted, updated and removed
dynamically."

The library is a registry of three extensibility levels:

* **classes** — the Figure 2 kernel plus any registered Python widget
  class (§3.2: "it is possible to add classes to it");
* **specializations** — an existing class with preset properties and
  bound events (§3.2: "it is possible to specialize existing classes,
  redefining and customizing their elements");
* **templates** — declarative composite trees with parameter slots
  (the §3.2 map-selection-panel example), serializable to the database
  catalog, so dialog components live *in the database*.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any

from ..errors import UnknownWidgetError, WidgetError
from ..geodb.catalog import KIND_WIDGET, MetadataCatalog
from .base import InterfaceObject
from .widgets import EXTENSION_CLASSES, KERNEL_CLASSES


@dataclass
class WidgetTemplate:
    """A declarative composite widget stored as data.

    ``spec`` is a tree of nodes ``{"type", "name"?, "props"?, "children"?}``.
    String property values of the form ``"$param"`` are substituted from
    the ``params`` given at instantiation; ``defaults`` fill absent params.
    """

    name: str
    spec: dict[str, Any]
    defaults: dict[str, Any] = field(default_factory=dict)
    doc: str = ""

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "spec": self.spec,
            "defaults": self.defaults,
            "doc": self.doc,
        }

    @classmethod
    def from_description(cls, desc: dict[str, Any]) -> "WidgetTemplate":
        return cls(
            name=desc["name"],
            spec=desc["spec"],
            defaults=desc.get("defaults", {}),
            doc=desc.get("doc", ""),
        )


@dataclass
class Specialization:
    """An existing widget class with preset presentation properties."""

    name: str
    base: str
    props: dict[str, Any] = field(default_factory=dict)
    doc: str = ""

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "base": self.base,
            "props": self.props,
            "doc": self.doc,
        }

    @classmethod
    def from_description(cls, desc: dict[str, Any]) -> "Specialization":
        return cls(
            name=desc["name"],
            base=desc["base"],
            props=desc.get("props", {}),
            doc=desc.get("doc", ""),
        )


class InterfaceObjectLibrary:
    """Registry + factory for every known interface object kind.

    When built with a :class:`~repro.geodb.catalog.MetadataCatalog`, the
    specializations and templates persist as ``widget`` documents and are
    reloaded by :meth:`load_from_catalog` — the library literally lives in
    the geographic database, as the paper's architecture requires.
    """

    def __init__(self, catalog: MetadataCatalog | None = None):
        self.catalog = catalog
        self._classes: dict[str, type[InterfaceObject]] = {}
        self._specializations: dict[str, Specialization] = {}
        self._templates: dict[str, WidgetTemplate] = {}
        for name, cls in {**KERNEL_CLASSES, **EXTENSION_CLASSES}.items():
            self._classes[name] = cls

    # -- registration ------------------------------------------------------------

    def register_class(self, name: str, widget_class: type[InterfaceObject]) -> None:
        """Add a new widget class (a Python-level kernel extension)."""
        if not (isinstance(widget_class, type)
                and issubclass(widget_class, InterfaceObject)):
            raise WidgetError(f"{widget_class!r} is not an InterfaceObject class")
        if name in self._classes:
            raise WidgetError(f"widget class {name!r} already registered")
        self._classes[name] = widget_class

    def specialize(self, name: str, base: str, props: dict[str, Any] | None = None,
                   doc: str = "", persist: bool = True) -> Specialization:
        """Register (and optionally persist) a specialization."""
        if self.has(name):
            raise WidgetError(f"widget name {name!r} is already taken")
        if base not in self._classes and base not in self._specializations:
            raise UnknownWidgetError(f"unknown base widget {base!r}")
        spec = Specialization(name=name, base=base, props=dict(props or {}), doc=doc)
        self._specializations[name] = spec
        if persist and self.catalog is not None:
            self.catalog.put(KIND_WIDGET, name,
                             {"kind": "specialization", **spec.describe()})
        return spec

    def register_template(self, template: WidgetTemplate,
                          persist: bool = True) -> WidgetTemplate:
        if self.has(template.name):
            raise WidgetError(f"widget name {template.name!r} is already taken")
        self._validate_spec(template.spec)
        self._templates[template.name] = template
        if persist and self.catalog is not None:
            self.catalog.put(KIND_WIDGET, template.name,
                             {"kind": "template", **template.describe()})
        return template

    def remove(self, name: str) -> None:
        """Remove a specialization or template (kernel classes stay)."""
        if name in self._specializations:
            del self._specializations[name]
        elif name in self._templates:
            del self._templates[name]
        else:
            raise UnknownWidgetError(
                f"{name!r} is not a removable library entry"
            )
        if self.catalog is not None and self.catalog.has(KIND_WIDGET, name):
            self.catalog.delete(KIND_WIDGET, name)

    def _validate_spec(self, node: dict[str, Any]) -> None:
        if "type" not in node:
            raise WidgetError(f"template node {node!r} lacks a 'type'")
        type_name = node["type"]
        if type_name not in self._classes and type_name not in self._specializations:
            raise UnknownWidgetError(
                f"template references unknown widget type {type_name!r}"
            )
        for child in node.get("children", ()):
            self._validate_spec(child)

    # -- lookup ---------------------------------------------------------------------

    def has(self, name: str) -> bool:
        return (
            name in self._classes
            or name in self._specializations
            or name in self._templates
        )

    def kind_of(self, name: str) -> str:
        if name in self._classes:
            return "class"
        if name in self._specializations:
            return "specialization"
        if name in self._templates:
            return "template"
        raise UnknownWidgetError(f"unknown widget {name!r}")

    def names(self) -> list[str]:
        return sorted(
            set(self._classes) | set(self._specializations) | set(self._templates)
        )

    def describe(self, name: str) -> dict[str, Any]:
        kind = self.kind_of(name)
        if kind == "class":
            cls = self._classes[name]
            return {
                "kind": "class",
                "name": name,
                "python_class": cls.__name__,
                "default_events": list(cls.default_events),
                "doc": (cls.__doc__ or "").strip().splitlines()[0] if cls.__doc__ else "",
            }
        if kind == "specialization":
            return {"kind": "specialization",
                    **self._specializations[name].describe()}
        return {"kind": "template", **self._templates[name].describe()}

    # -- instantiation ------------------------------------------------------------------

    def create(self, type_name: str, name: str | None = None,
               **params: Any) -> InterfaceObject:
        """Instantiate a class, specialization or template by name."""
        if type_name in self._classes:
            return self._classes[type_name](name, **params)
        if type_name in self._specializations:
            spec = self._specializations[type_name]
            merged = {**spec.props, **params}
            widget = self.create(spec.base, name, **merged)
            widget.set_property("library_type", type_name)
            return widget
        if type_name in self._templates:
            return self._instantiate_template(self._templates[type_name], name, params)
        raise UnknownWidgetError(
            f"unknown widget {type_name!r}; library has: {self.names()}"
        )

    def _instantiate_template(self, template: WidgetTemplate, name: str | None,
                              params: dict[str, Any]) -> InterfaceObject:
        values = {**template.defaults, **params}

        def substitute(value: Any) -> Any:
            if isinstance(value, str) and value.startswith("$"):
                key = value[1:]
                if key not in values:
                    raise WidgetError(
                        f"template {template.name!r} needs parameter {key!r}"
                    )
                return values[key]
            return value

        def build(node: dict[str, Any], override_name: str | None) -> InterfaceObject:
            props = {k: substitute(v) for k, v in node.get("props", {}).items()}
            node_name = override_name or node.get("name")
            if isinstance(node_name, str) and node_name.startswith("$"):
                node_name = substitute(node_name)
            widget = self.create(node["type"], node_name, **props)
            for child in node.get("children", ()):
                widget.add_child(build(child, None))
            return widget

        root = build(copy.deepcopy(template.spec), name)
        root.set_property("library_type", template.name)
        return root

    # -- persistence ---------------------------------------------------------------------

    def load_from_catalog(self) -> int:
        """Reload specializations and templates persisted in the database."""
        if self.catalog is None:
            raise WidgetError("library was built without a catalog")
        loaded = 0
        for name, doc in self.catalog.documents(KIND_WIDGET):
            if self.has(name):
                continue
            if doc.get("kind") == "specialization":
                self._specializations[name] = Specialization.from_description(doc)
            elif doc.get("kind") == "template":
                self._templates[name] = WidgetTemplate.from_description(doc)
            else:
                raise WidgetError(f"catalog widget {name!r} has unknown kind")
            loaded += 1
        return loaded
