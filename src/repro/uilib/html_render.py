"""HTML renderer for interface object trees.

A second headless backend beside the ASCII renderer: produces a
self-contained HTML fragment (or page) from a widget tree. Downstream
applications can serve a browsing session over HTTP without touching the
widget model; the structure mirrors ``describe()`` one-to-one, so tests
can assert on it with ordinary parsers.

Only standard-library facilities are used; styling is a small embedded
stylesheet, and the map raster is emitted as ``<pre>`` art with one
``<span>`` per feature cell (carrying ``data-oid`` for client-side picks).
"""

from __future__ import annotations

import html
from typing import Any

from .base import InterfaceObject
from .widgets import (
    Button,
    DrawingArea,
    ListWidget,
    Menu,
    MenuItem,
    Panel,
    Slider,
    Text,
    Window,
)

_STYLE = """
.repro-window { border: 2px solid #345; border-radius: 6px;
  font-family: monospace; margin: 8px; max-width: 60em; }
.repro-window > .title { background: #345; color: #fff; padding: 2px 8px; }
.repro-window.hidden { opacity: 0.45; border-style: dashed; }
.repro-panel { margin: 4px 0 4px 12px; }
.repro-panel.horizontal { display: flex; gap: 12px; }
.repro-panel > .label { font-weight: bold; }
.repro-text .label { color: #345; }
.repro-list ul { margin: 2px 0; padding-left: 20px; }
.repro-list li.selected { font-weight: bold; }
.repro-menu { color: #345; }
.repro-slider input { vertical-align: middle; }
.repro-map pre { background: #eef; border: 1px solid #99a;
  padding: 4px; line-height: 1.05; }
""".strip()


def render_html(widget: InterfaceObject, full_page: bool = False) -> str:
    """Render a widget tree to an HTML fragment (or full page)."""
    body = _node(widget)
    if not full_page:
        return body
    return (
        "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>"
        f"<style>{_STYLE}</style></head>\n<body>\n{body}\n</body></html>"
    )


def render_screen_html(windows: list[InterfaceObject]) -> str:
    """A full page holding every (visible-or-not) window of a screen."""
    body = "\n".join(_node(w) for w in windows)
    return (
        "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>"
        f"<style>{_STYLE}</style></head>\n<body>\n{body}\n</body></html>"
    )


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _node(widget: InterfaceObject) -> str:
    if isinstance(widget, Window):
        hidden = "" if widget.visible else " hidden"
        inner = "\n".join(_node(c) for c in widget.children if c.visible)
        return (
            f"<div class='repro-window{hidden}' id='{_esc(widget.name)}'>"
            f"<div class='title'>{_esc(widget.title)}</div>\n{inner}</div>"
        )
    if not widget.visible:
        return ""
    if isinstance(widget, Panel):
        classes = "repro-panel horizontal" if widget.layout == "horizontal" \
            else "repro-panel"
        label = widget.get_property("label", "")
        head = f"<div class='label'>{_esc(label)}</div>" if label else ""
        inner = "\n".join(_node(c) for c in widget.children)
        return (f"<div class='{classes}' id='{_esc(widget.name)}'>"
                f"{head}{inner}</div>")
    if isinstance(widget, Text):
        label = widget.get_property("label", "")
        if widget.get_property("editable"):
            return (
                f"<label class='repro-text'>"
                f"<span class='label'>{_esc(label)}:</span> "
                f"<input value='{_esc(widget.value)}'/></label>"
            )
        return (
            f"<div class='repro-text'>"
            f"<span class='label'>{_esc(label)}:</span> "
            f"<span class='value'>{_esc(widget.value)}</span></div>"
        )
    if isinstance(widget, Button):
        return (f"<button class='repro-button' name='{_esc(widget.name)}'>"
                f"{_esc(widget.label)}</button>")
    if isinstance(widget, ListWidget):
        label = widget.get_property("label", "")
        items = "\n".join(
            f"<li class='{'selected' if key == widget.selected_key else ''}'"
            f" data-key='{_esc(key)}'>{_esc(text)}</li>"
            for key, text in widget.items
        )
        head = f"<div class='label'>{_esc(label)}</div>" if label else ""
        return (f"<div class='repro-list'>{head}<ul>{items}</ul></div>")
    if isinstance(widget, Menu):
        items = " | ".join(
            f"<a href='#' data-item='{_esc(c.name)}'>{_esc(c.label)}</a>"
            for c in widget.children
            if isinstance(c, MenuItem) and c.visible
        )
        return (f"<nav class='repro-menu'>"
                f"<b>{_esc(widget.label)}</b>: {items}</nav>")
    if isinstance(widget, MenuItem):
        return f"<a href='#'>{_esc(widget.label)}</a>"
    if isinstance(widget, Slider):
        return (
            f"<div class='repro-slider'>"
            f"<span class='label'>"
            f"{_esc(widget.get_property('label', widget.name))}</span> "
            f"<input type='range' min='{widget.minimum}'"
            f" max='{widget.maximum}' value='{widget.value}' disabled/>"
            f" <span class='value'>{widget.value:g}</span></div>"
        )
    if isinstance(widget, DrawingArea):
        return _map_html(widget)
    # library extensions: render as a container with a tag
    inner = "\n".join(_node(c) for c in widget.children)
    return (f"<div class='repro-{_esc(widget.widget_type)}'"
            f" id='{_esc(widget.name)}'>{inner}</div>")


def _map_html(area: DrawingArea) -> str:
    raster = area.rasterize()
    rows = []
    for row in range(area.height):
        cells = []
        for col in range(area.width):
            symbol, oid = raster.get((col, row), (" ", None))
            if oid is None:
                cells.append(_esc(symbol))
            else:
                cells.append(
                    f"<span data-oid='{_esc(oid)}'>{_esc(symbol)}</span>"
                )
        rows.append("".join(cells))
    extent = area.viewport.extent
    caption = (
        f"extent ({extent.min_x:.1f}, {extent.min_y:.1f}) .. "
        f"({extent.max_x:.1f}, {extent.max_y:.1f}) — "
        f"{len(area.features)} features"
    )
    body = "\n".join(rows)
    return (
        f"<figure class='repro-map' id='{_esc(area.name)}'>"
        f"<pre>{body}</pre>"
        f"<figcaption>{_esc(caption)}</figcaption></figure>"
    )
