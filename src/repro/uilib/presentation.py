"""Presentation formats for schema, class and attribute displays.

The customization language binds *names* of presentation formats to
interface elements (§4: ``presentation as pointFormat``, ``display
attribute pole_composition as composed_text``). This module defines the
format objects behind those names and the registry the generic interface
builder consults.

Three format families mirror the three window levels:

* **schema formats** — how the Schema window lays out a schema
  (``default`` tabular list, ``hierarchy`` tree, ``user_defined``
  callback, ``null`` hidden);
* **class formats** — how a class extension is drawn in the Class-set
  window's presentation area (``pointFormat``, ``lineFormat``,
  ``polygonFormat``, ``symbolFormat``);
* **attribute formats** — which widget displays one instance attribute in
  the Instance window (``default``, ``composed_text``, ``slider``,
  ``text``, ``image``, ``null``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import CustomizationError
from ..spatial.geometry import Geometry
from ..spatial.scale import MapScale, generalize
from .base import InterfaceObject
from .library import InterfaceObjectLibrary
from .widgets import DrawingArea, Text

#: Schema display modes accepted by the language (Figure 3 ``schema`` clause).
SCHEMA_DISPLAY_MODES = ("default", "hierarchy", "user_defined", "null")


@dataclass(frozen=True)
class ClassFormat:
    """How a class extension appears in a Class-set presentation area."""

    name: str
    symbol: str = "*"
    #: apply cartographic generalization before drawing
    generalized: bool = False
    doc: str = ""

    def place(self, area: DrawingArea, objects, geometry_attr: str,
              scale: MapScale | None = None) -> int:
        """Add each object's geometry to the drawing area; returns count."""
        placed = 0
        for obj in objects:
            geom = obj.geometry(geometry_attr)
            if geom is None:
                continue
            if self.generalized and scale is not None:
                geom = generalize(geom, scale)
                if geom is None:
                    continue
            area.add_feature(obj.oid, geom, self.symbol)
            placed += 1
        return placed


AttributeWidgetFactory = Callable[..., "InterfaceObject | None"]


@dataclass(frozen=True)
class AttributeFormat:
    """How one attribute value appears in an Instance window.

    ``factory(library, attr_name, value, **options)`` returns the widget,
    or ``None`` for hidden attributes.
    """

    name: str
    factory: AttributeWidgetFactory
    doc: str = ""

    def build(self, library: InterfaceObjectLibrary, attr_name: str,
              value: Any, **options: Any) -> InterfaceObject | None:
        return self.factory(library, attr_name, value, **options)


# ---------------------------------------------------------------------------
# Built-in attribute widget factories
# ---------------------------------------------------------------------------


def _default_widget(library: InterfaceObjectLibrary, attr_name: str,
                    value: Any, **options: Any) -> InterfaceObject:
    """The generic presentation: a read-only labelled text field."""
    if isinstance(value, bytes):
        shown = f"[bitmap, {len(value)} bytes]"
    elif isinstance(value, Geometry):
        shown = value.wkt()
    elif isinstance(value, dict):
        shown = "; ".join(f"{k}={v}" for k, v in value.items())
    elif value is None:
        shown = "(unset)"
    else:
        shown = str(value)
    return Text(f"attr_{attr_name}", label=attr_name, value=shown)


def _text_widget(library, attr_name, value, **options):
    return Text(f"attr_{attr_name}", label=attr_name,
                value="" if value is None else str(value))


def _composed_text_widget(library, attr_name, value, **options):
    fields = options.get("fields")
    if not fields:
        if isinstance(value, dict):
            fields = list(value)
        else:
            raise CustomizationError(
                f"composed_text for {attr_name!r} needs source fields"
            )
    widget = library.create("composed_text", f"attr_{attr_name}",
                            fields=fields, label=attr_name)
    if isinstance(value, dict):
        widget.set_parts(value)
    return widget


def _slider_widget(library, attr_name, value, **options):
    minimum = options.get("minimum", 0.0)
    maximum = options.get("maximum", 100.0)
    numeric = float(value) if isinstance(value, (int, float)) else minimum
    numeric = min(max(numeric, minimum), maximum)
    return library.create("slider", f"attr_{attr_name}",
                          minimum=minimum, maximum=maximum,
                          value=numeric, label=attr_name)


def _image_widget(library, attr_name, value, **options):
    size = len(value) if isinstance(value, (bytes, bytearray)) else 0
    return Text(f"attr_{attr_name}", label=attr_name,
                value=f"[image {size} bytes]")


def _raster_label(value, level: int) -> str:
    lw, lh = value.level_dims(level)
    return (f"[raster {value.rid} {value.width}x{value.height} "
            f"@ level {level} ({lw}x{lh})]")


def _raster_widget(library, attr_name, value, **options):
    """Full-resolution raster presentation (duck-typed on RasterRef).

    The widget carries only the descriptor text — pixel reads stay in
    the database layer (``db.raster_store.read_window``); the format's
    job is choosing *what* the context shows, per the paper's model.
    """
    if value is None:
        return Text(f"attr_{attr_name}", label=attr_name, value="(no raster)")
    if not hasattr(value, "level_dims"):
        raise CustomizationError(
            f"raster format for {attr_name!r} needs a RasterRef value, "
            f"got {type(value).__name__}"
        )
    return Text(f"attr_{attr_name}", label=attr_name,
                value=_raster_label(value, 0))


def _raster_overview_widget(library, attr_name, value, **options):
    """Coarse raster presentation for zoomed-out / browsing contexts.

    With a ``scale`` option (a :class:`~repro.spatial.scale.MapScale`,
    :class:`~repro.spatial.scale.Viewport` or explicit level int) the
    pyramid level matches the display resolution; without one, the
    coarsest level — an overview thumbnail — is shown.
    """
    if value is None:
        return Text(f"attr_{attr_name}", label=attr_name, value="(no raster)")
    if not hasattr(value, "level_for"):
        raise CustomizationError(
            f"raster_overview format for {attr_name!r} needs a RasterRef "
            f"value, got {type(value).__name__}"
        )
    scale = options.get("scale")
    level = value.level_for(scale) if scale is not None else value.levels - 1
    return Text(f"attr_{attr_name}", label=attr_name,
                value=_raster_label(value, level))


def _null_widget(library, attr_name, value, **options):
    return None


class PresentationRegistry:
    """Named format lookup used by the generic interface builder.

    Ships with the built-ins above; applications register more (that is
    what makes a format name like ``pointFormat`` legal in directives).
    """

    def __init__(self) -> None:
        self._class_formats: dict[str, ClassFormat] = {}
        self._attribute_formats: dict[str, AttributeFormat] = {}
        self._install_builtins()

    def _install_builtins(self) -> None:
        for fmt in (
            ClassFormat("defaultFormat", symbol="*",
                        doc="generic map display, one '*' per object"),
            ClassFormat("pointFormat", symbol="o",
                        doc="point phenomena as small circles (§4)"),
            ClassFormat("lineFormat", symbol="#", generalized=True,
                        doc="linear phenomena, generalized to display scale"),
            ClassFormat("polygonFormat", symbol="%", generalized=True,
                        doc="areal phenomena, boundary drawing"),
        ):
            self.register_class_format(fmt)
        for fmt in (
            AttributeFormat("default", _default_widget,
                            doc="read-only text field (generic presentation)"),
            AttributeFormat("text", _text_widget, doc="plain text field"),
            AttributeFormat("composed_text", _composed_text_widget,
                            doc="composite of several source fields (§4)"),
            AttributeFormat("slider", _slider_widget, doc="bounded numeric"),
            AttributeFormat("image", _image_widget, doc="bitmap placeholder"),
            AttributeFormat("raster", _raster_widget,
                            doc="tiled raster at full resolution"),
            AttributeFormat("raster_overview", _raster_overview_widget,
                            doc="tiled raster at a scale-chosen pyramid level"),
            AttributeFormat("null", _null_widget, doc="hidden attribute"),
        ):
            self.register_attribute_format(fmt)

    # -- registration -------------------------------------------------------------

    def register_class_format(self, fmt: ClassFormat) -> None:
        if fmt.name in self._class_formats:
            raise CustomizationError(f"class format {fmt.name!r} already exists")
        self._class_formats[fmt.name] = fmt

    def register_attribute_format(self, fmt: AttributeFormat) -> None:
        if fmt.name in self._attribute_formats:
            raise CustomizationError(
                f"attribute format {fmt.name!r} already exists"
            )
        self._attribute_formats[fmt.name] = fmt

    # -- lookup ---------------------------------------------------------------------

    def class_format(self, name: str) -> ClassFormat:
        if name not in self._class_formats:
            raise CustomizationError(
                f"unknown class presentation format {name!r}; "
                f"known: {sorted(self._class_formats)}"
            )
        return self._class_formats[name]

    def attribute_format(self, name: str) -> AttributeFormat:
        if name not in self._attribute_formats:
            raise CustomizationError(
                f"unknown attribute format {name!r}; "
                f"known: {sorted(self._attribute_formats)}"
            )
        return self._attribute_formats[name]

    def has_class_format(self, name: str) -> bool:
        return name in self._class_formats

    def has_attribute_format(self, name: str) -> bool:
        return name in self._attribute_formats

    def class_format_names(self) -> list[str]:
        return sorted(self._class_formats)

    def attribute_format_names(self) -> list[str]:
        return sorted(self._attribute_formats)
