"""Headless renderers for interface object trees.

The paper's prototype drew on a workstation GUI; this reproduction renders
windows deterministically instead (see DESIGN.md, substitution table):

* :class:`TextRenderer` — ASCII layout, one window per bordered box.
  Experiments F4/F7 print these to show the default vs. customized
  windows of paper Figures 4 and 7.
* :func:`scene_graph` — the structured ``describe()`` tree, which tests
  assert against precisely.
"""

from __future__ import annotations

from typing import Any

from .. import obs
from ..errors import RenderError
from .base import InterfaceObject
from .widgets import (
    Button,
    DrawingArea,
    ListWidget,
    Menu,
    MenuItem,
    Panel,
    Slider,
    Text,
    Window,
)


def scene_graph(widget: InterfaceObject) -> dict[str, Any]:
    """The structured scene description of a widget tree."""
    return widget.describe()


class TextRenderer:
    """Renders widget trees to ASCII text."""

    def __init__(self, max_width: int = 100):
        if max_width < 20:
            raise RenderError("renderer needs at least 20 columns")
        self.max_width = max_width

    # -- public API ----------------------------------------------------------

    def render(self, widget: InterfaceObject) -> str:
        """Render any widget tree; windows get a bordered frame."""
        rec = obs.RECORDER
        if not rec.enabled:
            return self._render_any(widget)
        rec.inc("render.renders")
        with rec.span("render", widget=getattr(widget, "name", "?")):
            return self._render_any(widget)

    def _render_any(self, widget: InterfaceObject) -> str:
        if isinstance(widget, Window):
            return self._render_window(widget)
        return "\n".join(self._render_node(widget, indent=0))

    # -- frames ---------------------------------------------------------------

    def _render_window(self, window: Window) -> str:
        if not window.visible:
            return f"(window {window.title!r} is hidden)"
        body: list[str] = []
        for panel in window.children:
            body.extend(self._render_node(panel, indent=0))
        width = min(
            self.max_width,
            max([len(window.title) + 6] + [len(line) + 4 for line in body]),
        )
        top = "+=" + f" {window.title} ".center(width - 4, "=") + "=+"
        out = [top]
        for line in body:
            out.append("| " + line[: width - 4].ljust(width - 4) + " |")
        out.append("+" + "=" * (width - 2) + "+")
        return "\n".join(out)

    # -- nodes ------------------------------------------------------------------

    def _render_node(self, widget: InterfaceObject, indent: int) -> list[str]:
        if not widget.visible:
            return []
        pad = "  " * indent
        if isinstance(widget, Panel):
            return self._render_panel(widget, indent)
        if isinstance(widget, Text):
            label = widget.get_property("label", "")
            text = f"{label}: {widget.value}" if label else widget.value
            if widget.get_property("editable"):
                text += "  [edit]"
            return [pad + text]
        if isinstance(widget, Button):
            return [pad + f"[ {widget.label} ]"]
        if isinstance(widget, ListWidget):
            lines = []
            label = widget.get_property("label", "")
            if label:
                lines.append(pad + label + ":")
            for key, item_label in widget.items:
                marker = ">" if key == widget.selected_key else " "
                lines.append(pad + f" {marker} {item_label}")
            if not widget.items:
                lines.append(pad + "  (empty)")
            return lines
        if isinstance(widget, Menu):
            items = " | ".join(
                child.label for child in widget.children
                if isinstance(child, MenuItem) and child.visible
            )
            return [pad + f"{widget.label} v [{items}]"]
        if isinstance(widget, MenuItem):
            return [pad + widget.label]
        if isinstance(widget, Slider):
            return [pad + self._render_slider(widget)]
        if isinstance(widget, DrawingArea):
            return [pad + line for line in self._render_drawing(widget)]
        if isinstance(widget, Window):
            # Nested windows are not legal in the model; be defensive.
            raise RenderError("windows cannot be nested inside widgets")
        # Unknown widget classes (library extensions) fall back to a tag.
        lines = [pad + f"<{widget.widget_type} {widget.name}>"]
        for child in widget.children:
            lines.extend(self._render_node(child, indent + 1))
        return lines

    def _render_panel(self, panel: Panel, indent: int) -> list[str]:
        pad = "  " * indent
        label = panel.get_property("label", "")
        lines: list[str] = []
        if label:
            lines.append(pad + f"-- {label} --")
        if panel.layout == "horizontal":
            cells: list[str] = []
            for child in panel.children:
                rendered = self._render_node(child, 0)
                cells.append(" ".join(rendered) if rendered else "")
            merged = "   ".join(cell for cell in cells if cell)
            if merged:
                lines.append(pad + merged)
            return lines
        for child in panel.children:
            lines.extend(self._render_node(child, indent + 1))
        return lines

    def _render_slider(self, slider: Slider) -> str:
        span = slider.maximum - slider.minimum
        width = 20
        pos = int(round((slider.value - slider.minimum) / span * (width - 1)))
        bar = "".join("|" if i == pos else "-" for i in range(width))
        label = slider.get_property("label", slider.name)
        return f"{label}: {slider.minimum:g} [{bar}] {slider.maximum:g}  ({slider.value:g})"

    def _render_drawing(self, area: DrawingArea) -> list[str]:
        raster = area.rasterize()
        rows = []
        border = "." + "-" * area.width + "."
        rows.append(border)
        for row in range(area.height):
            cells = []
            for col in range(area.width):
                symbol, __ = raster.get((col, row), (" ", None))
                cells.append(symbol)
            rows.append("|" + "".join(cells) + "|")
        rows.append(border)
        extent = area.viewport.extent
        rows.append(
            f"extent: ({extent.min_x:.1f}, {extent.min_y:.1f}) .. "
            f"({extent.max_x:.1f}, {extent.max_y:.1f})  "
            f"features: {len(area.features)}"
        )
        return rows


def render_text(widget: InterfaceObject, max_width: int = 100) -> str:
    """One-call convenience over :class:`TextRenderer`."""
    return TextRenderer(max_width=max_width).render(widget)
