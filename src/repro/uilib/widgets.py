"""The kernel widget classes of paper Figure 2.

The OMT diagram defines eight classes and their composition structure::

    Window ◇— Panel ◇— { Panel (recursive), Text, Drawing Area,
                         List, Button, Menu ◇— Menu Item }

"The root of the hierarchy is the Window element ... These elements are
grouped in control Panels. Therefore, a Window is composed of a set of
Panels, each one aggregating functionally related interface components.
The recursive relationship allows the specification of complex control
panels using other panels" (§3.2).

Widgets here are *headless*: they hold state, fire events and describe
themselves; rendering is a separate concern
(:mod:`repro.uilib.rendering`).
"""

from __future__ import annotations

from typing import Any, Sequence

from ..errors import WidgetError
from ..spatial.geometry import BBox, Geometry
from ..spatial.scale import Viewport
from .base import InterfaceObject

#: The widget types a Panel may aggregate (Figure 2 aggregation edges).
PANEL_CHILDREN = (
    "panel", "text", "drawing_area", "list", "button", "menu", "slider",
)


class Window(InterfaceObject):
    """Top-level interaction window.

    "The window may not be graphical, but it always contains the interface
    elements used in the user dialog." Windows aggregate Panels only.
    """

    widget_type = "window"
    allowed_children = ("panel",)
    default_events = ("open", "close")

    def __init__(self, name: str | None = None, title: str = "", **props: Any):
        super().__init__(name, **props)
        self.properties.setdefault("title", title or self.name)

    @property
    def title(self) -> str:
        return self.properties["title"]

    def panels(self) -> list["Panel"]:
        return [c for c in self.children if isinstance(c, Panel)]

    def _describe_extra(self) -> dict[str, Any]:
        return {"title": self.title}


class Panel(InterfaceObject):
    """A grouping of functionally related components; panels may nest."""

    widget_type = "panel"
    allowed_children = PANEL_CHILDREN

    def __init__(self, name: str | None = None, layout: str = "vertical",
                 **props: Any):
        if layout not in ("vertical", "horizontal"):
            raise WidgetError(f"unknown panel layout {layout!r}")
        super().__init__(name, layout=layout, **props)

    @property
    def layout(self) -> str:
        return self.properties["layout"]


class Text(InterfaceObject):
    """A labelled text field (read-only or editable)."""

    widget_type = "text"
    allowed_children = None
    default_events = ("change", "notify")

    def __init__(self, name: str | None = None, label: str = "",
                 value: str = "", editable: bool = False, **props: Any):
        super().__init__(name, label=label, editable=editable, **props)
        self._value = str(value)

    @property
    def value(self) -> str:
        return self._value

    def set_value(self, value: str, interactive: bool = False) -> None:
        """Change the field value; fires ``change`` when interactive."""
        if interactive and not self.properties.get("editable", False):
            raise WidgetError(f"text field {self.name!r} is not editable")
        old, self._value = self._value, str(value)
        if interactive:
            self.fire("change", old=old, new=self._value)

    def _describe_extra(self) -> dict[str, Any]:
        return {"label": self.properties.get("label", ""), "value": self._value}


class DrawingArea(InterfaceObject):
    """The cartographic display surface.

    Holds *layers* of ``(oid, geometry, symbol)`` triples plus a viewport.
    The Class-set window's presentation area is a DrawingArea; picking an
    object in the map fires ``pick`` with its oid (§4 step 3: "The user
    finally selects an instance of the class in the graphical area").
    """

    widget_type = "drawing_area"
    allowed_children = None
    default_events = ("pick", "pan", "zoom")

    def __init__(self, name: str | None = None, width: int = 60,
                 height: int = 20, **props: Any):
        if width < 4 or height < 2:
            raise WidgetError("drawing area must be at least 4x2 cells")
        super().__init__(name, **props)
        self.width = int(width)
        self.height = int(height)
        #: list of (oid, Geometry, symbol-char)
        self._features: list[tuple[str, Geometry, str]] = []
        self._viewport: Viewport | None = None

    def add_feature(self, oid: str, geometry: Geometry, symbol: str = "*") -> None:
        if not isinstance(geometry, Geometry):
            raise WidgetError("drawing area features need a Geometry")
        if len(symbol) != 1:
            raise WidgetError("feature symbol must be a single character")
        self._features.append((oid, geometry, symbol))

    def clear_features(self) -> None:
        self._features.clear()

    @property
    def features(self) -> list[tuple[str, Geometry, str]]:
        return list(self._features)

    def data_extent(self) -> BBox:
        box = BBox.empty()
        for __, geom, __sym in self._features:
            box = box.union(geom.bbox())
        return box

    @property
    def viewport(self) -> Viewport:
        """Current viewport; defaults to the data extent plus a margin."""
        if self._viewport is not None:
            return self._viewport
        extent = self.data_extent()
        if extent.is_empty():
            extent = BBox(0.0, 0.0, 1.0, 1.0)
        if extent.width == 0 or extent.height == 0:
            extent = extent.expanded(max(1.0, extent.width, extent.height) or 1.0)
        margin = 0.05 * max(extent.width, extent.height)
        return Viewport(extent.expanded(margin), self.width, self.height)

    def set_viewport(self, viewport: Viewport) -> None:
        self._viewport = viewport

    def pick_at(self, col: int, row: int) -> str | None:
        """The oid whose rendering occupies cell (col, row), if any.

        Fires the ``pick`` event when something is hit.
        """
        raster = self.rasterize()
        key = (col, row)
        oid = raster.get(key, (None, None))[1]
        if oid is not None:
            self.fire("pick", oid=oid, col=col, row=row)
        return oid

    def rasterize(self) -> dict[tuple[int, int], tuple[str, str]]:
        """Map (col, row) -> (symbol, oid) for the current viewport.

        Later features overdraw earlier ones (painter's order).
        """
        viewport = self.viewport
        cells: dict[tuple[int, int], tuple[str, str]] = {}

        def plot(x: float, y: float, symbol: str, oid: str) -> None:
            cell = viewport.to_cell(x, y)
            if cell is not None:
                cells[cell] = (symbol, oid)

        for oid, geom, symbol in self._features:
            for x, y in _raster_points(geom, viewport):
                plot(x, y, symbol, oid)
        return cells

    def _describe_extra(self) -> dict[str, Any]:
        return {
            "width": self.width,
            "height": self.height,
            "feature_count": len(self._features),
        }


def _raster_points(geom: Geometry, viewport: Viewport):
    """Sample a geometry densely enough that each crossed cell gets a hit."""
    from ..spatial.algorithms import densify_line
    from ..spatial.geometry import (
        LineString,
        MultiLineString,
        MultiPoint,
        MultiPolygon,
        Point,
        Polygon,
    )

    cell_w, cell_h = viewport.cell_ground_size()
    step = max(min(cell_w, cell_h) / 2.0, 1e-9)
    if isinstance(geom, Point):
        yield (geom.x, geom.y)
    elif isinstance(geom, LineString):
        yield from densify_line(geom.coords, step)
    elif isinstance(geom, Polygon):
        for ring in geom.rings():
            yield from densify_line(ring.closed_coords(), step)
    elif isinstance(geom, (MultiPoint, MultiLineString, MultiPolygon)):
        for member in geom:
            yield from _raster_points(member, viewport)


class ListWidget(InterfaceObject):
    """A selectable list of labelled items.

    Items are ``(key, label)`` pairs; selection fires ``select`` with the
    item key — the Schema window's class list uses this (§4 step 2: "The
    user next selects a class in that list").
    """

    widget_type = "list"
    allowed_children = None
    default_events = ("select",)

    def __init__(self, name: str | None = None,
                 items: Sequence[tuple[str, str]] = (), **props: Any):
        super().__init__(name, **props)
        self._items: list[tuple[str, str]] = []
        self._selected: int | None = None
        for key, label in items:
            self.add_item(key, label)

    def add_item(self, key: str, label: str | None = None) -> None:
        if any(k == key for k, __ in self._items):
            raise WidgetError(f"list {self.name!r} already has item {key!r}")
        self._items.append((key, label if label is not None else key))

    def remove_item(self, key: str) -> None:
        for i, (k, __) in enumerate(self._items):
            if k == key:
                if self._selected == i:
                    self._selected = None
                elif self._selected is not None and self._selected > i:
                    self._selected -= 1
                del self._items[i]
                return
        raise WidgetError(f"list {self.name!r} has no item {key!r}")

    @property
    def items(self) -> list[tuple[str, str]]:
        return list(self._items)

    @property
    def selected_key(self) -> str | None:
        if self._selected is None:
            return None
        return self._items[self._selected][0]

    def select(self, key: str) -> list[Any]:
        """Select by key and fire ``select``; returns callback results."""
        for i, (k, __) in enumerate(self._items):
            if k == key:
                self._selected = i
                return self.fire("select", key=key, index=i)
        raise WidgetError(f"list {self.name!r} has no item {key!r}")

    def _describe_extra(self) -> dict[str, Any]:
        return {
            "items": [label for __, label in self._items],
            "selected": self.selected_key,
        }


class Button(InterfaceObject):
    """A push button; ``click()`` fires the ``click`` event."""

    widget_type = "button"
    allowed_children = None
    default_events = ("click",)

    def __init__(self, name: str | None = None, label: str = "", **props: Any):
        super().__init__(name, **props)
        self.properties.setdefault("label", label or self.name)

    @property
    def label(self) -> str:
        return self.properties["label"]

    def click(self) -> list[Any]:
        return self.fire("click")

    def _describe_extra(self) -> dict[str, Any]:
        return {"label": self.label}


class Menu(InterfaceObject):
    """A menu aggregating :class:`MenuItem` children (Figure 2)."""

    widget_type = "menu"
    allowed_children = ("menu_item",)

    def __init__(self, name: str | None = None, label: str = "", **props: Any):
        super().__init__(name, **props)
        self.properties.setdefault("label", label or self.name)

    @property
    def label(self) -> str:
        return self.properties["label"]

    def add_item(self, name: str, label: str | None = None) -> "MenuItem":
        item = MenuItem(name, label=label if label is not None else name)
        self.add_child(item)
        return item

    def activate(self, item_name: str) -> list[Any]:
        """Activate a menu item by name; fires its ``activate`` event."""
        item = self.child(item_name)
        return item.fire("activate")

    def _describe_extra(self) -> dict[str, Any]:
        return {"label": self.label}


class MenuItem(InterfaceObject):
    widget_type = "menu_item"
    allowed_children = None
    default_events = ("activate",)

    def __init__(self, name: str | None = None, label: str = "", **props: Any):
        super().__init__(name, **props)
        self.properties.setdefault("label", label or self.name)

    @property
    def label(self) -> str:
        return self.properties["label"]

    def _describe_extra(self) -> dict[str, Any]:
        return {"label": self.label}


class Slider(InterfaceObject):
    """A bounded numeric control.

    Not part of the Figure 2 kernel: it demonstrates §3.2 extensibility
    ("it is possible to add classes to it, which corresponds to the
    incorporation of new interface elements"). The §4 example's
    ``poleWidget`` is "defined as a slider".
    """

    widget_type = "slider"
    allowed_children = None
    default_events = ("change",)

    def __init__(self, name: str | None = None, minimum: float = 0.0,
                 maximum: float = 100.0, value: float | None = None,
                 **props: Any):
        if minimum >= maximum:
            raise WidgetError("slider needs minimum < maximum")
        super().__init__(name, **props)
        self.minimum = float(minimum)
        self.maximum = float(maximum)
        self._value = float(value) if value is not None else self.minimum

    @property
    def value(self) -> float:
        return self._value

    def set_value(self, value: float, interactive: bool = False) -> None:
        value = float(value)
        if not self.minimum <= value <= self.maximum:
            raise WidgetError(
                f"slider value {value} outside [{self.minimum}, {self.maximum}]"
            )
        old, self._value = self._value, value
        if interactive:
            self.fire("change", old=old, new=value)

    def _describe_extra(self) -> dict[str, Any]:
        return {"min": self.minimum, "max": self.maximum, "value": self._value}


#: name -> class map of the kernel (plus the Slider extension),
#: keyed the way the customization language refers to them.
KERNEL_CLASSES: dict[str, type[InterfaceObject]] = {
    "window": Window,
    "panel": Panel,
    "text": Text,
    "drawing_area": DrawingArea,
    "list": ListWidget,
    "button": Button,
    "menu": Menu,
    "menu_item": MenuItem,
}

EXTENSION_CLASSES: dict[str, type[InterfaceObject]] = {
    "slider": Slider,
}
