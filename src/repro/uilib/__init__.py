"""Interface objects library: kernel widgets, composites, formats, renderers."""

from .base import Callback, InterfaceObject, UIEvent
from .widgets import (
    EXTENSION_CLASSES,
    KERNEL_CLASSES,
    PANEL_CHILDREN,
    Button,
    DrawingArea,
    ListWidget,
    Menu,
    MenuItem,
    Panel,
    Slider,
    Text,
    Window,
)
from .library import InterfaceObjectLibrary, Specialization, WidgetTemplate
from .composite import (
    MAP_SELECTION_TEMPLATE,
    ComposedText,
    install_standard_composites,
)
from .presentation import (
    SCHEMA_DISPLAY_MODES,
    AttributeFormat,
    ClassFormat,
    PresentationRegistry,
)
from .rendering import TextRenderer, render_text, scene_graph
from .html_render import render_html, render_screen_html

__all__ = [
    "InterfaceObject", "UIEvent", "Callback",
    "Window", "Panel", "Text", "DrawingArea", "ListWidget", "Button",
    "Menu", "MenuItem", "Slider",
    "KERNEL_CLASSES", "EXTENSION_CLASSES", "PANEL_CHILDREN",
    "InterfaceObjectLibrary", "WidgetTemplate", "Specialization",
    "ComposedText", "MAP_SELECTION_TEMPLATE", "install_standard_composites",
    "PresentationRegistry", "ClassFormat", "AttributeFormat",
    "SCHEMA_DISPLAY_MODES",
    "TextRenderer", "render_text", "scene_graph",
    "render_html", "render_screen_html",
]
