"""Base machinery of the interface objects library.

§3.2: "The library contains the definition and generic behavior of
interface objects. These objects are either atomic (e.g., a button) or
complex (for instance a window, which is composed by other objects). Every
object can be associated with several events, each of which can be linked
to a callback function ... Generic behavior can be dynamically customized
by callback functions."

:class:`InterfaceObject` provides exactly that contract: a named object
with presentation properties, an event/callback table, and composition
(parent/children). Widgets in :mod:`repro.uilib.widgets` specialize it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..errors import WidgetError

_widget_ids = itertools.count(1)


@dataclass
class UIEvent:
    """An interface event ``IE_i`` (§3.3: mouse click, key press, ...)."""

    name: str
    source: "InterfaceObject"
    data: dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        return f"{self.name} on {self.source.path()}"


Callback = Callable[[UIEvent], Any]


class InterfaceObject:
    """Base class of every interface object.

    Parameters
    ----------
    name:
        Identifier unique among siblings; auto-generated when omitted.
    **props:
        Presentation properties (label, visible, enabled, ...). Unknown
        properties are accepted — customization may attach arbitrary
        presentation data.
    """

    #: class-level tag matching the paper's kernel class names
    widget_type = "object"
    #: event names this widget fires by itself; customization may bind more
    default_events: tuple[str, ...] = ()

    def __init__(self, name: str | None = None, **props: Any):
        self.object_id = next(_widget_ids)
        self.name = name or f"{self.widget_type}_{self.object_id}"
        self.properties: dict[str, Any] = {"visible": True, "enabled": True}
        self.properties.update(props)
        self.parent: "InterfaceObject | None" = None
        self._children: list[InterfaceObject] = []
        self._callbacks: dict[str, list[Callback]] = {}

    # -- properties -------------------------------------------------------------

    def get_property(self, key: str, default: Any = None) -> Any:
        return self.properties.get(key, default)

    def set_property(self, key: str, value: Any) -> None:
        self.properties[key] = value

    @property
    def visible(self) -> bool:
        return bool(self.properties.get("visible", True))

    @property
    def enabled(self) -> bool:
        return bool(self.properties.get("enabled", True))

    # -- composition -------------------------------------------------------------

    #: widget types allowed as children; None means "no children at all"
    allowed_children: tuple[str, ...] | None = None

    def add_child(self, child: "InterfaceObject") -> "InterfaceObject":
        if self.allowed_children is None:
            raise WidgetError(
                f"{self.widget_type} {self.name!r} cannot contain children"
            )
        if child.widget_type not in self.allowed_children:
            raise WidgetError(
                f"{self.widget_type} {self.name!r} cannot contain a "
                f"{child.widget_type} (allowed: {self.allowed_children})"
            )
        if child.parent is not None:
            raise WidgetError(
                f"{child.widget_type} {child.name!r} already has a parent"
            )
        if any(c.name == child.name for c in self._children):
            raise WidgetError(
                f"{self.widget_type} {self.name!r} already has a child named "
                f"{child.name!r}"
            )
        if child is self or self._is_ancestor(child):
            raise WidgetError("composition cycles are not allowed")
        child.parent = self
        self._children.append(child)
        return child

    def _is_ancestor(self, candidate: "InterfaceObject") -> bool:
        node = self.parent
        while node is not None:
            if node is candidate:
                return True
            node = node.parent
        return False

    def remove_child(self, name: str) -> "InterfaceObject":
        for i, child in enumerate(self._children):
            if child.name == name:
                child.parent = None
                return self._children.pop(i)
        raise WidgetError(f"{self.name!r} has no child named {name!r}")

    @property
    def children(self) -> list["InterfaceObject"]:
        return list(self._children)

    def child(self, name: str) -> "InterfaceObject":
        for c in self._children:
            if c.name == name:
                return c
        raise WidgetError(f"{self.name!r} has no child named {name!r}")

    def find(self, name: str) -> "InterfaceObject | None":
        """Depth-first search for a descendant (or self) by name."""
        if self.name == name:
            return self
        for child in self._children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def walk(self) -> Iterator["InterfaceObject"]:
        """Yield self and every descendant, depth-first, pre-order."""
        yield self
        for child in self._children:
            yield from child.walk()

    def path(self) -> str:
        """Slash path from the root, e.g. ``window/panel/button``."""
        parts = [self.name]
        node = self.parent
        while node is not None:
            parts.append(node.name)
            node = node.parent
        return "/".join(reversed(parts))

    # -- events & callbacks ---------------------------------------------------------

    def on(self, event_name: str, callback: Callback) -> None:
        """Bind ``callback`` to ``event_name``; multiple bindings stack."""
        if not callable(callback):
            raise WidgetError(f"callback for {event_name!r} is not callable")
        self._callbacks.setdefault(event_name, []).append(callback)

    def off(self, event_name: str, callback: Callback | None = None) -> None:
        """Remove one callback (or all for the event when None)."""
        if event_name not in self._callbacks:
            return
        if callback is None:
            del self._callbacks[event_name]
            return
        self._callbacks[event_name] = [
            cb for cb in self._callbacks[event_name] if cb is not callback
        ]

    def override(self, event_name: str, callback: Callback) -> None:
        """Replace every binding for the event — the language's ``using``
        clause "coding of new callback functions to override their default
        behavior" (§3.4)."""
        self._callbacks[event_name] = [callback]

    def fire(self, event_name: str, **data: Any) -> list[Any]:
        """Dispatch an interface event to the bound callbacks.

        Disabled widgets swallow events. Returns callback results in
        binding order.
        """
        if not self.enabled:
            return []
        event = UIEvent(event_name, self, data)
        return [cb(event) for cb in self._callbacks.get(event_name, [])]

    def bound_events(self) -> list[str]:
        return sorted(set(self.default_events) | set(self._callbacks))

    # -- description (scene graph) -----------------------------------------------------

    def describe(self) -> dict[str, Any]:
        """Structured scene node: type, name, properties, children.

        The renderers and the test-suite assertions consume this; widgets
        with extra state extend :meth:`_describe_extra`.
        """
        node: dict[str, Any] = {
            "type": self.widget_type,
            "name": self.name,
            "properties": {
                k: v for k, v in self.properties.items()
                if k not in ("visible", "enabled") or not v
            },
        }
        node.update(self._describe_extra())
        if self._children:
            node["children"] = [c.describe() for c in self._children]
        return node

    def _describe_extra(self) -> dict[str, Any]:
        return {}

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.path()!r}>"
