"""Conventional comparators the paper argues against (benchmark baselines)."""

from .hardwired import HardwiredDispatcher, install_pole_manager_variants

__all__ = ["HardwiredDispatcher", "install_pole_manager_variants"]
