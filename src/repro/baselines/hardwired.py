"""The conventional "hardwired" interface — the paper's comparator.

§1: "In commercial systems, each application interface is 'hardwired'
into this gis interface." §3.5 claims two advantages over such designs:
one generic window-building model (vs. "a specific code to generate each
kind of window") and transparent customization (vs. "the customization
involves the modification of the interface code").

To measure those claims (experiments C3 and C7), this module implements
the conventional design honestly:

* :class:`HardwiredDispatcher` has a *separate, duplicated code path per
  window kind*, with customizations compiled in as literal ``if user ==
  ... and application == ...`` branches;
* adding a customization means *editing this source file* (simulated by
  :meth:`add_hardwired_variant`, which registers another Python branch) —
  there is no rule engine, no library lookup, no declarative layer.

The windows it produces are structurally equivalent to the generic
dispatcher's output for the cases it supports, so latency comparisons are
apples-to-apples.
"""

from __future__ import annotations

from typing import Any, Callable

from ..core.context import Context
from ..core.dispatcher import Screen
from ..errors import DispatchError
from ..geodb.database import GeographicDatabase
from ..uilib.widgets import (
    Button,
    DrawingArea,
    ListWidget,
    Menu,
    Panel,
    Slider,
    Text,
    Window,
)

#: A hardwired variant: predicate over (user, application) plus a builder
#: override keyed by window kind.
Variant = tuple[Callable[[Context | None], bool], str, Callable]


class HardwiredDispatcher:
    """Per-window-type code paths with compiled-in customizations."""

    def __init__(self, database: GeographicDatabase,
                 screen: Screen | None = None):
        self.database = database
        self.screen = screen if screen is not None else Screen()
        self.interactions = 0
        self._variants: list[Variant] = []

    # ------------------------------------------------------------------
    # "Editing the interface code": registering another if-branch
    # ------------------------------------------------------------------

    def add_hardwired_variant(self, matcher: Callable[[Context | None], bool],
                              window_kind: str,
                              builder: Callable) -> None:
        """Simulates a programmer adding a special case to the source."""
        if window_kind not in ("schema", "class_set", "instance"):
            raise DispatchError(f"unknown window kind {window_kind!r}")
        self._variants.append((matcher, window_kind, builder))

    def _variant_for(self, kind: str, context: Context | None):
        for matcher, variant_kind, builder in self._variants:
            if variant_kind == kind and matcher(context):
                return builder
        return None

    # ------------------------------------------------------------------
    # Window kind 1: schema windows (dedicated code path)
    # ------------------------------------------------------------------

    def open_schema(self, schema_name: str,
                    context: Context | None = None) -> Window:
        self.interactions += 1
        variant = self._variant_for("schema", context)
        if variant is not None:
            window = variant(self, schema_name, context)
        else:
            window = self._build_schema_window_hardwired(schema_name)
        self.screen.show(window)
        return window

    def _build_schema_window_hardwired(self, schema_name: str) -> Window:
        schema = self.database.get_schema_object(schema_name)
        window = Window(f"schema_{schema_name}", title=f"Schema: {schema_name}")
        window.set_property("window_kind", "schema")
        control = Panel("control")
        window.add_child(control)
        menu = Menu("schema_menu", label="Schema")
        menu.add_item("open", "Open")
        menu.add_item("refresh", "Refresh")
        menu.add_item("close", "Close")
        control.add_child(menu)
        class_list = ListWidget("classes", label="Classes")
        for cls in schema.classes():
            count = len(self.database.extent(schema_name, cls.name))
            class_list.add_item(cls.name, f"{cls.name} ({count})")
        control.add_child(class_list)
        return window

    # ------------------------------------------------------------------
    # Window kind 2: class-set windows (separate, duplicated path)
    # ------------------------------------------------------------------

    def open_class(self, schema_name: str, class_name: str,
                   context: Context | None = None) -> Window:
        self.interactions += 1
        variant = self._variant_for("class_set", context)
        if variant is not None:
            window = variant(self, schema_name, class_name, context)
        else:
            window = self._build_class_window_hardwired(
                schema_name, class_name
            )
        self.screen.show(window)
        return window

    def _build_class_window_hardwired(self, schema_name: str,
                                      class_name: str) -> Window:
        schema = self.database.get_schema_object(schema_name)
        attributes = schema.effective_attributes(class_name)
        objects = list(self.database.extent(schema_name, class_name))
        window = Window(f"classset_{class_name}",
                        title=f"Class set: {class_name}")
        window.set_property("window_kind", "class_set")
        control = Panel("control")
        window.add_child(control)
        menu = Menu("operations", label="Operations")
        for op in ("zoom", "pan", "select", "close"):
            menu.add_item(op, op.capitalize())
        control.add_child(menu)
        spec = "; ".join(f"{a.name}: {a.type.spec()}" for a in attributes)
        control.add_child(Text("class_schema", label="Class schema", value=spec))
        control.add_child(
            Button(f"class_widget_{class_name}", label=class_name)
        )
        instance_list = ListWidget("instances", label="Instances")
        for obj in objects:
            instance_list.add_item(obj.oid, obj.oid)
        control.add_child(instance_list)
        presentation = Panel("presentation")
        window.add_child(presentation)
        area = DrawingArea("map", width=48, height=12)
        presentation.add_child(area)
        spatial = [a for a in attributes if a.is_spatial()]
        if spatial:
            for obj in objects:
                geom = obj.geometry(spatial[0].name)
                if geom is not None:
                    area.add_feature(obj.oid, geom, "*")
        return window

    # ------------------------------------------------------------------
    # Window kind 3: instance windows (third duplicated path)
    # ------------------------------------------------------------------

    def open_instance(self, oid: str,
                      context: Context | None = None) -> Window:
        self.interactions += 1
        variant = self._variant_for("instance", context)
        if variant is not None:
            window = variant(self, oid, context)
        else:
            window = self._build_instance_window_hardwired(oid)
        self.screen.show(window)
        return window

    def _build_instance_window_hardwired(self, oid: str) -> Window:
        obj = self.database.get_object(oid)
        schema_name, class_name = self.database.locate_object(oid)
        schema = self.database.get_schema_object(schema_name)
        geo_class = schema.get_class(class_name)
        attributes = schema.effective_attributes(class_name)
        window = Window(f"instance_{oid}", title=f"Instance: {oid}")
        window.set_property("window_kind", "instance")
        body = Panel("attributes")
        window.add_child(body)
        for attribute in attributes:
            value = obj.get(attribute.name, geo_class)
            if isinstance(value, bytes):
                shown = f"[bitmap, {len(value)} bytes]"
            elif isinstance(value, dict):
                shown = "; ".join(f"{k}={v}" for k, v in value.items())
            elif value is None:
                shown = "(unset)"
            elif hasattr(value, "wkt"):
                shown = value.wkt()
            else:
                shown = str(value)
            panel = Panel(f"panel_{attribute.name}")
            panel.add_child(
                Text(f"attr_{attribute.name}", label=attribute.name,
                     value=shown)
            )
            body.add_child(panel)
        return window

    def stats(self) -> dict[str, Any]:
        return {
            "interactions": self.interactions,
            "variants": len(self._variants),
            "open_windows": len(self.screen),
        }


def install_pole_manager_variants(dispatcher: HardwiredDispatcher) -> int:
    """The §4 customization, hardwired the conventional way.

    Three literal special cases for ``<juliano, pole_manager>``. The size
    and shape of this function is itself a data point for experiment C7:
    what the declarative directive says in ~12 lines takes this much
    imperative widget code.
    """

    def is_pole_manager(context: Context | None) -> bool:
        return (
            context is not None
            and context.user == "juliano"
            and context.application == "pole_manager"
        )

    def schema_variant(dsp: HardwiredDispatcher, schema_name: str,
                       context: Context | None) -> Window:
        window = dsp._build_schema_window_hardwired(schema_name)
        window.set_property("visible", False)
        # The cascade must also be hardwired.
        dsp.open_class(schema_name, "Pole", context)
        return window

    def class_variant(dsp: HardwiredDispatcher, schema_name: str,
                      class_name: str, context: Context | None) -> Window:
        if class_name != "Pole":
            return dsp._build_class_window_hardwired(schema_name, class_name)
        window = dsp._build_class_window_hardwired(schema_name, class_name)
        control = window.child("control")
        control.remove_child("class_widget_Pole")
        slider = Slider("class_widget_Pole", minimum=0.0, maximum=30.0,
                        label="pole height (m)")
        control.add_child(slider)
        area = window.find("map")
        features = area.features
        area.clear_features()
        for oid, geom, __ in features:
            area.add_feature(oid, geom, "o")
        window.set_property("presentation_format", "pointFormat")
        return window

    def instance_variant(dsp: HardwiredDispatcher, oid: str,
                         context: Context | None) -> Window:
        window = dsp._build_instance_window_hardwired(oid)
        if not oid.startswith("Pole#"):
            return window
        body = window.child("attributes")
        # Hide pole_location; compose pole_composition; dereference supplier.
        obj = dsp.database.get_object(oid)
        try:
            body.remove_child("panel_pole_location")
        except Exception:
            pass
        composition = obj.get("pole_composition") or {}
        panel = body.find("panel_pole_composition")
        if panel is not None and composition:
            text: Text = panel.child("attr_pole_composition")
            text.set_value(" / ".join(str(v) for v in composition.values()))
        supplier_panel = body.find("panel_pole_supplier")
        if supplier_panel is not None:
            supplier = dsp.database.find_object(obj.get("pole_supplier"))
            name = supplier.get("name") if supplier else "(missing)"
            supplier_panel.child("attr_pole_supplier").set_value(name)
        return window

    dispatcher.add_hardwired_variant(is_pole_manager, "schema", schema_variant)
    dispatcher.add_hardwired_variant(is_pole_manager, "class_set", class_variant)
    dispatcher.add_hardwired_variant(is_pole_manager, "instance",
                                     instance_variant)
    return 3
