"""Model-View-Controller plumbing of the GIS interface layer.

§3.5: "the architecture of the interface is organized according to three
components: one component that reflects the underlying data Model; one
component to provide users with specific Views of the model; and a
component that Controls the mapping across the other two (e.g., the MVC
model). Our architecture encapsulates the model-view-controller principle,
but a considerable number of functions are left to be performed by the
database system."

In this reproduction:

* the **Model** is the geographic database itself (plus
  :class:`ModelObserver`, which narrows its event stream for views);
* the **Views** are the windows on the screen;
* the **Controller** is the dispatcher (:mod:`repro.core.dispatcher`).

:class:`ModelObserver` lets a view register interest in classes/objects
and receive change notifications after commits — the part of MVC the
database performs in this architecture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..active.event_bus import Event, MUTATION_KINDS
from ..geodb.database import GeographicDatabase


@dataclass
class ChangeNotice:
    """One model change as seen by a view."""

    op: str            # insert | update | delete
    oid: str
    class_name: str
    schema_name: str
    values: dict[str, Any] | None = None


Listener = Callable[[ChangeNotice], None]


@dataclass
class _Registration:
    listener: Listener
    class_name: str | None = None
    oid: str | None = None
    notices: int = field(default=0)


class ModelObserver:
    """Fan-out of committed database changes to interested views."""

    def __init__(self, database: GeographicDatabase):
        self.database = database
        self._registrations: list[_Registration] = []
        database.bus.subscribe(self._on_event, kinds=MUTATION_KINDS)

    def watch_class(self, class_name: str, listener: Listener) -> _Registration:
        """Notify ``listener`` of any committed change to a class."""
        registration = _Registration(listener, class_name=class_name)
        self._registrations.append(registration)
        return registration

    def watch_object(self, oid: str, listener: Listener) -> _Registration:
        """Notify ``listener`` of committed changes to one object."""
        registration = _Registration(listener, oid=oid)
        self._registrations.append(registration)
        return registration

    def unwatch(self, registration: _Registration) -> None:
        self._registrations = [
            r for r in self._registrations if r is not registration
        ]

    def _on_event(self, event: Event) -> None:
        if event.payload.get("phase") != "commit":
            return
        notice = ChangeNotice(
            op=event.kind.value,
            oid=event.subject,
            class_name=event.payload.get("class", ""),
            schema_name=event.payload.get("schema", ""),
            values=event.payload.get("values"),
        )
        for registration in list(self._registrations):
            if registration.class_name is not None and (
                registration.class_name != notice.class_name
            ):
                continue
            if registration.oid is not None and registration.oid != notice.oid:
                continue
            registration.notices += 1
            registration.listener(notice)

    @property
    def registration_count(self) -> int:
        return len(self._registrations)
