"""Window inspection helpers.

Structural accessors over the windows the builder produces — the test
suite and the figure experiments assert against these instead of groping
through widget trees by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import DispatchError
from ..uilib.widgets import DrawingArea, ListWidget, Window


@dataclass(frozen=True)
class WindowSummary:
    """Flat facts about one window, convenient for assertions."""

    name: str
    title: str
    kind: str
    visible: bool
    widget_count: int
    widget_types: dict[str, int]
    presentation_format: str | None
    listed_items: tuple[str, ...]
    feature_count: int


def summarize_window(window: Window) -> WindowSummary:
    types: dict[str, int] = {}
    feature_count = 0
    for widget in window.walk():
        types[widget.widget_type] = types.get(widget.widget_type, 0) + 1
        if isinstance(widget, DrawingArea):
            feature_count += len(widget.features)
    listed: tuple[str, ...] = ()
    main_list = window.find("classes") or window.find("instances")
    if isinstance(main_list, ListWidget):
        listed = tuple(key for key, __ in main_list.items)
    return WindowSummary(
        name=window.name,
        title=window.title,
        kind=window.get_property("window_kind", "unknown"),
        visible=window.visible,
        widget_count=sum(types.values()),
        widget_types=types,
        presentation_format=window.get_property("presentation_format"),
        listed_items=listed,
        feature_count=feature_count,
    )


def class_window_areas(window: Window) -> tuple[Any, Any]:
    """The (control, presentation) panels of a Class-set window.

    §3.2/§4: "The Class set Window is divided in two main areas: the
    control area, and the presentation (or display) area."
    """
    if window.get_property("window_kind") != "class_set":
        raise DispatchError(f"{window.name!r} is not a Class-set window")
    return window.child("control"), window.child("presentation")


def instance_attribute_panels(window: Window) -> dict[str, Any]:
    """attr name -> panel for an Instance window (in display order)."""
    if window.get_property("window_kind") != "instance":
        raise DispatchError(f"{window.name!r} is not an Instance window")
    body = window.child("attributes")
    out: dict[str, Any] = {}
    for panel in body.children:
        if panel.name.startswith("panel_"):
            out[panel.name[len("panel_"):]] = panel
    return out


def displayed_attribute_names(window: Window) -> list[str]:
    return list(instance_attribute_panels(window))


def map_symbols(window: Window) -> set[str]:
    """The set of symbols drawn in a Class-set window's map area."""
    area = window.find("map")
    if not isinstance(area, DrawingArea):
        return set()
    return {symbol for __, __geom, symbol in area.features}
