"""Scripted interaction driver.

Substitutes the human user of the paper's workstation prototype (see
DESIGN.md): an :class:`InteractionScript` is a sequence of the §4 browsing
steps, executed against a :class:`~repro.core.session.GISSession` through
the same widget callbacks a pointing device would trigger. Scripts can be
generated randomly (:func:`random_browse_script`) for load benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from ..core.session import GISSession
from ..errors import SessionError


@dataclass(frozen=True)
class Step:
    """One scripted interaction.

    ``action`` is one of ``connect``, ``select_class``,
    ``select_instance``, ``pick_map``, ``close``, ``render``.
    """

    action: str
    args: tuple = ()

    def describe(self) -> str:
        return f"{self.action}({', '.join(map(repr, self.args))})"


@dataclass
class StepResult:
    step: Step
    ok: bool
    detail: str = ""
    output: Any = None


@dataclass
class InteractionScript:
    """An ordered sequence of steps plus an execution report."""

    steps: list[Step] = field(default_factory=list)

    # -- construction helpers -------------------------------------------------

    def connect(self, schema_name: str) -> "InteractionScript":
        self.steps.append(Step("connect", (schema_name,)))
        return self

    def select_class(self, class_name: str) -> "InteractionScript":
        self.steps.append(Step("select_class", (class_name,)))
        return self

    def select_instance(self, oid: str,
                        class_name: str | None = None) -> "InteractionScript":
        self.steps.append(Step("select_instance", (oid, class_name)))
        return self

    def pick_map(self, class_name: str, col: int, row: int
                 ) -> "InteractionScript":
        self.steps.append(Step("pick_map", (class_name, col, row)))
        return self

    def close(self, window_name: str) -> "InteractionScript":
        self.steps.append(Step("close", (window_name,)))
        return self

    def render(self, window_name: str | None = None) -> "InteractionScript":
        self.steps.append(Step("render", (window_name,)))
        return self

    # -- execution ----------------------------------------------------------------

    def run(self, session: GISSession,
            stop_on_error: bool = True) -> list[StepResult]:
        """Execute every step; returns per-step results."""
        results: list[StepResult] = []
        for step in self.steps:
            try:
                output = self._run_step(session, step)
                results.append(StepResult(step, ok=True, output=output))
            except Exception as exc:
                results.append(StepResult(step, ok=False, detail=repr(exc)))
                if stop_on_error:
                    break
        return results

    def _run_step(self, session: GISSession, step: Step) -> Any:
        return run_step(session, step)

    def describe(self) -> str:
        return "\n".join(
            f"{i + 1}. {step.describe()}" for i, step in enumerate(self.steps)
        )


def run_step(session: GISSession, step: Step) -> Any:
    """Execute one :class:`Step` against a session.

    Public so multi-session drivers (e.g.
    :class:`repro.workloads.SessionPool`) can interleave the steps of
    several scripts round-robin instead of running each to completion.
    """
    if step.action == "connect":
        return session.connect(step.args[0])
    if step.action == "select_class":
        return session.select_class(step.args[0])
    if step.action == "select_instance":
        oid, class_name = step.args
        return session.select_instance(oid, class_name)
    if step.action == "pick_map":
        return session.pick_on_map(*step.args)
    if step.action == "close":
        session.close(step.args[0])
        return None
    if step.action == "render":
        return session.render(step.args[0])
    raise SessionError(f"unknown interaction step {step.action!r}")


def paper_walkthrough_script(schema_name: str, class_name: str,
                             oid: str) -> InteractionScript:
    """The exact §4 browsing loop: schema → class → instance."""
    return (
        InteractionScript()
        .connect(schema_name)
        .select_class(class_name)
        .select_instance(oid, class_name)
    )


def random_browse_script(database, schema_name: str, interactions: int,
                         seed: int = 0,
                         skip_classes: tuple[str, ...] = ()
                         ) -> InteractionScript:
    """A random exploratory session over a populated schema.

    The script always starts with ``connect``; subsequent steps pick a
    random class or a random instance of an already-visited class —
    mimicking the §4 "iterates through browsing (Schema, {Class,
    {Instance}}) windows" pattern. Classes whose schema window shows them
    empty are skipped.
    """
    rng = random.Random(seed)
    schema = database.get_schema_object(schema_name)
    class_names = [
        name for name in schema.class_names()
        if name not in skip_classes
        and len(database.extent(schema_name, name)) > 0
    ]
    if not class_names:
        raise SessionError(f"schema {schema_name!r} has no populated classes")
    script = InteractionScript().connect(schema_name)
    visited: list[str] = []
    for __ in range(interactions):
        if visited and rng.random() < 0.6:
            class_name = rng.choice(visited)
            extent = database.extent(schema_name, class_name)
            oid = rng.choice(extent.oids())
            script.select_instance(oid, class_name)
        else:
            class_name = rng.choice(class_names)
            script.select_class(class_name)
            if class_name not in visited:
                visited.append(class_name)
    return script
