"""GIS user interface layer: MVC plumbing, interaction driver, inspection."""

from .mvc import ChangeNotice, ModelObserver
from .interaction import (
    InteractionScript,
    Step,
    StepResult,
    paper_walkthrough_script,
    random_browse_script,
)
from .windows import (
    WindowSummary,
    class_window_areas,
    displayed_attribute_names,
    instance_attribute_panels,
    map_symbols,
    summarize_window,
)

__all__ = [
    "ModelObserver", "ChangeNotice",
    "InteractionScript", "Step", "StepResult",
    "paper_walkthrough_script", "random_browse_script",
    "WindowSummary", "summarize_window", "class_window_areas",
    "instance_attribute_panels", "displayed_attribute_names", "map_symbols",
]
