"""An interactive terminal browser over a GIS session.

The smallest real *application* of the library: a command loop that
drives a :class:`~repro.core.session.GISSession` through the same public
API any embedding would use. Run it with::

    python -m repro                     # demo phone-net database
    python -m repro --user juliano --application pole_manager --figure6

Commands (also printed by ``help``)::

    connect <schema>          browse a schema (Get_Schema)
    classes                   list the classes of the connected schema
    class <name>              open a Class-set window (Get_Class)
    instance <oid>            open an Instance window (Get_Value)
    pick <class> <col> <row>  select an instance on the map
    zoom <class> | pan <class>  map operations
    query <text>              analysis-mode query (select ... from ...)
    install <path>            compile + install a customization program
    windows                   list open windows
    render [window]           render one window (or the whole screen)
    explain <window>          why a window looks the way it does
    close <window>            close a window
    html <path>               export the screen as a HTML page
    stats [json]              session statistics + live metrics registry
    trace [json|all]          span tree of the last interaction
    wal-status [json]         write-ahead log state (sync mode, counters)
    repl-status [json]        replication state (per-follower LSN and lag)
    watch-status [json]       live queries: watches, deltas, fallbacks
    raster-status [json]      tiled raster store (tiles, pyramid, reads)
    column-status [json]      columnar scan caches (sizes, versions, hit ratios)
    help                      this command list
    quit | exit               leave

The loop is IO-parameterized (any line iterator in, any writer out), so
the test suite drives it deterministically.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Iterable

from . import obs
from .core.session import GISSession
from .errors import ReproError

PROMPT = "gis> "


class CommandLoop:
    """Parses and executes browser commands against one session."""

    def __init__(self, session: GISSession,
                 write: Callable[[str], None] | None = None):
        self.session = session
        self._write = write or (lambda text: print(text, end=""))
        self._schema: str | None = None
        self._running = True

    # -- plumbing -----------------------------------------------------------

    def emit(self, text: str = "") -> None:
        self._write(text + "\n")

    def run(self, lines: Iterable[str]) -> int:
        """Feed command lines; returns the number executed."""
        executed = 0
        for line in lines:
            if not self._running:
                break
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            executed += 1
            try:
                self.dispatch(line)
            except ReproError as exc:
                self.emit(f"error: {exc}")
            except Exception as exc:  # defensive: keep the loop alive
                self.emit(f"unexpected error: {exc!r}")
        return executed

    # -- command dispatch -------------------------------------------------------

    def dispatch(self, line: str) -> None:
        command, __, rest = line.partition(" ")
        rest = rest.strip()
        handler = getattr(
            self, f"cmd_{command.lower().replace('-', '_')}", None)
        if handler is None:
            self.emit(f"unknown command {command!r}; try 'help'")
            return
        handler(rest)

    # -- commands ----------------------------------------------------------------

    def cmd_help(self, rest: str) -> None:
        self.emit(__doc__.split("Commands (also printed by ``help``)::", 1)
                  [1].split("The loop is", 1)[0].strip("\n"))

    def cmd_connect(self, rest: str) -> None:
        if not rest:
            self.emit("usage: connect <schema>")
            return
        self.session.connect(rest)
        self._schema = rest
        window = self.session.screen.window(f"schema_{rest}")
        if window.visible:
            self.emit(self.session.render(window.name))
        else:
            self.emit(f"(schema window hidden by customization; "
                      f"open windows: {', '.join(self.session.screen.names())})")

    def _require_schema(self) -> str | None:
        if self._schema is None:
            self.emit("connect to a schema first")
            return None
        return self._schema

    def cmd_classes(self, rest: str) -> None:
        schema_name = self._require_schema()
        if schema_name is None:
            return
        schema = self.session.database.get_schema_object(schema_name)
        for name in schema.class_names():
            count = self.session.database.count(schema_name, name)
            self.emit(f"  {name} ({count})")

    def cmd_class(self, rest: str) -> None:
        if self._require_schema() is None:
            return
        if not rest:
            self.emit("usage: class <name>")
            return
        window = self.session.select_class(rest)
        self.emit(self.session.render(window.name))

    def cmd_instance(self, rest: str) -> None:
        if not rest:
            self.emit("usage: instance <oid>")
            return
        window = self.session.select_instance(rest)
        self.emit(self.session.render(window.name))

    def cmd_pick(self, rest: str) -> None:
        parts = rest.split()
        if len(parts) != 3:
            self.emit("usage: pick <class> <col> <row>")
            return
        class_name, col, row = parts[0], int(parts[1]), int(parts[2])
        oid = self.session.pick_on_map(class_name, col, row)
        if oid is None:
            self.emit("nothing there")
        else:
            self.emit(f"picked {oid}")
            self.emit(self.session.render(f"instance_{oid}"))

    def _map_operation(self, class_name: str, item: str) -> None:
        window = self.session.screen.window(f"classset_{class_name}")
        window.find("operations").activate(item)
        self.emit(self.session.render(window.name))

    def cmd_zoom(self, rest: str) -> None:
        if not rest:
            self.emit("usage: zoom <class>")
            return
        self._map_operation(rest, "zoom")

    def cmd_pan(self, rest: str) -> None:
        if not rest:
            self.emit("usage: pan <class>")
            return
        self._map_operation(rest, "pan")

    def cmd_query(self, rest: str) -> None:
        schema_name = self._require_schema()
        if schema_name is None:
            return
        if not rest:
            self.emit("usage: query select ... from ...")
            return
        result = self.session.query(schema_name, rest)
        self.emit(result.explain())
        shown = (result.rows if result.rows is not None
                 else [{"oid": o.oid} for o in result.objects])
        for row in shown[:20]:
            self.emit(f"  {row}")
        if len(shown) > 20:
            self.emit(f"  ... {len(shown) - 20} more")

    def cmd_install(self, rest: str) -> None:
        if not rest:
            self.emit("usage: install <path-to-program>")
            return
        with open(rest) as f:
            source = f.read()
        directives = self.session.install_program(source, persist=False)
        self.emit(f"installed {len(directives)} directive(s)")

    def cmd_windows(self, rest: str) -> None:
        for name in self.session.screen.names():
            window = self.session.screen.window(name)
            marker = "" if window.visible else " (hidden)"
            self.emit(f"  {name}{marker}")
        if not self.session.screen.names():
            self.emit("  (no open windows)")

    def cmd_render(self, rest: str) -> None:
        self.emit(self.session.render(rest or None))

    def cmd_explain(self, rest: str) -> None:
        if not rest:
            self.emit("usage: explain <window>")
            return
        self.emit(self.session.explain_window(rest))

    def cmd_close(self, rest: str) -> None:
        if not rest:
            self.emit("usage: close <window>")
            return
        self.session.close(rest)
        self.emit(f"closed {rest}")

    def cmd_html(self, rest: str) -> None:
        """Export the whole screen as a self-contained HTML page."""
        if not rest:
            self.emit("usage: html <output-path>")
            return
        from .uilib.html_render import render_screen_html

        page = render_screen_html(self.session.screen.windows())
        with open(rest, "w") as f:
            f.write(page)
        self.emit(f"wrote {len(page)} bytes to {rest}")

    def cmd_stats(self, rest: str) -> None:
        if rest.strip() == "json":
            if not obs.is_enabled():
                self.emit("observability is disabled; no registry to export")
                return
            self.emit(json.dumps(obs.RECORDER.registry.export(), indent=2))
            return
        for key, value in self.session.stats().items():
            self.emit(f"  {key}: {value}")
        if obs.is_enabled():
            self.emit("-- metrics --")
            self.emit(obs.RECORDER.registry.render_table())
        else:
            self.emit("(observability disabled; enable with repro.obs.enable() "
                      "for live counters)")

    def cmd_trace(self, rest: str) -> None:
        """Dump pipeline traces recorded by the observability layer."""
        if not obs.is_enabled():
            self.emit("observability is disabled; no traces recorded")
            return
        tracer = obs.RECORDER.tracer
        mode = rest.strip()
        if mode == "all":
            traces = tracer.traces()
            if not traces:
                self.emit("(no traces recorded yet)")
                return
            for span in traces:
                self.emit(f"  {span.name}  spans={sum(1 for _ in span.walk())}"
                          f"  {span.duration * 1000:.3f}ms")
            return
        # Prefer the last *interaction* trace; fall back to the last trace.
        span = tracer.last_trace("dispatch.") or tracer.last_trace()
        if span is None:
            self.emit("(no traces recorded yet)")
            return
        if mode == "json":
            self.emit(json.dumps(span.to_dict(), indent=2))
        else:
            self.emit(span.render())

    def cmd_wal_status(self, rest: str) -> None:
        """Report the database's write-ahead log state."""
        wal = getattr(self.session.database, "wal", None)
        if wal is None:
            self.emit("no write-ahead log attached (in-memory session); "
                      "open a database with GeographicDatabase.open() "
                      "for durability")
            return
        status = wal.stats()
        if rest.strip() == "json":
            self.emit(json.dumps(status, indent=2))
            return
        for key, value in status.items():
            self.emit(f"  {key}: {value}")

    def cmd_repl_status(self, rest: str) -> None:
        """Report leader shipping state and per-follower LSN/lag."""
        status = self.session.kernel.replication_status()
        if rest.strip() == "json":
            self.emit(json.dumps(status, indent=2))
            return
        leader = status["leader"]
        self.emit(f"  leader: {leader['name']}  lsn={leader['lsn']}")
        shipper = leader.get("shipper")
        if shipper:
            self.emit(f"    shipped batches: {shipper['shipped_batches']}"
                      f"  retained: {shipper['retained']}"
                      f"  snapshot handoffs: {shipper['snapshot_handoffs']}")
        else:
            self.emit("    (log shipping not enabled)")
        replicas = status["replicas"]
        if not replicas:
            self.emit("  no replicas attached")
            return
        for replica in replicas:
            self.emit(f"  replica: {replica['name']}  lsn={replica['lsn']}"
                      f"  lag={replica['lag']}"
                      f"  applied={replica['applied_batches']}"
                      f"  resyncs={replica['resyncs']}")

    def cmd_watch_status(self, rest: str) -> None:
        """Report the kernel's live queries and their maintenance mix."""
        live = self.session.kernel.live
        status = {"summary": live.stats(), "watches": live.watch_status()}
        if rest.strip() == "json":
            self.emit(json.dumps(status, indent=2))
            return
        summary = status["summary"]
        self.emit(f"  watches: {summary['watches']}"
                  f"  standing queries: {summary['queries']}"
                  f"  deltas: {summary['delta_applied']}"
                  f"  re-execs: {summary['fallback_reexec']}"
                  f"  pushes: {summary['pushes']}")
        if not status["watches"]:
            self.emit("  no live queries registered")
            return
        for row in status["watches"]:
            self.emit(f"  {row['watch']} [{row['session']}]"
                      f" {row['schema']}: {row['query']}")
            self.emit(f"    rows={row['rows']}  deltas={row['deltas']}"
                      f"  fallbacks={row['fallbacks']}"
                      f"  last={row['last']}  pending={row['pending']}")

    def cmd_raster_status(self, rest: str) -> None:
        """Report the tiled raster store (directory, pyramid, counters)."""
        store = getattr(self.session.database, "_raster_store", None)
        if store is None:
            self.emit("no rasters stored (commit a Raster attribute first)")
            return
        status = store.status()
        if rest.strip() == "json":
            self.emit(json.dumps(status, indent=2))
            return
        self.emit(f"  rasters: {status['rasters']}"
                  f"  tiles: {status['tiles']}"
                  f"  tile pages: {status['tile_pages']}"
                  f"  free pages: {status['free_pages']}")
        self.emit(f"  tile size: {status['tile_size']}px")
        for level, count in status["tiles_per_level"].items():
            self.emit(f"    level {level}: {count} tiles")
        self.emit(f"  tile reads: {status['tile_reads']}"
                  f"  tile writes: {status['tile_writes']}"
                  f"  window reads: {status['window_reads']}")

    def cmd_column_status(self, rest: str) -> None:
        """Report the columnar scan caches (sizes, versions, hit ratios)."""
        cache = getattr(self.session.database, "_column_cache", None)
        if cache is None:
            self.emit("no column caches built (run an analysis query first)")
            return
        status = cache.status()
        if rest.strip() == "json":
            self.emit(json.dumps(status, indent=2))
            return
        summary = status["summary"]
        ratio = summary["hit_ratio"]
        self.emit(f"  classes: {summary['classes']}"
                  f"  rows: {summary['rows']}"
                  f"  columns: {summary['columns']}")
        self.emit(f"  builds: {summary['builds']}"
                  f"  hits: {summary['hits']}"
                  f"  invalidations: {summary['invalidations']}"
                  f"  hit ratio: {'n/a' if ratio is None else ratio}")
        for row in status["classes"]:
            self.emit(f"  {row['schema']}.{row['class']} v{row['version']}:"
                      f" {row['rows']} rows, {row['columns']} column(s)")

    def cmd_quit(self, rest: str) -> None:
        self._running = False
        self.emit("bye")

    cmd_exit = cmd_quit

    # -- introspection (help/--help stay in sync with the dispatch table) -----

    @classmethod
    def command_names(cls) -> list[str]:
        """Every dispatchable command, in dash form, sorted.

        Derived from the ``cmd_*`` attributes :meth:`dispatch` resolves
        against, so it cannot drift from the actual dispatch table.
        """
        return sorted(
            name[len("cmd_"):].replace("_", "-")
            for name in dir(cls) if name.startswith("cmd_")
        )

    @classmethod
    def help_text(cls) -> str:
        """The command listing ``help`` prints (one command per line)."""
        return (__doc__
                .split("Commands (also printed by ``help``)::", 1)[1]
                .split("The loop is", 1)[0].strip("\n"))

    @classmethod
    def documented_command_names(cls) -> list[str]:
        """Commands named in the help listing, in dash form, sorted."""
        names: set[str] = set()
        for line in cls.help_text().splitlines():
            words = line.split()
            if not words:
                continue
            # first token is a command; "a | b" lines document both
            names.add(words[0])
            for i, word in enumerate(words[:-1]):
                if word == "|" and words[i + 1].isalpha():
                    names.add(words[i + 1])
        return sorted(names)


def build_demo_session(user: str, category: str | None, application: str,
                       figure6: bool) -> GISSession:
    """The out-of-the-box demo: the §4 phone-net database.

    Observability is enabled *before* the database is built so ``stats``
    shows the full cost of populating it, too.
    """
    from .core import GISKernel
    from .lang import FIGURE_6_PROGRAM
    from .workloads import build_phone_net_database

    obs.enable()
    db = build_phone_net_database()
    kernel = GISKernel(db)
    session = kernel.session(user=user, category=category,
                             application=application, auto_refresh=True)
    if figure6:
        kernel.install_program(FIGURE_6_PROGRAM, persist=False)
    return session


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-browse",
        description="interactive GIS interface browser (paper demo)",
        # Every dash command is visible from --help, not only from the
        # in-loop ``help`` command (kept in sync by tests/test_cli.py).
        epilog="commands:\n" + CommandLoop.help_text(),
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--user", default="demo")
    parser.add_argument("--category", default=None)
    parser.add_argument("--application", default="browser")
    parser.add_argument("--figure6", action="store_true",
                        help="install the paper's Figure 6 customization")
    parser.add_argument("--no-obs", action="store_true",
                        help="disable the observability layer (stats/trace "
                             "will have nothing to report)")
    args = parser.parse_args(argv)

    session = build_demo_session(args.user, args.category, args.application,
                                 args.figure6)
    if args.no_obs:
        obs.disable()
    loop = CommandLoop(session)
    loop.emit(f"connected as {session.context.describe()}; "
              f"try: connect phone_net")

    def stdin_lines():
        while True:
            try:
                yield input(PROMPT)
            except EOFError:
                return

    loop.run(stdin_lines())
    return 0


if __name__ == "__main__":
    sys.exit(main())
