"""Environmental-control workload.

The paper's introduction motivates GIS with "vegetation and road networks"
and applications "from public utilities management to environmental
control" (§1). This generator builds a land-management schema — vegetation
parcels, rivers, roads, monitoring stations — exercising polygon and
multi-geometry display paths the phone-net workload does not.
"""

from __future__ import annotations

import math
import random

from ..geodb.database import GeographicDatabase
from ..geodb.schema import Attribute, GeoClass, Method, Schema
from ..geodb.types import FLOAT, INTEGER, TEXT, GeometryType
from ..spatial.geometry import LineString, Point, Polygon

VEGETATION_KINDS = ("forest", "cerrado", "wetland", "pasture", "crops")


def build_environment_schema() -> Schema:
    schema = Schema("land_use", doc="environmental control (vegetation, "
                                    "hydrology, roads, monitoring)")
    schema.add_class(GeoClass(
        "VegetationParcel",
        attributes=[
            Attribute("cover_kind", TEXT, required=True),
            Attribute("parcel_area", GeometryType("polygon"), required=True),
            Attribute("canopy_pct", FLOAT),
            Attribute("survey_year", INTEGER),
        ],
        methods=[Method("area_hectares", [],
                        doc="polygon area converted to hectares")],
        doc="vegetation cover parcels",
    ))
    schema.add_class(GeoClass(
        "River",
        attributes=[
            Attribute("river_name", TEXT, required=True),
            Attribute("course", GeometryType("linestring"), required=True),
            Attribute("flow_m3s", FLOAT),
        ],
        doc="river courses",
    ))
    schema.add_class(GeoClass(
        "Road",
        attributes=[
            Attribute("road_code", TEXT, required=True),
            Attribute("path", GeometryType("linestring"), required=True),
            Attribute("paved", INTEGER),
        ],
        doc="road network",
    ))
    schema.add_class(GeoClass(
        "Station",
        attributes=[
            Attribute("station_code", TEXT, required=True),
            Attribute("position", GeometryType("point"), required=True),
            Attribute("last_reading", FLOAT),
        ],
        doc="environmental monitoring stations",
    ))
    return schema


def register_environment_methods(db: GeographicDatabase,
                                 schema_name: str = "land_use") -> None:
    def area_hectares(database, obj):
        geom = obj.geometry("parcel_area")
        return round(geom.area() / 10_000.0, 2) if geom is not None else 0.0

    db.register_method(schema_name, "VegetationParcel", "area_hectares",
                       area_hectares)


def _blob_polygon(rng: random.Random, cx: float, cy: float,
                  radius: float) -> Polygon:
    """An irregular convex-ish blob around a center."""
    points = []
    sides = rng.randint(6, 10)
    for i in range(sides):
        angle = 2.0 * math.pi * i / sides
        r = radius * rng.uniform(0.6, 1.0)
        points.append((cx + r * math.cos(angle), cy + r * math.sin(angle)))
    return Polygon(points)


def populate_environment(db: GeographicDatabase, parcels: int = 20,
                         rivers: int = 3, roads: int = 4, stations: int = 8,
                         extent: float = 10_000.0, seed: int = 42,
                         schema_name: str = "land_use") -> dict[str, int]:
    rng = random.Random(seed)
    with db.transaction() as txn:
        for p in range(parcels):
            cx, cy = rng.uniform(0, extent), rng.uniform(0, extent)
            txn.insert(schema_name, "VegetationParcel", {
                "cover_kind": rng.choice(VEGETATION_KINDS),
                "parcel_area": _blob_polygon(rng, cx, cy,
                                             rng.uniform(200, 900)),
                "canopy_pct": round(rng.uniform(5, 95), 1),
                "survey_year": rng.randint(1990, 1996),
            })
        for r in range(rivers):
            y = rng.uniform(0.2, 0.8) * extent
            coords = []
            for step in range(12):
                x = step / 11 * extent
                coords.append((x, y + 400 * math.sin(step / 2.0 + r)))
            txn.insert(schema_name, "River", {
                "river_name": f"Rio {chr(ord('A') + r)}",
                "course": LineString(coords),
                "flow_m3s": round(rng.uniform(5, 120), 1),
            })
        for r in range(roads):
            x = (r + 1) / (roads + 1) * extent
            txn.insert(schema_name, "Road", {
                "road_code": f"SP-{100 + r}",
                "path": LineString([(x, 0), (x + rng.uniform(-800, 800),
                                             extent)]),
                "paved": rng.randint(0, 1),
            })
        for s in range(stations):
            txn.insert(schema_name, "Station", {
                "station_code": f"EST-{s:03d}",
                "position": Point(rng.uniform(0, extent),
                                  rng.uniform(0, extent)),
                "last_reading": round(rng.uniform(0, 50), 2),
            })
    return {
        "VegetationParcel": db.count(schema_name, "VegetationParcel"),
        "River": db.count(schema_name, "River"),
        "Road": db.count(schema_name, "Road"),
        "Station": db.count(schema_name, "Station"),
    }


def build_environment_database(name: str = "ENV", **params
                               ) -> GeographicDatabase:
    db = GeographicDatabase(name)
    db.register_schema(build_environment_schema())
    register_environment_methods(db)
    populate_environment(db, **params)
    return db
