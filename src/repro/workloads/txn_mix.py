"""Seeded randomized transaction mixes for crash-recovery testing.

The durability contract (docs/DURABILITY.md) is stated per transaction:
after a crash at *any* point, recovery must land on either the state
before the in-flight transaction or the state after it — never anything
in between. The fault-injection matrix in ``tests/test_wal_recovery.py``
checks that by crashing a pager at every write index; this module
supplies the workload side: a deterministic mix of inserts, updates and
deletes that tracks, in plain Python dicts, exactly which states are
acceptable when the crash fires.

The mix runs against its own tiny ``mix`` schema so tests and benchmarks
don't depend on the phone-net generator's size.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import CrashError, TransactionConflictError
from ..geodb.database import GeographicDatabase
from ..geodb.schema import Attribute, GeoClass, Schema
from ..geodb.types import INTEGER, TEXT, GeometryType
from ..spatial.geometry import Point

MIX_SCHEMA = "mix"
MIX_CLASS = "Feature"


def build_mix_schema() -> Schema:
    """A one-class schema exercising text, integer and point attributes."""
    schema = Schema(MIX_SCHEMA, doc="crash-matrix workload schema")
    schema.add_class(GeoClass(
        MIX_CLASS,
        attributes=[
            Attribute("name", TEXT, required=True),
            Attribute("size", INTEGER),
            Attribute("location", GeometryType("point")),
        ],
        doc="synthetic feature mutated by the transaction mix",
    ))
    return schema


def snapshot_state(db: GeographicDatabase) -> dict[str, dict[str, Any]]:
    """The observable mix state: oid -> attribute values.

    Geometries compare by value, so two snapshots are equal exactly when
    the databases would answer every query identically.
    """
    return {
        obj.oid: obj.values() for obj in db.extent(MIX_SCHEMA, MIX_CLASS)
    }


@dataclass
class MixOutcome:
    """What a (possibly crash-interrupted) mix run observed and expects."""

    committed: int = 0
    crashed: bool = False
    #: ``"commit"`` or ``"checkpoint"`` when ``crashed``, else ``None``
    crash_point: str | None = None
    #: state before the interrupted operation's transaction
    pre_state: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: state if the interrupted transaction had fully committed — for a
    #: checkpoint crash this equals ``pre_state`` (nothing was in flight)
    post_state: dict[str, dict[str, Any]] = field(default_factory=dict)

    def acceptable_states(self) -> list[dict[str, dict[str, Any]]]:
        """Every state recovery is allowed to land on."""
        if self.pre_state == self.post_state:
            return [self.post_state]
        return [self.pre_state, self.post_state]


def _copy_state(state: dict[str, dict[str, Any]]) -> dict[str, dict[str, Any]]:
    return {oid: dict(values) for oid, values in state.items()}


def commit_with_retries(db: GeographicDatabase,
                        body: Callable[[Any], Any], *,
                        attempts: int = 8,
                        session_id: str | None = None) -> tuple[Any, int]:
    """Run ``body(txn)`` + commit, retrying on first-committer-wins losses.

    Each attempt opens a fresh transaction (and therefore a fresh
    snapshot), so a retry observes the state committed by whoever won the
    conflict — the standard optimistic-concurrency loop. Returns
    ``(body_result, retries)`` where ``retries`` counts the *failed*
    attempts before the successful one. Raises the last
    :class:`~repro.errors.TransactionConflictError` once ``attempts``
    commits in a row were rejected; any other exception aborts the
    transaction and propagates immediately.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    last_conflict: TransactionConflictError | None = None
    for attempt in range(attempts):
        txn = db.transaction(session_id=session_id)
        try:
            result = body(txn)
        except BaseException:
            txn.abort()
            raise
        try:
            txn.commit()
        except TransactionConflictError as exc:
            last_conflict = exc
            continue
        return result, attempt
    raise last_conflict


def run_transaction_mix(db: GeographicDatabase, *, txns: int = 10,
                        ops_per_txn: int = 3, seed: int = 0,
                        oid_prefix: str = "mix",
                        checkpoint_every: int = 0) -> MixOutcome:
    """Run a seeded insert/update/delete mix, tracking expected state.

    ``db`` must already hold the :func:`build_mix_schema` schema. Each
    transaction stages ``ops_per_txn`` operations chosen over the staged
    state (so a delete is never followed by an update of the same oid).
    With ``checkpoint_every`` > 0 a checkpoint runs after every that many
    commits, putting heap-page flushes and log truncation inside the
    crash window too.

    A :class:`~repro.errors.CrashError` from an injected fault ends the
    run: the returned outcome carries the two acceptable recovery states.
    Other exceptions propagate (the mix never stages an invalid
    operation, so anything else is a real bug).
    """
    rng = random.Random(seed)
    counter = 0
    expected = snapshot_state(db)
    outcome = MixOutcome(pre_state=_copy_state(expected),
                         post_state=_copy_state(expected))

    def fresh_values() -> dict[str, Any]:
        values: dict[str, Any] = {
            "name": f"feat-{rng.randrange(1_000_000)}",
            "size": rng.randrange(1000),
        }
        if rng.random() < 0.7:
            values["location"] = Point(rng.uniform(0, 100),
                                       rng.uniform(0, 100))
        return values

    for index in range(txns):
        staged = _copy_state(expected)
        plan: list[tuple[str, str, dict[str, Any] | None]] = []
        for __ in range(ops_per_txn):
            roll = rng.random()
            if not staged or roll < 0.5:
                counter += 1
                oid = f"{MIX_CLASS}#{oid_prefix}{counter}"
                values = fresh_values()
                staged[oid] = dict(values)
                plan.append(("insert", oid, values))
            elif roll < 0.8:
                oid = rng.choice(sorted(staged))
                changes: dict[str, Any] = {"size": rng.randrange(1000)}
                if rng.random() < 0.3:
                    changes["location"] = Point(rng.uniform(0, 100),
                                                rng.uniform(0, 100))
                staged[oid].update(changes)
                plan.append(("update", oid, changes))
            else:
                oid = rng.choice(sorted(staged))
                del staged[oid]
                plan.append(("delete", oid, None))
        try:
            with db.transaction() as txn:
                for op, oid, values in plan:
                    if op == "insert":
                        txn.insert(MIX_SCHEMA, MIX_CLASS, values, oid=oid)
                    elif op == "update":
                        txn.update(oid, values)
                    else:
                        txn.delete(oid)
        except CrashError:
            outcome.crashed = True
            outcome.crash_point = "commit"
            outcome.pre_state = _copy_state(expected)
            outcome.post_state = staged
            return outcome
        expected = staged
        outcome.committed += 1
        if checkpoint_every and (index + 1) % checkpoint_every == 0:
            try:
                db.checkpoint()
            except CrashError:
                # A checkpoint moves no logical state: every committed
                # transaction must survive the crash intact.
                outcome.crashed = True
                outcome.crash_point = "checkpoint"
                outcome.pre_state = _copy_state(expected)
                outcome.post_state = _copy_state(expected)
                return outcome
    outcome.pre_state = _copy_state(expected)
    outcome.post_state = _copy_state(expected)
    return outcome
