"""Synthetic image-log workload: raster attributes over survey sites.

Real geo front-ends carry bitmap payloads far larger than a page —
scanned utility plans, well image logs, orthophoto patches (see the
GeoSlicer-style scenarios in PAPERS.md). This workload builds an
``image_logs`` schema whose ``ImageLog`` class pairs a point location
with a tiled :class:`~repro.geodb.raster.Raster` attribute, populates a
deterministic survey grid, and ships a customization program whose
presentation rule renders the raster as a coarse overview when the
context is zoomed out — the paper's per-context customization mechanism
applied to pyramid level selection.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geodb.database import GeographicDatabase
from ..geodb.raster import Raster
from ..geodb.schema import Attribute, GeoClass, Schema
from ..geodb.types import INTEGER, RASTER, TEXT, GeometryType
from ..spatial.geometry import BBox, Point


def synthetic_raster(width: int, height: int, seed: int = 0,
                     extent: BBox | None = None) -> Raster:
    """A deterministic test-pattern raster (no RNG, reproducible bytes).

    The pattern mixes two spatial frequencies plus the seed so distinct
    rasters differ byte-wise while staying cheap to generate and easy to
    eyeball in a hex dump.
    """
    pixels = bytearray(width * height)
    pos = 0
    for y in range(height):
        base = (y * 31 + seed * 97) & 0xFF
        for x in range(width):
            pixels[pos] = (base + x * 13 + ((x * y) >> 3)) & 0xFF
            pos += 1
    return Raster(width, height, bytes(pixels), extent=extent)


def build_image_log_schema() -> Schema:
    """The ``image_logs`` schema: survey sites with raster scans."""
    schema = Schema("image_logs",
                    doc="survey sites carrying tiled raster scans")
    schema.add_class(GeoClass(
        "Site",
        attributes=[
            Attribute("site_name", TEXT, required=True),
            Attribute("location", GeometryType("point"), required=True),
        ],
        doc="surveyed field sites",
    ))
    schema.add_class(GeoClass(
        "ImageLog",
        attributes=[
            Attribute("log_name", TEXT, required=True),
            Attribute("site", TEXT),
            Attribute("sequence", INTEGER),
            Attribute("footprint", GeometryType("point"), required=True),
            Attribute("scan", RASTER),
        ],
        doc="one scanned image log, stored as pyramid tiles",
    ))
    return schema


@dataclass(frozen=True)
class ImageLogParams:
    """Generator knobs (defaults keep the dataset test-suite sized)."""

    sites: int = 3
    logs_per_site: int = 2
    raster_width: int = 256
    raster_height: int = 256
    cell_size: float = 500.0
    seed: int = 1997


def populate_image_logs(db: GeographicDatabase,
                        params: ImageLogParams = ImageLogParams(),
                        schema_name: str = "image_logs") -> dict[str, int]:
    """Populate an (already schema-registered) database; returns counts.

    Each log's raster is georeferenced to its site's grid cell, so
    windowed reads and viewport-driven level selection are meaningful.
    """
    logs = 0
    with db.transaction() as txn:
        for s in range(params.sites):
            x0 = s * params.cell_size
            txn.insert(schema_name, "Site", {
                "site_name": f"site-{s}",
                "location": Point(x0 + params.cell_size / 2,
                                  params.cell_size / 2),
            })
            for i in range(params.logs_per_site):
                cell = BBox(x0, 0.0, x0 + params.cell_size, params.cell_size)
                txn.insert(schema_name, "ImageLog", {
                    "log_name": f"log-{s}-{i}",
                    "site": f"site-{s}",
                    "sequence": i,
                    "footprint": Point(x0 + params.cell_size / 2,
                                       params.cell_size / 2),
                    "scan": synthetic_raster(
                        params.raster_width, params.raster_height,
                        seed=params.seed + s * 10 + i, extent=cell),
                })
                logs += 1
    return {"Site": params.sites, "ImageLog": logs}


def build_image_log_database(params: ImageLogParams = ImageLogParams(),
                             name: str = "GEO") -> GeographicDatabase:
    """Create, register and populate a ready-to-browse database."""
    db = GeographicDatabase(name)
    db.register_schema(build_image_log_schema())
    populate_image_logs(db, params)
    return db


#: Customization program for the image-log application: surveyors
#: browsing the atlas get a coarse raster overview (the store picks the
#: pyramid level from the display scale), while the site name stays a
#: plain text widget — per-context raster presentation, paper-style.
IMAGE_LOG_PROGRAM = """
-- image-log atlas: coarse raster overviews for browsing surveyors
for user surveyor application atlas
schema image_logs display as Null
class ImageLog display
    presentation as pointFormat
    instances
        display attribute scan as raster_overview
        display attribute log_name as text
"""
