"""Low-level random generators for geometry- and scale-sweeping benchmarks."""

from __future__ import annotations

import math
import random
from typing import Iterator

from ..spatial.geometry import BBox, LineString, Point, Polygon


def random_points(count: int, extent: BBox, seed: int = 0) -> list[Point]:
    rng = random.Random(seed)
    return [
        Point(rng.uniform(extent.min_x, extent.max_x),
              rng.uniform(extent.min_y, extent.max_y))
        for __ in range(count)
    ]


def clustered_points(count: int, extent: BBox, clusters: int = 8,
                     spread: float = 0.03, seed: int = 0) -> list[Point]:
    """Points around random cluster centers — realistic urban pole layouts."""
    rng = random.Random(seed)
    centers = [
        (rng.uniform(extent.min_x, extent.max_x),
         rng.uniform(extent.min_y, extent.max_y))
        for __ in range(max(1, clusters))
    ]
    sigma = spread * max(extent.width, extent.height)
    out = []
    for __ in range(count):
        cx, cy = rng.choice(centers)
        x = min(max(rng.gauss(cx, sigma), extent.min_x), extent.max_x)
        y = min(max(rng.gauss(cy, sigma), extent.min_y), extent.max_y)
        out.append(Point(x, y))
    return out


def random_boxes(count: int, extent: BBox, max_size_fraction: float = 0.02,
                 seed: int = 0) -> list[BBox]:
    rng = random.Random(seed)
    out = []
    for __ in range(count):
        w = rng.uniform(0.0, max_size_fraction) * extent.width
        h = rng.uniform(0.0, max_size_fraction) * extent.height
        x = rng.uniform(extent.min_x, extent.max_x - w)
        y = rng.uniform(extent.min_y, extent.max_y - h)
        out.append(BBox(x, y, x + w, y + h))
    return out


def random_walk_line(steps: int, extent: BBox, step_size: float,
                     seed: int = 0) -> LineString:
    rng = random.Random(seed)
    x = rng.uniform(extent.min_x, extent.max_x)
    y = rng.uniform(extent.min_y, extent.max_y)
    coords = [(x, y)]
    heading = rng.uniform(0, 2 * math.pi)
    for __ in range(max(1, steps)):
        heading += rng.uniform(-0.8, 0.8)
        x = min(max(x + step_size * math.cos(heading), extent.min_x),
                extent.max_x)
        y = min(max(y + step_size * math.sin(heading), extent.min_y),
                extent.max_y)
        coords.append((x, y))
    return LineString(coords)


def random_convex_polygon(center: tuple[float, float], radius: float,
                          sides: int = 8, seed: int = 0) -> Polygon:
    rng = random.Random(seed)
    cx, cy = center
    angles = sorted(rng.uniform(0, 2 * math.pi) for __ in range(max(3, sides)))
    coords = [
        (cx + radius * rng.uniform(0.5, 1.0) * math.cos(a),
         cy + radius * rng.uniform(0.5, 1.0) * math.sin(a))
        for a in angles
    ]
    return Polygon(coords)


def pan_zoom_walk(extent: BBox, window_fraction: float, steps: int,
                  seed: int = 0) -> Iterator[BBox]:
    """A map-browsing query trace: mostly small pans, occasional zooms.

    The locality of this trace is what makes the buffer manager pay off
    (experiment C4).
    """
    rng = random.Random(seed)
    w = extent.width * window_fraction
    h = extent.height * window_fraction
    cx, cy = extent.center()
    for __ in range(steps):
        roll = rng.random()
        if roll < 0.70:          # pan by up to half a window
            cx += rng.uniform(-0.5, 0.5) * w
            cy += rng.uniform(-0.5, 0.5) * h
        elif roll < 0.85:        # zoom in
            w *= 0.5
            h *= 0.5
        elif roll < 0.95:        # zoom out
            w = min(w * 2.0, extent.width)
            h = min(h * 2.0, extent.height)
        else:                    # jump elsewhere
            cx = rng.uniform(extent.min_x, extent.max_x)
            cy = rng.uniform(extent.min_y, extent.max_y)
        cx = min(max(cx, extent.min_x + w / 2), extent.max_x - w / 2)
        cy = min(max(cy, extent.min_y + h / 2), extent.max_y - h / 2)
        yield BBox(cx - w / 2, cy - h / 2, cx + w / 2, cy + h / 2)
