"""Synthetic workload generators for the examples, tests and benchmarks."""

from .phone_net import (
    PhoneNetParams,
    build_phone_net_database,
    build_phone_net_schema,
    populate_phone_net,
    register_pole_methods,
)
from .environment import (
    build_environment_database,
    build_environment_schema,
    populate_environment,
    register_environment_methods,
)
from .image_logs import (
    IMAGE_LOG_PROGRAM,
    ImageLogParams,
    build_image_log_database,
    build_image_log_schema,
    populate_image_logs,
    synthetic_raster,
)
from .session_pool import SessionPool, browsing_contexts
from .txn_mix import (
    MixOutcome,
    build_mix_schema,
    commit_with_retries,
    run_transaction_mix,
    snapshot_state,
)
from .generators import (
    clustered_points,
    pan_zoom_walk,
    random_boxes,
    random_convex_polygon,
    random_points,
    random_walk_line,
)

__all__ = [
    "PhoneNetParams",
    "build_phone_net_schema",
    "build_phone_net_database",
    "populate_phone_net",
    "register_pole_methods",
    "build_environment_schema",
    "build_environment_database",
    "populate_environment",
    "register_environment_methods",
    "IMAGE_LOG_PROGRAM",
    "ImageLogParams",
    "build_image_log_schema",
    "build_image_log_database",
    "populate_image_logs",
    "synthetic_raster",
    "SessionPool",
    "browsing_contexts",
    "MixOutcome",
    "build_mix_schema",
    "commit_with_retries",
    "run_transaction_mix",
    "snapshot_state",
    "random_points",
    "clustered_points",
    "random_boxes",
    "random_walk_line",
    "random_convex_polygon",
    "pan_zoom_walk",
]
