"""The §4 telephone-utility workload.

"A telephone network contains aerial and underground network elements,
such as ducts and poles. Network planning and maintenance demand an
exploratory interface interaction. Consider a geographic database which
stores maps representing the elements of the network."

This module builds the ``phone_net`` schema — including the exact class
``Pole`` of paper Figure 5 — and populates it with a seeded synthetic
network: a street grid, poles along streets, underground ducts, cables
hung between poles, and supplier records. The generator parameters are
explicit so experiments can scale the dataset.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..geodb.database import GeographicDatabase
from ..geodb.schema import Attribute, GeoClass, Method, Schema
from ..geodb.types import (
    BITMAP,
    FLOAT,
    INTEGER,
    TEXT,
    GeometryType,
    ReferenceType,
    TupleType,
)
from ..spatial.geometry import LineString, Point, Polygon

#: Materials poles are made of, with plausible diameter/height ranges.
POLE_MATERIALS = {
    "wood": (0.2, 0.35, 8.0, 11.0),
    "concrete": (0.3, 0.5, 9.0, 14.0),
    "steel": (0.15, 0.3, 10.0, 16.0),
}

SUPPLIER_NAMES = (
    "Postes Campinas", "ConcrePar", "AceroSul", "MadeiraBras", "TelePostes",
)


def build_phone_net_schema() -> Schema:
    """The ``phone_net`` schema; class ``Pole`` matches paper Figure 5."""
    schema = Schema("phone_net", doc="urban telephone utility network (§4)")

    schema.add_class(GeoClass(
        "Supplier",
        attributes=[
            Attribute("name", TEXT, required=True),
            Attribute("city", TEXT),
            Attribute("rating", INTEGER),
        ],
        doc="equipment suppliers",
    ))

    schema.add_class(GeoClass(
        "District",
        attributes=[
            Attribute("district_name", TEXT, required=True),
            Attribute("boundary", GeometryType("polygon"), required=True),
            Attribute("population", INTEGER),
        ],
        doc="administrative service districts",
    ))

    schema.add_class(GeoClass(
        "Street",
        attributes=[
            Attribute("street_name", TEXT, required=True),
            Attribute("axis", GeometryType("linestring"), required=True),
            Attribute("street_kind", TEXT),
        ],
        doc="street center lines",
    ))

    # Abstract base for network elements: demonstrates inheritance.
    schema.add_class(GeoClass(
        "NetworkElement",
        attributes=[
            Attribute("install_year", INTEGER),
            Attribute("status", TEXT),
        ],
        doc="base class of every physical network element",
    ))

    # Class Pole, exactly as paper Figure 5 (plus the inherited base).
    schema.add_class(GeoClass(
        "Pole",
        superclass="NetworkElement",
        attributes=[
            Attribute("pole_type", INTEGER),
            Attribute("pole_composition", TupleType({
                "pole_material": TEXT,
                "pole_diameter": FLOAT,
                "pole_height": FLOAT,
            })),
            Attribute("pole_supplier", ReferenceType("Supplier")),
            Attribute("pole_location", GeometryType("point"), required=True),
            Attribute("pole_picture", BITMAP),
            Attribute("pole_historic", TEXT),
        ],
        methods=[Method("get_supplier_name", ["Supplier"],
                        doc="name of the referenced supplier")],
        doc="aerial network support poles (paper Figure 5)",
    ))

    schema.add_class(GeoClass(
        "Duct",
        superclass="NetworkElement",
        attributes=[
            Attribute("duct_path", GeometryType("linestring"), required=True),
            Attribute("duct_depth", FLOAT),
            Attribute("duct_material", TEXT),
        ],
        doc="underground cable ducts",
    ))

    schema.add_class(GeoClass(
        "Cable",
        superclass="NetworkElement",
        attributes=[
            Attribute("cable_route", GeometryType("linestring"), required=True),
            Attribute("pair_count", INTEGER),
            Attribute("from_pole", ReferenceType("Pole")),
            Attribute("to_pole", ReferenceType("Pole")),
        ],
        doc="aerial cables strung between poles",
    ))
    return schema


def register_pole_methods(db: GeographicDatabase,
                          schema_name: str = "phone_net") -> None:
    """Attach the Figure 5 method implementation."""

    def get_supplier_name(database, obj, supplier_ref=None):
        oid = supplier_ref if isinstance(supplier_ref, str) and "#" in str(
            supplier_ref
        ) else obj.get("pole_supplier")
        if oid is None:
            return "(no supplier)"
        supplier = database.find_object(oid)
        return supplier.get("name") if supplier is not None else "(missing)"

    db.register_method(schema_name, "Pole", "get_supplier_name",
                       get_supplier_name)


@dataclass(frozen=True)
class PhoneNetParams:
    """Generator knobs (defaults give the small §4-scale network)."""

    blocks_x: int = 4
    blocks_y: int = 3
    block_size: float = 120.0
    poles_per_street: int = 4
    duct_count: int = 6
    cable_fraction: float = 0.6
    seed: int = 1997

    @property
    def extent(self) -> tuple[float, float]:
        return (self.blocks_x * self.block_size,
                self.blocks_y * self.block_size)


def populate_phone_net(db: GeographicDatabase,
                       params: PhoneNetParams = PhoneNetParams(),
                       schema_name: str = "phone_net") -> dict[str, int]:
    """Populate a (already schema-registered) database; returns counts."""
    rng = random.Random(params.seed)
    width, height = params.extent

    with db.transaction() as txn:
        supplier_oids = [
            txn.insert(schema_name, "Supplier", {
                "name": name,
                "city": rng.choice(["Campinas", "Tandil", "Sao Paulo"]),
                "rating": rng.randint(1, 5),
            })
            for name in SUPPLIER_NAMES
        ]

        txn.insert(schema_name, "District", {
            "district_name": "Centro",
            "boundary": Polygon([(0, 0), (width, 0), (width, height),
                                 (0, height)]),
            "population": rng.randint(20_000, 80_000),
        })

        street_axes: list[LineString] = []
        for i in range(params.blocks_x + 1):
            x = i * params.block_size
            axis = LineString([(x, 0), (x, height)])
            street_axes.append(axis)
            txn.insert(schema_name, "Street", {
                "street_name": f"Rua {i + 1}",
                "axis": axis,
                "street_kind": "avenue" if i % 2 == 0 else "street",
            })
        for j in range(params.blocks_y + 1):
            y = j * params.block_size
            axis = LineString([(0, y), (width, y)])
            street_axes.append(axis)
            txn.insert(schema_name, "Street", {
                "street_name": f"Travessa {j + 1}",
                "axis": axis,
                "street_kind": "street",
            })

        pole_oids: list[str] = []
        pole_points: list[Point] = []
        for axis in street_axes:
            for k in range(params.poles_per_street):
                fraction = (k + 0.5) / params.poles_per_street
                anchor = axis.interpolate(fraction)
                jitter_x = rng.uniform(-2.0, 2.0)
                jitter_y = rng.uniform(-2.0, 2.0)
                location = Point(
                    min(max(anchor.x + jitter_x, 0.0), width),
                    min(max(anchor.y + jitter_y, 0.0), height),
                )
                material = rng.choice(list(POLE_MATERIALS))
                d_lo, d_hi, h_lo, h_hi = POLE_MATERIALS[material]
                oid = txn.insert(schema_name, "Pole", {
                    "pole_type": rng.randint(0, 3),
                    "pole_composition": {
                        "pole_material": material,
                        "pole_diameter": round(rng.uniform(d_lo, d_hi), 2),
                        "pole_height": round(rng.uniform(h_lo, h_hi), 1),
                    },
                    "pole_supplier": rng.choice(supplier_oids),
                    "pole_location": location,
                    "pole_picture": bytes(rng.getrandbits(8)
                                          for __ in range(64)),
                    "pole_historic": f"installed {rng.randint(1970, 1996)}",
                    "install_year": rng.randint(1970, 1996),
                    "status": rng.choice(["ok", "maintenance", "ok", "ok"]),
                })
                pole_oids.append(oid)
                pole_points.append(location)

        for d in range(params.duct_count):
            y = rng.uniform(0.1, 0.9) * height
            x0 = rng.uniform(0.0, 0.3) * width
            x1 = rng.uniform(0.6, 1.0) * width
            txn.insert(schema_name, "Duct", {
                "duct_path": LineString([(x0, y), ((x0 + x1) / 2, y + 5.0),
                                         (x1, y)]),
                "duct_depth": round(rng.uniform(0.6, 1.5), 2),
                "duct_material": rng.choice(["pvc", "concrete"]),
                "install_year": rng.randint(1980, 1996),
                "status": "ok",
            })

        cable_count = int(len(pole_oids) * params.cable_fraction)
        for c in range(cable_count):
            i = rng.randrange(len(pole_oids) - 1)
            a, b = pole_points[i], pole_points[i + 1]
            txn.insert(schema_name, "Cable", {
                "cable_route": LineString([(a.x, a.y), (b.x, b.y)]),
                "pair_count": rng.choice([10, 20, 50, 100]),
                "from_pole": pole_oids[i],
                "to_pole": pole_oids[i + 1],
                "install_year": rng.randint(1980, 1996),
                "status": "ok",
            })

    return {
        "Supplier": db.count(schema_name, "Supplier"),
        "District": db.count(schema_name, "District"),
        "Street": db.count(schema_name, "Street"),
        "Pole": db.count(schema_name, "Pole"),
        "Duct": db.count(schema_name, "Duct"),
        "Cable": db.count(schema_name, "Cable"),
    }


def build_phone_net_database(params: PhoneNetParams = PhoneNetParams(),
                             name: str = "GEO") -> GeographicDatabase:
    """Create, register, populate and wire a ready-to-browse database."""
    db = GeographicDatabase(name)
    db.register_schema(build_phone_net_schema())
    register_pole_methods(db)
    populate_phone_net(db, params)
    return db
