"""Multi-session workload driver.

The paper's prototype served one workstation user; its architecture (§3,
Figure 1) was explicitly designed for many. :class:`SessionPool` replays
the §4 browsing loop — "iterates through browsing (Schema, {Class,
{Instance}}) windows, in this order" — across *K* concurrent sessions,
each in its own interaction context, interleaving their steps round-robin
the way a server would see interleaved requests.

Two deployment shapes, for the concurrent-session benchmark:

* ``shared_kernel=True`` — one :class:`~repro.core.kernel.GISKernel`
  holds the library/engine/builder; sessions are lightweight and the
  customization program is installed once;
* ``shared_kernel=False`` — the historical one-stack-per-session shape:
  every :class:`~repro.core.session.GISSession` builds a private kernel
  and installs the program into its own engine, so every event published
  on the bus wakes *K* rule managers.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..core.context import Context
from ..core.customization import CustomizationDirective
from ..core.kernel import GISKernel
from ..core.session import GISSession
from ..geodb.database import GeographicDatabase
from ..ui.interaction import random_browse_script, run_step

#: default rotation for :func:`browsing_contexts`
_CATEGORIES = ("engineer", "manager", "browser")
_APPLICATIONS = ("pole_manager", "viewer", "planner")


def browsing_contexts(count: int,
                      categories: Sequence[str] = _CATEGORIES,
                      applications: Sequence[str] = _APPLICATIONS,
                      ) -> list[Context]:
    """``count`` distinct interaction contexts, rotating through the given
    user categories and application domains (the paper's ``<user class,
    application domain>`` pairs)."""
    return [
        Context(
            user=f"user{i}",
            category=categories[i % len(categories)],
            application=applications[i % len(applications)],
        )
        for i in range(count)
    ]


class SessionPool:
    """K concurrent browsing sessions over one database.

    ``contexts`` fixes the pool size and each session's interaction
    context. ``program`` (customization-language source) is installed once
    on the shared kernel, or once per session in legacy mode — matching
    where the rule set lives in each deployment shape.
    """

    def __init__(
        self,
        database: GeographicDatabase,
        contexts: Iterable[Context],
        *,
        schema_name: str,
        shared_kernel: bool = True,
        selection_cache: bool = True,
        program: str | None = None,
        directives: Iterable[CustomizationDirective] | None = None,
        auto_refresh: bool = False,
    ):
        self.database = database
        self.schema_name = schema_name
        self.shared_kernel = shared_kernel
        self.kernel: GISKernel | None = None
        self.sessions: list[GISSession] = []
        self.steps_run = 0
        contexts = list(contexts)
        directives = list(directives or ())
        if shared_kernel:
            self.kernel = GISKernel(database,
                                    selection_cache=selection_cache)
            if program:
                self.kernel.install_program(program, persist=False)
            for directive in directives:
                self.kernel.install_directive(directive, persist=False)
            for context in contexts:
                self.sessions.append(self.kernel.session(
                    user=context.user,
                    category=context.category,
                    application=context.application,
                    scale_denominator=context.scale_denominator,
                    time_tag=context.time_tag,
                    auto_refresh=auto_refresh,
                ))
        else:
            for context in contexts:
                session = GISSession(
                    database,
                    user=context.user,
                    category=context.category,
                    application=context.application,
                    scale_denominator=context.scale_denominator,
                    time_tag=context.time_tag,
                    auto_refresh=auto_refresh,
                    selection_cache=selection_cache,
                )
                if program:
                    session.install_program(program, persist=False)
                for directive in directives:
                    session.install_directive(directive, persist=False)
                self.sessions.append(session)

    def __len__(self) -> int:
        return len(self.sessions)

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------

    def run(self, interactions_per_session: int = 25, seed: int = 0,
            skip_classes: tuple[str, ...] = ()) -> int:
        """Replay the §4 browsing loop in every session, round-robin.

        Each session gets its own random script (seeded per session, so
        runs are reproducible) and the pool advances every session by one
        step per round — the interleaving a server sees. Returns the total
        number of steps executed.
        """
        scripts = [
            random_browse_script(
                self.database, self.schema_name, interactions_per_session,
                seed=seed + index, skip_classes=skip_classes,
            )
            for index, _ in enumerate(self.sessions)
        ]
        executed = 0
        longest = max((len(s.steps) for s in scripts), default=0)
        for position in range(longest):
            for session, script in zip(self.sessions, scripts):
                if position < len(script.steps):
                    run_step(session, script.steps[position])
                    executed += 1
        self.steps_run += executed
        return executed

    # ------------------------------------------------------------------
    # Introspection & lifecycle
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "sessions": len(self.sessions),
            "shared_kernel": self.shared_kernel,
            "steps_run": self.steps_run,
            "events_published": self.database.bus.published_count,
        }
        if self.kernel is not None:
            out["kernel"] = self.kernel.stats()
        return out

    def shutdown(self) -> None:
        """End every session (and the shared kernel, when there is one)."""
        for session in self.sessions:
            session.shutdown()
        if self.kernel is not None:
            self.kernel.shutdown()

    def __enter__(self) -> "SessionPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
