"""Lexer for the customization language.

The language is line-oriented-friendly but whitespace-insensitive:
newlines are ordinary whitespace. Comments run from ``--`` or ``#`` to end
of line. Words may contain letters, digits, underscores and interior
hyphens (the Figure 3 mode ``user-defined``).
"""

from __future__ import annotations

from ..errors import LexError
from .tokens import Token, TokenKind

_WORD_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_WORD_BODY = _WORD_START | set("0123456789-")
_DIGITS = set("0123456789")


def tokenize(source: str) -> list[Token]:
    """Turn source text into tokens; raises :class:`LexError` on garbage."""
    tokens: list[Token] = []
    line, column = 1, 1
    i, n = 0, len(source)

    def advance(count: int = 1) -> None:
        nonlocal i, line, column
        for __ in range(count):
            if i < n and source[i] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            i += 1

    while i < n:
        ch = source[i]
        # whitespace
        if ch in " \t\r\n":
            advance()
            continue
        # comments: -- or # to end of line
        if ch == "#" or source.startswith("--", i):
            while i < n and source[i] != "\n":
                advance()
            continue
        start_line, start_col = line, column
        if ch in _WORD_START:
            j = i
            while j < n and source[j] in _WORD_BODY:
                j += 1
            # trailing hyphens are not part of the word
            while source[j - 1] == "-":
                j -= 1
            text = source[i:j]
            advance(j - i)
            tokens.append(Token(TokenKind.WORD, text, start_line, start_col))
            continue
        if ch in _DIGITS:
            j = i
            seen_dot = False
            while j < n and (source[j] in _DIGITS
                             or (source[j] == "." and not seen_dot
                                 and j + 1 < n and source[j + 1] in _DIGITS)):
                if source[j] == ".":
                    seen_dot = True
                j += 1
            text = source[i:j]
            advance(j - i)
            tokens.append(Token(TokenKind.NUMBER, text, start_line, start_col))
            continue
        if ch in "\"'":
            quote = ch
            j = i + 1
            while j < n and source[j] != quote:
                if source[j] == "\n":
                    raise LexError("unterminated string literal",
                                   start_line, start_col)
                j += 1
            if j >= n:
                raise LexError("unterminated string literal",
                               start_line, start_col)
            text = source[i + 1 : j]
            advance(j - i + 1)
            tokens.append(Token(TokenKind.STRING, text, start_line, start_col))
            continue
        if source.startswith("..", i):
            advance(2)
            tokens.append(Token(TokenKind.DOTDOT, "..", start_line, start_col))
            continue
        simple = {
            ".": TokenKind.DOT,
            ",": TokenKind.COMMA,
            "(": TokenKind.LPAREN,
            ")": TokenKind.RPAREN,
        }
        if ch in simple:
            advance()
            tokens.append(Token(simple[ch], ch, start_line, start_col))
            continue
        raise LexError(f"unexpected character {ch!r}", start_line, start_col)

    tokens.append(Token(TokenKind.EOF, "", line, column))
    return tokens
