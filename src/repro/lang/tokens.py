"""Token vocabulary of the customization language."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class TokenKind(Enum):
    WORD = "word"          # identifiers and keywords (disambiguated in parse)
    NUMBER = "number"
    STRING = "string"      # quoted literals (widget labels etc.)
    DOT = "dot"
    DOTDOT = "dotdot"
    COMMA = "comma"
    LPAREN = "lparen"
    RPAREN = "rparen"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def is_word(self, *values: str) -> bool:
        """Case-insensitive keyword check (the language is case-tolerant
        for keywords, case-preserving for names)."""
        return self.kind is TokenKind.WORD and self.text.lower() in {
            v.lower() for v in values
        }

    def __repr__(self) -> str:
        return f"Token({self.kind.value}, {self.text!r}, {self.line}:{self.column})"


#: Reserved words of the grammar (paper Figure 3), lowercase.
KEYWORDS = frozenset({
    "for", "user", "category", "application", "scale", "time",
    "schema", "display", "as", "class", "control", "presentation",
    "instances", "attribute", "from", "using", "null",
    "default", "hierarchy", "user-defined", "on", "update",
})
