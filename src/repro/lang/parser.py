"""Recursive-descent parser for the customization language."""

from __future__ import annotations

from ..errors import ParseError
from .ast import (
    AttrClauseNode,
    ClassClauseNode,
    ContextNode,
    DirectiveNode,
    ProgramNode,
    SchemaClauseNode,
    SourceExpr,
)
from .lexer import tokenize
from .tokens import Token, TokenKind

#: Words that terminate a `from` source list.
_CLAUSE_STARTERS = {
    "using", "display", "class", "for", "schema", "instances",
    "control", "presentation", "on",
}


class Parser:
    """Parses one program (a sequence of directives)."""

    def __init__(self, source: str):
        self._tokens = tokenize(source)
        self._pos = 0

    # -- token plumbing ---------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> ParseError:
        token = token or self._peek()
        found = token.text or "<end of input>"
        return ParseError(f"{message} (found {found!r})", token.line, token.column)

    def _expect_word(self, *values: str) -> Token:
        token = self._peek()
        if not token.is_word(*values):
            raise self._error(f"expected {' or '.join(values)!s}")
        return self._next()

    def _expect_name(self, what: str) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.WORD:
            raise self._error(f"expected {what}")
        return self._next()

    def _expect_kind(self, kind: TokenKind, what: str) -> Token:
        token = self._peek()
        if token.kind is not kind:
            raise self._error(f"expected {what}")
        return self._next()

    # -- grammar ---------------------------------------------------------------------

    def parse_program(self) -> ProgramNode:
        program = ProgramNode()
        if self._peek().kind is TokenKind.EOF:
            raise self._error("empty customization program")
        while self._peek().kind is not TokenKind.EOF:
            program.directives.append(self.parse_directive())
        return program

    def parse_directive(self) -> DirectiveNode:
        start = self._expect_word("for")
        context = self._parse_context(start)
        schema_clause = self._parse_schema_clause()
        classes: list[ClassClauseNode] = []
        while self._peek().is_word("class"):
            classes.append(self._parse_class_clause())
        if not classes:
            raise self._error("a directive needs at least one class clause")
        return DirectiveNode(
            context=context,
            schema_clause=schema_clause,
            classes=tuple(classes),
            line=start.line,
        )

    def _parse_context(self, start: Token) -> ContextNode:
        user = category = application = time_tag = None
        scale_low = scale_high = None
        saw_any = False
        while True:
            token = self._peek()
            if token.is_word("user"):
                if user is not None:
                    raise self._error("duplicate 'user' in context")
                self._next()
                user = self._expect_name("user name").text
            elif token.is_word("category"):
                if category is not None:
                    raise self._error("duplicate 'category' in context")
                self._next()
                category = self._expect_name("category name").text
            elif token.is_word("application"):
                if application is not None:
                    raise self._error("duplicate 'application' in context")
                self._next()
                application = self._expect_name("application name").text
            elif token.is_word("scale"):
                if scale_low is not None:
                    raise self._error("duplicate 'scale' in context")
                self._next()
                low = self._expect_kind(TokenKind.NUMBER, "scale lower bound")
                self._expect_kind(TokenKind.DOTDOT, "'..' in scale range")
                high = self._expect_kind(TokenKind.NUMBER, "scale upper bound")
                scale_low, scale_high = float(low.text), float(high.text)
            elif token.is_word("time"):
                if time_tag is not None:
                    raise self._error("duplicate 'time' in context")
                self._next()
                time_tag = self._expect_name("time tag").text
            else:
                break
            saw_any = True
        if not saw_any:
            # `For` with no dimensions is the generic context; Figure 3
            # brackets every dimension as optional.
            pass
        return ContextNode(
            user=user,
            category=category,
            application=application,
            scale_low=scale_low,
            scale_high=scale_high,
            time_tag=time_tag,
            line=start.line,
        )

    def _parse_schema_clause(self) -> SchemaClauseNode:
        start = self._expect_word("schema")
        name = self._expect_name("schema name").text
        self._expect_word("display")
        self._expect_word("as")
        mode_token = self._expect_name("schema display mode")
        return SchemaClauseNode(
            schema_name=name,
            display_mode=mode_token.text.lower().replace("-", "_"),
            line=start.line,
        )

    def _parse_class_clause(self) -> ClassClauseNode:
        start = self._expect_word("class")
        name = self._expect_name("class name").text
        self._expect_word("display")
        control = presentation = on_update = None
        attributes: tuple[AttrClauseNode, ...] = ()
        while True:
            token = self._peek()
            if token.is_word("control"):
                if control is not None:
                    raise self._error("duplicate 'control' clause")
                self._next()
                self._expect_word("as")
                control = self._expect_name("control widget name").text
            elif token.is_word("presentation"):
                if presentation is not None:
                    raise self._error("duplicate 'presentation' clause")
                self._next()
                self._expect_word("as")
                presentation = self._expect_name("presentation format").text
            elif token.is_word("instances"):
                if attributes:
                    raise self._error("duplicate 'instances' clause")
                self._next()
                attributes = self._parse_attr_clauses()
            elif token.is_word("on"):
                if on_update is not None:
                    raise self._error("duplicate 'on update' clause")
                self._next()
                self._expect_word("update")
                self._expect_word("display")
                self._expect_word("as")
                on_update = self._expect_name("update display format").text
            else:
                break
        return ClassClauseNode(
            class_name=name,
            control=control,
            presentation=presentation,
            attributes=attributes,
            on_update_display=on_update,
            line=start.line,
        )

    def _parse_attr_clauses(self) -> tuple[AttrClauseNode, ...]:
        clauses: list[AttrClauseNode] = []
        while self._peek().is_word("display") and self._peek(1).is_word("attribute"):
            clauses.append(self._parse_attr_clause())
        if not clauses:
            raise self._error(
                "'instances' needs at least one 'display attribute' clause"
            )
        return tuple(clauses)

    def _parse_attr_clause(self) -> AttrClauseNode:
        start = self._expect_word("display")
        self._expect_word("attribute")
        attr_name = self._expect_name("attribute name").text
        self._expect_word("as")
        format_token = self._expect_name("attribute display format")
        format_name = format_token.text
        sources: tuple[SourceExpr, ...] = ()
        using = None
        if self._peek().is_word("from"):
            self._next()
            sources = self._parse_sources()
        if self._peek().is_word("using"):
            self._next()
            using = self._parse_binding()
        return AttrClauseNode(
            attr_name=attr_name,
            format_name=(
                "null" if format_name.lower() == "null" else format_name
            ),
            sources=sources,
            using=using,
            line=start.line,
        )

    def _parse_sources(self) -> tuple[SourceExpr, ...]:
        sources: list[SourceExpr] = []
        while True:
            token = self._peek()
            if token.kind is not TokenKind.WORD or (
                token.text.lower() in _CLAUSE_STARTERS
                and not self._looks_like_source()
            ):
                break
            sources.append(self._parse_source())
            if self._peek().kind is TokenKind.COMMA:
                self._next()
        if not sources:
            raise self._error("'from' needs at least one source")
        return tuple(sources)

    def _looks_like_source(self) -> bool:
        """A clause-starter word followed by '(' or '.' is still a source
        (e.g. an attribute legitimately named ``display``)."""
        return self._peek(1).kind in (TokenKind.LPAREN, TokenKind.DOT)

    def _parse_source(self) -> SourceExpr:
        start = self._peek()
        path = self._parse_path()
        if self._peek().kind is TokenKind.LPAREN:
            self._next()
            args: list[str] = []
            while self._peek().kind is not TokenKind.RPAREN:
                args.append(self._parse_path())
                if self._peek().kind is TokenKind.COMMA:
                    self._next()
                elif self._peek().kind is not TokenKind.RPAREN:
                    raise self._error("expected ',' or ')' in call arguments")
            self._expect_kind(TokenKind.RPAREN, "')'")
            text = f"{path}({', '.join(args)})"
            return SourceExpr(
                text=text,
                is_call=True,
                call_name=path,
                call_args=tuple(args),
                line=start.line,
            )
        return SourceExpr(text=path, line=start.line)

    def _parse_path(self) -> str:
        parts = [self._expect_name("a name").text]
        while self._peek().kind is TokenKind.DOT:
            self._next()
            parts.append(self._expect_name("a name after '.'").text)
        return ".".join(parts)

    def _parse_binding(self) -> str:
        start = self._peek()
        path = self._parse_path()
        self._expect_kind(TokenKind.LPAREN, "'(' in using binding")
        if self._peek().kind is not TokenKind.RPAREN:
            raise self._error("using bindings take no arguments", start)
        self._expect_kind(TokenKind.RPAREN, "')' in using binding")
        return f"{path}()"


def parse_program(source: str) -> ProgramNode:
    """Parse customization-language source into an AST."""
    return Parser(source).parse_program()
