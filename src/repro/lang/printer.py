"""Pretty-printer: customization directives back to language source.

The inverse of the compiler's lowering step. Useful for exporting the
directives stored in a database catalog as editable text, and it gives
the test suite a round-trip law::

    compile(print(directive)) == directive       (up to generated names)
"""

from __future__ import annotations

from ..core.context import ContextPattern
from ..core.customization import (
    AttributeCustomization,
    ClassCustomization,
    CustomizationDirective,
)


def _context_line(pattern: ContextPattern) -> str:
    parts = ["for"]
    if pattern.user:
        parts += ["user", pattern.user]
    if pattern.category:
        parts += ["category", pattern.category]
    if pattern.application:
        parts += ["application", pattern.application]
    if pattern.scale_range:
        low, high = pattern.scale_range
        parts += ["scale", f"{low:g}..{high:g}"]
    if pattern.time_tag:
        parts += ["time", pattern.time_tag]
    return " ".join(parts)


def _schema_mode(mode: str) -> str:
    if mode == "null":
        return "Null"
    if mode == "user_defined":
        return "user-defined"
    return mode


def _attr_lines(attr: AttributeCustomization, indent: str) -> list[str]:
    fmt = "Null" if attr.format_name == "null" else attr.format_name
    lines = [f"{indent}display attribute {attr.attr_name} as {fmt}"]
    if attr.sources:
        lines.append(f"{indent}    from {' '.join(attr.sources)}")
    if attr.using:
        lines.append(f"{indent}    using {attr.using}")
    return lines


def _class_lines(clause: ClassCustomization) -> list[str]:
    lines = [f"class {clause.class_name} display"]
    if clause.control_widget:
        lines.append(f"    control as {clause.control_widget}")
    if clause.presentation_format:
        lines.append(f"    presentation as {clause.presentation_format}")
    if clause.on_update_display:
        lines.append(f"    on update display as {clause.on_update_display}")
    if clause.attributes:
        lines.append("    instances")
        for attr in clause.attributes:
            lines.extend(_attr_lines(attr, "        "))
    return lines


def render_directive(directive: CustomizationDirective) -> str:
    """One directive as customization-language source."""
    lines = [_context_line(directive.pattern)]
    lines.append(
        f"schema {directive.schema_name} display as "
        f"{_schema_mode(directive.schema_display)}"
    )
    for clause in directive.classes:
        lines.extend(_class_lines(clause))
    return "\n".join(lines) + "\n"


def render_program(directives: list[CustomizationDirective]) -> str:
    """Several directives as one program, blank-line separated."""
    return "\n".join(render_directive(d) for d in directives)
