"""The declarative customization language (paper Figure 3) and its compiler."""

from .tokens import KEYWORDS, Token, TokenKind
from .lexer import tokenize
from .ast import (
    AttrClauseNode,
    ClassClauseNode,
    ContextNode,
    DirectiveNode,
    ProgramNode,
    SchemaClauseNode,
    SourceExpr,
)
from .parser import Parser, parse_program
from .semantics import SemanticAnalyzer
from .compiler import (
    FIGURE_6_PROGRAM,
    compile_and_install,
    compile_program,
    lower_directive,
    render_rules,
)
from .printer import render_directive, render_program

__all__ = [
    "Token", "TokenKind", "KEYWORDS", "tokenize",
    "ProgramNode", "DirectiveNode", "ContextNode", "SchemaClauseNode",
    "ClassClauseNode", "AttrClauseNode", "SourceExpr",
    "Parser", "parse_program", "SemanticAnalyzer",
    "compile_program", "compile_and_install", "lower_directive",
    "render_rules", "FIGURE_6_PROGRAM",
    "render_directive", "render_program",
]
