"""Semantic analysis of customization programs.

"The target user of this language is the application designer, who has
knowledge about the database schema and user access rights. The language
supports a declarative description of the controls of the interface,
which must be available in the object library." (§3.4)

The analyzer therefore checks every directive against three authorities:

* the **database schema** — schemas, classes, attributes, tuple fields and
  methods must exist;
* the **interface objects library** — ``control as <widget>`` must name a
  library entry;
* the **presentation registry** — class and attribute formats must be
  registered.

It also *normalizes* the paper's abbreviated source paths: Figure 6 line
(8) writes ``from pole.material pole.diameter pole.height`` for the tuple
attribute ``pole_composition`` whose fields are ``pole_material`` etc.
Normalization resolves such shorthand to full ``attribute.field`` paths;
ambiguity is an error rather than a guess.
"""

from __future__ import annotations

from ..errors import SemanticError
from ..geodb.database import GeographicDatabase
from ..geodb.schema import Attribute, Schema
from ..geodb.types import TupleType
from ..uilib.library import InterfaceObjectLibrary
from ..uilib.presentation import SCHEMA_DISPLAY_MODES, PresentationRegistry
from .ast import (
    AttrClauseNode,
    ClassClauseNode,
    DirectiveNode,
    ProgramNode,
    SourceExpr,
)


class SemanticAnalyzer:
    """Validates and normalizes one program against a database."""

    def __init__(self, database: GeographicDatabase,
                 library: InterfaceObjectLibrary,
                 presentations: PresentationRegistry):
        self.database = database
        self.library = library
        self.presentations = presentations

    # -- entry points -----------------------------------------------------------

    def check_program(self, program: ProgramNode) -> ProgramNode:
        """Validate every directive; returns a normalized program."""
        normalized = ProgramNode()
        for directive in program.directives:
            normalized.directives.append(self.check_directive(directive))
        return normalized

    def check_directive(self, directive: DirectiveNode) -> DirectiveNode:
        schema = self._check_schema_clause(directive)
        classes = tuple(
            self._check_class_clause(schema, clause)
            for clause in directive.classes
        )
        seen: set[str] = set()
        for clause in classes:
            if clause.class_name in seen:
                raise SemanticError(
                    f"class {clause.class_name!r} customized twice in one "
                    f"directive", clause.line,
                )
            seen.add(clause.class_name)
        return DirectiveNode(
            context=directive.context,
            schema_clause=directive.schema_clause,
            classes=classes,
            line=directive.line,
        )

    # -- clause checks -------------------------------------------------------------

    def _check_schema_clause(self, directive: DirectiveNode) -> Schema:
        clause = directive.schema_clause
        try:
            schema = self.database.get_schema_object(clause.schema_name)
        except Exception as exc:
            raise SemanticError(str(exc), clause.line) from exc
        if clause.display_mode not in SCHEMA_DISPLAY_MODES:
            raise SemanticError(
                f"unknown schema display mode {clause.display_mode!r}; "
                f"expected one of {SCHEMA_DISPLAY_MODES}",
                clause.line,
            )
        if directive.context.scale_low is not None:
            if directive.context.scale_low > directive.context.scale_high:
                raise SemanticError(
                    "scale range lower bound exceeds upper bound",
                    directive.context.line,
                )
        return schema

    def _check_class_clause(self, schema: Schema,
                            clause: ClassClauseNode) -> ClassClauseNode:
        if not schema.has_class(clause.class_name):
            raise SemanticError(
                f"schema {schema.name!r} has no class {clause.class_name!r}",
                clause.line,
            )
        if clause.control is not None and not self.library.has(clause.control):
            raise SemanticError(
                f"control widget {clause.control!r} is not in the interface "
                f"objects library (known: {self.library.names()})",
                clause.line,
            )
        if clause.presentation is not None and not (
            self.presentations.has_class_format(clause.presentation)
        ):
            raise SemanticError(
                f"presentation format {clause.presentation!r} is not "
                f"registered (known: "
                f"{self.presentations.class_format_names()})",
                clause.line,
            )
        if clause.on_update_display is not None and not (
            self.presentations.has_attribute_format(clause.on_update_display)
        ):
            raise SemanticError(
                f"on-update display format {clause.on_update_display!r} is "
                f"not registered", clause.line,
            )
        attributes = tuple(
            self._check_attr_clause(schema, clause, attr)
            for attr in clause.attributes
        )
        seen: set[str] = set()
        for attr in attributes:
            if attr.attr_name in seen:
                raise SemanticError(
                    f"attribute {attr.attr_name!r} customized twice",
                    attr.line,
                )
            seen.add(attr.attr_name)
        return ClassClauseNode(
            class_name=clause.class_name,
            control=clause.control,
            presentation=clause.presentation,
            attributes=attributes,
            on_update_display=clause.on_update_display,
            line=clause.line,
        )

    def _check_attr_clause(self, schema: Schema, class_clause: ClassClauseNode,
                           clause: AttrClauseNode) -> AttrClauseNode:
        attrs = {
            a.name: a
            for a in schema.effective_attributes(class_clause.class_name)
        }
        if clause.attr_name not in attrs:
            raise SemanticError(
                f"class {class_clause.class_name!r} has no attribute "
                f"{clause.attr_name!r} (has: {sorted(attrs)})",
                clause.line,
            )
        if clause.format_name != "null" and not (
            self.presentations.has_attribute_format(clause.format_name)
        ):
            raise SemanticError(
                f"attribute display format {clause.format_name!r} is not "
                f"registered (known: "
                f"{self.presentations.attribute_format_names()})",
                clause.line,
            )
        if clause.using is not None and clause.format_name == "null":
            raise SemanticError(
                "a hidden (Null) attribute cannot carry a 'using' binding",
                clause.line,
            )
        sources = tuple(
            self._normalize_source(schema, class_clause.class_name,
                                   attrs[clause.attr_name], source)
            for source in clause.sources
        )
        return AttrClauseNode(
            attr_name=clause.attr_name,
            format_name=clause.format_name,
            sources=sources,
            using=clause.using,
            line=clause.line,
        )

    # -- source normalization ----------------------------------------------------------

    def _normalize_source(self, schema: Schema, class_name: str,
                          current_attr: Attribute,
                          source: SourceExpr) -> SourceExpr:
        if source.is_call:
            methods = schema.effective_methods(class_name)
            if source.call_name not in methods:
                raise SemanticError(
                    f"class {class_name!r} declares no method "
                    f"{source.call_name!r} (has: {sorted(methods)})",
                    source.line,
                )
            args = tuple(
                self._normalize_path(schema, class_name, current_attr,
                                     arg, source.line)
                for arg in source.call_args
            )
            return SourceExpr(
                text=f"{source.call_name}({', '.join(args)})",
                is_call=True,
                call_name=source.call_name,
                call_args=args,
                line=source.line,
            )
        return SourceExpr(
            text=self._normalize_path(schema, class_name, current_attr,
                                      source.text, source.line),
            line=source.line,
        )

    def _normalize_path(self, schema: Schema, class_name: str,
                        current_attr: Attribute, path: str,
                        line: int) -> str:
        """Resolve a possibly abbreviated path to a full attribute path."""
        attrs = {a.name: a for a in schema.effective_attributes(class_name)}
        head, __, rest = path.partition(".")

        # 1. Exact attribute (with optional exact tuple field).
        if head in attrs:
            if not rest:
                return head
            attr_type = attrs[head].type
            if isinstance(attr_type, TupleType) and rest in attr_type.fields:
                return path
            raise SemanticError(
                f"{class_name}.{head} has no field {rest!r}", line
            )

        # 2. Abbreviated tuple-field reference relative to the attribute
        #    being customized: `pole.material` -> pole_composition.pole_material.
        if rest and isinstance(current_attr.type, TupleType):
            candidates = [
                f for f in current_attr.type.fields
                if f == rest or f.endswith("_" + rest)
            ]
            if len(candidates) == 1:
                return f"{current_attr.name}.{candidates[0]}"
            if len(candidates) > 1:
                raise SemanticError(
                    f"source {path!r} is ambiguous among tuple fields "
                    f"{candidates} of {current_attr.name!r}", line,
                )

        # 3. Abbreviated attribute of the class (suffix match).
        tail = rest or head
        candidates = [
            name for name in attrs if name == tail or name.endswith("_" + tail)
        ]
        if len(candidates) == 1:
            return candidates[0]
        if len(candidates) > 1:
            raise SemanticError(
                f"source {path!r} is ambiguous among attributes "
                f"{sorted(candidates)} of class {class_name!r}", line,
            )
        raise SemanticError(
            f"cannot resolve source {path!r} against class {class_name!r}",
            line,
        )
