"""Compiler: customization programs → directives → ECA rules.

§5 lists "the implementation of the compiler for creating rules from a
declarative specification of a customized interface" as work in progress;
this module completes it. The pipeline is::

    source text --parse--> AST --semantic check/normalize--> AST'
        --lower--> CustomizationDirective objects
        --CustomizationEngine.register_directive--> ECA rules

"A customization directive defined in this language may spawn several
customization rules" (§3.4): one schema rule, one class rule per class
clause and one instance rule per attribute clause — exactly the mapping
shown at the end of §3.4 ("Cust rule: On Database Event X If <Context>
Then apply customization to window of type X").

:func:`render_rules` prints the generated rules in the paper's R1/R2
notation, which experiment F6 compares against §4.
"""

from __future__ import annotations

import itertools

from ..core.context import ContextPattern
from ..core.customization import (
    AttributeCustomization,
    ClassCustomization,
    CustomizationDirective,
)
from ..geodb.database import GeographicDatabase
from ..uilib.library import InterfaceObjectLibrary
from ..uilib.presentation import PresentationRegistry
from .ast import DirectiveNode
from .parser import parse_program
from .semantics import SemanticAnalyzer

_directive_counter = itertools.count(1)


def _pattern_from_context(node) -> ContextPattern:
    return ContextPattern(
        user=node.user,
        category=node.category,
        application=node.application,
        scale_range=(
            (node.scale_low, node.scale_high)
            if node.scale_low is not None else None
        ),
        time_tag=node.time_tag,
    )


def _directive_name(node: DirectiveNode) -> str:
    bits = []
    for value in (node.context.user, node.context.category,
                  node.context.application):
        if value:
            bits.append(value)
    bits.append(node.schema_clause.schema_name)
    return "_".join(bits) + f"_{next(_directive_counter)}"


def lower_directive(node: DirectiveNode) -> CustomizationDirective:
    """Lower one checked AST directive to the customization model."""
    classes = []
    for clause in node.classes:
        attributes = tuple(
            AttributeCustomization(
                attr_name=attr.attr_name,
                format_name=attr.format_name,
                sources=tuple(s.text for s in attr.sources),
                using=attr.using,
            )
            for attr in clause.attributes
        )
        classes.append(ClassCustomization(
            class_name=clause.class_name,
            control_widget=clause.control,
            presentation_format=clause.presentation,
            attributes=attributes,
            on_update_display=clause.on_update_display,
        ))
    return CustomizationDirective(
        name=_directive_name(node),
        pattern=_pattern_from_context(node.context),
        schema_name=node.schema_clause.schema_name,
        schema_display=node.schema_clause.display_mode,
        classes=tuple(classes),
    )


def compile_program(source: str, database: GeographicDatabase,
                    library: InterfaceObjectLibrary,
                    presentations: PresentationRegistry
                    ) -> list[CustomizationDirective]:
    """Full front-end: parse, check, normalize and lower a program.

    Raises :class:`~repro.errors.ParseError` /
    :class:`~repro.errors.SemanticError` with line positions on bad input.
    """
    program = parse_program(source)
    analyzer = SemanticAnalyzer(database, library, presentations)
    checked = analyzer.check_program(program)
    return [lower_directive(node) for node in checked.directives]


def compile_and_install(source: str, database: GeographicDatabase,
                        library: InterfaceObjectLibrary,
                        presentations: PresentationRegistry,
                        engine, persist: bool = False
                        ) -> list[CustomizationDirective]:
    """Compile and register every directive on a customization engine."""
    directives = compile_program(source, database, library, presentations)
    for directive in directives:
        engine.register_directive(directive, persist=persist)
    return directives


# ---------------------------------------------------------------------------
# Paper-notation rendering (experiment F6)
# ---------------------------------------------------------------------------


def _context_text(pattern: ContextPattern) -> str:
    bits = [b for b in (pattern.user, pattern.category, pattern.application)
            if b]
    extra = []
    if pattern.scale_range:
        extra.append(f"scale 1:{pattern.scale_range[0]:g}.."
                     f"1:{pattern.scale_range[1]:g}")
    if pattern.time_tag:
        extra.append(f"time {pattern.time_tag}")
    inner = ", ".join(bits + extra) if (bits or extra) else "any"
    return f"< {inner} >"


def render_rules(directive: CustomizationDirective) -> list[str]:
    """The directive's generated rules in the paper's R1/R2 notation."""
    ctx = _context_text(directive.pattern)
    rules: list[str] = []

    schema_action = (
        f"Build Window(Schema, {directive.schema_name}, "
        f"{directive.schema_display.upper() if directive.schema_display == 'null' else directive.schema_display})"
    )
    if directive.schema_display == "null" and directive.classes:
        cascade = "; ".join(
            f"Get_Class({name})" for name in directive.class_names()
        )
        schema_action += f"; {cascade}"
    rules.append(
        f"R{len(rules) + 1}: On Get_Schema\n"
        f"    If {ctx}\n"
        f"    Then {schema_action}."
    )

    for clause in directive.classes:
        control = clause.control_widget or "default_control"
        fmt = clause.presentation_format or "default_format"
        rules.append(
            f"R{len(rules) + 1}: On Get_Class({clause.class_name})\n"
            f"    If {ctx}\n"
            f"    Then Build Window(Class set, {clause.class_name}, "
            f"{control}, {fmt})."
        )
        for attr in clause.attributes:
            pieces = [f"display attribute {attr.attr_name} as "
                      f"{attr.format_name}"]
            if attr.sources:
                pieces.append(f"from {' '.join(attr.sources)}")
            if attr.using:
                pieces.append(f"using {attr.using}")
            rules.append(
                f"R{len(rules) + 1}: On Get_Value({clause.class_name})\n"
                f"    If {ctx}\n"
                f"    Then {' '.join(pieces)}."
            )
    return rules


#: The paper's Figure 6 program, transcribed (full attribute paths are
#: also accepted; the abbreviated forms below exercise normalization).
FIGURE_6_PROGRAM = """
-- paper Figure 6: customization for <user juliano, application pole_manager>
for user juliano application pole_manager
schema phone_net display as Null
class Pole display
    control as poleWidget
    presentation as pointFormat
    instances
        display attribute pole_composition as composed_text
            from pole.material pole.diameter pole.height
            using composed_text.notify()
        display attribute pole_supplier as text
            from get_supplier_name(pole_supplier)
        display attribute pole_location as Null
"""
