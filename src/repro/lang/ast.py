"""Abstract syntax of the customization language (paper Figure 3).

The AST mirrors the grammar::

    program      := directive+
    directive    := "for" context schema_clause class_clause+
    context      := ("user" NAME)? ("category" NAME)? ("application" NAME)?
                    ("scale" NUMBER ".." NUMBER)? ("time" NAME)?
    schema_clause:= "schema" NAME "display" "as"
                    ("default" | "hierarchy" | "user-defined" | "Null")
    class_clause := "class" NAME "display"
                    ("control" "as" NAME)?
                    ("presentation" "as" NAME)?
                    ("instances" attr_clause+)?
                    ("on" "update" "display" "as" NAME)?        # extension
    attr_clause  := "display" "attribute" NAME "as" (NAME | "Null")
                    ("from" source+)? ("using" binding)?
    source       := path | NAME "(" (path ("," path)*)? ")"
    path         := NAME ("." NAME)*
    binding      := path "(" ")"

Nodes are plain dataclasses with source positions for error reporting.
The ``on update`` clause is this reproduction's extension toward the
paper's §5 future work (customizing update requests); the paper's own
grammar is a strict subset.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SourceExpr:
    """A ``from`` clause source: a dotted path or a method call."""

    text: str               # normalized textual form
    is_call: bool = False
    call_name: str | None = None
    call_args: tuple[str, ...] = ()
    line: int = 0

    def describe(self) -> str:
        return self.text


@dataclass(frozen=True)
class ContextNode:
    user: str | None = None
    category: str | None = None
    application: str | None = None
    scale_low: float | None = None
    scale_high: float | None = None
    time_tag: str | None = None
    line: int = 0


@dataclass(frozen=True)
class SchemaClauseNode:
    schema_name: str
    display_mode: str        # raw text: default|hierarchy|user-defined|null
    line: int = 0


@dataclass(frozen=True)
class AttrClauseNode:
    attr_name: str
    format_name: str         # raw text, "null" for hidden
    sources: tuple[SourceExpr, ...] = ()
    using: str | None = None
    line: int = 0


@dataclass(frozen=True)
class ClassClauseNode:
    class_name: str
    control: str | None = None
    presentation: str | None = None
    attributes: tuple[AttrClauseNode, ...] = ()
    on_update_display: str | None = None   # extension clause
    line: int = 0


@dataclass(frozen=True)
class DirectiveNode:
    context: ContextNode
    schema_clause: SchemaClauseNode
    classes: tuple[ClassClauseNode, ...]
    line: int = 0


@dataclass
class ProgramNode:
    directives: list[DirectiveNode] = field(default_factory=list)
