"""Exception hierarchy for the ``repro`` package.

All library errors derive from :class:`ReproError`, so callers embedding the
library can catch a single base class. Each subsystem raises the most specific
subclass that applies; error messages always name the offending entity.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class GeometryError(ReproError):
    """An operation was applied to an invalid or incompatible geometry."""


class IndexError_(ReproError):
    """A spatial index invariant was violated or an entry was not found.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError` while staying greppable next to it.
    """


class SchemaError(ReproError):
    """A schema, class or attribute definition is invalid or unknown."""


class TypeMismatchError(SchemaError):
    """A value does not conform to its declared attribute type."""


class ObjectNotFoundError(ReproError):
    """A database object (by oid or name) does not exist."""


class QueryError(ReproError):
    """A query is malformed or references unknown schema elements."""


class TransactionError(ReproError):
    """A transaction was used outside its legal life cycle."""


class TransactionConflictError(TransactionError):
    """First-committer-wins validation rejected a commit.

    Another transaction that committed after this transaction's snapshot
    wrote one of the objects this transaction also writes. The losing
    transaction is aborted; callers retry with a fresh snapshot (see
    :func:`repro.workloads.txn_mix.commit_with_retries`).
    """

    def __init__(self, message: str, oids: list | None = None):
        super().__init__(message)
        #: the contended object ids, for diagnostics and retry policies
        self.oids = list(oids or [])


class StorageError(ReproError):
    """The page store or serializer could not complete an operation."""


class WALError(StorageError):
    """The write-ahead log is unusable (damaged tail, bad configuration)."""


class ReplicationError(StorageError):
    """The replication stream or a follower is in an unusable state.

    Raised when log shipping is requested without a WAL, when a shipped
    batch fails validation (damaged frame, missing commit timestamp),
    when a follower is driven like a leader (write attempted, recovery
    requested), or when a read-your-writes wait cannot be satisfied.
    """


class CrashError(StorageError):
    """A (simulated) process or media crash interrupted a page operation.

    Raised by :class:`repro.geodb.FaultInjectingPager`; real deployments
    would see the underlying ``OSError`` instead. Either way the database
    instance must be discarded and reopened, which runs recovery.
    """


class RasterError(StorageError):
    """A tiled raster payload is malformed, missing or corrupt.

    Raised by the raster tile codec (CRC mismatch, truncated frame),
    by :class:`repro.geodb.raster.RasterStore` lookups of unknown
    rasters/tiles, and by windowed reads over rasters without a ground
    extent.
    """


class BufferError_(ReproError):
    """The buffer manager could not satisfy a pin/unpin request."""


class RuleError(ReproError):
    """An ECA rule definition or execution failed."""


class RuleConflictError(RuleError):
    """Two rules with identical specificity match the same event."""


class CascadeLimitError(RuleError):
    """Rule execution exceeded the configured cascade depth."""


class ConstraintViolationError(ReproError):
    """An integrity constraint rejected an update."""

    def __init__(self, message: str, violations: list | None = None):
        super().__init__(message)
        self.violations = list(violations or [])


class WidgetError(ReproError):
    """An interface object was composed or used incorrectly."""


class UnknownWidgetError(WidgetError):
    """A named widget class is not present in the interface library."""


class RenderError(ReproError):
    """A window could not be rendered."""


class CustomizationError(ReproError):
    """A customization directive could not be applied."""


class LanguageError(ReproError):
    """Base class for customization-language front-end errors."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column}" if column is not None else "") + ")"
        super().__init__(message + location)
        self.line = line
        self.column = column


class LexError(LanguageError):
    """The lexer met a character sequence that is not a token."""


class ParseError(LanguageError):
    """The token stream does not match the customization grammar."""


class SemanticError(LanguageError):
    """A directive is grammatical but inconsistent with the database
    schema or the interface objects library."""


class NetError(ReproError):
    """Base class for the network serving layer's errors."""


class ProtocolError(NetError):
    """A wire frame violates the framing or contract rules.

    Raised by the frame codec (bad length, checksum mismatch, oversized
    or non-JSON payload) and by contract validation (unknown request
    kind, missing or mistyped fields). The server answers with an error
    frame when it still can, and drops the connection when the stream
    itself is unreadable.
    """


class NetClientError(NetError):
    """The server answered a client request with an error frame.

    ``code`` carries the server-side error class name (e.g.
    ``"SchemaError"``) so callers can branch without string matching.
    """

    def __init__(self, message: str, code: str | None = None):
        super().__init__(message)
        self.code = code


class DispatchError(ReproError):
    """The dispatcher received an interaction it cannot route."""


class SessionError(ReproError):
    """A GIS session was driven outside its legal protocol."""
