"""The kernel daemon: one asyncio TCP server, one shared ``GISKernel``.

Architecture (one box per layer, matching the module split)::

    socket bytes ──► protocol.read_frame ──► contracts.validate_request
                                                      │
    socket bytes ◄── outbound queue ◄── Router.handle ┴─► GISKernel
                        ▲
                        └── push fan-out (event bus, commit phase)

Concurrency model:

* The event loop owns all sockets. Each connection runs a **reader
  task** (frames in → responses enqueued) and a single **writer task**
  draining a bounded per-connection queue — so pushes and responses
  interleave safely and a slow peer never blocks the loop.
* Request *handling* runs in the loop's default thread-pool executor:
  the kernel and database are thread-safe (MVCC + commit lock), one
  connection's requests stay serial (its reader awaits each response),
  and — crucially — concurrent connections' commit fsyncs land in the
  WAL's **group commit** barrier together instead of serializing.
* Push fan-out: the server holds *one* event-bus subscription. Commit
  callbacks arrive on whatever thread committed; they hop onto the loop
  with ``call_soon_threadsafe`` and enqueue per-connection pushes.

Backpressure: responses use a blocking ``queue.put`` (the connection's
own reader waits — that is the backpressure). Pushes use ``put_nowait``;
a full queue means a slow reader, and the push is **dropped** (counted
in ``net.push.dropped``) or the connection is dropped, per
``overflow`` policy — it is never allowed to wedge the loop.

A dropped connection — clean close, mid-frame cut, or protocol
violation — always runs the same teardown: its sessions are shut down
(idempotently; the kernel's ``kernel.sessions`` gauge decrements exactly
once per session) and its interest registrations die with them, so the
mutation fan-out stops addressing it.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any

from .. import obs
from ..active.event_bus import Event, MUTATION_KINDS
from ..core.kernel import GISKernel
from ..errors import NetError, ProtocolError
from . import protocol
from .contracts import make_error
from .router import ClientState, Router

_conn_ids = __import__("itertools").count(1)


class _Connection:
    """Loop-side bookkeeping for one client connection."""

    __slots__ = ("state", "reader", "writer", "outbound", "writer_task",
                 "reader_task", "closing")

    def __init__(self, state: ClientState, reader, writer, queue_size: int):
        self.state = state
        self.reader = reader
        self.writer = writer
        self.outbound: asyncio.Queue = asyncio.Queue(maxsize=queue_size)
        self.writer_task: asyncio.Task | None = None
        self.reader_task: asyncio.Task | None = None
        self.closing = False


class GISServer:
    """Serves one :class:`GISKernel` to many framed-protocol clients."""

    def __init__(self, kernel: GISKernel, host: str = "127.0.0.1",
                 port: int = 0, *, queue_size: int = 64,
                 overflow: str = "drop", name: str = "repro",
                 sndbuf: int | None = None):
        if overflow not in ("drop", "disconnect"):
            raise NetError(
                f"overflow policy must be 'drop' or 'disconnect', "
                f"got {overflow!r}"
            )
        self.kernel = kernel
        self.router = Router(kernel, server_name=name)
        self.host = host
        self.port = port          # 0 = ephemeral; real port set by start()
        self.queue_size = queue_size
        self.overflow = overflow
        #: shrink per-connection send buffering (OS + transport) so a
        #: slow reader back-pressures after ~this many bytes instead of
        #: after megabytes of kernel buffering; tests use this to make
        #: queue-overflow behavior observable quickly
        self.sndbuf = sndbuf
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._connections: set[_Connection] = set()
        #: every live _serve_connection task; unlike _connections (which
        #: a task leaves at the *start* of its own teardown) an entry
        #: stays until the task is truly done, so stop() can await the
        #: tail of an in-flight disconnect instead of destroying it
        self._serve_tasks: set[asyncio.Task] = set()
        self._subscribed = False
        #: counters mirrored into obs metrics, kept here for stats()
        self.counters = {
            "connections_total": 0,
            "protocol_errors": 0,
            "pushes_sent": 0,
            "pushes_dropped": 0,
            "overflow_disconnects": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and subscribe to the mutation bus."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if not self._subscribed:
            self.kernel.database.bus.subscribe(self._on_mutation,
                                               kinds=MUTATION_KINDS)
            self.kernel.live.add_listener(self._on_live_update)
            self._subscribed = True

    async def stop(self) -> None:
        """Stop accepting, drop every connection, release the bus."""
        if self._subscribed:
            self.kernel.database.bus.unsubscribe(self._on_mutation)
            self.kernel.live.remove_listener(self._on_live_update)
            self._subscribed = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for conn in list(self._connections):
            await self._close_connection(conn)
        # Serve tasks notice their closed sockets and finish; await them
        # (including ones already mid-teardown after a client-initiated
        # disconnect) so the loop shuts down without destroying pending
        # tasks.
        tasks = [t for t in self._serve_tasks if not t.done()]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def stats(self) -> dict[str, Any]:
        return {
            "address": f"{self.host}:{self.port}",
            "connections": len(self._connections),
            **self.counters,
        }

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        peername = writer.get_extra_info("peername")
        peer = f"{peername[0]}:{peername[1]}" if peername else "?"
        state = ClientState(next(_conn_ids), peer=peer)
        if self.sndbuf is not None:
            sock = writer.get_extra_info("socket")
            if sock is not None:
                import socket as _socket

                sock.setsockopt(_socket.SOL_SOCKET, _socket.SO_SNDBUF,
                                self.sndbuf)
            writer.transport.set_write_buffer_limits(high=self.sndbuf)
        conn = _Connection(state, reader, writer, self.queue_size)
        self._connections.add(conn)
        self.counters["connections_total"] += 1
        self._gauge_connections()
        conn.reader_task = asyncio.current_task()
        assert conn.reader_task is not None
        self._serve_tasks.add(conn.reader_task)
        conn.reader_task.add_done_callback(self._serve_tasks.discard)
        conn.writer_task = asyncio.ensure_future(self._write_loop(conn))
        try:
            await self._read_loop(conn)
        except asyncio.CancelledError:
            pass
        finally:
            await self._close_connection(conn)

    async def _read_loop(self, conn: _Connection) -> None:
        while not conn.closing:
            try:
                doc = await protocol.read_frame(conn.reader)
            except ProtocolError as exc:
                # The stream is unreadable past this point: tell the
                # client why (best effort) and hang up.
                self.counters["protocol_errors"] += 1
                rec = obs.RECORDER
                if rec.enabled:
                    rec.inc("net.protocol_errors")
                await self._try_send(conn, make_error(
                    None, str(exc), type(exc).__name__
                ))
                return
            except (ConnectionError, OSError):
                return
            if doc is None:     # clean EOF
                return
            response = await self._process(conn.state, doc)
            await self._enqueue_response(conn, response)

    async def _process(self, state: ClientState,
                       doc: dict[str, Any]) -> dict[str, Any]:
        """Handle one request off the event loop.

        The durability wait for a ``txn`` response (if any) also runs in
        the executor: while this connection waits on the group-commit
        barrier, the loop keeps reading *other* connections, whose
        commits then join the same barrier.
        """
        loop = self._loop
        assert loop is not None
        response = await loop.run_in_executor(
            None, self.router.handle, state, doc
        )
        wait = response.pop("_wait_durable", None)
        if wait is not None:
            await loop.run_in_executor(None, wait)
        return response

    async def _enqueue_response(self, conn: _Connection,
                                doc: dict[str, Any]) -> None:
        """Responses block (bounded) rather than drop: the peer asked."""
        if conn.closing:
            return
        await conn.outbound.put(protocol.encode_frame(doc))

    async def _try_send(self, conn: _Connection, doc: dict[str, Any]) -> None:
        """One best-effort frame on a dying connection."""
        try:
            conn.writer.write(protocol.encode_frame(doc))
            await asyncio.wait_for(conn.writer.drain(), timeout=1.0)
        except Exception:
            pass

    async def _write_loop(self, conn: _Connection) -> None:
        try:
            while True:
                frame = await conn.outbound.get()
                if frame is None:
                    return
                conn.writer.write(frame)
                await conn.writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            return

    async def _close_connection(self, conn: _Connection) -> None:
        if conn not in self._connections:
            return
        self._connections.discard(conn)
        conn.closing = True
        try:
            # Stop the writer first so no frame is half-written, then
            # close the socket, then release kernel resources.
            if conn.writer_task is not None:
                try:
                    conn.outbound.put_nowait(None)
                except asyncio.QueueFull:
                    conn.writer_task.cancel()
                try:
                    await conn.writer_task
                except asyncio.CancelledError:
                    pass
            try:
                conn.writer.close()
                await conn.writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        finally:
            # Session teardown touches the kernel → run off-loop like
            # any other kernel operation. Idempotent against
            # close_session races. run_in_executor submits before its
            # first await, so even if this task is cancelled mid-close
            # (server stop racing a client disconnect) the sessions
            # still get released by the pool thread.
            loop = self._loop
            if loop is not None:
                await loop.run_in_executor(None, conn.state.close_sessions)
            else:                                   # pragma: no cover
                conn.state.close_sessions()
        self._gauge_connections()

    def _gauge_connections(self) -> None:
        rec = obs.RECORDER
        if rec.enabled:
            rec.gauge("net.connections", len(self._connections))

    # ------------------------------------------------------------------
    # Push fan-out
    # ------------------------------------------------------------------

    def _on_mutation(self, event: Event) -> None:
        """Event-bus callback; runs on the committing thread."""
        if event.payload.get("phase") != "commit":
            return
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(self._fan_out, event)
        except RuntimeError:    # loop shut down between check and call
            return

    def _fan_out(self, event: Event) -> None:
        """Loop-side: enqueue push frames for interested connections."""
        for conn in list(self._connections):
            if conn.closing:
                continue
            self._enqueue_pushes(
                conn, self.router.pushes_for(conn.state, event),
                "net.push.events")

    def _on_live_update(self, update) -> None:
        """Live-query manager listener; runs on the committing thread."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(self._fan_out_live, update)
        except RuntimeError:    # loop shut down between check and call
            return

    def _fan_out_live(self, update) -> None:
        """Loop-side: route one result change to its watching connection."""
        for conn in list(self._connections):
            if conn.closing:
                continue
            self._enqueue_pushes(
                conn, self.router.live_pushes_for(conn.state, update),
                "net.push.live")

    def _enqueue_pushes(self, conn: _Connection,
                        pushes: list[dict[str, Any]], metric: str) -> None:
        rec = obs.RECORDER
        for push in pushes:
            frame = protocol.encode_frame(push)
            try:
                conn.outbound.put_nowait(frame)
            except asyncio.QueueFull:
                self.counters["pushes_dropped"] += 1
                if rec.enabled:
                    rec.inc("net.push.dropped")
                if self.overflow == "disconnect":
                    self.counters["overflow_disconnects"] += 1
                    asyncio.ensure_future(self._close_connection(conn))
                break
            else:
                self.counters["pushes_sent"] += 1
                if rec.enabled:
                    rec.inc(metric)


class ServerThread:
    """Host a :class:`GISServer` on a private event loop in a thread.

    The synchronous embedding used by tests, the benchmark and the CI
    smoke script::

        with ServerThread(kernel) as (host, port):
            client = GISClient(host, port)
            ...

    ``stop()`` (or leaving the ``with`` block) shuts the server down,
    which also closes the sessions of every still-connected client.
    """

    def __init__(self, kernel: GISKernel, host: str = "127.0.0.1",
                 port: int = 0, **server_kwargs: Any):
        self.server = GISServer(kernel, host, port, **server_kwargs)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    def start(self) -> tuple[str, int]:
        self._thread = threading.Thread(
            target=self._run, name="gis-server", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10):   # pragma: no cover
            raise NetError("server thread failed to start in time")
        if self._startup_error is not None:
            raise NetError(
                f"server failed to start: {self._startup_error}"
            ) from self._startup_error
        return self.server.address

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
            loop.run_until_complete(self.server.stop())
        finally:
            loop.close()

    def stop(self) -> None:
        loop, self._loop = self._loop, None
        if loop is None or not loop.is_running():
            return
        loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10)

    def __enter__(self) -> tuple[str, int]:
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
